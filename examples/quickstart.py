#!/usr/bin/env python3
"""Quickstart: the dynamic grid protocol in five minutes.

Builds a 14-replica object (the paper's Figure 1 grid), performs partial
writes and reads, kills nodes, lets the epoch adapt, and verifies one-copy
serializability at the end.

Run:  python examples/quickstart.py
"""

from repro import ReplicatedStore, define_grid
from repro.coteries.grid import GridCoterie


def main() -> None:
    print("=== The grid for N = 14 (paper Figure 1) ===")
    shape = define_grid(14)
    print(f"DefineGrid(14) -> {shape.m} rows x {shape.n} columns, "
          f"{shape.b} unoccupied positions\n")
    grid = GridCoterie([f"{k:2d}" for k in range(1, 15)])
    print(grid.layout())
    print(f"\nread quorum size  : {grid.min_read_quorum_size()}")
    print(f"write quorum size : {grid.min_write_quorum_size()}")
    example = {" 1", " 6", " 3", " 7", "11", " 4"}
    print(f"paper's example write quorum {{1,6,3,7,11,4}} valid: "
          f"{grid.is_write_quorum(example)}")

    print("\n=== A replicated object on 14 nodes ===")
    store = ReplicatedStore.create(14, seed=42)
    result = store.write({"owner": "alice", "balance": 100})
    print(f"write #1: ok={result.ok} version={result.version} "
          f"good={result.good}")

    result = store.write({"balance": 85}, via="n09")  # partial write!
    print(f"write #2 (partial, via n09): ok={result.ok} "
          f"version={result.version} stale-marked={result.stale}")

    read = store.read(via="n02")
    print(f"read via n02: {read.value} (version {read.version})")

    print("\n=== Failures and epoch adjustment ===")
    for victim in ("n13", "n12", "n11", "n10"):
        store.crash(victim)
        check = store.check_epoch()
        epoch, number = store.current_epoch()
        print(f"crashed {victim}; epoch check ok={check.ok} -> "
              f"epoch #{number} with {len(epoch)} members")

    result = store.write({"balance": 60})
    print(f"write with 4 of 14 nodes dead: ok={result.ok} "
          f"version={result.version}")

    print("\n=== Recovery ===")
    store.recover("n10", "n11", "n12", "n13")
    check = store.check_epoch()
    epoch, number = store.current_epoch()
    print(f"all nodes back; epoch #{number} with {len(epoch)} members; "
          f"rejoiners marked stale: {check.stale}")
    store.settle()
    print(f"after propagation, stale replicas: {store.stale_replicas()}")
    read = store.read(via="n13")
    print(f"read via rejoined n13: {read.value}")

    stats = store.verify()
    print(f"\nhistory verified one-copy serializable: {stats}")


if __name__ == "__main__":
    main()
