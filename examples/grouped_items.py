#!/usr/bin/env python3
"""Group epoch management: many data items, one epoch (paper Section 2).

A directory server replicates 6 independent records on 9 nodes.  With the
paper's group epoch, one CheckEpoch per failure episode covers all six
records -- the amortization argument of Section 2 -- while reads, writes,
and delta propagation stay per record.

Run:  python examples/grouped_items.py
"""

from repro.core.multistore import MultiItemStore


RECORDS = [f"user{i}" for i in range(6)]


def main() -> None:
    store = MultiItemStore(
        [f"n{i:02d}" for i in range(9)], RECORDS, seed=21,
        trace_enabled=True)

    print("=== populate six records ===")
    for i, record in enumerate(RECORDS):
        store.write(record, {"name": record, "quota": 100 + i})
    print("versions:",
          {r: store.read(r).version for r in RECORDS})

    print("\n=== one failure episode, ONE epoch check for the group ===")
    store.crash("n08")
    store.trace.clear()
    result = store.check_epoch()
    checks = sum(1 for rec in store.trace.select(kind="rpc-call")
                 if rec.detail["method"] == "mi-epoch-check-request")
    print(f"epoch check: ok={result.ok} -> epoch "
          f"#{result.epoch_number} with {len(result.epoch_list)} members")
    print(f"epoch-check polls sent: {checks} (one per NODE, "
          f"not per record -- {len(RECORDS)}x amortization)")

    print("\n=== records keep independent versions and updates ===")
    store.write("user0", {"quota": 42})
    store.write("user3", {"suspended": True})
    print("user0:", store.read("user0").value)
    print("user3:", store.read("user3").value)
    print("user5:", store.read("user5").value, "(untouched)")

    print("\n=== rejoin: per-record staleness, per-record healing ===")
    store.recover("n08")
    result = store.check_epoch()
    n08 = store.servers["n08"]
    stale_records = [r for r in RECORDS if n08.item_state(r).stale]
    print(f"records stale on n08 after rejoin: {stale_records}")
    store.settle()
    print("after propagation:",
          {r: n08.item_state(r).version for r in RECORDS})

    print("\nverified:", store.verify())


if __name__ == "__main__":
    main()
