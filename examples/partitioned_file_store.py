#!/usr/bin/env python3
"""A replicated file server surviving a network partition.

Files are the paper's canonical partial-write workload (Section 1: "file
systems are an example"): a write touches one block, not the whole file.
This example replicates a small file -- blocks are keys -- across 12
nodes, splits the network, and demonstrates:

* only the partition holding a write quorum of the current epoch accepts
  writes (Lemma 1: the epoch stays unique -- no split brain);
* the winning side shrinks the epoch and keeps serving;
* after healing, rejoining replicas are marked stale and catch up by
  shipping only the missing *blocks* (the update log), not whole files.

Run:  python examples/partitioned_file_store.py
"""

from repro import ReplicatedStore


def show_file(tag, value):
    blocks = ", ".join(f"{k}={v!r}" for k, v in sorted(value.items()))
    print(f"  {tag}: {blocks}")


def main() -> None:
    store = ReplicatedStore.create(12, seed=11, trace_enabled=True)
    print("=== initial file (4 blocks) across 12 replicas ===")
    store.write({f"block{i}": f"v0.{i}" for i in range(4)})
    show_file("file", store.read().value)

    # 3x4 grid over n00..n11: columns are {n00,n04,n08}, {n01,n05,n09},
    # {n02,n06,n10}, {n03,n07,n11}.  Split off two nodes: the big side
    # still covers every column and owns a full one.
    side_a = ["n00", "n01"]
    side_b = [n for n in store.node_names if n not in side_a]
    print(f"\n=== partition: {side_a} | {len(side_b)} nodes ===")
    store.partition(side_a, side_b)

    blocked = store.write({"block1": "SPLIT-BRAIN?"}, via="n00")
    print(f"write from minority side: ok={blocked.ok} ({blocked.case})")

    accepted = store.write({"block1": "v1.1"}, via="n04")
    print(f"write from majority side: ok={accepted.ok} "
          f"version={accepted.version}")

    check = store.check_epoch(via="n04")
    epoch, number = store.current_epoch()
    print(f"epoch check on majority side: epoch #{number} with "
          f"{len(epoch)} members (minority excluded: "
          f"{sorted(set(store.node_names) - set(epoch))})")

    more = store.write({"block3": "v1.3"}, via="n06")
    print(f"another write in the shrunk epoch: ok={more.ok} "
          f"version={more.version}")

    print("\n=== heal and reconcile ===")
    store.heal()
    check = store.check_epoch(via="n04")
    epoch, number = store.current_epoch()
    print(f"epoch #{number}: {len(epoch)} members, "
          f"stale on rejoin: {check.stale}")
    store.settle()
    shipped = store.trace.select(kind="propagation-shipped")
    log_payloads = sum(1 for r in shipped if r.detail["payload"] == "log")
    print(f"propagation shipped {len(shipped)} catch-up payloads "
          f"({log_payloads} as block deltas, "
          f"{len(shipped) - log_payloads} as full snapshots)")

    print("\n=== final state, read from a healed minority node ===")
    read = store.read(via="n00")
    show_file("file@n00", read.value)
    assert read.value["block1"] == "v1.1"
    assert "SPLIT-BRAIN?" not in read.value.values()

    stats = store.verify()
    print(f"\nhistory verified one-copy serializable: {stats}")


if __name__ == "__main__":
    main()
