#!/usr/bin/env python3
"""A replicated key-value store riding out continuous failures.

This is the scenario the paper's introduction motivates: a service that
must stay writable while nodes fail and recover *continuously*.  We run a
closed-loop client population against a 9-replica store with Poisson
failure injection and fully automatic epoch management (elected initiator,
periodic CheckEpoch), then verify that every value any client ever read
was one-copy serializable -- and compare against the static grid protocol
under the *identical* fault sequence.

Run:  python examples/replicated_kvstore.py
"""

from repro import ProtocolConfig, ReplicatedStore, StaticQuorumStore
from repro.analysis.timeline import render_timeline
from repro.workloads.generators import ClientWorkload, run_workload


FAULT_RATE = 1 / 40.0     # each node fails about every 40 time units
REPAIR_RATE = 1 / 8.0     # and repairs in about 8
DURATION = 400.0


def build_dynamic():
    config = ProtocolConfig(epoch_check_interval=5.0,
                            epoch_check_staleness=15.0)
    store = ReplicatedStore.create(9, seed=7, config=config,
                                   auto_epoch_check=True,
                                   trace_enabled=True)
    store.inject_failures(FAULT_RATE, REPAIR_RATE, seed=99)
    return store


def build_static():
    store = StaticQuorumStore.create(9, seed=7)
    store.inject_failures(FAULT_RATE, REPAIR_RATE, seed=99)  # same faults
    return store


def main() -> None:
    workload = ClientWorkload(n_clients=4, read_fraction=0.6,
                              think_time=1.5, n_keys=8, duration=DURATION)

    print("=== dynamic grid protocol (epochs, partial writes) ===")
    dynamic = build_dynamic()
    dynamic.advance(20)  # elect the epoch-check initiator
    stats = run_workload(dynamic, workload, seed=1)
    print(stats.summary())
    epoch, number = dynamic.current_epoch()
    print(f"final epoch #{number} with {len(epoch)} members; "
          f"{len(dynamic.history.epoch_checks)} epoch checks ran")

    # bring everyone back and verify global consistency
    dynamic.recover(*[n for n in dynamic.node_names
                      if not dynamic.nodes[n].up])
    dynamic.advance(40)
    dynamic.settle()
    print("verified:", dynamic.verify())

    print("\n=== static grid protocol (same faults, same workload) ===")
    static = build_static()
    static_stats = run_workload(
        static,
        ClientWorkload(n_clients=4, read_fraction=0.6, think_time=1.5,
                       n_keys=8, duration=DURATION, total_writes=True),
        seed=1)
    print(static_stats.summary())

    print("\n=== what happened, as a timeline ===")
    print(render_timeline(dynamic, max_events=12))

    print("\n=== comparison ===")
    print(f"dynamic success rate : {stats.success_rate:.1%}")
    print(f"static  success rate : {static_stats.success_rate:.1%}")
    if stats.success_rate > static_stats.success_rate:
        print("-> the epoch mechanism absorbed failures the static "
              "protocol could not (the paper's Table 1, operationally)")


if __name__ == "__main__":
    main()
