#!/usr/bin/env python3
"""Deploying the grid across failure zones: placement matters.

The paper's grid is a logical structure; this example shows what happens
when it meets physical reality (racks / availability zones that fail as a
unit).  We deploy 16 replicas two ways -- grid columns aligned with zones
versus grid rows aligned with zones -- take a zone outage, and watch
reads, writes, and the epoch mechanism under each, finishing with the
exact two-level availability analysis.

Run:  python examples/zone_aware_deployment.py
"""

from repro import ReplicatedStore
from repro.analysis.placement import (
    column_zones,
    placement_comparison,
    row_zones,
)
from repro.analysis.timeline import render_timeline
from repro.coteries.grid import GridCoterie


def outage_demo(label, zone_map_fn):
    print(f"--- {label} ---")
    store = ReplicatedStore.create(16, seed=13, trace_enabled=True)
    grid = GridCoterie(list(store.node_names))
    zones = zone_map_fn(grid)
    first = sorted(zones)[0]
    print(f"zones: { {z: members for z, members in sorted(zones.items())} }")
    store.write({"config": "v1"})
    print(f"zone {first} fails: {zones[first]}")
    store.crash(*zones[first])
    read = store.read()
    write = store.write({"config": "v2"})
    print(f"  read  ok={read.ok}")
    print(f"  write ok={write.ok}")
    check = store.check_epoch()
    print(f"  epoch change possible: {check.ok}")
    # one zone member comes back: a write quorum of the old epoch exists
    store.recover(zones[first][0])
    check = store.check_epoch()
    print(f"  after one member returns -> epoch #{check.epoch_number} "
          f"with {len(check.epoch_list)} members; "
          f"write ok={store.write({'config': 'v2'}).ok}")
    store.verify()
    return store


def main() -> None:
    print("=== one-zone outage, two placements ===\n")
    outage_demo("columns aligned with zones (DANGEROUS)", column_zones)
    print()
    store = outage_demo("rows aligned with zones (read-protective)",
                        row_zones)

    print("\n=== exact two-level availability, N = 16 ===")
    comparison = placement_comparison(16, p_zone=0.95, p_node=0.98)
    print(f"{'placement':<16} {'read avail':>11} {'write avail':>12}")
    for label, values in comparison.items():
        print(f"{label:<16} {values['read']:>11.6f} "
              f"{values['write']:>12.6f}")
    print("\nreads: row alignment keeps every grid column represented "
          "through any single-zone outage")
    print("writes: a zone outage is a write quorum's worth of "
          "simultaneous failures -- placement cannot save them, only "
          "recovery (and the epoch mechanism) can")

    print("\n=== timeline of the second run ===")
    print(render_timeline(store, max_events=10))


if __name__ == "__main__":
    main()
