#!/usr/bin/env python3
"""Reproduce the paper's availability analysis (Section 6, Table 1) and
extend it.

1. Table 1: static grid unavailability (closed form, matching the values
   the paper cites from Cheung et al.) versus the dynamic grid's Markov
   chain (Figure 3), solved exactly in rational arithmetic.
2. Extension: the same chain for plain and linear dynamic voting.
3. Extension (E6): Monte Carlo with the *exact* epoch rule, quantifying
   the chain's "any grid >= 4 tolerates one failure" idealisation.

Run:  python examples/availability_study.py [--full]

(--full uses a 200k-unit Monte Carlo horizon for tighter E6 estimates;
the default finishes in well under a minute.)
"""

import sys

from repro.availability.chains.dynamic_grid import dynamic_grid_unavailability
from repro.availability.chains.dynamic_voting import (
    dynamic_linear_voting_unavailability,
    dynamic_voting_unavailability,
)
from repro.availability.formulas import best_static_grid
from repro.availability.montecarlo import simulate_dynamic_availability


TABLE1_ROWS = (9, 12, 15, 16, 20, 24, 30)
PAPER_STATIC_PPM = {9: 3268.59, 12: 912.25, 15: 683.60, 16: 1208.75,
                    20: 250.82, 24: 78.23, 30: 135.90}
PAPER_DYNAMIC = {9: "0.18e-6", 12: "0.6e-10", 15: "1.564e-14",
                 16: "negligible", 20: "", 24: "", 30: ""}


def table1(p: float = 0.95) -> None:
    print(f"=== Table 1: write unavailability at p = {p} "
          f"(mu/lam = {p / (1 - p):g}) ===")
    header = (f"{'N':>3}  {'dims':>6}  {'static (ours)':>14}  "
              f"{'static (paper)':>14}  {'dynamic (ours)':>14}  "
              f"{'dynamic (paper)':>15}")
    print(header)
    print("-" * len(header))
    for n in TABLE1_ROWS:
        m, cols, avail = best_static_grid(n, p)
        static = (1 - avail) * 1e6
        dynamic = float(dynamic_grid_unavailability(
            n, 1, p / (1 - p)))
        print(f"{n:>3}  {f'{m}x{cols}':>6}  {static:>11.2f}e-6  "
              f"{PAPER_STATIC_PPM[n]:>11.2f}e-6  {dynamic:>14.4e}  "
              f"{PAPER_DYNAMIC[n]:>15}")
    print()


def voting_extension(p: float = 0.95) -> None:
    print("=== Extension: dynamic voting chains under the same model ===")
    mu = p / (1 - p)
    print(f"{'N':>3}  {'dynamic grid':>14}  {'dynamic voting':>14}  "
          f"{'dyn-linear voting':>17}")
    for n in (5, 9, 12, 15):
        grid = float(dynamic_grid_unavailability(n, 1, mu))
        voting = float(dynamic_voting_unavailability(n, 1, mu))
        linear = float(dynamic_linear_voting_unavailability(n, 1, mu))
        print(f"{n:>3}  {grid:>14.4e}  {voting:>14.4e}  {linear:>17.4e}")
    print("(voting tolerates one more failure level; the tie-break one "
          "more still -- at the cost of polling every replica)\n")


def idealisation_gap(full: bool) -> None:
    print("=== Extension E6: exact epoch dynamics vs the Figure 3 chain ===")
    lam, mu = 1.0, 4.0  # p = 0.8 so Monte Carlo resolves quickly
    horizon = 200000.0 if full else 30000.0
    print(f"p = 0.8, horizon = {horizon:g}")
    print(f"{'N':>3}  {'chain':>10}  {'MC idealised':>13}  {'MC exact':>10}")
    for n in (6, 9, 12):
        chain = float(dynamic_grid_unavailability(n, lam, mu))
        ideal = simulate_dynamic_availability(n, lam, mu, horizon, seed=5,
                                              idealized=True)
        exact = simulate_dynamic_availability(n, lam, mu, horizon, seed=5)
        print(f"{n:>3}  {chain:>10.5f}  {ideal.unavailability:>13.5f}  "
              f"{exact.unavailability:>10.5f}")
    print("(the idealised Monte Carlo matches the chain; the exact rule "
          "is somewhat less available because 5-node epochs have a "
          "singleton grid column and stuck epochs need real quorums)")


def main() -> None:
    full = "--full" in sys.argv
    table1()
    voting_extension()
    idealisation_gap(full)


if __name__ == "__main__":
    main()
