"""Run the doctests embedded in module documentation.

Keeps the examples in docstrings honest: if an API drifts, the doc
example fails here instead of rotting silently.
"""

import doctest

import pytest

import repro.availability.formulas
import repro.coteries.grid
import repro.sim.engine

MODULES = [
    repro.sim.engine,
    repro.coteries.grid,
    repro.availability.formulas,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False,
                              optionflags=doctest.NORMALIZE_WHITESPACE)
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
    assert results.failed == 0
