"""``lock-discipline``: acquire/discharge path analysis."""

from __future__ import annotations

from repro.lint.rules.locks import LockDisciplineRule
from tests.lint.helpers import rule_ids

RULES = [LockDisciplineRule()]
RELPATH = "core/replica.py"


def ids(src: str) -> list[str]:
    return rule_ids(src, RELPATH, rules=RULES)


def test_return_with_held_lock_fires():
    src = ("class R:\n"
           "    def handle(self, op):\n"
           "        self.lock.acquire(op)\n"
           "        return 'granted'\n")
    assert ids(src) == ["lock-discipline"]


def test_release_before_return_is_clean():
    src = ("class R:\n"
           "    def handle(self, op):\n"
           "        self.lock.acquire(op)\n"
           "        self.lock.release(op)\n"
           "        return 'done'\n")
    assert ids(src) == []


def test_try_finally_release_shields_returns():
    src = ("class R:\n"
           "    def handle(self, op):\n"
           "        self.lock.acquire(op)\n"
           "        try:\n"
           "            return self.compute(op)\n"
           "        finally:\n"
           "            self.lock.release(op)\n")
    assert ids(src) == []


def test_one_branch_leaking_fires():
    src = ("class R:\n"
           "    def handle(self, op, fast):\n"
           "        self.lock.acquire(op)\n"
           "        if fast:\n"
           "            self.lock.release(op)\n"
           "            return 'fast'\n"
           "        return 'slow'\n")
    assert ids(src) == ["lock-discipline"]


def test_custody_registration_discharges():
    # handing the lock to the op-lock table transfers ownership to the
    # lease watchdog: the protocol's sanctioned way to outlive a handler
    src = ("class R:\n"
           "    def handle(self, op):\n"
           "        self.lock.acquire(op)\n"
           "        self._op_locks[op] = True\n"
           "        return 'granted'\n")
    assert ids(src) == []


def test_guarded_acquire_failure_branch_is_unheld():
    src = ("class R:\n"
           "    def handle(self, op):\n"
           "        ok = self._acquire(op)\n"
           "        if not ok:\n"
           "            return 'busy'\n"
           "        self._op_locks[op] = True\n"
           "        return 'granted'\n")
    assert ids(src) == []


def test_guarded_acquire_without_discharge_fires():
    src = ("class R:\n"
           "    def handle(self, op):\n"
           "        ok = self._acquire(op)\n"
           "        return ok\n")
    assert ids(src) == ["lock-discipline"]


def test_fall_off_the_end_fires():
    src = ("class R:\n"
           "    def handle(self, op):\n"
           "        self.lock.acquire(op)\n")
    assert ids(src) == ["lock-discipline"]


def test_non_lock_receiver_is_ignored():
    src = ("class R:\n"
           "    def handle(self, op):\n"
           "        self.semaphore.acquire(op)\n"
           "        return 'who knows'\n")
    assert ids(src) == []


def test_pragma_documents_intentional_custody_transfer():
    src = ("class R:\n"
           "    def handle(self, op):\n"
           "        self.lock.acquire(op)\n"
           "        # repro: allow[lock-discipline] caller takes custody\n"
           "        return 'granted'\n")
    assert ids(src) == []


def test_rule_scope_excludes_sim():
    rule = LockDisciplineRule()
    assert rule.applies_to("core/replica.py")
    assert not rule.applies_to("sim/node.py")
