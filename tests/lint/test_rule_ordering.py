"""``iteration-order``: positive, negative, scoping, and pragma cases."""

from __future__ import annotations

from tests.lint.helpers import rule_ids


def test_for_over_set_literal_fires():
    src = "for x in {1, 2, 3}:\n    print(x)\n"
    assert rule_ids(src) == ["iteration-order"]


def test_for_over_set_typed_local_fires():
    src = ("polled = set(['a', 'b'])\n"
           "for dst in polled:\n"
           "    send(dst)\n")
    assert rule_ids(src) == ["iteration-order"]


def test_for_over_sorted_set_is_fine():
    src = ("polled = set(['a', 'b'])\n"
           "for dst in sorted(polled):\n"
           "    send(dst)\n")
    assert rule_ids(src) == []


def test_listcomp_over_set_fires():
    src = "s = frozenset('ab')\nout = [x for x in s]\n"
    assert rule_ids(src) == ["iteration-order"]


def test_dictcomp_over_set_fires():
    src = ("polled = set('ab')\n"
           "msgs = {dst: 'release' for dst in polled}\n")
    assert rule_ids(src) == ["iteration-order"]


def test_setcomp_over_set_is_fine():
    src = "s = set('ab')\nt = {x.upper() for x in s}\n"
    assert rule_ids(src) == []


def test_unordered_fold_of_genexp_is_fine():
    src = ("s = set([1, 2])\n"
           "total = sum(x for x in s)\n"
           "small = min(x for x in s)\n"
           "ok = any(x > 1 for x in s)\n")
    assert rule_ids(src) == []


def test_list_of_set_fires_and_sorted_does_not():
    src = "s = set('ab')\na = list(s)\nb = sorted(s)\n"
    assert rule_ids(src) == ["iteration-order"]


def test_set_operator_result_is_set_typed():
    src = ("a = set('ab')\n"
           "b = set('bc')\n"
           "for x in a | b:\n"
           "    print(x)\n")
    assert rule_ids(src) == ["iteration-order"]


def test_set_method_result_is_set_typed():
    src = ("a = set('ab')\n"
           "keep = a.intersection(['a'])\n"
           "out = list(keep)\n")
    assert rule_ids(src) == ["iteration-order"]


def test_self_attribute_set_fires_inside_method():
    src = ("class Tracker:\n"
           "    def __init__(self):\n"
           "        self.live = set()\n"
           "    def snapshot(self):\n"
           "        return list(self.live)\n")
    assert rule_ids(src) == ["iteration-order"]


def test_set_annotated_parameter_fires():
    src = ("def fan_out(targets: set) -> None:\n"
           "    for t in targets:\n"
           "        send(t)\n")
    assert rule_ids(src) == ["iteration-order"]


def test_set_pop_fires():
    src = "pending = set('ab')\nnxt = pending.pop()\n"
    assert rule_ids(src) == ["iteration-order"]


def test_list_pop_is_fine():
    src = "pending = ['a', 'b']\nnxt = pending.pop()\n"
    assert rule_ids(src) == []


def test_star_unpacking_set_fires():
    src = "s = set('ab')\nf(*s)\n"
    assert rule_ids(src) == ["iteration-order"]


def test_join_of_set_fires():
    src = "s = set('ab')\nkey = ','.join(s)\n"
    assert rule_ids(src) == ["iteration-order"]


def test_dict_iteration_is_fine():
    src = ("d = {'a': 1, 'b': 2}\n"
           "for k in d:\n"
           "    print(k)\n"
           "items = list(d.items())\n")
    assert rule_ids(src) == []


def test_rule_scoped_to_protocol_packages():
    src = "s = set('ab')\nout = list(s)\n"
    assert rule_ids(src, "core/a.py") == ["iteration-order"]
    assert rule_ids(src, "coteries/a.py") == ["iteration-order"]
    assert rule_ids(src, "chaos/a.py") == ["iteration-order"]
    assert rule_ids(src, "sim/a.py") == []
    assert rule_ids(src, "obs/a.py") == []


def test_pragma_suppresses_with_reason():
    src = ("s = set('ab')\n"
           "out = list(s)  "
           "# repro: allow[iteration-order] order discarded by caller\n")
    assert rule_ids(src) == []
