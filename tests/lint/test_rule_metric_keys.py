"""``metric-key-shape``: positive, negative, and pragma cases."""

from __future__ import annotations

from tests.lint.helpers import rule_ids

RELPATH = "obs/instrument.py"


def test_valid_metric_calls_are_fine():
    src = ("reg.counter('rpc_attempts', link='a-b').inc()\n"
           "reg.gauge('nodes_up').set(3)\n"
           "reg.histogram('op_latency_ms', op='write').observe(1.5)\n")
    assert rule_ids(src, RELPATH) == []


def test_fstring_metric_name_fires():
    src = "reg.counter(f'rpc_{kind}_total').inc()\n"
    assert rule_ids(src, RELPATH) == ["metric-key-shape"]


def test_bad_name_grammar_fires():
    assert rule_ids("reg.counter('RPC-attempts').inc()\n",
                    RELPATH) == ["metric-key-shape"]
    assert rule_ids("reg.gauge('2fast').set(1)\n",
                    RELPATH) == ["metric-key-shape"]


def test_bad_label_key_fires():
    src = "reg.counter('rpc_total', **{'': 1})\n"
    # **labels is not statically checkable and must NOT fire
    assert rule_ids(src, RELPATH) == []
    src = "reg.counter('rpc_total', Link='a-b')\n"
    assert rule_ids(src, RELPATH) == ["metric-key-shape"]


def test_structural_chars_in_label_value_fire():
    src = "reg.counter('rpc_total', link='a=b')\n"
    assert rule_ids(src, RELPATH) == ["metric-key-shape"]
    src = "reg.counter('rpc_total', link='a{b}')\n"
    assert rule_ids(src, RELPATH) == ["metric-key-shape"]


def test_dynamic_label_value_is_fine():
    src = "reg.counter('rpc_total', link=link_name)\n"
    assert rule_ids(src, RELPATH) == []


def test_non_metric_attribute_calls_are_ignored():
    src = "collections.Counter('abc')\nboard.counter = 3\n"
    assert rule_ids(src, RELPATH) == []


def test_applies_everywhere():
    src = "reg.histogram(f'lat_{op}').observe(1)\n"
    assert rule_ids(src, "core/coordinator.py") == ["metric-key-shape"]
    assert rule_ids(src, "sim/network.py") == ["metric-key-shape"]


def test_pragma_suppresses_with_reason():
    src = ("reg.counter('legacy-name').inc()  "
           "# repro: allow[metric-key-shape] pre-v1 dashboard key\n")
    assert rule_ids(src, RELPATH) == []
