"""``repro lint`` end to end: exit codes, JSON schema, pragmas."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main

CLEAN = "GREETING = 'hello'\n"

# an unserved send: the handler-coverage project rule fires on it
UNSERVED_SEND = ("class C:\n"
                 "    def go(self, rpc, dst):\n"
                 "        return rpc.call(dst, 'no-such-kind', ())\n")

SUPPRESSED_SEND = (
    "class C:\n"
    "    def go(self, rpc, dst):\n"
    "        # repro: allow[handler-coverage] probe kind, sim-only\n"
    "        return rpc.call(dst, 'no-such-kind', ())\n")


def _tree(tmp_path: Path, source: str) -> Path:
    """A minimal repro-shaped tree so include patterns apply."""
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "coordinator.py").write_text(source, encoding="utf-8")
    return tmp_path / "repro"


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    assert main(["lint", str(_tree(tmp_path, CLEAN))]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_exit_one_on_findings(tmp_path, capsys):
    assert main(["lint", str(_tree(tmp_path, UNSERVED_SEND))]) == 1
    assert "handler-coverage" in capsys.readouterr().out


def test_exit_two_on_unparsable_source(tmp_path, capsys):
    assert main(["lint", str(_tree(tmp_path, "def broken(:\n"))]) == 2
    assert "syntax error" in capsys.readouterr().out


def test_json_report_round_trips(tmp_path, capsys):
    assert main(["lint", str(_tree(tmp_path, UNSERVED_SEND)),
                 "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro-lint-v1"
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    [finding] = payload["findings"]
    assert finding["rule"] == "handler-coverage"
    assert finding["path"] == "core/coordinator.py"
    assert finding["line"] >= 1
    rule_ids = {rule["id"] for rule in payload["rules"]}
    assert {"handler-coverage", "lock-discipline", "config-drift",
            "transport-boundary"} <= rule_ids


def test_pragma_suppresses_new_project_rule(tmp_path, capsys):
    assert main(["lint", str(_tree(tmp_path, SUPPRESSED_SEND)),
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == []
    [suppressed] = payload["suppressed"]
    assert suppressed["rule"] == "handler-coverage"


def test_repo_tree_lints_clean():
    # the PR's own baseline: the shipped package has zero findings
    import repro
    assert main(["lint", str(Path(repro.__file__).parent)]) == 0
