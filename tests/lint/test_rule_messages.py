"""``message-discipline``: positive, negative, and pragma cases."""

from __future__ import annotations

from tests.lint.helpers import rule_ids

RELPATH = "core/messages.py"


def test_dataclass_without_slots_fires():
    src = ("from dataclasses import dataclass\n"
           "@dataclass\n"
           "class Ping:\n"
           "    src: str\n")
    assert rule_ids(src, RELPATH) == ["message-discipline"]


def test_dataclass_with_other_kwargs_but_no_slots_fires():
    src = ("from dataclasses import dataclass\n"
           "@dataclass(frozen=True)\n"
           "class Ping:\n"
           "    src: str\n")
    assert rule_ids(src, RELPATH) == ["message-discipline"]


def test_slotted_frozen_dataclass_is_fine():
    src = ("from dataclasses import dataclass\n"
           "@dataclass(frozen=True, slots=True)\n"
           "class Ping:\n"
           "    src: str\n"
           "    hops: tuple = ()\n")
    assert rule_ids(src, RELPATH) == []


def test_mutable_list_default_fires():
    src = ("from dataclasses import dataclass\n"
           "@dataclass(slots=True)\n"
           "class Batch:\n"
           "    ops: list = []\n")
    assert rule_ids(src, RELPATH) == ["message-discipline"]


def test_mutable_default_factory_fires():
    src = ("from dataclasses import dataclass, field\n"
           "@dataclass(slots=True)\n"
           "class Batch:\n"
           "    ops: list = field(default_factory=list)\n")
    assert rule_ids(src, RELPATH) == ["message-discipline"]


def test_lambda_factory_returning_dict_fires():
    src = ("from dataclasses import dataclass, field\n"
           "@dataclass(slots=True)\n"
           "class Batch:\n"
           "    acks: dict = field(default_factory=lambda: {})\n")
    assert rule_ids(src, RELPATH) == ["message-discipline"]


def test_immutable_defaults_are_fine():
    src = ("from dataclasses import dataclass\n"
           "@dataclass(slots=True)\n"
           "class Result:\n"
           "    ok: bool = False\n"
           "    stale: tuple = ()\n"
           "    reason: str = ''\n"
           "    epoch: int = 0\n")
    assert rule_ids(src, RELPATH) == []


def test_plain_class_is_ignored():
    src = ("class Helper:\n"
           "    registry = []\n")
    assert rule_ids(src, RELPATH) == []


def test_rule_only_applies_to_core_messages():
    src = ("from dataclasses import dataclass\n"
           "@dataclass\n"
           "class Row:\n"
           "    cells: list = []\n")
    assert rule_ids(src, "analysis/tables.py") == []


def test_pragma_suppresses_with_reason():
    src = ("from dataclasses import dataclass\n"
           "# repro: allow[message-discipline] legacy wire format\n"
           "@dataclass\n"
           "class Old:\n"
           "    src: str\n")
    assert rule_ids(src, RELPATH) == []
