"""Engine mechanics: pragmas, path scoping, exit codes, output."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint import (
    DEFAULT_RULES,
    Finding,
    lint_paths,
    package_relpath,
    render_findings,
    report_to_json,
)
from repro.lint.engine import (
    PRAGMA_RULE_ID,
    ImportTable,
    Rule,
    collect_pragmas,
    dotted_name,
)

from tests.lint.helpers import rule_ids, run_lint

WALLCLOCK = "import time\nx = time.time()\n"


class NamedConstantRule(Rule):
    """Test rule: flags every assignment to the name ``forbidden``."""

    id = "named-constant"
    rationale = "test double"

    def check(self, tree, source, relpath):
        for node in ast.walk(tree):
            if (isinstance(node, ast.Name) and node.id == "forbidden"
                    and isinstance(node.ctx, ast.Store)):
                yield self.finding(relpath, node, "no `forbidden` names")


class ScopedRule(NamedConstantRule):
    id = "scoped"
    include = ("core/*",)
    exclude = ("core/skipme.py",)


def test_clean_source_exits_zero():
    report = run_lint("x = 1\n")
    assert report.ok and report.exit_code == 0 and not report.findings


def test_finding_sets_exit_code_one():
    report = run_lint(WALLCLOCK)
    assert [f.rule for f in report.findings] == ["no-wall-clock"]
    assert report.exit_code == 1 and not report.ok


def test_syntax_error_exits_two():
    report = run_lint("def broken(:\n")
    assert report.exit_code == 2 and report.errors


def test_pragma_suppresses_same_line():
    src = ("import time\n"
           "x = time.time()  # repro: allow[no-wall-clock] bench timing\n")
    report = run_lint(src)
    assert report.ok and len(report.suppressed) == 1


def test_pragma_on_own_line_covers_next_line():
    src = ("import time\n"
           "# repro: allow[no-wall-clock] bench timing\n"
           "x = time.time()\n")
    report = run_lint(src)
    assert report.ok and len(report.suppressed) == 1


def test_star_pragma_suppresses_any_rule():
    src = ("import time\n"
           "x = time.time()  # repro: allow[*] demo of everything\n")
    assert run_lint(src).ok


def test_pragma_wrong_rule_does_not_suppress():
    src = ("import time\n"
           "x = time.time()  # repro: allow[seeded-rng-only] wrong id\n")
    ids = rule_ids(src)
    # the finding survives AND the pragma is reported as unused
    assert "no-wall-clock" in ids and PRAGMA_RULE_ID in ids


def test_bare_pragma_without_reason_is_a_finding():
    src = ("import time\n"
           "x = time.time()  # repro: allow[no-wall-clock]\n")
    assert PRAGMA_RULE_ID in rule_ids(src)


def test_unused_pragma_is_a_finding():
    src = "x = 1  # repro: allow[no-wall-clock] nothing to allow here\n"
    assert rule_ids(src) == [PRAGMA_RULE_ID]


def test_pragma_text_in_docstring_is_ignored():
    src = ('"""Docs show `# repro: allow[no-wall-clock] why` syntax."""\n'
           "x = 1\n")
    assert run_lint(src).ok
    assert collect_pragmas(src) == []


def test_include_exclude_scoping():
    rule = ScopedRule()
    assert rule.applies_to("core/messages.py")
    assert not rule.applies_to("sim/network.py")
    assert not rule.applies_to("core/skipme.py")


def test_scoped_rule_skipped_outside_include():
    src = "forbidden = 1\n"
    assert rule_ids(src, "core/a.py", [ScopedRule()]) == ["scoped"]
    assert rule_ids(src, "obs/a.py", [ScopedRule()]) == []


def test_package_relpath():
    assert package_relpath(
        Path("src/repro/core/messages.py")) == "core/messages.py"
    assert package_relpath(
        Path("/abs/x/repro/chaos/runner.py")) == "chaos/runner.py"
    assert package_relpath(Path("/tmp/fixture.py")) == "fixture.py"


def test_lint_paths_walks_directories(tmp_path):
    (tmp_path / "repro" / "core").mkdir(parents=True)
    bad = tmp_path / "repro" / "core" / "bad.py"
    bad.write_text(WALLCLOCK)
    (tmp_path / "repro" / "core" / "ok.py").write_text("x = 1\n")
    report = lint_paths([tmp_path], DEFAULT_RULES)
    assert report.files_checked == 2
    assert [f.rule for f in report.findings] == ["no-wall-clock"]
    assert report.findings[0].path == "core/bad.py"


def test_render_and_json_roundtrip():
    report = run_lint(WALLCLOCK, "core/x.py")
    text = render_findings(report)
    assert "core/x.py:2" in text and "[no-wall-clock]" in text
    payload = report_to_json(report)
    assert payload["schema"] == "repro-lint-v1"
    assert payload["ok"] is False
    assert payload["findings"][0]["rule"] == "no-wall-clock"


def test_finding_location_is_one_based_column():
    f = Finding("r", "p.py", 3, 0, "m")
    assert f.location() == "p.py:3:1"


def test_dotted_name_and_import_table():
    tree = ast.parse("import time as t\n"
                     "from datetime import datetime as dt\n"
                     "x = t.monotonic()\n"
                     "y = dt.now()\n")
    calls = [n for n in ast.walk(tree) if isinstance(n, ast.Call)]
    table = ImportTable(tree)
    resolved = sorted(table.resolve(c.func) for c in calls)
    assert resolved == ["datetime.datetime.now", "time.monotonic"]
    assert dotted_name(ast.parse("a.b.c").body[0].value) == "a.b.c"
