"""``config-drift``: fields vs validate() vs describe() vs docs."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint.engine import lint_paths
from repro.lint.rules.config_drift import ConfigDriftRule
from tests.lint.helpers import rule_ids, run_lint

RULES = [ConfigDriftRule()]
RELPATH = "core/config.py"

IN_SYNC = textwrap.dedent("""\
    from dataclasses import dataclass

    @dataclass
    class ProtocolConfig:
        rpc_timeout: float = 0.5
        hedged: bool = False

        def validate(self):
            if self.rpc_timeout <= 0:
                raise ValueError('rpc_timeout')

        def describe(self):
            return (('rpc_timeout', self.rpc_timeout),
                    ('hedged', self.hedged))
    """)


def test_in_sync_config_is_clean():
    assert rule_ids(IN_SYNC, RELPATH, rules=RULES) == []


def test_describe_omitting_a_field_fires():
    src = IN_SYNC.replace("                ('hedged', self.hedged)", "")
    ids = rule_ids(src, RELPATH, rules=RULES)
    assert ids == ["config-drift"]


def test_describe_with_stale_entry_fires():
    src = IN_SYNC.replace(
        "('hedged', self.hedged))",
        "('hedged', self.hedged),\n"
        "                ('retired_knob', 0))")
    ids = rule_ids(src, RELPATH, rules=RULES)
    assert ids == ["config-drift"]


def test_describe_out_of_declaration_order_fires():
    src = IN_SYNC.replace(
        "return (('rpc_timeout', self.rpc_timeout),\n"
        "                ('hedged', self.hedged))",
        "return (('hedged', self.hedged),\n"
        "                ('rpc_timeout', self.rpc_timeout))")
    ids = rule_ids(src, RELPATH, rules=RULES)
    assert ids == ["config-drift"]


def test_validate_ignoring_a_numeric_field_fires():
    src = IN_SYNC.replace(
        "    rpc_timeout: float = 0.5\n",
        "    rpc_timeout: float = 0.5\n"
        "    lock_wait: float = 1.5\n"
    ).replace(
        "(('rpc_timeout', self.rpc_timeout),",
        "(('rpc_timeout', self.rpc_timeout),\n"
        "                ('lock_wait', self.lock_wait),")
    [finding] = run_lint(src, RELPATH, RULES).findings
    assert finding.rule == "config-drift"
    assert "never references 'lock_wait'" in finding.message


def test_bool_fields_need_no_range_check():
    # `hedged` never appears in validate() and that is fine
    assert rule_ids(IN_SYNC, RELPATH, rules=RULES) == []


def test_plain_dataclass_without_the_methods_is_ignored():
    src = ("from dataclasses import dataclass\n"
           "@dataclass\n"
           "class Point:\n"
           "    x: float = 0.0\n")
    assert rule_ids(src, RELPATH, rules=RULES) == []


# -- the docs/API.md knob-table check (needs real files) ---------------------

DOC_IN_SYNC = textwrap.dedent("""\
    # API

    ## ProtocolConfig knobs

    | knob | default | what it controls |
    |---|---|---|
    | `rpc_timeout` | 0.5 | per-call timeout |
    | `hedged` | False | hedged polls |

    ## Other section
    """)


def _lint_tree(tmp_path: Path, doc: str):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "API.md").write_text(doc, encoding="utf-8")
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "config.py").write_text(IN_SYNC, encoding="utf-8")
    return lint_paths([tmp_path / "repro"], RULES)


def test_doc_table_in_sync_is_clean(tmp_path):
    report = _lint_tree(tmp_path, DOC_IN_SYNC)
    assert [f.rule for f in report.findings] == []


def test_doc_table_missing_knob_fires(tmp_path):
    doc = DOC_IN_SYNC.replace("| `hedged` | False | hedged polls |\n", "")
    report = _lint_tree(tmp_path, doc)
    assert ["'hedged' is missing from the docs" in f.message
            for f in report.findings] == [True]


def test_doc_table_stale_row_fires(tmp_path):
    doc = DOC_IN_SYNC.replace(
        "## Other section",
        "| `retired_knob` | 1 | gone |\n\n## Other section")
    report = _lint_tree(tmp_path, doc)
    assert ["'retired_knob'" in f.message
            for f in report.findings] == [True]


def test_missing_doc_section_fires(tmp_path):
    report = _lint_tree(tmp_path, "# API\n\nNothing here.\n")
    assert ["no ProtocolConfig section" in f.message
            for f in report.findings] == [True]


def test_bare_source_skips_the_doc_check():
    # lint_source has no filesystem anchor, so no API.md to disagree with
    assert rule_ids(IN_SYNC, RELPATH, rules=RULES) == []
