"""``no-wall-clock``: positive, negative, scoping, and pragma cases."""

from __future__ import annotations

from tests.lint.helpers import rule_ids


def test_time_time_fires():
    assert rule_ids("import time\nt = time.time()\n") == ["no-wall-clock"]


def test_monotonic_and_perf_counter_fire():
    src = ("import time\n"
           "a = time.monotonic()\n"
           "b = time.perf_counter_ns()\n")
    assert rule_ids(src) == ["no-wall-clock"] * 2


def test_datetime_now_fires():
    src = "import datetime\nd = datetime.datetime.now()\n"
    assert rule_ids(src) == ["no-wall-clock"]


def test_from_import_alias_cannot_hide_it():
    src = "from time import monotonic as clock\nt = clock()\n"
    assert rule_ids(src) == ["no-wall-clock"]


def test_module_alias_cannot_hide_it():
    src = "import time as t\nx = t.time()\n"
    assert rule_ids(src) == ["no-wall-clock"]


def test_sleep_fires():
    assert rule_ids("import time\ntime.sleep(1)\n") == ["no-wall-clock"]


def test_simulated_clock_is_fine():
    src = "def handler(env):\n    return env.now\n"
    assert rule_ids(src) == []


def test_sim_engine_is_exempt():
    src = "import time\nt = time.monotonic()\n"
    assert rule_ids(src, "sim/engine.py") == []


def test_benchmarks_are_exempt():
    src = "import time\nt = time.perf_counter()\n"
    assert rule_ids(src, "benchmarks/bench_x.py") == []


def test_pragma_suppresses_with_reason():
    src = ("import time\n"
           "t = time.time()  # repro: allow[no-wall-clock] wall report\n")
    assert rule_ids(src) == []
