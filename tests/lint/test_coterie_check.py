"""Semantic coterie verification: green families and failing fixtures.

Each acceptance-criteria check (engine consistency, the coterie
axioms, quorum-function sanity, the Lemma-1 sweep) gets at least one
deliberately broken coterie proving the check actually fires.
"""

from __future__ import annotations

from repro.coteries import CoterieError, MajorityCoterie
from repro.coteries.base import Coterie, SetRecomputeEvaluator
from repro.lint import COTERIE_FAMILIES, check_all_families, check_family
from repro.lint.coterie_check import _check_transitions


class _FixtureCoterie(Coterie):
    """Predicate-driven coterie for building broken fixtures."""

    def is_read_quorum(self, subset):
        return self._read(self.restrict(subset))

    def is_write_quorum(self, subset):
        return self._write(self.restrict(subset))

    def read_quorum(self, salt="", attempt=0):
        return sorted(self._min_read())

    def write_quorum(self, salt="", attempt=0):
        return sorted(self._min_write())


class DisjointRWCoterie(_FixtureCoterie):
    """Reads need n0, writes need n1: a read and a write quorum are
    disjoint, violating read/write intersection."""

    def _read(self, live):
        return self.nodes[0] in live

    def _write(self, live):
        return self.nodes[1] in live

    def _min_read(self):
        return {self.nodes[0]}

    def _min_write(self):
        return {self.nodes[1]}


class AnyWriteCoterie(_FixtureCoterie):
    """Any non-empty subset writes: two writes can be disjoint."""

    def _read(self, live):
        return bool(live)

    def _write(self, live):
        return bool(live)

    def _min_read(self):
        return {self.nodes[0]}

    def _min_write(self):
        return {self.nodes[0]}


class _LyingEvaluator(SetRecomputeEvaluator):
    """Claims every mask is a write quorum."""

    def is_write_quorum(self, mask=None):
        return True


class BrokenEngineCoterie(MajorityCoterie):
    """Valid majority coterie whose compiled evaluator lies."""

    def compile(self, universe=None):
        return _LyingEvaluator(self, universe)


class EscapingQuorumCoterie(MajorityCoterie):
    """Valid predicates, but the quorum picker escapes V."""

    def write_quorum(self, salt="", attempt=0):
        return ["ghost"] + super().write_quorum(salt, attempt)[:-1]


def _checks_of(result):
    return {f.check for f in result.findings}


def test_all_registered_families_are_green():
    results = check_all_families(max_n=6)
    assert results, "registry must not be empty"
    for result in results:
        assert result.ok, result.findings
        assert result.masks == 2 ** result.n


def test_registry_covers_every_implemented_family():
    assert set(COTERIE_FAMILIES) >= {
        "grid", "majority", "weighted-voting", "tree", "hierarchical",
        "rowa", "wall", "composite"}


def test_rw_intersection_violation_is_caught():
    result = check_family("fixture", DisjointRWCoterie, 3)
    assert "rw-intersection" in _checks_of(result)


def test_ww_intersection_violation_is_caught():
    result = check_family("fixture", AnyWriteCoterie, 3)
    assert "ww-intersection" in _checks_of(result)


def test_engine_inconsistency_is_caught():
    result = check_family("fixture", BrokenEngineCoterie, 3)
    assert "engine-consistency" in _checks_of(result)


def test_escaping_quorum_function_is_caught():
    result = check_family("fixture", EscapingQuorumCoterie, 3)
    assert "quorum-function" in _checks_of(result)


def test_unrebuildable_epoch_is_caught():
    """A rule that cannot rebuild a coterie for an installable epoch
    fails the Lemma-1 sweep."""

    def brittle_rule(nodes):
        if len(nodes) < 3:
            raise CoterieError("needs at least 3 nodes")
        return MajorityCoterie(nodes)

    result = check_family("fixture", brittle_rule, 3)
    assert "lemma1-rebuild" in _checks_of(result)


def test_broken_epoch_rebuild_is_caught():
    """A rule whose *sub*-coteries violate the axioms fails the
    inductive re-check even though the top level is valid."""

    def two_faced_rule(nodes):
        if len(nodes) == 4:
            return MajorityCoterie(nodes)
        return AnyWriteCoterie(nodes)

    result = check_family("fixture", two_faced_rule, 4)
    assert "ww-intersection" in _checks_of(result)
    assert any("epoch" in f.message for f in result.findings)


def test_lemma1_intersection_check_fires_on_doctored_tables():
    """The surviving-reader check itself: feed predicate tables where
    an old read quorum lives wholly outside an installable epoch."""
    nodes = ["a", "b"]
    # mask 0b01={a}, 0b10={b}, 0b11={a,b}
    writes = [False, True, False, True]   # {a} writes
    reads = [False, False, True, True]    # {b} reads
    findings = []
    _check_transitions("fixture", 2, MajorityCoterie, nodes,
                       reads, writes, findings)
    assert any(f.check == "lemma1-intersection" for f in findings)


def test_strategy_sweep_validates_support_and_sampling():
    """Green families carry the strategy checks implicitly; make the
    sweep's own machinery visible on one family."""
    from repro.lint.coterie_check import _strategy_findings

    nodes = [f"n{i}" for i in range(5)]
    coterie = MajorityCoterie(nodes)
    full = (1 << 5) - 1
    reads = [coterie.is_read_quorum({n for i, n in enumerate(nodes)
                                     if mask >> i & 1})
             for mask in range(full + 1)]
    writes = [coterie.is_write_quorum({n for i, n in enumerate(nodes)
                                       if mask >> i & 1})
              for mask in range(full + 1)]
    assert _strategy_findings("majority", 5, coterie, nodes,
                              reads, writes) == []


def test_strategy_sweep_catches_a_non_quorum_support():
    """Doctored tables that reject the optimizer's support quorums make
    the strategy check fire (proving it compares against the tables,
    not against the coterie's own predicates)."""
    from repro.lint.coterie_check import _strategy_findings

    nodes = [f"n{i}" for i in range(5)]
    coterie = MajorityCoterie(nodes)
    full = (1 << 5) - 1
    reads = [False] * (full + 1)   # "no subset is a read quorum"
    writes = [False] * (full + 1)
    findings = _strategy_findings("fixture", 5, coterie, nodes,
                                  reads, writes)
    assert any(f.check in ("strategy-support", "strategy-sample")
               for f in findings)


def test_transitions_counted():
    result = check_family("majority", MajorityCoterie, 5)
    assert result.ok
    # installable epochs = proper subsets containing a majority (>=3 of 5)
    assert result.transitions == sum(
        1 for mask in range(1, 31) if bin(mask).count("1") >= 3)


def test_max_n_caps_the_sweep():
    results = check_all_families(max_n=4)
    assert all(r.n <= 4 for r in results)
