"""``transport-boundary``: no sim internals outside sim/."""

from __future__ import annotations

from repro.lint.rules.transport import TransportBoundaryRule
from tests.lint.helpers import rule_ids

RULES = [TransportBoundaryRule()]


def test_private_env_access_fires():
    src = ("def arm(self, cb):\n"
           "    self.env._schedule_call(0.5, cb)\n")
    assert rule_ids(src, "core/replica.py", rules=RULES) \
        == ["transport-boundary"]


def test_private_network_access_fires():
    src = ("def poke(network, msg):\n"
           "    network._deliver(msg)\n")
    assert rule_ids(src, "chaos/faults.py", rules=RULES) \
        == ["transport-boundary"]


def test_public_transport_api_is_clean():
    src = ("def arm(self, cb):\n"
           "    self.env.schedule(cb, delay=0.5)\n"
           "    self.network.cut_link('n00', 'n01')\n")
    assert rule_ids(src, "core/replica.py", rules=RULES) == []


def test_dunder_attributes_are_python_not_transport():
    src = ("def kind(env):\n"
           "    return env.__class__.__name__\n")
    assert rule_ids(src, "core/replica.py", rules=RULES) == []


def test_private_access_on_non_transport_receiver_is_clean():
    src = ("class C:\n"
           "    def peek(self):\n"
           "        return self._cache\n")
    assert rule_ids(src, "core/replica.py", rules=RULES) == []


def test_sim_modules_may_touch_their_own_internals():
    src = ("def wire(self, env):\n"
           "    env._schedule_call(0.0, self.run)\n")
    assert rule_ids(src, "sim/rpc.py", rules=RULES) == []


def test_finding_names_the_reaching_expression():
    src = ("def arm(store, cb):\n"
           "    store.env._schedule_call(0.5, cb)\n")
    report_ids = rule_ids(src, "chaos/nemesis.py", rules=RULES)
    assert report_ids == ["transport-boundary"]
