"""``seeded-rng-only``: positive, negative, and pragma cases."""

from __future__ import annotations

from tests.lint.helpers import rule_ids


def test_module_level_random_fires():
    src = "import random\nx = random.randint(0, 9)\n"
    assert rule_ids(src) == ["seeded-rng-only"]


def test_module_level_random_via_alias_fires():
    src = "import random as rnd\nx = rnd.shuffle([1, 2])\n"
    assert rule_ids(src) == ["seeded-rng-only"]


def test_os_urandom_and_uuid4_fire():
    src = ("import os\nimport uuid\n"
           "a = os.urandom(8)\n"
           "b = uuid.uuid4()\n")
    assert rule_ids(src) == ["seeded-rng-only"] * 2


def test_from_import_urandom_fires():
    src = "from os import urandom\nx = urandom(8)\n"
    assert rule_ids(src) == ["seeded-rng-only"]


def test_unseeded_random_constructor_fires():
    src = "import random\nrng = random.Random()\n"
    assert rule_ids(src) == ["seeded-rng-only"]


def test_seeded_random_constructor_is_fine():
    src = "import random\nrng = random.Random(42)\n"
    assert rule_ids(src) == []


def test_fallback_idiom_fires():
    src = ("import random\n"
           "def f(rng=None):\n"
           "    rng = rng or random.Random(0)\n")
    assert rule_ids(src) == ["seeded-rng-only"]


def test_derive_rng_default_is_fine():
    src = ("from repro.sim.seeding import derive_rng\n"
           "def f(rng=None):\n"
           "    rng = rng if rng is not None else derive_rng(0, 'ns')\n")
    assert rule_ids(src) == []


def test_injected_stream_draw_is_fine():
    src = ("def f(rng):\n"
           "    return rng.uniform(0.0, 1.0)\n")
    assert rule_ids(src) == []


def test_numpy_global_sampler_fires():
    src = "import numpy\nx = numpy.random.normal()\n"
    assert rule_ids(src) == ["seeded-rng-only"]


def test_numpy_seeded_generator_is_fine():
    src = "import numpy\nrng = numpy.random.default_rng(7)\n"
    assert rule_ids(src) == []


def test_numpy_unseeded_default_rng_fires():
    src = "import numpy\nrng = numpy.random.default_rng()\n"
    assert rule_ids(src) == ["seeded-rng-only"]


def test_numpy_seedless_constructors_fire():
    src = ("import numpy as np\n"
           "from numpy.random import RandomState\n"
           "a = RandomState()\n"
           "b = np.random.PCG64()\n"
           "c = np.random.SeedSequence()\n")
    assert rule_ids(src) == ["seeded-rng-only"] * 3


def test_numpy_seeded_constructors_are_fine():
    src = ("import numpy as np\n"
           "from numpy.random import RandomState\n"
           "a = RandomState(3)\n"
           "b = np.random.PCG64(seed=4)\n"
           "c = np.random.SeedSequence(entropy=5)\n"
           "d = np.random.Generator(np.random.PCG64(9))\n")
    assert rule_ids(src) == []


def test_derive_generator_default_is_fine():
    src = ("from repro.sim.seeding import derive_generator\n"
           "gen = derive_generator(0, 'availability.vector')\n")
    assert rule_ids(src) == []


def test_pragma_suppresses_with_reason():
    src = ("import uuid\n"
           "run_id = uuid.uuid4()  "
           "# repro: allow[seeded-rng-only] run id is not protocol state\n")
    assert rule_ids(src) == []
