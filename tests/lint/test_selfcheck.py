"""The repo lints itself clean: the zero-findings baseline is enforced."""

from __future__ import annotations

from pathlib import Path

import repro
from repro.cli import main
from repro.lint import DEFAULT_RULES, lint_paths, rule_catalog

PACKAGE = Path(repro.__file__).parent


def test_repro_package_lints_clean():
    report = lint_paths([PACKAGE], DEFAULT_RULES)
    assert report.files_checked > 50
    assert report.errors == []
    assert report.findings == [], "\n".join(
        f"{f.location()} [{f.rule}] {f.message}" for f in report.findings)
    assert report.exit_code == 0


def test_cli_lint_exits_zero(capsys):
    assert main(["lint", str(PACKAGE)]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_cli_lint_json_schema(capsys):
    import json
    assert main(["lint", str(PACKAGE), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro-lint-v1"
    assert payload["ok"] is True
    ids = {r["id"] for r in payload["rules"]}
    assert ids == {r.id for r in DEFAULT_RULES}


def test_cli_lint_finds_violations_in_fixture(tmp_path, capsys):
    bad = tmp_path / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n"
                   "t = time.time()\n"
                   "s = set('ab')\n"
                   "out = list(s)\n")
    assert main(["lint", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "[no-wall-clock]" in out and "[iteration-order]" in out


def test_cli_lint_coteries_small(capsys):
    assert main(["lint", "--coteries", "--max-n", "4"]) == 0
    out = capsys.readouterr().out
    assert "grid" in out and "ok" in out and "FINDING" not in out


def test_rule_catalog_is_complete():
    catalog = rule_catalog()
    assert {r.id for r in DEFAULT_RULES} == {e["id"] for e in catalog}
    assert all(e["rationale"] for e in catalog)
