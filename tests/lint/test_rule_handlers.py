"""``handler-coverage``: cross-module RPC wiring checks."""

from __future__ import annotations

from repro.lint.rules.handlers import HandlerCoverageRule
from tests.lint.helpers import project_findings, rule_ids

SERVE = ("class Replica:\n"
         "    def wire(self, rpc):\n"
         "        rpc.serve('write-request', self.on_write)\n")
SEND = ("class Coordinator:\n"
        "    def go(self, rpc, dst, args):\n"
        "        return rpc.call(dst, 'write-request', args)\n")


def test_matched_send_and_serve_is_clean():
    findings = project_findings(
        {"core/replica.py": SERVE, "core/coordinator.py": SEND},
        HandlerCoverageRule())
    assert findings == []


def test_sent_kind_without_handler_fires():
    findings = project_findings(
        {"core/coordinator.py": SEND}, HandlerCoverageRule())
    assert len(findings) == 1
    assert "'write-request' is sent but no module registers" \
        in findings[0].message
    assert findings[0].path == "core/coordinator.py"


def test_served_kind_nobody_sends_fires():
    findings = project_findings(
        {"core/replica.py": SERVE}, HandlerCoverageRule())
    assert len(findings) == 1
    assert "never sent or referenced" in findings[0].message
    assert findings[0].path == "core/replica.py"


def test_mention_outside_serve_keeps_handler_alive():
    # dynamic dispatch: the kind string appears in a non-serve context,
    # so the send site is unverifiable but the handler is not dead
    dynamic = ("class C:\n"
               "    def go(self, rpc, dst, fast):\n"
               "        kind = 'write-request' if fast else 'other'\n"
               "        return rpc.call(dst, kind, ())\n")
    findings = project_findings(
        {"core/replica.py": SERVE, "core/coordinator.py": dynamic},
        HandlerCoverageRule())
    assert findings == []


def test_gather_request_dict_counts_as_send():
    gathered = ("class C:\n"
                "    def poll(self, rpc, dsts):\n"
                "        return gather(rpc, {d: ('poll-state', ())\n"
                "                            for d in dsts})\n")
    findings = project_findings(
        {"core/coordinator.py": gathered}, HandlerCoverageRule())
    assert len(findings) == 1
    assert "'poll-state'" in findings[0].message


def test_generic_request_dict_variable_counts_as_send():
    # the dict is bound to a variable before the wave call: the
    # dash-kind grammar heuristic still treats it as a send site
    assigned = ("class C:\n"
                "    def poll(self, rpc, dsts):\n"
                "        requests = {d: ('poll-state', ()) for d in dsts}\n"
                "        return self.wave(requests)\n")
    findings = project_findings(
        {"core/coordinator.py": assigned}, HandlerCoverageRule())
    assert len(findings) == 1
    assert "'poll-state'" in findings[0].message


def test_dead_message_dataclass_fires_across_modules():
    messages = ("from dataclasses import dataclass\n"
                "@dataclass(frozen=True, slots=True)\n"
                "class Orphan:\n"
                "    src: str\n")
    other = "x = 1\n"
    findings = project_findings(
        {"core/messages.py": messages, "core/replica.py": other},
        HandlerCoverageRule())
    assert len(findings) == 1
    assert "'Orphan' is defined but no other module references" \
        in findings[0].message


def test_referenced_message_dataclass_is_clean():
    messages = ("from dataclasses import dataclass\n"
                "@dataclass(frozen=True, slots=True)\n"
                "class Ping:\n"
                "    src: str\n")
    user = ("from repro.core.messages import Ping\n"
            "def make():\n"
            "    return Ping(src='n00')\n")
    findings = project_findings(
        {"core/messages.py": messages, "core/replica.py": user},
        HandlerCoverageRule())
    assert findings == []


def test_single_module_skips_dead_message_check():
    # lint_source hands project rules a singleton module set; "no other
    # module references it" is meaningless there and must not fire
    src = ("from dataclasses import dataclass\n"
           "@dataclass(frozen=True, slots=True)\n"
           "class Ping:\n"
           "    src: str\n")
    assert rule_ids(src, "core/messages.py",
                    rules=[HandlerCoverageRule()]) == []


def test_rule_scope_excludes_non_protocol_modules():
    rule = HandlerCoverageRule()
    assert rule.applies_to("core/coordinator.py")
    assert rule.applies_to("shard/store.py")
    assert not rule.applies_to("analysis/tables.py")
    assert not rule.applies_to("sim/rpc.py")
