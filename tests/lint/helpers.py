"""Shared helpers for the lint test suite."""

from __future__ import annotations

import ast
from typing import Optional, Sequence

from repro.lint import DEFAULT_RULES, LintReport, lint_source
from repro.lint.engine import ParsedModule, ProjectRule, Rule


def run_lint(source: str, relpath: str = "core/sample.py",
             rules: Optional[Sequence[Rule]] = None) -> LintReport:
    """Lint one source string as if it lived at *relpath*."""
    return lint_source(source, relpath,
                       DEFAULT_RULES if rules is None else rules)


def rule_ids(source: str, relpath: str = "core/sample.py",
             rules: Optional[Sequence[Rule]] = None) -> list[str]:
    """The rule ids of the surviving findings, in report order."""
    return [f.rule for f in run_lint(source, relpath, rules).findings]


def project_findings(files: dict, rule: ProjectRule) -> list:
    """Run one project rule over a {relpath: source} module set.

    Bypasses pragma handling on purpose: these are rule-behavior tests;
    pragma interaction is covered by the engine and CLI tests.
    """
    modules = tuple(
        ParsedModule(relpath, ast.parse(source), source)
        for relpath, source in files.items()
        if rule.applies_to(relpath))
    return list(rule.check_project(modules))
