"""Tests for the CTMC solver."""

from fractions import Fraction

import pytest

from repro.availability.markov import MarkovChain, birth_death_steady_state


class TestMarkovChain:
    def test_two_state_machine(self):
        # classic up/down machine: pi_up = mu/(lam+mu)
        chain = MarkovChain()
        chain.add("up", "down", 1)
        chain.add("down", "up", 19)
        pi = chain.steady_state()
        assert pi["up"] == pytest.approx(0.95)
        assert pi["down"] == pytest.approx(0.05)

    def test_exact_two_state(self):
        chain = MarkovChain()
        chain.add("up", "down", 1)
        chain.add("down", "up", 19)
        pi = chain.steady_state(exact=True)
        assert pi["up"] == Fraction(19, 20)
        assert pi["down"] == Fraction(1, 20)

    def test_probabilities_sum_to_one(self):
        chain = MarkovChain()
        for i in range(5):
            chain.add(i, (i + 1) % 5, i + 1)
        pi = chain.steady_state()
        assert sum(pi.values()) == pytest.approx(1.0)
        pi_exact = chain.steady_state(exact=True)
        assert sum(pi_exact.values()) == 1

    def test_matches_birth_death_closed_form(self):
        # M/M/1/K-style chain, K=4
        births = [3, 3, 3, 3]
        deaths = [5, 5, 5, 5]
        closed = birth_death_steady_state(births, deaths)
        chain = MarkovChain()
        for k in range(4):
            chain.add(k, k + 1, births[k])
            chain.add(k + 1, k, deaths[k])
        pi = chain.steady_state(exact=True)
        for k in range(5):
            assert pi[k] == closed[k]

    def test_accumulating_parallel_edges(self):
        chain = MarkovChain()
        chain.add("a", "b", 1)
        chain.add("a", "b", 2)
        assert chain.rate("a", "b") == 3

    def test_zero_rate_ignored(self):
        chain = MarkovChain()
        chain.add("a", "b", 1)
        chain.add("b", "a", 1)
        chain.add("a", "b", 0)
        assert chain.rate("a", "b") == 1

    def test_self_loop_rejected(self):
        chain = MarkovChain()
        with pytest.raises(ValueError):
            chain.add("a", "a", 1)

    def test_negative_rate_rejected(self):
        chain = MarkovChain()
        with pytest.raises(ValueError):
            chain.add("a", "b", -1)

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            MarkovChain().steady_state()

    def test_reducible_chain_rejected_in_exact_mode(self):
        chain = MarkovChain()
        chain.add("a", "b", 1)
        chain.add("b", "a", 1)
        chain.add("c", "d", 1)
        chain.add("d", "c", 1)
        with pytest.raises(ValueError):
            chain.steady_state(exact=True)

    def test_probability_predicate(self):
        chain = MarkovChain()
        chain.add("up", "down", 1)
        chain.add("down", "up", 19)
        unavail = chain.probability(lambda s: s == "down", exact=True)
        assert unavail == Fraction(1, 20)

    def test_float_rate_accepted(self):
        chain = MarkovChain()
        chain.add("a", "b", 0.5)
        chain.add("b", "a", 1.5)
        pi = chain.steady_state()
        assert pi["a"] == pytest.approx(0.75)

    def test_exact_matches_float_on_moderate_chain(self):
        chain = MarkovChain()
        for i in range(8):
            chain.add(i, (i + 1) % 8, 2)
            chain.add((i + 1) % 8, i, 3)
        exact = chain.steady_state(exact=True)
        approx = chain.steady_state(exact=False)
        for state in chain.states:
            assert approx[state] == pytest.approx(float(exact[state]))


class TestBirthDeath:
    def test_uniform_rates(self):
        pi = birth_death_steady_state([1, 1], [1, 1])
        assert pi == [Fraction(1, 3)] * 3

    def test_detailed_balance_holds(self):
        births = [2, 5, 1]
        deaths = [3, 4, 7]
        pi = birth_death_steady_state(births, deaths)
        for k in range(3):
            assert pi[k] * births[k] == pi[k + 1] * deaths[k]

    def test_mismatched_lists_rejected(self):
        with pytest.raises(ValueError):
            birth_death_steady_state([1, 2], [1])

    def test_zero_death_rate_rejected(self):
        with pytest.raises(ValueError):
            birth_death_steady_state([1], [0])
