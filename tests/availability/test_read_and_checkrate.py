"""Read availability (E11) and epoch-check-rate sensitivity (E13)."""

import pytest

from repro.availability.chains.dynamic_grid import (
    dynamic_grid_read_unavailability,
    dynamic_grid_unavailability,
)
from repro.availability.montecarlo import simulate_dynamic_availability
from repro.coteries.grid import GridCoterie


class TestReadChain:
    def test_reads_more_available_than_writes(self):
        for n in (6, 9, 12):
            write = float(dynamic_grid_unavailability(n))
            read = float(dynamic_grid_read_unavailability(n))
            assert 0 < read < write

    def test_terminal_grid_read_fraction(self):
        # the stuck 3-epoch (2x2, b=1): of the three 2-subsets, {1,2} and
        # {2,3} contain read quorums, {1,3} does not -> reads survive 2/3
        # of the x=2 stuck states, and none of the x<=1 ones.
        n = 9
        write = dynamic_grid_unavailability(n)   # exact Fractions
        read = dynamic_grid_read_unavailability(n)
        assert read < write
        # the x=2 states dominate the stuck mass at high p, so the ratio
        # sits near 1 - 2/3 = 1/3
        assert 0.3 < float(read / write) < 0.45

    def test_exact_fraction_arithmetic(self):
        from fractions import Fraction
        value = dynamic_grid_read_unavailability(6, 1, 19)
        assert isinstance(value, Fraction)

    def test_float_mode(self):
        value = dynamic_grid_read_unavailability(6, 1, 19, exact=False)
        assert isinstance(value, float)


class TestReadMonteCarlo:
    def test_exact_dynamics_show_no_read_write_gap(self):
        # A genuinely interesting reproduction finding: under the
        # pseudo-code's physical-column rule, the single failures that
        # wedge writes (singleton columns; the {1,3} terminal subset) also
        # wedge reads, so exact-mode read and write unavailability
        # coincide.  The chain's read advantage is an artefact of the
        # full-cover idealisation.
        lam, mu = 1.0, 4.0
        write = simulate_dynamic_availability(9, lam, mu, 15000, seed=3,
                                              kind="write")
        read = simulate_dynamic_availability(9, lam, mu, 15000, seed=3,
                                             kind="read")
        assert read.unavailability == pytest.approx(write.unavailability,
                                                    rel=1e-9)

    def test_full_cover_rule_restores_the_gap(self):
        lam, mu = 1.0, 3.0
        rule = lambda nodes: GridCoterie(nodes, column_cover="full")
        write = simulate_dynamic_availability(9, lam, mu, 15000, seed=4,
                                              rule=rule, kind="write")
        read = simulate_dynamic_availability(9, lam, mu, 15000, seed=4,
                                             rule=rule, kind="read")
        assert read.unavailability < write.unavailability


class TestCheckRate:
    def test_instant_checks_match_legacy_behaviour(self):
        lam, mu = 1.0, 4.0
        instant = simulate_dynamic_availability(6, lam, mu, 20000, seed=5)
        assert instant.n_epoch_changes > 0

    def test_frequent_checks_approach_instantaneous(self):
        # A period of half the cluster failure inter-arrival (1/(N*lam))
        # already lands within a small factor of the instantaneous-check
        # idealisation, and far below the static protocol (~0.134 here).
        lam, mu = 1.0, 4.0
        instant = simulate_dynamic_availability(9, lam, mu, 15000, seed=6)
        fast = simulate_dynamic_availability(9, lam, mu, 15000, seed=6,
                                             check_interval=0.05)
        assert instant.unavailability < fast.unavailability
        assert fast.unavailability < 3 * instant.unavailability

    def test_rare_checks_degrade_toward_static(self):
        lam, mu = 1.0, 4.0
        from repro.availability.formulas import grid_write_availability
        from repro.coteries.grid import define_grid
        shape = define_grid(9)
        static = 1 - grid_write_availability(shape.m, shape.n,
                                             mu / (lam + mu), b=shape.b)
        fast = simulate_dynamic_availability(9, lam, mu, 20000, seed=7,
                                             check_interval=0.05)
        slow = simulate_dynamic_availability(9, lam, mu, 20000, seed=7,
                                             check_interval=20.0)
        assert fast.unavailability < slow.unavailability
        # with checks far rarer than failures the protocol is effectively
        # static (epoch frozen most of the time)
        assert slow.unavailability == pytest.approx(static, rel=0.25)

    def test_monotone_in_check_interval(self):
        lam, mu = 1.0, 4.0
        values = [simulate_dynamic_availability(
            9, lam, mu, 15000, seed=8,
            check_interval=interval).unavailability
            for interval in (0.05, 1.0, 20.0)]
        assert values[0] < values[2]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            simulate_dynamic_availability(4, 1, 1, 10, check_interval=0)
        with pytest.raises(ValueError):
            simulate_dynamic_availability(4, 1, 1, 10, idealized=True,
                                          check_interval=1.0)
        with pytest.raises(ValueError):
            simulate_dynamic_availability(4, 1, 1, 10, kind="scan")
