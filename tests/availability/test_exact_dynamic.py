"""The exact (epoch, up-set) chain: noise-free ground truth for E6."""

import pytest

from repro.availability.chains.dynamic_grid import dynamic_grid_unavailability
from repro.availability.exact_dynamic import (
    ExactDynamicChain,
    exact_dynamic_unavailability,
)
from repro.availability.formulas import grid_write_availability
from repro.availability.montecarlo import simulate_dynamic_availability
from repro.coteries.grid import GridCoterie, define_grid
from repro.coteries.majority import MajorityCoterie

LAM, MU = 1.0, 4.0  # p = 0.8


class TestConstruction:
    def test_single_node(self):
        chain = ExactDynamicChain(1, 1, 19)
        # (up, up) and (up-epoch, down): exactly two states
        assert chain.n_states == 2
        assert chain.unavailability() == pytest.approx(0.05)

    def test_probabilities_sum_to_one(self):
        chain = ExactDynamicChain(5, LAM, MU)
        pi = chain.steady_state()
        assert sum(pi.values()) == pytest.approx(1.0)

    def test_state_cap_enforced(self):
        with pytest.raises(ValueError):
            ExactDynamicChain(9, LAM, MU, max_states=100)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            ExactDynamicChain(0, 1, 1)
        with pytest.raises(ValueError):
            ExactDynamicChain(3, 0, 1)
        with pytest.raises(ValueError):
            ExactDynamicChain(3, 1, 1).unavailability(kind="scan")


class TestAgainstMonteCarlo:
    def test_matches_exact_simulation_n6(self):
        exact = exact_dynamic_unavailability(6, LAM, MU)
        mc = simulate_dynamic_availability(6, LAM, MU, 120000, seed=5)
        assert mc.unavailability == pytest.approx(exact, rel=0.05)

    def test_matches_exact_simulation_majority_rule(self):
        exact = exact_dynamic_unavailability(5, LAM, MU,
                                             rule=MajorityCoterie)
        mc = simulate_dynamic_availability(5, LAM, MU, 120000, seed=6,
                                           rule=MajorityCoterie)
        assert mc.unavailability == pytest.approx(exact, rel=0.1,
                                                  abs=5e-4)

    def test_read_kind_matches_simulation(self):
        exact = exact_dynamic_unavailability(6, LAM, MU, kind="read")
        mc = simulate_dynamic_availability(6, LAM, MU, 120000, seed=7,
                                           kind="read")
        assert mc.unavailability == pytest.approx(exact, rel=0.06)


class TestIdealisationGapExactly:
    def test_small_n_exact_beats_idealised_chain(self):
        # With the physical-column rule, epochs shrink below three (the
        # 3-node grid has 2-member write quorums), so at N = 4..5 the real
        # protocol is MORE available than the Figure 3 chain predicts.
        for n in (4, 5):
            exact = exact_dynamic_unavailability(n, LAM, MU)
            ideal = float(dynamic_grid_unavailability(n, LAM, MU))
            assert exact < ideal, n

    def test_moderate_n_exact_worse_than_idealised_chain(self):
        # From N = 6 the singleton-column fragility and quorum-based
        # stuck recovery dominate: the chain is optimistic.
        for n in (6, 7):
            exact = exact_dynamic_unavailability(n, LAM, MU)
            ideal = float(dynamic_grid_unavailability(n, LAM, MU))
            assert exact > ideal, n

    def test_exact_still_beats_static(self):
        for n in (5, 6, 7):
            shape = define_grid(n)
            static = 1 - grid_write_availability(
                shape.m, shape.n, MU / (LAM + MU), b=shape.b)
            exact = exact_dynamic_unavailability(n, LAM, MU)
            assert exact < static, n

    def test_full_cover_rule_closer_to_chain_at_small_n(self):
        # the chain's terminal-trio assumption comes from the full rule
        full_rule = lambda nodes: GridCoterie(nodes, column_cover="full")
        exact_full = exact_dynamic_unavailability(4, LAM, MU,
                                                  rule=full_rule)
        ideal = float(dynamic_grid_unavailability(4, LAM, MU))
        assert exact_full == pytest.approx(ideal, rel=0.01)


class TestEpochSizeDistribution:
    def test_distribution_sums_to_one(self):
        chain = ExactDynamicChain(6, LAM, MU)
        sizes = chain.epoch_size_distribution()
        assert sum(sizes.values()) == pytest.approx(1.0)

    def test_mass_concentrates_at_full_epoch_for_high_p(self):
        chain = ExactDynamicChain(6, 1.0, 19.0)
        sizes = chain.epoch_size_distribution()
        assert sizes[6] > 0.7

    def test_low_p_pushes_mass_to_small_epochs(self):
        high_p = ExactDynamicChain(6, 1.0, 19.0).epoch_size_distribution()
        low_p = ExactDynamicChain(6, 1.0, 2.0).epoch_size_distribution()
        small = lambda dist: sum(v for k, v in dist.items() if k <= 3)
        assert small(low_p) > small(high_p)
