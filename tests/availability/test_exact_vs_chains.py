"""Cross-validation: the exact (epoch, up-set) chain against the analytic
epoch chains, for rules where both exist."""

import pytest

from repro.availability.chains.dynamic_grid import build_epoch_chain
from repro.availability.chains.dynamic_voting import (
    dynamic_voting_unavailability,
)
from repro.availability.exact_dynamic import (
    ExactDynamicChain,
    exact_dynamic_unavailability,
)
from repro.coteries.majority import MajorityCoterie
from repro.coteries.wall import WallCoterie, wall_rule

LAM, MU = 1.0, 4.0


class TestMajorityRule:
    def test_idealised_chain_is_exact_for_majorities(self):
        # For the majority rule the Figure-3-style idealisation is not an
        # idealisation at all: "one failure tolerated iff y >= 3" and
        # "a stuck pair recovers when both members are up" are *exactly*
        # the majority quorum conditions.  The full (epoch, up-set) chain
        # agrees with the min_epoch = 2 epoch chain to machine precision.
        exact = exact_dynamic_unavailability(5, LAM, MU,
                                             rule=MajorityCoterie)
        idealised = float(dynamic_voting_unavailability(5, LAM, MU))
        assert exact == pytest.approx(idealised, rel=1e-9)

    def test_majority_epochs_never_reach_one(self):
        # the 2 -> 1 shrink needs a majority of 2 (= both) among one
        # survivor, and a stuck pair re-forms only with both members up:
        # size-1 epochs are unreachable for plain majorities
        chain = ExactDynamicChain(5, LAM, MU, rule=MajorityCoterie)
        sizes = chain.epoch_size_distribution()
        assert 1 not in sizes
        assert min(sizes) == 2

    def test_grid_is_where_the_idealisation_actually_bites(self):
        # contrast: for the grid the same comparison shows a real gap
        # (structured quorums are what the chain idealises away)
        exact = exact_dynamic_unavailability(6, LAM, MU)
        idealised = build_epoch_chain(6, LAM, MU, 3).probability(
            lambda s: s[0] == "U", exact=False)
        assert exact != pytest.approx(idealised, rel=0.05)


class TestWallRule:
    def test_exact_wall_chain_solves(self):
        chain = ExactDynamicChain(6, LAM, MU, rule=wall_rule())
        value = chain.unavailability()
        assert 0 < value < 1

    def test_wall_reads_more_available_than_writes(self):
        chain = ExactDynamicChain(6, LAM, MU, rule=wall_rule())
        pi = chain.steady_state()
        writes = chain.unavailability(kind="write", pi=pi)
        reads = chain.unavailability(kind="read", pi=pi)
        assert reads <= writes + 1e-12

    def test_wall_matches_monte_carlo(self):
        from repro.availability.montecarlo import (
            simulate_dynamic_availability,
        )
        exact = exact_dynamic_unavailability(6, LAM, MU, rule=wall_rule())
        mc = simulate_dynamic_availability(6, LAM, MU, 60000, seed=8,
                                           rule=wall_rule())
        assert mc.unavailability == pytest.approx(exact, rel=0.1)
