"""Monte Carlo availability: validation against closed forms and chains,
and the E6 idealisation-gap experiment."""

import pytest

from repro.availability.chains.dynamic_grid import dynamic_grid_unavailability
from repro.availability.formulas import (
    grid_write_availability,
    majority_availability,
)
from repro.availability.montecarlo import (
    simulate_dynamic_availability,
    simulate_static_availability,
)
from repro.coteries.grid import GridCoterie, define_grid
from repro.coteries.majority import MajorityCoterie


class TestStaticMonteCarlo:
    def test_matches_grid_closed_form(self):
        # p = 2/3 so unavailability is large enough to resolve quickly
        lam, mu = 1.0, 2.0
        p = mu / (lam + mu)
        shape = define_grid(9)
        expected = grid_write_availability(shape.m, shape.n, p, b=shape.b)
        estimate = simulate_static_availability(9, lam, mu, horizon=40000.0,
                                                seed=3)
        assert estimate.availability == pytest.approx(expected, abs=0.01)

    def test_matches_majority_closed_form(self):
        lam, mu = 1.0, 3.0
        p = mu / (lam + mu)
        expected = majority_availability(5, p)
        estimate = simulate_static_availability(
            5, lam, mu, horizon=40000.0, seed=7, rule=MajorityCoterie)
        assert estimate.availability == pytest.approx(expected, abs=0.01)

    def test_read_kind(self):
        lam, mu = 1.0, 1.0
        shape = define_grid(6)
        from repro.availability.formulas import grid_read_availability
        expected = grid_read_availability(shape.m, shape.n, 0.5, b=shape.b)
        estimate = simulate_static_availability(6, lam, mu, horizon=30000.0,
                                                seed=11, kind="read")
        assert estimate.availability == pytest.approx(expected, abs=0.01)

    def test_deterministic_given_seed(self):
        a = simulate_static_availability(5, 1.0, 2.0, horizon=500.0, seed=42)
        b = simulate_static_availability(5, 1.0, 2.0, horizon=500.0, seed=42)
        assert a.availability == b.availability
        assert a.n_events == b.n_events

    def test_perfectly_reliable_nodes(self):
        estimate = simulate_static_availability(5, 0.0, 1.0, horizon=100.0)
        assert estimate.availability == 1.0
        assert estimate.n_events == 0


class TestDynamicMonteCarlo:
    def test_idealized_mode_converges_to_chain(self):
        lam, mu = 1.0, 4.0  # p = 0.8: chain unavailability is resolvable
        expected = float(dynamic_grid_unavailability(6, lam, mu))
        estimate = simulate_dynamic_availability(
            6, lam, mu, horizon=150000.0, seed=5, idealized=True)
        assert estimate.unavailability == pytest.approx(expected, rel=0.15)

    def test_exact_mode_shows_idealisation_gap(self):
        # E6: the paper's chain assumes any epoch >= 4 tolerates a single
        # failure, but the N=5 grid (2x3, b=1) dies when its
        # singleton-column member fails, and stuck epochs recover by a real
        # quorum condition.  The exact dynamics are therefore *less*
        # available than the chain predicts -- same order of magnitude, but
        # measurably worse at p = 0.8.
        lam, mu = 1.0, 4.0
        chain = float(dynamic_grid_unavailability(6, lam, mu))
        estimate = simulate_dynamic_availability(6, lam, mu,
                                                 horizon=150000.0, seed=5)
        assert estimate.unavailability > chain          # idealisation optimistic
        assert estimate.unavailability < chain * 4      # but same ballpark

    def test_exact_mode_beats_static_by_a_lot(self):
        lam, mu = 1.0, 4.0
        p = mu / (lam + mu)
        shape = define_grid(9)
        static_unavail = 1 - grid_write_availability(shape.m, shape.n, p,
                                                     b=shape.b)
        estimate = simulate_dynamic_availability(9, lam, mu,
                                                 horizon=60000.0, seed=2)
        assert estimate.unavailability < static_unavail / 5

    def test_epoch_changes_happen(self):
        estimate = simulate_dynamic_availability(9, 1.0, 4.0,
                                                 horizon=2000.0, seed=1)
        assert estimate.n_epoch_changes > 0

    def test_deterministic_given_seed(self):
        a = simulate_dynamic_availability(6, 1.0, 2.0, horizon=500.0, seed=9)
        b = simulate_dynamic_availability(6, 1.0, 2.0, horizon=500.0, seed=9)
        assert a.unavailability == b.unavailability

    def test_full_cover_rule_is_less_available(self):
        # Without Neuman's optimisation, short columns can't serve as the
        # full column, so epoch checks fail more often.
        lam, mu = 1.0, 2.0
        physical = simulate_dynamic_availability(
            7, lam, mu, horizon=40000.0, seed=3,
            rule=lambda nodes: GridCoterie(nodes, column_cover="physical"))
        full = simulate_dynamic_availability(
            7, lam, mu, horizon=40000.0, seed=3,
            rule=lambda nodes: GridCoterie(nodes, column_cover="full"))
        assert full.unavailability > physical.unavailability

    def test_str_summary(self):
        estimate = simulate_dynamic_availability(5, 1.0, 2.0, horizon=100.0)
        assert "availability=" in str(estimate)
