"""Cross-validation of the Markov solvers against scipy and each other."""

from fractions import Fraction

import numpy as np
import pytest
import scipy.linalg

from repro.availability.chains.dynamic_grid import build_epoch_chain
from repro.availability.markov import MarkovChain


def scipy_steady_state(chain: MarkovChain) -> dict:
    """Independent solve: null space of Q^T via scipy."""
    states = chain.states
    index = {s: i for i, s in enumerate(states)}
    n = len(states)
    q = np.zeros((n, n))
    for (src, dst), rate in chain.transitions().items():
        q[index[src], index[dst]] += float(rate)
        q[index[src], index[src]] -= float(rate)
    null = scipy.linalg.null_space(q.T)
    assert null.shape[1] == 1, "chain must be irreducible"
    pi = null[:, 0]
    pi = pi / pi.sum()
    return {state: float(p) for state, p in zip(states, pi)}


class TestCrossChecks:
    @pytest.mark.parametrize("n,min_epoch", [(6, 3), (9, 3), (9, 2)])
    def test_float_solver_matches_scipy_null_space(self, n, min_epoch):
        chain = build_epoch_chain(n, 1, 19, min_epoch)
        ours = chain.steady_state(exact=False)
        scipys = scipy_steady_state(chain)
        for state in chain.states:
            assert ours[state] == pytest.approx(scipys[state],
                                                rel=1e-6, abs=1e-12)

    @pytest.mark.parametrize("n", [4, 6, 9])
    def test_exact_solver_matches_float_on_large_components(self, n):
        chain = build_epoch_chain(n, 1, 19, 3)
        exact = chain.steady_state(exact=True)
        approx = chain.steady_state(exact=False)
        for state, probability in exact.items():
            if probability > 1e-10:
                assert approx[state] == pytest.approx(float(probability),
                                                      rel=1e-6)

    def test_exact_solver_resolves_tiny_components(self):
        # The point of rational arithmetic: components near 1e-14 keep
        # full relative precision (floats solve them too here, but with
        # no a-priori guarantee).
        chain = build_epoch_chain(15, 1, 19, 3)
        exact = chain.steady_state(exact=True)
        tiny = sum(p for s, p in exact.items() if s[0] == "U")
        assert isinstance(tiny, Fraction)
        assert Fraction(1, 10 ** 15) < tiny < Fraction(1, 10 ** 13)

    def test_random_chain_against_scipy(self):
        import random
        rng = random.Random(7)
        chain = MarkovChain()
        n = 12
        # a random strongly-connected chain: a cycle plus random chords
        for i in range(n):
            chain.add(i, (i + 1) % n, rng.randint(1, 9))
        for _ in range(20):
            a, b = rng.randrange(n), rng.randrange(n)
            if a != b:
                chain.add(a, b, rng.randint(1, 9))
        ours = chain.steady_state()
        scipys = scipy_steady_state(chain)
        for state in chain.states:
            assert ours[state] == pytest.approx(scipys[state], rel=1e-8)
