"""The vector MC engine: differential equivalence and statistical checks.

The strongest check feeds the *scalar* estimators' exact event stream
(same RNG, same node choices, same times) through the vector scoring
pipeline: availability, event counts, epoch changes, and stuck periods
must all match the scalar state machine, for every protocol variant
(static, dynamic-instantaneous, dynamic-periodic) and both kinds.
Trajectory generation is then validated statistically: independently
seeded vector and scalar runs must produce confidence intervals that
overlap (the acceptance criterion for ``--engine vector``).
"""

from __future__ import annotations

import math

import pytest

np = pytest.importorskip("numpy")

from repro.availability.montecarlo import (
    _site_model_events,
    simulate_dynamic_availability,
    simulate_static_availability,
)
from repro.availability.parallel import simulate_availability_parallel
from repro.availability.vectorized import (
    _run_dynamic,
    _run_static,
    _trajectory_chunks,
    simulate_dynamic_availability_vector,
    simulate_static_availability_vector,
)
from repro.coteries import GridCoterie, MajorityCoterie, TreeCoterie
from repro.sim.seeding import derive_generator, derive_rng

RULES = [(GridCoterie, 9), (GridCoterie, 25), (MajorityCoterie, 9),
         (TreeCoterie, 15)]


def _nodes(n):
    return [f"n{i:03d}" for i in range(n)]


def _scalar_chunks(n, lam, mu, horizon, seed, chunk=97):
    """The scalar engines' exact event stream, re-batched into arrays."""
    rng = derive_rng(seed)
    times, nodes = [], []
    for now, index, _now_up in _site_model_events(n, lam, mu, horizon, rng):
        times.append(now)
        nodes.append(index)
        if len(times) == chunk:
            yield np.array(times), np.array(nodes, dtype=np.int64)
            times, nodes = [], []
    if times:
        yield np.array(times), np.array(nodes, dtype=np.int64)


def _assert_same(scalar, vector):
    assert vector.availability == pytest.approx(scalar.availability,
                                                abs=1e-12)
    assert vector.n_events == scalar.n_events
    assert vector.n_epoch_changes == scalar.n_epoch_changes
    assert vector.n_stuck_periods == scalar.n_stuck_periods


class TestDifferentialOnScalarEvents:
    @pytest.mark.parametrize("rule,n", RULES)
    @pytest.mark.parametrize("kind", ["read", "write"])
    def test_static_scoring_matches(self, rule, n, kind):
        scalar = simulate_static_availability(
            n, 1.0, 4.0, 400.0, seed=3, rule=rule, kind=kind)
        vector = _run_static(_nodes(n), rule, kind, 400.0,
                             _scalar_chunks(n, 1.0, 4.0, 400.0, 3))
        assert vector.availability == pytest.approx(scalar.availability,
                                                    abs=1e-12)
        assert vector.n_events == scalar.n_events

    @pytest.mark.parametrize("rule,n", RULES)
    @pytest.mark.parametrize("kind", ["read", "write"])
    def test_dynamic_instantaneous_scoring_matches(self, rule, n, kind):
        scalar = simulate_dynamic_availability(
            n, 1.0, 4.0, 400.0, seed=3, rule=rule, kind=kind)
        vector = _run_dynamic(_nodes(n), rule, kind, 400.0, None,
                              _scalar_chunks(n, 1.0, 4.0, 400.0, 3))
        _assert_same(scalar, vector)

    @pytest.mark.parametrize("rule,n", [(GridCoterie, 9), (TreeCoterie, 15)])
    @pytest.mark.parametrize("kind", ["read", "write"])
    @pytest.mark.parametrize("check_interval", [0.25, 3.0])
    def test_dynamic_periodic_scoring_matches(self, rule, n, kind,
                                              check_interval):
        scalar = simulate_dynamic_availability(
            n, 1.0, 4.0, 400.0, seed=3, rule=rule, kind=kind,
            check_interval=check_interval)
        vector = _run_dynamic(_nodes(n), rule, kind, 400.0, check_interval,
                              _scalar_chunks(n, 1.0, 4.0, 400.0, 3))
        _assert_same(scalar, vector)

    def test_chunk_boundaries_do_not_matter(self):
        runs = [_run_dynamic(_nodes(9), GridCoterie, "write", 300.0, 1.0,
                             _scalar_chunks(9, 1.0, 4.0, 300.0, 5,
                                            chunk=chunk))
                for chunk in (1, 7, 1000, 10 ** 6)]
        # availabilities may differ by summation order only (ulps)
        assert max(r.availability for r in runs) - \
            min(r.availability for r in runs) < 1e-12
        assert len({r.n_epoch_changes for r in runs}) == 1
        assert len({r.n_stuck_periods for r in runs}) == 1
        assert len({r.n_events for r in runs}) == 1


class TestTrajectoryGeneration:
    def test_chunks_are_sorted_and_complete(self):
        gen = derive_generator(4, "availability.vector")
        last = 0.0
        total = 0
        flips = np.zeros(5, dtype=int)
        for times, nodes in _trajectory_chunks(5, 1.0, 4.0, 200.0, gen,
                                               block=32):
            assert np.all(np.diff(times) >= 0)
            assert times[0] >= last
            assert times[-1] < 200.0
            assert nodes.min() >= 0 and nodes.max() < 5
            last = times[-1]
            total += times.shape[0]
            flips += np.bincount(nodes, minlength=5)
        # expected events per node over t=200 at lam=1, mu=4:
        # up fraction 0.8 -> flip rate 0.8*1 + 0.2*4 = 1.6 per unit time
        assert total == flips.sum()
        assert flips.min() > 200  # ~320 expected per node

    def test_same_seed_is_bit_identical(self):
        a = simulate_static_availability_vector(9, 1.0, 4.0, 1000.0, seed=8)
        b = simulate_static_availability_vector(9, 1.0, 4.0, 1000.0, seed=8)
        assert a == b
        c = simulate_dynamic_availability_vector(9, 1.0, 4.0, 1000.0, seed=8)
        d = simulate_dynamic_availability_vector(9, 1.0, 4.0, 1000.0, seed=8)
        assert c == d

    def test_block_size_does_not_change_statistics_grossly(self):
        # different block sizes consume the Generator differently, so
        # runs differ pathwise but must agree statistically
        runs = [simulate_static_availability_vector(
            9, 1.0, 4.0, 3000.0, seed=s, block=b).availability
            for s, b in ((1, 64), (2, 256), (3, 1024))]
        assert max(runs) - min(runs) < 0.05


class TestConfidenceIntervalOverlap:
    @pytest.mark.parametrize("protocol", ["static", "dynamic"])
    @pytest.mark.parametrize("rule,n", [(GridCoterie, 9),
                                        (MajorityCoterie, 9)])
    def test_vector_and_scalar_cis_overlap(self, protocol, rule, n):
        def shard_mean_ci(engine_runner):
            vals = [engine_runner(seed).availability for seed in range(8)]
            mean = float(np.mean(vals))
            sem = float(np.std(vals, ddof=1)) / math.sqrt(len(vals))
            return mean, 2.576 * sem

        if protocol == "static":
            scalar = shard_mean_ci(
                lambda s: simulate_static_availability(
                    n, 1.0, 4.0, 800.0, seed=s, rule=rule))
            vector = shard_mean_ci(
                lambda s: simulate_static_availability_vector(
                    n, 1.0, 4.0, 800.0, seed=s, rule=rule))
        else:
            scalar = shard_mean_ci(
                lambda s: simulate_dynamic_availability(
                    n, 1.0, 4.0, 800.0, seed=s, rule=rule))
            vector = shard_mean_ci(
                lambda s: simulate_dynamic_availability_vector(
                    n, 1.0, 4.0, 800.0, seed=s, rule=rule))
        gap = abs(scalar[0] - vector[0])
        assert gap <= scalar[1] + vector[1], (scalar, vector)


class TestWiring:
    def test_parallel_dispatches_vector_engine(self):
        serial = simulate_availability_parallel(
            9, 1.0, 4.0, 600.0, seed=5, workers=1, protocol="static",
            engine="vector")
        direct = simulate_static_availability_vector(9, 1.0, 4.0, 600.0,
                                                     seed=5)
        assert serial == direct

    def test_parallel_vector_dynamic_with_checks(self):
        merged = simulate_availability_parallel(
            9, 1.0, 4.0, 600.0, seed=5, workers=2, protocol="dynamic",
            engine="vector", check_interval=1.0)
        assert 0.0 < merged.availability < 1.0
        assert merged.n_epoch_changes > 0

    def test_cli_accepts_vector_engine(self, capsys):
        from repro.cli import main

        assert main(["simulate", "--n", "9", "--horizon", "300",
                     "--engine", "vector"]) == 0
        out = capsys.readouterr().out
        assert "engine = vector" in out
        assert "availability=" in out

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            simulate_dynamic_availability_vector(9, 1.0, 4.0, 100.0,
                                                 idealized=True)
        with pytest.raises(ValueError):
            simulate_dynamic_availability_vector(9, 1.0, 4.0, 100.0,
                                                 check_interval=0.0)
        with pytest.raises(ValueError):
            simulate_static_availability_vector(9, 0.0, 4.0, 100.0)
        with pytest.raises(ValueError):
            simulate_static_availability_vector(9, 1.0, 4.0, 100.0,
                                                kind="nope")
