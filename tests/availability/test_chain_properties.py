"""Property-based tests of the availability chains."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability.chains.dynamic_grid import (
    build_epoch_chain,
    dynamic_grid_unavailability,
)
from repro.availability.chains.dynamic_voting import (
    build_dynamic_linear_voting_chain,
)
from repro.availability.formulas import (
    grid_read_availability,
    grid_write_availability,
    majority_availability,
)


class TestChainProperties:
    @given(st.integers(min_value=3, max_value=14),
           st.integers(min_value=1, max_value=5),
           st.integers(min_value=2, max_value=40))
    @settings(max_examples=40, deadline=None)
    def test_probabilities_sum_to_one(self, n, lam, mu):
        chain = build_epoch_chain(n, lam, mu, min(n, 3))
        pi = chain.steady_state(exact=True)
        assert sum(pi.values()) == 1
        assert all(0 <= p <= 1 for p in pi.values())

    @given(st.integers(min_value=3, max_value=12),
           st.integers(min_value=2, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_unavailability_in_unit_interval(self, n, mu):
        value = dynamic_grid_unavailability(n, 1, mu)
        assert 0 < value < 1

    @given(st.integers(min_value=4, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_monotone_in_repair_rate(self, n):
        slow = dynamic_grid_unavailability(n, 1, 5)
        fast = dynamic_grid_unavailability(n, 1, 10)
        assert fast < slow

    @given(st.integers(min_value=2, max_value=10),
           st.integers(min_value=2, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_dlv_chain_sums_to_one(self, n, mu):
        chain = build_dynamic_linear_voting_chain(n, 1, mu)
        pi = chain.steady_state(exact=True)
        assert sum(pi.values()) == 1

    @given(st.integers(min_value=5, max_value=12),
           st.integers(min_value=4, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_dynamic_beats_static_grid_from_n5(self, n, mu):
        from repro.coteries.grid import define_grid
        p = mu / (1 + mu)
        shape = define_grid(n)
        static = 1 - grid_write_availability(shape.m, shape.n, p,
                                             b=shape.b)
        dynamic = float(dynamic_grid_unavailability(n, 1, mu))
        assert dynamic <= static + 1e-12

    def test_n4_anomaly_dynamic_loses_to_static(self):
        # A reproduction finding the paper's N >= 9 table never hits: at
        # N = 4 the dynamic protocol is WORSE than the static 2x2 grid.
        # The epoch's only possible shrink (4 -> 3) pins a *specific*
        # trio; once one of them fails, recovery needs exactly those three
        # up, whereas the static grid serves whenever ANY three nodes are
        # up.  At N = 3 the two coincide exactly (all three needed either
        # way); from N = 5 the epoch mechanism wins everywhere.
        for mu in (4, 19):
            p = mu / (1 + mu)
            static = 1 - grid_write_availability(2, 2, p)
            dynamic = float(dynamic_grid_unavailability(4, 1, mu))
            assert dynamic > static
        assert float(dynamic_grid_unavailability(3, 1, 19)) == \
            pytest.approx(1 - 0.95 ** 3)


class TestFormulaProperties:
    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=8),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_write_implies_read_availability(self, m, n, p):
        assert grid_write_availability(m, n, p) <= \
            grid_read_availability(m, n, p) + 1e-12

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=8),
           st.floats(min_value=0.0, max_value=0.98))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_p(self, m, n, p):
        lower = grid_write_availability(m, n, p)
        higher = grid_write_availability(m, n, min(1.0, p + 0.02))
        assert lower <= higher + 1e-12

    @given(st.integers(min_value=1, max_value=15),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_majority_bounds(self, n, p):
        value = majority_availability(n, p)
        assert -1e-12 <= value <= 1 + 1e-12

    @given(st.integers(min_value=1, max_value=6),
           st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=40, deadline=None)
    def test_more_rows_help_reads(self, n, p):
        # adding a row to every column can only make reads sturdier
        shorter = grid_read_availability(2, n, p)
        taller = grid_read_availability(3, n, p)
        assert shorter <= taller + 1e-12
