"""Cross-checks for exact weighted enumeration availability.

Three independent routes to the same number must agree:

* :func:`exact_static_availability` (batch-kernel enumeration) vs the
  set-predicate reference :func:`availability_by_enumeration` and the
  paper's closed forms -- to float precision;
* vs the Markov steady state -- both the closed-form rational
  birth-death chain (via :func:`steady_availability`) and a
  :class:`~repro.availability.markov.MarkovChain` solve of the up-count
  chain -- within 1e-9 (the acceptance tolerance);
* vs Monte Carlo -- the exact value must fall inside a 99% confidence
  interval built from independently seeded shards, for every pinned
  configuration of the golden regression suite.
"""

from __future__ import annotations

import math

import pytest

np = pytest.importorskip("numpy")

from repro.availability.exact import (
    availability_from_hit_counts,
    exact_availability_curve,
    exact_static_availability,
    quorum_hit_counts,
    steady_availability,
)
from repro.availability.formulas import (
    availability_by_enumeration,
    grid_write_availability,
    majority_availability,
    rowa_read_availability,
    rowa_write_availability,
)
from repro.availability.markov import MarkovChain
from repro.availability.montecarlo import simulate_static_availability
from repro.coteries import (
    GridCoterie,
    HierarchicalCoterie,
    MajorityCoterie,
    ReadOneWriteAllCoterie,
    TreeCoterie,
    WallCoterie,
)
from tests.availability.test_montecarlo_regression import (
    GOLDEN_STATIC,
    RULES,
)

RULE_CASES = [
    (GridCoterie, 9),
    (MajorityCoterie, 7),
    (TreeCoterie, 7),
    (WallCoterie, 6),
    (HierarchicalCoterie, 9),
    (ReadOneWriteAllCoterie, 5),
]


def _nodes(n):
    return [f"n{i:03d}" for i in range(n)]


class TestAgainstReferenceEnumeration:
    @pytest.mark.parametrize("rule,n", RULE_CASES)
    @pytest.mark.parametrize("kind", ["read", "write"])
    @pytest.mark.parametrize("p", [0.0, 0.25, 0.8, 0.97, 1.0])
    def test_matches_set_predicate_enumeration(self, rule, n, kind, p):
        coterie = rule(_nodes(n))
        exact = exact_static_availability(coterie, p, kind=kind)
        reference = availability_by_enumeration(coterie, p, kind=kind)
        assert exact == pytest.approx(reference, abs=1e-12)

    def test_matches_closed_forms(self):
        assert exact_static_availability(GridCoterie, 0.9, n_nodes=16) == \
            pytest.approx(grid_write_availability(4, 4, 0.9), abs=1e-12)
        assert exact_static_availability(MajorityCoterie, 0.85, n_nodes=9) \
            == pytest.approx(majority_availability(9, 0.85), abs=1e-12)
        rowa = ReadOneWriteAllCoterie(_nodes(6))
        assert exact_static_availability(rowa, 0.7, kind="read") == \
            pytest.approx(rowa_read_availability(6, 0.7), abs=1e-12)
        assert exact_static_availability(rowa, 0.7, kind="write") == \
            pytest.approx(rowa_write_availability(6, 0.7), abs=1e-12)

    def test_rowa_hit_counts_in_closed_form(self):
        n = 6
        rowa = ReadOneWriteAllCoterie(_nodes(n))
        writes = quorum_hit_counts(rowa, kind="write")
        reads = quorum_hit_counts(rowa, kind="read")
        assert writes.tolist() == [0] * n + [1]
        assert reads.tolist() == [0] + [math.comb(n, k)
                                        for k in range(1, n + 1)]


class TestAgainstMarkovSteadyState:
    @pytest.mark.parametrize("rule,n", RULE_CASES)
    @pytest.mark.parametrize("lam,mu", [(1.0, 4.0), (1.0, 19.0), (2.0, 3.0)])
    def test_birth_death_route_within_1e9(self, rule, n, lam, mu):
        coterie = rule(_nodes(n))
        p = mu / (lam + mu)
        exact = exact_static_availability(coterie, p)
        markov = steady_availability(coterie, lam, mu)
        assert abs(exact - markov) < 1e-9

    @pytest.mark.parametrize("rule,n", [(GridCoterie, 9),
                                        (MajorityCoterie, 7)])
    def test_general_chain_solver_route_within_1e9(self, rule, n):
        # an up-count MarkovChain solved by Gaussian elimination: a
        # third, structurally different route to the same availability
        lam, mu = 1.0, 4.0
        coterie = rule(_nodes(n))
        chain = MarkovChain()
        for k in range(n):
            chain.add(k, k + 1, (n - k) * mu)
            chain.add(k + 1, k, (k + 1) * lam)
        pi = chain.steady_state(exact=True)
        counts = quorum_hit_counts(coterie)
        markov = sum(float(pi[k]) * int(counts[k]) / math.comb(n, k)
                     for k in range(n + 1))
        exact = exact_static_availability(coterie, mu / (lam + mu))
        assert abs(exact - markov) < 1e-9


class TestAgainstMonteCarlo:
    @pytest.mark.parametrize(
        "n,lam,mu,horizon,seed,rule,kind,hex_avail,n_events", GOLDEN_STATIC)
    def test_exact_inside_mc_confidence_interval(self, n, lam, mu, horizon,
                                                 seed, rule, kind,
                                                 hex_avail, n_events):
        # the pinned golden estimate is one shard; widen with more
        # independent seeds and require the exact value inside 99% CI
        p = mu / (lam + mu)
        exact = exact_static_availability(RULES[rule], p, n_nodes=n,
                                          kind=kind)
        shards = [simulate_static_availability(
            n, lam, mu, horizon, seed=seed + i, rule=RULES[rule],
            kind=kind).availability for i in range(10)]
        mean = float(np.mean(shards))
        sem = float(np.std(shards, ddof=1)) / math.sqrt(len(shards))
        assert abs(exact - mean) < 2.576 * sem + 1e-12
        # and the pinned golden shard itself stays consistent
        assert shards[0] == float.fromhex(hex_avail)


class TestApi:
    def test_curve_is_monotone_and_anchored(self):
        ps = np.linspace(0.0, 1.0, 41)
        curve = exact_availability_curve(GridCoterie, ps, n_nodes=12)
        assert curve[0] == 0.0 and curve[-1] == 1.0
        assert np.all(np.diff(curve) >= -1e-12)

    def test_counts_reused_across_ps(self):
        counts = quorum_hit_counts(MajorityCoterie, n_nodes=9)
        a = availability_from_hit_counts(counts, 0.8)
        b = exact_static_availability(MajorityCoterie, 0.8, n_nodes=9)
        assert float(a) == pytest.approx(float(b), abs=1e-15)

    def test_refusals(self):
        with pytest.raises(ValueError):
            exact_static_availability(GridCoterie, 0.5, n_nodes=30)
        with pytest.raises(ValueError):
            quorum_hit_counts(GridCoterie, n_nodes=9, kind="nope")
        with pytest.raises(ValueError):
            exact_static_availability(GridCoterie, 1.5, n_nodes=4)
        with pytest.raises(ValueError):
            quorum_hit_counts(GridCoterie)
        with pytest.raises(ValueError):
            steady_availability(GridCoterie, 0.0, 1.0, n_nodes=4)
