"""The finite-check-rate chain (analytic counterpart of E13)."""

import pytest

from repro.availability.chains.dynamic_voting import (
    dynamic_voting_unavailability,
)
from repro.availability.chains.finite_checks import (
    build_finite_check_chain,
    finite_check_unavailability,
)
from repro.availability.formulas import majority_availability

LAM, MU = 1.0, 4.0
N = 9


class TestLimits:
    def test_zero_rate_equals_static_majority(self):
        static = 1 - majority_availability(N, MU / (LAM + MU))
        value = finite_check_unavailability(N, LAM, MU, 0)
        assert value == pytest.approx(static, rel=1e-9)

    def test_infinite_rate_approaches_instant_check_chain(self):
        instant = float(dynamic_voting_unavailability(N, LAM, MU))
        fast = finite_check_unavailability(N, LAM, MU, 10 ** 5)
        assert fast == pytest.approx(instant, rel=0.05)

    def test_single_node(self):
        # one replica: checks are irrelevant; unavailability = 1 - p
        value = finite_check_unavailability(1, 1, 19, 5)
        assert value == pytest.approx(0.05)


class TestShape:
    def test_slow_checking_is_worse_than_none(self):
        # The reproduction insight: a slow checker shrinks the epoch after
        # failures (committing to a small member set) but re-admits
        # repaired nodes only at the next slow check -- so checking at a
        # rate comparable to lam/mu is WORSE than never checking, where a
        # repaired node counts immediately toward the static majority.
        never = finite_check_unavailability(N, LAM, MU, 0)
        slow = finite_check_unavailability(N, LAM, MU, 0.5)
        assert slow > never

    def test_fast_checking_far_better_than_none(self):
        never = finite_check_unavailability(N, LAM, MU, 0)
        fast = finite_check_unavailability(N, LAM, MU, 200)
        assert fast < never / 10

    def test_monotone_improvement_beyond_the_harmful_regime(self):
        values = [finite_check_unavailability(N, LAM, MU, nu)
                  for nu in (2, 10, 50, 250)]
        assert values == sorted(values, reverse=True)

    def test_break_even_rate_is_order_of_the_event_rate(self):
        # checking helps once nu clearly exceeds the per-cluster event
        # rate (N*lam + repairs); below it, it hurts
        event_rate = N * LAM
        never = finite_check_unavailability(N, LAM, MU, 0)
        assert finite_check_unavailability(N, LAM, MU,
                                           event_rate / 4) > never
        assert finite_check_unavailability(N, LAM, MU,
                                           event_rate * 4) < never


class TestChainStructure:
    def test_reachable_solve_matches_full_grid_probabilities(self):
        # probabilities over the reachable component sum to one
        value = finite_check_unavailability(4, 1, 3, 2.0)
        assert 0 < value < 1

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            build_finite_check_chain(0, 1, 1, 1)
        with pytest.raises(ValueError):
            build_finite_check_chain(3, 0, 1, 1)
        with pytest.raises(ValueError):
            build_finite_check_chain(3, 1, 1, -1)

    def test_check_transitions_only_from_majority_states(self):
        chain = build_finite_check_chain(4, 1, 2, 7)
        for (src, dst), rate in chain.transitions().items():
            y, x, z = src
            if dst == (x + z, x + z, 0) and dst != src and rate >= 7:
                assert 2 * x > y


class TestAgainstMonteCarlo:
    def test_periodic_mc_roughly_matches_poisson_chain(self):
        # periodic checks (MC) vs Poisson checks (chain) at matched rates:
        # same ballpark, same ordering across rates
        from repro.availability.montecarlo import (
            simulate_dynamic_availability,
        )
        from repro.coteries.majority import MajorityCoterie

        for interval in (0.2, 5.0):
            chain_value = finite_check_unavailability(
                6, LAM, MU, 1.0 / interval)
            mc = simulate_dynamic_availability(
                6, LAM, MU, 20000, seed=4, rule=MajorityCoterie,
                check_interval=interval)
            assert mc.unavailability == pytest.approx(chain_value,
                                                      rel=0.5, abs=0.01)
