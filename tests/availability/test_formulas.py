"""Closed-form availability vs Table 1's static column and vs exact
enumeration over the real quorum predicates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability.formulas import (
    availability_by_enumeration,
    best_static_grid,
    grid_read_availability,
    grid_write_availability,
    hierarchical_availability,
    majority_availability,
    rowa_read_availability,
    rowa_write_availability,
    tree_availability,
)
from repro.coteries.grid import GridCoterie, define_grid
from repro.coteries.hierarchical import HierarchicalCoterie
from repro.coteries.majority import MajorityCoterie
from repro.coteries.rowa import ReadOneWriteAllCoterie
from repro.coteries.tree import TreeCoterie


def names(n):
    return [f"n{i:02d}" for i in range(n)]

# Table 1, static grid column: N -> (best dims, unavailability * 1e6).
TABLE1_STATIC = {
    9: ((3, 3), 3268.59),
    12: ((3, 4), 912.25),
    15: ((3, 5), 683.60),
    16: ((4, 4), 1208.75),
    20: ((4, 5), 250.82),
    24: ((4, 6), 78.23),
    30: ((5, 6), 135.90),
}


class TestTable1StaticColumn:
    @pytest.mark.parametrize("n_nodes", sorted(TABLE1_STATIC))
    def test_reproduces_cited_unavailability(self, n_nodes):
        (m, n), expected_ppm = TABLE1_STATIC[n_nodes]
        unavail = 1.0 - grid_write_availability(m, n, 0.95)
        assert unavail * 1e6 == pytest.approx(expected_ppm, abs=0.005)

    @pytest.mark.parametrize("n_nodes", sorted(TABLE1_STATIC))
    def test_table_dimensions_are_the_best_exact_grids(self, n_nodes):
        (m, n), _ = TABLE1_STATIC[n_nodes]
        best_m, best_n, _a = best_static_grid(n_nodes, 0.95)
        assert (best_m, best_n) == (m, n)


class TestGridFormulas:
    def test_read_availability_3x3(self):
        # each column of 3 is covered w.p. 1 - 0.05^3
        expected = (1 - 0.05 ** 3) ** 3
        assert grid_read_availability(3, 3, 0.95) == pytest.approx(expected)

    def test_write_le_read(self):
        for (m, n) in [(2, 2), (3, 3), (3, 4), (4, 4), (5, 6)]:
            assert (grid_write_availability(m, n, 0.9)
                    <= grid_read_availability(m, n, 0.9) + 1e-12)

    def test_degenerate_p(self):
        assert grid_write_availability(3, 3, 1.0) == pytest.approx(1.0)
        assert grid_write_availability(3, 3, 0.0) == pytest.approx(0.0)

    def test_bad_b_rejected(self):
        with pytest.raises(ValueError):
            grid_write_availability(3, 3, 0.9, b=3)

    def test_bad_p_rejected(self):
        with pytest.raises(ValueError):
            grid_write_availability(3, 3, 1.5)

    def test_unknown_cover_rejected(self):
        with pytest.raises(ValueError):
            grid_write_availability(3, 3, 0.9, column_cover="nope")

    @pytest.mark.parametrize("n_nodes", [2, 3, 4, 5, 6, 7, 9, 12, 14])
    @pytest.mark.parametrize("p", [0.5, 0.8, 0.95])
    def test_matches_enumeration_physical(self, n_nodes, p):
        shape = define_grid(n_nodes)
        coterie = GridCoterie(names(n_nodes), column_cover="physical")
        formula = grid_write_availability(shape.m, shape.n, p, b=shape.b,
                                          column_cover="physical")
        exact = availability_by_enumeration(coterie, p, "write")
        assert formula == pytest.approx(exact)

    @pytest.mark.parametrize("n_nodes", [3, 5, 7, 8, 14])
    def test_matches_enumeration_full_cover(self, n_nodes):
        shape = define_grid(n_nodes)
        coterie = GridCoterie(names(n_nodes), column_cover="full")
        formula = grid_write_availability(shape.m, shape.n, 0.9, b=shape.b,
                                          column_cover="full")
        exact = availability_by_enumeration(coterie, 0.9, "write")
        assert formula == pytest.approx(exact)

    @pytest.mark.parametrize("n_nodes", [2, 5, 9, 14])
    def test_read_matches_enumeration(self, n_nodes):
        shape = define_grid(n_nodes)
        coterie = GridCoterie(names(n_nodes))
        formula = grid_read_availability(shape.m, shape.n, 0.85, b=shape.b)
        exact = availability_by_enumeration(coterie, 0.85, "read")
        assert formula == pytest.approx(exact)


class TestMajorityFormulas:
    @pytest.mark.parametrize("n", [1, 3, 5, 7, 9])
    @pytest.mark.parametrize("p", [0.5, 0.9, 0.95])
    def test_matches_enumeration(self, n, p):
        formula = majority_availability(n, p)
        exact = availability_by_enumeration(MajorityCoterie(names(n)), p)
        assert formula == pytest.approx(exact)

    def test_custom_quorum_size(self):
        assert majority_availability(5, 0.9, quorum_size=5) == \
            pytest.approx(0.9 ** 5)

    def test_bad_quorum_size_rejected(self):
        with pytest.raises(ValueError):
            majority_availability(5, 0.9, quorum_size=6)

    def test_grid_beats_nothing_but_loses_to_majority_on_availability(self):
        # Static 3x3 grid writes are *less* available than majority-of-9 --
        # the price paid for the smaller quorums (paper Section 1).
        grid = grid_write_availability(3, 3, 0.95)
        majority = majority_availability(9, 0.95)
        assert grid < majority


class TestRowaFormulas:
    @pytest.mark.parametrize("n", [1, 2, 5, 8])
    def test_matches_enumeration(self, n):
        coterie = ReadOneWriteAllCoterie(names(n))
        assert rowa_read_availability(n, 0.9) == pytest.approx(
            availability_by_enumeration(coterie, 0.9, "read"))
        assert rowa_write_availability(n, 0.9) == pytest.approx(
            availability_by_enumeration(coterie, 0.9, "write"))

    def test_write_all_degrades_with_n(self):
        assert rowa_write_availability(10, 0.95) < \
            rowa_write_availability(3, 0.95)


class TestTreeFormulas:
    @pytest.mark.parametrize("n,d", [(1, 2), (3, 2), (7, 2), (15, 2),
                                     (13, 3), (6, 2)])
    @pytest.mark.parametrize("p", [0.6, 0.9])
    def test_matches_enumeration(self, n, d, p):
        formula = tree_availability(n, p, branching=d)
        exact = availability_by_enumeration(TreeCoterie(names(n), d), p)
        assert formula == pytest.approx(exact)


class TestHierarchicalFormulas:
    @pytest.mark.parametrize("arities,thresholds", [
        ((3, 3), (2, 2)), ((2, 2), (2, 2)), ((3, 4), (2, 3)),
    ])
    @pytest.mark.parametrize("p", [0.7, 0.95])
    def test_matches_enumeration(self, arities, thresholds, p):
        import math
        n = math.prod(arities)
        coterie = HierarchicalCoterie(names(n), arities=arities,
                                      write_thresholds=thresholds)
        formula = hierarchical_availability(arities, thresholds, p)
        exact = availability_by_enumeration(coterie, p, "write")
        assert formula == pytest.approx(exact)

    def test_mismatched_levels_rejected(self):
        with pytest.raises(ValueError):
            hierarchical_availability((3, 3), (2,), 0.9)


class TestEnumeration:
    def test_refuses_large_universe(self):
        with pytest.raises(ValueError):
            availability_by_enumeration(MajorityCoterie(names(21)), 0.9)

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_monotone_in_p(self, p):
        lower = availability_by_enumeration(MajorityCoterie(names(5)),
                                            p * 0.9)
        upper = availability_by_enumeration(MajorityCoterie(names(5)), p)
        assert lower <= upper + 1e-12
