"""Tests for the Figure 3 chain (Table 1 dynamic column) and the dynamic
voting chains."""

from fractions import Fraction

import pytest

from repro.availability.chains.dynamic_grid import (
    build_epoch_chain,
    dynamic_grid_unavailability,
    grid_min_epoch,
)
from repro.availability.chains.dynamic_voting import (
    build_dynamic_linear_voting_chain,
    dynamic_linear_voting_unavailability,
    dynamic_voting_unavailability,
)
from repro.availability.formulas import grid_write_availability


class TestTable1DynamicColumn:
    """Paper Table 1, dynamic grid column at p = 0.95 (mu/lam = 19)."""

    def test_n9_matches_paper(self):
        # paper: 0.18e-6
        u = float(dynamic_grid_unavailability(9))
        assert u == pytest.approx(0.18e-6, rel=0.02)

    def test_n12_matches_paper(self):
        # paper: 0.6e-10
        u = float(dynamic_grid_unavailability(12))
        assert u == pytest.approx(0.6e-10, rel=0.01)

    def test_n15_matches_paper(self):
        # paper: 1.564e-14
        u = float(dynamic_grid_unavailability(15))
        assert u == pytest.approx(1.564e-14, rel=0.001)

    def test_n16_negligible(self):
        # paper: "negligible"
        assert float(dynamic_grid_unavailability(16)) < 1e-15

    @pytest.mark.parametrize("n", [9, 12, 15, 16, 20, 24, 30])
    def test_improvement_over_static_is_orders_of_magnitude(self, n):
        from repro.availability.formulas import best_static_grid
        _m, _c, avail = best_static_grid(n, 0.95)
        static_unavail = 1.0 - avail
        dynamic_unavail = float(dynamic_grid_unavailability(n))
        assert dynamic_unavail < static_unavail * 1e-3


class TestEpochChainStructure:
    def test_grid_min_epoch(self):
        assert grid_min_epoch(1) == 1
        assert grid_min_epoch(2) == 2
        assert grid_min_epoch(3) == 3
        assert grid_min_epoch(30) == 3

    def test_state_count(self):
        # available: N - min + 1; unavailable: min * (N - min + 1)
        n, min_epoch = 9, 3
        chain = build_epoch_chain(n, 1, 19, min_epoch)
        expected = (n - min_epoch + 1) + min_epoch * (n - min_epoch + 1)
        assert chain.n_states == expected

    def test_probabilities_sum_to_one_exactly(self):
        chain = build_epoch_chain(9, 1, 19, 3)
        pi = chain.steady_state(exact=True)
        assert sum(pi.values()) == 1

    def test_available_band_rates(self):
        chain = build_epoch_chain(6, 2, 10, 3)
        assert chain.rate(("A", 6), ("A", 5)) == 12   # 6 * lam
        assert chain.rate(("A", 5), ("A", 6)) == 10   # (6-5) * mu
        assert chain.rate(("A", 3), ("U", 2, 0)) == 6  # 3 * lam
        assert chain.rate(("A", 3), ("A", 2)) == 0     # epoch can't shrink

    def test_stuck_recovery_goes_to_right_epoch_size(self):
        chain = build_epoch_chain(6, 1, 19, 3)
        # last epoch member repairs with z=2 outsiders up -> epoch of 5
        assert chain.rate(("U", 2, 2), ("A", 5)) == 19
        assert chain.rate(("U", 2, 0), ("A", 3)) == 19

    def test_single_node_chain_is_two_state(self):
        u = dynamic_grid_unavailability(1, 1, 19)
        assert u == Fraction(1, 20)

    def test_two_node_chain(self):
        # Both nodes needed (1x2 grid): available iff both up.
        # p^2 = 0.9025, so unavailability = 0.0975.
        u = dynamic_grid_unavailability(2, 1, 19)
        assert float(u) == pytest.approx(1 - 0.95 ** 2)

    def test_three_node_chain_equals_all_up_probability(self):
        # N=3: epoch is always the full trio; available iff all three up.
        u = dynamic_grid_unavailability(3, 1, 19)
        assert float(u) == pytest.approx(1 - 0.95 ** 3)

    def test_bad_min_epoch_rejected(self):
        with pytest.raises(ValueError):
            build_epoch_chain(5, 1, 19, 0)
        with pytest.raises(ValueError):
            build_epoch_chain(5, 1, 19, 6)

    def test_float_rates_accepted(self):
        u_float = dynamic_grid_unavailability(9, 0.5, 9.5)
        u_int = dynamic_grid_unavailability(9, 1, 19)
        assert float(u_float) == pytest.approx(float(u_int))

    def test_unavailability_decreases_with_n(self):
        values = [float(dynamic_grid_unavailability(n)) for n in (4, 6, 9, 12)]
        assert values == sorted(values, reverse=True)

    def test_unavailability_increases_with_failure_rate(self):
        low = float(dynamic_grid_unavailability(9, 1, 19))
        high = float(dynamic_grid_unavailability(9, 2, 19))
        assert high > low


class TestDynamicVotingChains:
    def test_plain_dv_beats_dynamic_grid(self):
        # Plain dynamic voting survives down to 2-member partitions, so its
        # unavailability is below the dynamic grid's (one less failure level).
        for n in (6, 9, 12):
            dv = float(dynamic_voting_unavailability(n))
            grid = float(dynamic_grid_unavailability(n))
            assert dv < grid

    def test_linear_tie_break_beats_plain_dv(self):
        for n in (5, 9):
            dlv = float(dynamic_linear_voting_unavailability(n))
            dv = float(dynamic_voting_unavailability(n))
            assert dlv < dv

    def test_dlv_single_node(self):
        u = dynamic_linear_voting_unavailability(1, 1, 19)
        assert u == Fraction(1, 20)

    def test_dlv_chain_probabilities_sum_to_one(self):
        chain = build_dynamic_linear_voting_chain(6, 1, 19)
        pi = chain.steady_state(exact=True)
        assert sum(pi.values()) == 1

    def test_dlv_stuck_states_structure(self):
        chain = build_dynamic_linear_voting_chain(4, 1, 19)
        # from a 2-member partition, one of the two failure directions
        # (the priority member dying) wedges the system
        assert chain.rate(("A", 2), ("A", 1)) == 1
        assert chain.rate(("A", 2), ("P", 1, 0)) == 1
        # priority repair resurrects with everyone up absorbed
        assert chain.rate(("P", 1, 2), ("A", 4)) == 19

    def test_all_dynamic_protocols_far_better_than_static(self):
        static_unavail = 1 - grid_write_availability(3, 3, 0.95)
        for fn in (dynamic_voting_unavailability,
                   dynamic_linear_voting_unavailability,
                   dynamic_grid_unavailability):
            assert float(fn(9)) < static_unavail / 1000
