"""Same-seed regression pins for the Monte Carlo estimators.

The bitmask engine and the Fenwick-tree ``compat`` sampler are pure
performance work: with the default ``engine="bitmask"``,
``sampler="compat"`` every estimate must be *bit-identical* to the
original O(N)-per-event implementation.  This module enforces that
three ways:

* golden values -- exact ``float.hex()`` availabilities and event
  counters captured from the pre-optimisation implementation, pinned
  for both engines;
* a verbatim copy of the original linear-scan event generator, checked
  event-for-event against the Fenwick ``compat`` sampler;
* cross-engine and cross-sampler invariants (set == bitmask pathwise;
  ``swap`` preserves the event-time/type process).
"""

import random

import pytest

from repro.availability.montecarlo import (
    _site_model_events,
    simulate_dynamic_availability,
    simulate_static_availability,
)
from repro.coteries import (
    GridCoterie,
    MajorityCoterie,
    TreeCoterie,
    WallCoterie,
)

RULES = {"grid": GridCoterie, "majority": MajorityCoterie,
         "tree": TreeCoterie, "wall": WallCoterie}

# (n, lam, mu, horizon, seed, rule, kind) -> (availability.hex(), n_events)
GOLDEN_STATIC = [
    (9, 1.0, 4.0, 2000.0, 7, "grid", "write",
     '0x1.b9b4b0a6dd609p-1', 28966),
    (9, 1.0, 4.0, 2000.0, 7, "grid", "read",
     '0x1.f1d04afa33bdcp-1', 28966),
    (14, 1.0, 2.0, 1500.0, 3, "grid", "write",
     '0x1.424f37f259b05p-1', 28114),
    (5, 1.0, 3.0, 1000.0, 42, "majority", "write",
     '0x1.cb8d02f41f718p-1', 7543),
    (13, 1.0, 2.5, 1000.0, 11, "tree", "write",
     '0x1.d38840f4374fep-1', 18571),
    (10, 1.0, 2.0, 1000.0, 23, "wall", "read",
     '0x1.11c9be9a52ab0p-1', 13295),
]

# (n, lam, mu, horizon, seed, kind, check_interval, idealized)
#   -> (availability.hex(), n_events, n_epoch_changes, n_stuck_periods)
GOLDEN_DYNAMIC = [
    (9, 1.0, 4.0, 2000.0, 7, "write", None, False,
     '0x1.f6dfe6defb88ep-1', 28966, 28245, 123),
    (9, 1.0, 4.0, 2000.0, 7, "read", None, False,
     '0x1.f6dfe6defb88ep-1', 28966, 28245, 123),
    (6, 1.0, 4.0, 2000.0, 5, "write", None, True,
     '0x1.e19cad5dc70e8p-1', 19150, 17368, 378),
    (12, 1.0, 3.0, 1500.0, 9, "write", 0.5, False,
     '0x1.c03a02e880a5ep-1', 27253, 2498, 1271),
    (14, 1.0, 2.0, 1000.0, 3, "write", None, False,
     '0x1.fe24e94380d71p-1', 18730, 18652, 8),
]

ENGINES = ["bitmask", "set"]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    "n,lam,mu,horizon,seed,rule,kind,hex_avail,n_events", GOLDEN_STATIC)
def test_static_golden_values(engine, n, lam, mu, horizon, seed, rule,
                              kind, hex_avail, n_events):
    estimate = simulate_static_availability(
        n, lam, mu, horizon, seed=seed, rule=RULES[rule], kind=kind,
        engine=engine)
    assert estimate.availability.hex() == hex_avail
    assert estimate.n_events == n_events


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    "n,lam,mu,horizon,seed,kind,check_interval,idealized,"
    "hex_avail,n_events,n_epoch_changes,n_stuck", GOLDEN_DYNAMIC)
def test_dynamic_golden_values(engine, n, lam, mu, horizon, seed, kind,
                               check_interval, idealized, hex_avail,
                               n_events, n_epoch_changes, n_stuck):
    estimate = simulate_dynamic_availability(
        n, lam, mu, horizon, seed=seed, kind=kind,
        check_interval=check_interval, idealized=idealized, engine=engine)
    assert estimate.availability.hex() == hex_avail
    assert estimate.n_events == n_events
    assert estimate.n_epoch_changes == n_epoch_changes
    assert estimate.n_stuck_periods == n_stuck


def _original_site_model_events(n_nodes, lam, mu, horizon, rng):
    """The pre-optimisation event generator, copied verbatim: O(N) linear
    rank scan per event.  The ``compat`` sampler must reproduce it."""
    up = [True] * n_nodes
    n_up = n_nodes
    now = 0.0
    while True:
        total_rate = n_up * lam + (n_nodes - n_up) * mu
        if total_rate <= 0:
            return
        now += rng.expovariate(total_rate)
        if now >= horizon:
            return
        if rng.random() * total_rate < n_up * lam:
            target_rank = rng.randrange(n_up)
            wanted_state = True
            n_up -= 1
        else:
            target_rank = rng.randrange(n_nodes - n_up)
            wanted_state = False
            n_up += 1
        seen = 0
        for index in range(n_nodes):
            if up[index] == wanted_state:
                if seen == target_rank:
                    up[index] = not wanted_state
                    yield now, index, up[index]
                    break
                seen += 1


@pytest.mark.parametrize("n,seed", [(1, 0), (3, 1), (9, 7), (25, 3),
                                    (60, 11)])
def test_compat_sampler_reproduces_original_generator(n, seed):
    original = list(_original_site_model_events(
        n, 1.0, 3.0, 200.0, random.Random(seed)))
    compat = list(_site_model_events(
        n, 1.0, 3.0, 200.0, random.Random(seed), sampler="compat"))
    assert compat == original
    assert len(original) > 0


@pytest.mark.parametrize("n,seed", [(3, 1), (9, 7), (25, 3)])
def test_swap_sampler_preserves_event_process(n, seed):
    """``swap`` consumes the RNG stream identically: same event times,
    same failure/repair types, same up-count trajectory -- only the
    identity of the flipped node may differ."""
    compat = list(_site_model_events(
        n, 1.0, 3.0, 200.0, random.Random(seed), sampler="compat"))
    swap = list(_site_model_events(
        n, 1.0, 3.0, 200.0, random.Random(seed), sampler="swap"))
    assert len(compat) == len(swap)
    n_up_c = n_up_s = n
    for (t_c, _i_c, up_c), (t_s, _i_s, up_s) in zip(compat, swap):
        assert t_c == t_s
        assert up_c == up_s
        n_up_c += 1 if up_c else -1
        n_up_s += 1 if up_s else -1
        assert n_up_c == n_up_s


def test_swap_sampler_is_a_valid_trajectory():
    """Every swap event is a strict state flip of a real node."""
    n = 12
    up = [True] * n
    for _now, index, now_up in _site_model_events(
            n, 1.0, 2.0, 300.0, random.Random(5), sampler="swap"):
        assert 0 <= index < n
        assert up[index] != now_up
        up[index] = now_up


@pytest.mark.parametrize("sampler", ["compat", "swap"])
def test_engines_agree_pathwise_for_any_sampler(sampler):
    """set vs bitmask is a pure evaluation-strategy change: identical
    results for the same seed and sampler, on every estimator."""
    for rule in (GridCoterie, MajorityCoterie, TreeCoterie):
        a = simulate_static_availability(11, 1.0, 3.0, 400.0, seed=2,
                                         rule=rule, engine="bitmask",
                                         sampler=sampler)
        b = simulate_static_availability(11, 1.0, 3.0, 400.0, seed=2,
                                         rule=rule, engine="set",
                                         sampler=sampler)
        assert a == b
    for kwargs in ({}, {"check_interval": 0.7}, {"idealized": True},
                   {"kind": "read"}):
        a = simulate_dynamic_availability(10, 1.0, 3.0, 400.0, seed=6,
                                          engine="bitmask",
                                          sampler=sampler, **kwargs)
        b = simulate_dynamic_availability(10, 1.0, 3.0, 400.0, seed=6,
                                          engine="set", sampler=sampler,
                                          **kwargs)
        assert a == b


def test_dynamic_engines_agree_for_non_rebindable_rule():
    """Rules without in-place rebinding take the LRU-cache path; it must
    be just as invisible."""
    for rule in (TreeCoterie, WallCoterie):
        a = simulate_dynamic_availability(13, 1.0, 2.5, 400.0, seed=11,
                                          rule=rule, engine="bitmask")
        b = simulate_dynamic_availability(13, 1.0, 2.5, 400.0, seed=11,
                                          rule=rule, engine="set")
        assert a == b


def test_bad_engine_and_sampler_rejected():
    with pytest.raises(ValueError):
        simulate_static_availability(5, 1.0, 2.0, 10.0, engine="simd")
    with pytest.raises(ValueError):
        simulate_static_availability(5, 1.0, 2.0, 10.0, sampler="magic")
    with pytest.raises(ValueError):
        simulate_dynamic_availability(5, 1.0, 2.0, 10.0, engine="simd")
