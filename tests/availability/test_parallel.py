"""The parallel Monte Carlo fan-out: merge math and shard equivalence."""

import pytest

from repro.availability.montecarlo import (
    AvailabilityEstimate,
    simulate_dynamic_availability,
    simulate_static_availability,
)
from repro.availability.parallel import (
    merge_estimates,
    shard_seeds,
    simulate_availability_parallel,
)
from repro.coteries import GridCoterie, MajorityCoterie


def make(availability, horizon, n_events=0, n_epoch_changes=0, n_stuck=0):
    return AvailabilityEstimate(availability, 1.0 - availability, horizon,
                                n_events, n_epoch_changes, n_stuck)


class TestMergeEstimates:
    def test_weighted_by_horizon(self):
        merged = merge_estimates([make(1.0, 100.0), make(0.0, 300.0)])
        assert merged.availability == pytest.approx(0.25)
        assert merged.unavailability == pytest.approx(0.75)
        assert merged.horizon == 400.0

    def test_counters_are_summed(self):
        merged = merge_estimates([make(0.5, 10.0, 7, 3, 1),
                                  make(0.5, 10.0, 5, 2, 4)])
        assert merged.n_events == 12
        assert merged.n_epoch_changes == 5
        assert merged.n_stuck_periods == 5

    def test_single_estimate_is_identity(self):
        one = make(0.625, 50.0, 9, 4, 2)
        assert merge_estimates([one]) == one

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_estimates([])

    def test_shard_seeds_are_distinct_and_deterministic(self):
        assert shard_seeds(10, 4) == [10, 11, 12, 13]
        assert len(set(shard_seeds(0, 8))) == 8


class TestWorkersOne:
    """``workers=1`` runs inline and is bit-identical to serial."""

    def test_dynamic(self):
        parallel = simulate_availability_parallel(
            9, 1.0, 4.0, 800.0, seed=7, workers=1)
        serial = simulate_dynamic_availability(9, 1.0, 4.0, 800.0, seed=7)
        assert parallel == serial

    def test_static(self):
        parallel = simulate_availability_parallel(
            9, 1.0, 4.0, 800.0, seed=7, workers=1, protocol="static",
            kind="read")
        serial = simulate_static_availability(9, 1.0, 4.0, 800.0, seed=7,
                                              kind="read")
        assert parallel == serial

    def test_options_forwarded(self):
        parallel = simulate_availability_parallel(
            10, 1.0, 3.0, 500.0, seed=4, workers=1, check_interval=0.5,
            engine="set", sampler="swap")
        serial = simulate_dynamic_availability(
            10, 1.0, 3.0, 500.0, seed=4, check_interval=0.5,
            engine="set", sampler="swap")
        assert parallel == serial


class TestMultiWorker:
    def test_merged_equals_serial_shards(self):
        """The fan-out is exactly: run each shard at seed+i over
        horizon/workers, then merge."""
        workers, horizon = 3, 1200.0
        merged = simulate_availability_parallel(
            9, 1.0, 4.0, horizon, seed=5, workers=workers)
        shards = [simulate_dynamic_availability(
                      9, 1.0, 4.0, horizon / workers, seed=5 + i)
                  for i in range(workers)]
        assert merged == merge_estimates(shards)

    def test_static_merged_equals_serial_shards(self):
        workers, horizon = 2, 1000.0
        merged = simulate_availability_parallel(
            12, 1.0, 3.0, horizon, seed=8, workers=workers,
            protocol="static", rule=MajorityCoterie)
        shards = [simulate_static_availability(
                      12, 1.0, 3.0, horizon / workers, seed=8 + i,
                      rule=MajorityCoterie)
                  for i in range(workers)]
        assert merged == merge_estimates(shards)

    def test_lambda_rule_survives_fork(self):
        estimate = simulate_availability_parallel(
            9, 1.0, 4.0, 400.0, seed=1, workers=2,
            rule=lambda nodes: GridCoterie(nodes, column_cover="full"))
        assert 0 <= estimate.availability <= 1
        assert estimate.n_events > 0

    def test_estimate_close_to_serial_distributionally(self):
        merged = simulate_availability_parallel(
            9, 1.0, 4.0, 4000.0, seed=3, workers=4)
        serial = simulate_dynamic_availability(9, 1.0, 4.0, 4000.0, seed=3)
        assert merged.availability == pytest.approx(serial.availability,
                                                    abs=0.02)


class TestValidation:
    def test_bad_protocol(self):
        with pytest.raises(ValueError):
            simulate_availability_parallel(5, 1.0, 2.0, 10.0,
                                           protocol="quantum")

    def test_bad_workers(self):
        with pytest.raises(ValueError):
            simulate_availability_parallel(5, 1.0, 2.0, 10.0, workers=0)

    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            simulate_availability_parallel(5, 1.0, 2.0, 0.0)

    def test_static_rejects_dynamic_options(self):
        with pytest.raises(ValueError):
            simulate_availability_parallel(5, 1.0, 2.0, 10.0,
                                           protocol="static",
                                           idealized=True)
        with pytest.raises(ValueError):
            simulate_availability_parallel(5, 1.0, 2.0, 10.0,
                                           protocol="static",
                                           check_interval=1.0)
