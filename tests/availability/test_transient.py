"""Hitting-time analysis: MTTF, outage durations, renewal-reward checks."""

from fractions import Fraction

import pytest

from repro.availability.chains.dynamic_grid import (
    build_epoch_chain,
    dynamic_grid_unavailability,
)
from repro.availability.markov import MarkovChain
from repro.availability.transient import (
    cycle_unavailability,
    dynamic_grid_mttf,
    dynamic_grid_outage_duration,
    hitting_time,
)


class TestHittingTime:
    def test_two_state_machine(self):
        chain = MarkovChain()
        chain.add("up", "down", 2)     # fail rate 2 -> MTTF = 1/2
        chain.add("down", "up", 5)     # repair rate 5 -> outage = 1/5
        assert hitting_time(chain, ["down"])["up"] == Fraction(1, 2)
        assert hitting_time(chain, ["up"])["down"] == Fraction(1, 5)

    def test_target_states_have_zero_time(self):
        chain = MarkovChain()
        chain.add("a", "b", 1)
        chain.add("b", "a", 1)
        times = hitting_time(chain, ["b"])
        assert times["b"] == 0

    def test_chain_of_states_adds_expectations(self):
        # a -> b -> c at rate 1 each: E[a->c] = 2
        chain = MarkovChain()
        chain.add("a", "b", 1)
        chain.add("b", "c", 1)
        chain.add("c", "a", 1)
        assert hitting_time(chain, ["c"])["a"] == 2

    def test_float_mode(self):
        chain = MarkovChain()
        chain.add("a", "b", 3)
        chain.add("b", "a", 3)
        value = hitting_time(chain, ["b"], exact=False)["a"]
        assert value == pytest.approx(1 / 3)

    def test_empty_targets_rejected(self):
        chain = MarkovChain()
        chain.add("a", "b", 1)
        chain.add("b", "a", 1)
        with pytest.raises(ValueError):
            hitting_time(chain, [])

    def test_unknown_target_rejected(self):
        chain = MarkovChain()
        chain.add("a", "b", 1)
        chain.add("b", "a", 1)
        with pytest.raises(ValueError):
            hitting_time(chain, ["zz"])


class TestDynamicGridTransients:
    def test_mttf_grows_violently_with_n(self):
        values = [float(dynamic_grid_mttf(n)) for n in (4, 6, 9, 12)]
        assert values == sorted(values)
        assert values[-1] / values[0] > 1e4

    def test_outage_duration_independent_of_n(self):
        # recovery involves only the 3 pinned epoch members, so the
        # expected outage does not depend on the cluster size
        d6 = dynamic_grid_outage_duration(6)
        d9 = dynamic_grid_outage_duration(9)
        d15 = dynamic_grid_outage_duration(15)
        assert d6 == d9 == d15

    def test_outage_duration_scales_with_repair_rate(self):
        fast = float(dynamic_grid_outage_duration(9, 1, 38))
        slow = float(dynamic_grid_outage_duration(9, 1, 19))
        assert fast < slow

    def test_renewal_reward_identity_exact(self):
        # E[down] / (E[up] + E[down]) must equal the steady-state
        # unavailability -- as exact Fractions, no tolerance.
        for n in (4, 6, 9):
            assert cycle_unavailability(n) == \
                dynamic_grid_unavailability(n)

    def test_mttf_vs_unavailability_consistency(self):
        # unavailability ~ outage / MTTF when outages are rare (the up
        # phase from the recovery point is close to the fresh MTTF)
        n = 9
        unavail = float(dynamic_grid_unavailability(n))
        mttf = float(dynamic_grid_mttf(n))
        outage = float(dynamic_grid_outage_duration(n))
        assert unavail == pytest.approx(outage / mttf, rel=0.25)

    def test_outage_duration_matches_simple_expectation(self):
        # entry state: 2 of 3 pinned members up.  With mu >> lam the
        # expected outage is slightly above 1/mu (the lone repair), the
        # excess coming from additional failures among the trio.
        outage = float(dynamic_grid_outage_duration(9, 1, 19))
        assert 1 / 19 < outage < 1.2 / 19


class TestHittingTimeVsMonteCarlo:
    def test_outage_duration_matches_simulation(self):
        import random
        lam, mu = 1.0, 4.0
        expected = float(dynamic_grid_outage_duration(9, lam, mu))
        # simulate the pinned-trio recovery directly: start with 1 member
        # down, wait until all three are simultaneously up
        rng = random.Random(11)
        total = 0.0
        trials = 4000
        for _ in range(trials):
            up = [True, True, False]
            t = 0.0
            while not all(up):
                rates = [lam if state else mu for state in up]
                total_rate = sum(rates)
                t += rng.expovariate(total_rate)
                pick = rng.random() * total_rate
                for i, rate in enumerate(rates):
                    if pick < rate:
                        up[i] = not up[i]
                        break
                    pick -= rate
            total += t
        assert total / trials == pytest.approx(expected, rel=0.1)
