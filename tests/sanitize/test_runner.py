"""Sweep, artifact, and canary tests for the schedule sanitizer.

The two heavyweight tests here are this PR's regression pins for the
real bugs the sanitizer surfaced when it was first run:

* the coordinator's success-path release fan-out missed fast-wave
  responders that the heavy procedure later excluded from the write
  set (their granted locks stranded until the lease);
* an ``op-release`` arriving while the write-request handler was still
  *queued* on the lock released nothing, and the later grant was taken
  into custody for an operation already decided.

Both manifested as ``lock-lease-expired`` firings on a crash-free
perturbed schedule; the clean-sweep test fails if either regresses,
and the canary test proves the detector still sees the bug class.
"""

from __future__ import annotations

import pytest

from repro.sanitize.runner import (
    ARTIFACT_FORMAT,
    CANARY_BUG,
    SanitizeSpec,
    base_spec,
    build_artifact,
    load_artifact,
    run_sanitized,
    run_sweep,
    save_artifact,
    schedule_spec,
    state_digest,
)


def test_spec_round_trips():
    spec = SanitizeSpec(seed=7, n_nodes=5, ops=12, schedules=3,
                        bound=0.25, canary=True)
    assert SanitizeSpec.from_dict(spec.to_dict()) == spec


def test_base_spec_is_crash_free_and_fault_free():
    chaos = base_spec(SanitizeSpec(seed=0))
    assert chaos.schedule == []
    assert chaos.policy in (None, {}) or not any(chaos.policy.values())
    assert chaos.bug == ""
    assert chaos.config["adaptive_timeouts"] is True


def test_canary_spec_reintroduces_the_bug():
    chaos = base_spec(SanitizeSpec(seed=0, canary=True))
    assert chaos.bug == CANARY_BUG


def test_perturbed_schedules_vary_only_the_fault_stream():
    spec = SanitizeSpec(seed=3)
    pristine = schedule_spec(spec, 0)
    perturbed = schedule_spec(spec, 2)
    assert pristine.faults_seed is None
    assert perturbed.faults_seed == 3 * 1_000_003 + 2
    assert perturbed.seed == pristine.seed
    policy = perturbed.policy
    assert policy["delay"] > 0 and policy["reorder"] > 0
    assert policy.get("drop", 0) == 0
    assert policy.get("duplicate", 0) == 0


def test_same_schedule_digests_identically():
    spec = SanitizeSpec(seed=0, n_nodes=5, ops=8, schedules=1)
    first = run_sanitized(schedule_spec(spec, 0))
    second = run_sanitized(schedule_spec(spec, 0))
    assert first.ok and second.ok
    assert state_digest(first.store) == state_digest(second.store)


def test_clean_sweep_is_quiet_and_reproducible():
    # regression pin for the two stranded-lock protocol bugs (see the
    # module docstring): schedule 1's perturbation used to strand locks
    spec = SanitizeSpec(seed=0, n_nodes=9, ops=40, schedules=2)
    report = run_sweep(spec)
    assert [r.ok for r in report.results] == [True, True], \
        [r.violations for r in report.results]
    assert report.reproducible
    assert report.ok
    assert not report.canary_caught


def test_canary_is_deterministically_caught():
    spec = SanitizeSpec(seed=0, n_nodes=9, ops=40, schedules=2,
                        canary=True)
    report = run_sweep(spec)
    assert report.reproducible          # catching must not cost replay
    assert not report.ok
    assert report.canary_caught
    [failure] = report.failures
    assert failure.schedule == 1        # the pristine schedule is quiet
    assert any("lease reaper" in v for v in failure.violations)


def test_artifact_round_trips(tmp_path):
    spec = SanitizeSpec(seed=0, n_nodes=5, ops=6, schedules=2)
    report = run_sweep(spec)
    path = tmp_path / "sweep.json"
    written = save_artifact(str(path), report)
    loaded = load_artifact(str(path))
    assert loaded == written
    assert loaded["format"] == ARTIFACT_FORMAT
    assert loaded["ok"] is True
    assert loaded["reproducible"] is True
    assert len(loaded["schedules"]) == 2
    assert loaded["schedules"][0]["digest"] == loaded["baseline_digest"]
    assert SanitizeSpec.from_dict(loaded["spec"]) == spec


def test_load_artifact_rejects_foreign_json(tmp_path):
    path = tmp_path / "other.json"
    path.write_text('{"format": "something-else"}', encoding="utf-8")
    with pytest.raises(ValueError, match="not a sanitize artifact"):
        load_artifact(str(path))


def test_shrinker_accepts_the_sanitized_runner():
    # the hand-off contract: shrink(spec, run=run_sanitized) minimizes
    # a canary failure using sanitizer findings as the predicate
    from repro.chaos.shrink import shrink

    spec = SanitizeSpec(seed=0, n_nodes=9, ops=40, schedules=2,
                        canary=True)
    failing = schedule_spec(spec, 1)
    report = run_sanitized(failing)
    assert not report.ok and "SanitizeError" in report.violation
    result = shrink(failing, max_runs=40, run=run_sanitized)
    assert result.events <= result.original_events
    assert "SanitizeError" in result.report.violation
