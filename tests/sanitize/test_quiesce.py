"""Quiesce snapshot/compare unit tests plus a settled-cluster check."""

from __future__ import annotations

from repro.core.store import ReplicatedStore
from repro.sanitize.quiesce import (
    QUIESCE_GAP,
    Snapshot,
    check_quiesce,
    compare_snapshots,
    take_snapshot,
)


def test_disjoint_snapshots_are_quiet():
    first = Snapshot(time=1.0, locks={("n00", "value-lock", "w1")})
    second = Snapshot(time=5.5, locks={("n00", "value-lock", "w2")})
    assert compare_snapshots(first, second) == []


def test_persistent_lock_is_a_leak():
    held = ("n00", "value-lock", "w1")
    findings = compare_snapshots(Snapshot(time=1.0, locks={held}),
                                 Snapshot(time=5.5, locks={held}))
    [finding] = findings
    assert "leaked lock" in finding and "value-lock" in finding


def test_persistent_handler_call_and_courier_are_flagged():
    handler = ("n01", "n00", 42)
    call = ("n00", 42)
    courier = ("n02", 0xbeef)
    first = Snapshot(time=1.0, inflight={handler}, pending={call},
                     couriers={courier: "propagate-x"})
    second = Snapshot(time=5.5, inflight={handler}, pending={call},
                      couriers={courier: "propagate-x"})
    findings = compare_snapshots(first, second)
    assert len(findings) == 3
    assert any("stuck handler" in f for f in findings)
    assert any("stuck call" in f for f in findings)
    assert any("stranded courier" in f for f in findings)


def test_courier_identity_must_match():
    # a *new* courier process at the second snapshot is normal retry
    # machinery, not a stranded one: identity is (node, id(process))
    first = Snapshot(time=1.0, couriers={("n02", 1): "propagate-x"})
    second = Snapshot(time=5.5, couriers={("n02", 2): "propagate-x"})
    assert compare_snapshots(first, second) == []


def test_settled_cluster_passes_the_full_check():
    store = ReplicatedStore.create(5, seed=3)
    store.write({"k": "v"})
    store.settle()
    assert check_quiesce(store, crash_free=True) == []


def test_snapshot_sees_held_locks():
    store = ReplicatedStore.create(3, seed=0)
    node = store.nodes[store.node_names[0]]
    lock = node.make_lock("probe-lock")
    granted = []

    def holder():
        yield lock.acquire("probe-owner")
        granted.append(True)
        yield node.env.timeout(10.0)

    node.spawn(holder())
    store.advance(0.1)
    assert granted
    snap = take_snapshot(store)
    name = store.node_names[0]
    assert (name, f"{name}.probe-lock", "probe-owner") in snap.locks
    lock.release("probe-owner")


def test_gap_sits_inside_the_lease_window():
    from repro.core.config import ProtocolConfig
    config = ProtocolConfig()
    # longer than every legitimate transient, shorter than the lease
    assert QUIESCE_GAP > config.propagation_lease
    assert QUIESCE_GAP > config.rtt_deadline_max
    assert QUIESCE_GAP < config.lock_lease
