"""Happens-before tracker unit tests over synthetic trace records."""

from __future__ import annotations

from repro.sanitize.hb import HBTracker, clock_leq, concurrent
from repro.sim.trace import TraceLog, TraceRecord


def rec(kind: str, node: str, t: float = 0.0, **detail) -> TraceRecord:
    return TraceRecord(time=t, kind=kind, node=node, detail=detail)


def test_clock_partial_order():
    assert clock_leq({}, {"a": 1})
    assert clock_leq({"a": 1}, {"a": 2, "b": 1})
    assert not clock_leq({"a": 2}, {"a": 1})
    assert concurrent({"a": 1}, {"b": 1})
    assert not concurrent({"a": 1}, {"a": 1})
    assert not concurrent({"a": 1}, {"a": 2})


def test_send_then_deliver_orders_the_receiver():
    tracker = HBTracker()
    tracker.observe(rec("send", "a", msg_id=1))
    tracker.observe(rec("deliver", "b", msg_id=1))
    assert clock_leq(tracker.clocks["a"], tracker.clocks["b"])


def test_ordered_applies_are_not_a_race():
    tracker = HBTracker()
    # a's apply, then a message a -> b, then b's apply of a *different*
    # transaction at the same (key, version): ordered, hence not a race
    tracker.observe(rec("state-apply", "a", 1.0, txn_id="t1", op_id="w1",
                        keys=("x",), version=3))
    tracker.observe(rec("send", "a", msg_id=1))
    tracker.observe(rec("deliver", "b", msg_id=1))
    tracker.observe(rec("state-apply", "b", 2.0, txn_id="t2", op_id="w2",
                        keys=("x",), version=3))
    assert tracker.races == []


def test_concurrent_same_slot_applies_race():
    tracker = HBTracker()
    # each node has local activity (a send) nothing orders against the
    # other's, so the two applies' clocks are incomparable
    tracker.observe(rec("send", "a", msg_id=1))
    tracker.observe(rec("send", "b", msg_id=2))
    tracker.observe(rec("state-apply", "a", 1.0, txn_id="t1", op_id="w1",
                        keys=("x",), version=3))
    tracker.observe(rec("state-apply", "b", 1.5, txn_id="t2", op_id="w2",
                        keys=("x",), version=3))
    [race] = tracker.races
    assert race.key == "x" and race.version == 3
    assert {race.first.txn_id, race.second.txn_id} == {"t1", "t2"}
    assert "causally concurrent" in race.describe()


def test_same_transaction_fanout_is_never_a_race():
    tracker = HBTracker()
    for node in ("a", "b", "c"):
        tracker.observe(rec("state-apply", node, 1.0, txn_id="t1",
                            op_id="w1", keys=("x",), version=3))
    assert tracker.races == []


def test_different_versions_do_not_conflict():
    tracker = HBTracker()
    tracker.observe(rec("state-apply", "a", 1.0, txn_id="t1", op_id="w1",
                        keys=("x",), version=3))
    tracker.observe(rec("state-apply", "b", 1.5, txn_id="t2", op_id="w2",
                        keys=("x",), version=4))
    assert tracker.races == []


def test_duplicate_delivery_reuses_the_send_snapshot():
    tracker = HBTracker()
    tracker.observe(rec("send", "a", msg_id=7))
    tracker.observe(rec("deliver", "b", msg_id=7))
    tracker.observe(rec("deliver", "b", msg_id=7))   # duplicated in flight
    assert tracker.clocks["b"]["a"] == tracker.clocks["a"]["a"]


def test_snapshot_store_is_bounded():
    tracker = HBTracker(snapshot_capacity=4)
    for msg_id in range(10):
        tracker.observe(rec("send", "a", msg_id=msg_id))
    assert len(tracker._snapshots) == 4


def test_attach_subscribes_and_detach_unsubscribes():
    trace = TraceLog(enabled=False)   # observers fire even when disabled
    tracker = HBTracker().attach(trace)
    trace.record(0.0, "send", node="a", msg_id=1)
    assert tracker.events_seen == 1
    tracker.detach()
    trace.record(0.1, "send", node="a", msg_id=2)
    assert tracker.events_seen == 1
