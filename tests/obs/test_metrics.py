"""The observability layer: metric primitives, snapshots, merging,
summaries, and the end-to-end wiring through the protocol stack."""

import pytest

from repro.core.store import ReplicatedStore
from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    build_summary,
    epoch_health,
    merge_snapshots,
    render_table,
    validate_summary,
)
from repro.obs.metrics import percentile, split_key, summarize_samples


class TestPrimitives:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        counter = reg.counter("events", kind="a")
        counter.inc()
        counter.inc(3)
        assert reg.counter("events", kind="a").value == 4
        # a different label set is a different counter
        assert reg.counter("events", kind="b").value == 0

    def test_gauge_keeps_last_value(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("seen", node="n00")
        assert gauge.value is None
        gauge.set(1.5)
        gauge.set(0.5)
        assert gauge.value == 0.5

    def test_histogram_percentiles_nearest_rank(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat")
        for v in range(1, 101):
            hist.observe(float(v))
        assert hist.percentile(0.50) == 50.0
        assert hist.percentile(0.95) == 95.0
        assert hist.percentile(0.99) == 99.0
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["min"] == 1.0 and summary["max"] == 100.0

    def test_percentile_edge_cases(self):
        assert percentile([], 0.5) is None
        assert percentile([7.0], 0.99) == 7.0
        assert summarize_samples([]) == {"count": 0}

    def test_split_key_roundtrip(self):
        from repro.obs.metrics import _key

        key = _key("rpc_attempts", {"src": "n00", "dst": "n01"})
        assert key == "rpc_attempts{dst=n01,src=n00}"
        assert split_key(key) == ("rpc_attempts",
                                  {"src": "n00", "dst": "n01"})
        assert split_key("plain") == ("plain", {})

    def test_null_registry_is_inert(self):
        metric = NULL_REGISTRY.counter("whatever", any_label="x")
        metric.inc()
        metric.set(3.0)
        metric.observe(1.0)
        assert metric is NULL_REGISTRY.histogram("other")
        snap = NULL_REGISTRY.snapshot()
        assert snap["counters"] == {} and snap["histograms"] == {}
        assert not NULL_REGISTRY.enabled


class TestSnapshotsAndMerging:
    def test_snapshot_shape(self):
        clock = [2.5]
        reg = MetricsRegistry(clock=lambda: clock[0])
        reg.counter("c", k="v").inc(2)
        reg.gauge("g").set(1.0)
        reg.gauge("unset_gauge")        # never set: excluded
        reg.histogram("h").observe(0.25)
        snap = reg.snapshot()
        assert snap["schema"] == "repro-metrics-v1"
        assert snap["time"] == 2.5
        assert snap["counters"] == {"c{k=v}": 2}
        assert snap["gauges"] == {"g": 1.0}
        assert snap["histograms"] == {"h": {"count": 1, "samples": [0.25]}}

    def test_merge_counters_add_and_histograms_pool(self):
        snaps = []
        for t, value in ((1.0, 2), (2.0, 3)):
            reg = MetricsRegistry(clock=lambda t=t: t)
            reg.counter("c").inc(value)
            reg.histogram("h").observe(float(value))
            reg.gauge("g").set(t * 10)
            snaps.append(reg.snapshot())
        merged = merge_snapshots(snaps)
        assert merged["counters"]["c"] == 5
        assert sorted(merged["histograms"]["h"]["samples"]) == [2.0, 3.0]
        # the gauge comes from the newest-stamped snapshot
        assert merged["gauges"]["g"] == 20.0
        assert merged["time"] == 2.0

    def test_merge_rejects_foreign_schema(self):
        with pytest.raises(ValueError):
            merge_snapshots([{"schema": "someone-elses-format"}])


class TestSummaries:
    def _snapshot(self):
        reg = MetricsRegistry(clock=lambda: 100.0)
        for value in (0.1, 0.2, 0.9):
            reg.histogram("op_latency", kind="write").observe(value)
        reg.counter("ops", kind="write", outcome="ok").inc(3)
        reg.counter("rpc_attempts", src="n00", dst="n01").inc(10)
        reg.counter("rpc_timeouts", src="n00", dst="n01").inc(2)
        reg.counter("twophase_aborts", reason="validation-failed").inc()
        reg.histogram("stale_heal_lag").observe(4.0)
        reg.counter("epoch_checks", outcome="unchanged").inc(5)
        reg.gauge("epoch_last_check_seen", node="n00").set(97.0)
        return reg.snapshot()

    def test_build_and_validate_summary(self):
        summary = validate_summary(build_summary(self._snapshot()))
        assert summary["ops"]["write"]["latency"]["count"] == 3
        assert summary["ops"]["write"]["latency"]["p50"] == 0.2
        assert summary["ops"]["write"]["outcomes"] == {"ok": 3}
        assert summary["rpc"]["timeouts_by_dst"] == {"n01": 2}
        assert summary["twophase"]["aborts"] == {"validation-failed": 1}
        assert summary["staleness"]["healed"] == 1
        assert summary["epoch"]["checks"] == {"unchanged": 5}
        assert summary["epoch"]["health"] == {"n00": 3.0}

    def test_epoch_health_override_now(self):
        ages = epoch_health(self._snapshot(), now=107.0)
        assert ages == {"n00": 10.0}

    def test_validate_rejects_missing_section(self):
        summary = build_summary(self._snapshot())
        del summary["staleness"]
        with pytest.raises(ValueError):
            validate_summary(summary)

    def test_render_table_mentions_everything(self):
        text = render_table(build_summary(self._snapshot()))
        assert "write" in text and "rpc:" in text
        assert "staleness:" in text and "2pc:" in text
        assert "epoch-check ages" in text and "n00" in text


class TestStoreWiring:
    def test_ops_and_rpc_metrics_from_a_live_store(self):
        store = ReplicatedStore.create(5, seed=1)
        assert store.write({"x": 1}).ok
        assert store.read().ok
        summary = validate_summary(build_summary(store.metrics_snapshot()))
        assert summary["ops"]["write"]["latency"]["count"] == 1
        assert summary["ops"]["read"]["outcomes"] == {"ok": 1}
        assert summary["rpc"]["attempts"] > 0
        assert summary["twophase"]["commits"] == 1

    def test_watchdog_gauge_tracks_epoch_checks(self):
        store = ReplicatedStore.create(5, seed=2)
        assert not epoch_health(store.metrics_snapshot())
        store.check_epoch()
        ages = epoch_health(store.metrics_snapshot())
        assert set(ages) == set(store.node_names)
        assert all(age < 1.0 for age in ages.values())
        store.advance(30.0)
        ages = epoch_health(store.metrics_snapshot())
        assert all(29.0 < age < 32.0 for age in ages.values())

    def test_stale_heal_lag_observed(self):
        store = ReplicatedStore.create(9, seed=3)
        store.write({"x": 1}, via="n00")
        second = store.write({"y": 2}, via="n05")
        assert second.stale
        store.settle()
        summary = build_summary(store.metrics_snapshot())
        assert summary["staleness"]["marks"] >= len(second.stale)
        assert summary["staleness"]["healed"] >= len(second.stale)
        assert summary["staleness"]["heal_lag"]["max"] > 0.0

    def test_rpc_timeouts_counted_per_link(self):
        store = ReplicatedStore.create(5, seed=4)
        store.write({"x": 1})
        store.crash("n01")
        store.write({"y": 2})
        store.check_epoch()
        counters = store.metrics_snapshot()["counters"]
        timeouts = {split_key(k)[1]["dst"]: v for k, v in counters.items()
                    if split_key(k)[0] == "rpc_timeouts" and v}
        assert set(timeouts) == {"n01"}

    def test_metrics_do_not_change_protocol_behaviour(self):
        # determinism: instrumented and bare runs of the same seed make
        # identical protocol decisions
        outcomes = {}
        for enabled in (True, False):
            store = ReplicatedStore.create(7, seed=5, metrics=enabled)
            results = [store.write({"k": i}, via=f"n{i % 3:02d}")
                       for i in range(4)]
            store.crash("n06")
            store.check_epoch()
            results.append(store.write({"fin": 1}))
            outcomes[enabled] = (
                [(r.ok, r.version, r.case) for r in results],
                store.versions(), store.current_epoch())
        assert outcomes[True] == outcomes[False]
        store = ReplicatedStore.create(3, seed=6, metrics=False)
        store.write({"x": 1})
        assert store.metrics_snapshot()["counters"] == {}

    def test_shared_registry_across_stores(self):
        registry = MetricsRegistry()
        for seed in (1, 2):
            store = ReplicatedStore.create(3, seed=seed, metrics=registry)
            store.write({"s": seed})
        summary = build_summary(registry.snapshot())
        assert summary["ops"]["write"]["latency"]["count"] == 2
