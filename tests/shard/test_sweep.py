"""The shared epoch service: batched sweeps, repair scoping, election."""

from repro.shard import ShardedStore


def rpc_requests(store):
    return sum(1 for rec in store.trace.select(kind="send")
               if rec.detail.get("msg_kind") == "rpc-req")


class TestAmortizedChecking:
    def test_healthy_sweep_messages_scale_with_nodes_not_shards(self):
        # the tentpole claim: one sweep costs one request per NODE,
        # regardless of how many shards the keyspace is split into
        costs = {}
        for n_shards in (8, 64, 512):
            store = ShardedStore.create(6, n_shards=n_shards, seed=20,
                                        trace_enabled=True)
            store.trace.clear()
            sweep = store.sweep()
            assert sweep.ok and not sweep.repaired
            assert sweep.checked == n_shards
            costs[n_shards] = rpc_requests(store)
        assert costs[8] == costs[64] == costs[512] == 6, costs

    def test_sweep_reports_all_healthy(self):
        store = ShardedStore.create(5, n_shards=32, seed=21)
        sweep = store.sweep()
        assert sweep.ok
        assert sweep.healthy == 32
        assert not sweep.repaired and not sweep.failed

    def test_dirty_shards_get_reseeded_not_reinstalled(self):
        # a write whose quorum skipped a replica leaves that copy stale;
        # the sweep repairs it by propagation, without an epoch change
        store = ShardedStore.create(5, n_shards=8, seed=22,
                                    track_history=True)
        # two writers per key with different quorum salts, so the second
        # write catches (and marks) replicas the first one skipped
        for i in range(6):
            store.write(f"k{i}", {"v": i}, via="n00")
            store.write(f"k{i}", {"w": i}, via=f"n{(i % 4) + 1:02d}")
        stale_before = sum(
            sum(node.stable["sh_stale"].values())
            for node in store.nodes.values())
        assert stale_before > 0
        epochs_before = {s: store.current_epoch(s) for s in range(8)}
        sweep = store.sweep()
        assert sweep.ok and sweep.reseeded and not sweep.repaired
        store.advance(10)
        stale_after = sum(
            sum(node.stable["sh_stale"].values())
            for node in store.nodes.values())
        assert stale_after == 0
        for s in range(8):
            assert store.current_epoch(s) == epochs_before[s], s
        store.verify()


class TestRepairScoping:
    def test_crash_repairs_only_hosted_shards(self):
        store = ShardedStore.create(6, n_shards=32, seed=23)
        victim = "n05"
        hosted = set(store.map.hosted(victim))
        assert hosted and len(hosted) < 32  # partial replication
        store.crash(victim)
        sweep = store.sweep()
        assert sweep.ok
        assert set(sweep.repaired) == hosted
        # the victim is out of every repaired epoch
        for shard in sweep.repaired:
            elist, enumber = store.current_epoch(shard)
            assert victim not in elist and enumber == 1

    def test_recovery_readmits_via_sweep(self):
        store = ShardedStore.create(6, n_shards=32, seed=24,
                                    track_history=True)
        for i in range(10):
            store.write(f"k{i}", {"v": i})
        store.crash("n05")
        store.sweep()
        for i in range(10):
            store.write(f"k{i}", {"w": i})
        store.recover("n05")
        sweep = store.sweep()
        assert set(sweep.repaired) == set(store.map.hosted("n05"))
        store.settle()
        for shard in store.map.hosted("n05"):
            elist, enumber = store.current_epoch(shard)
            assert "n05" in elist
        for i in range(10):
            read = store.read(f"k{i}", via="n05")
            assert read.ok and read.value == {"v": i, "w": i}, i
        store.verify()

    def test_second_sweep_is_clean_after_repair(self):
        store = ShardedStore.create(6, n_shards=16, seed=25)
        store.crash("n05")
        first = store.sweep()
        assert first.repaired
        second = store.sweep()
        assert second.ok and not second.repaired
        assert second.healthy == 16


class TestSweeperElection:
    def test_highest_node_becomes_sole_initiator(self):
        store = ShardedStore.create(4, n_shards=16, seed=26,
                                    auto_sweep=True)
        store.advance(40)
        initiators = sorted(
            name for name, node in store.nodes.items()
            if node.volatile.get("initiator"))
        assert initiators == ["n03"]
        clean = store.metrics_snapshot()["counters"].get(
            "shard_sweeps{outcome=clean}", 0)
        assert clean >= 1

    def test_initiator_failover_and_demotion(self):
        store2 = ShardedStore.create(4, n_shards=16, seed=27,
                                     auto_sweep=True, track_history=True)
        store2.write("alpha", {"a": 1})
        store2.advance(40)
        store2.crash("n03")
        store2.advance(120)
        initiators = sorted(
            name for name, node in store2.nodes.items()
            if node.up and node.volatile.get("initiator"))
        assert initiators == ["n02"]
        # the stand-in's sweeps evicted the dead node from its shards
        for shard in store2.map.hosted("n03"):
            elist, _ = store2.current_epoch(shard)
            assert "n03" not in elist
        store2.recover("n03")
        store2.advance(120)
        initiators = sorted(
            name for name, node in store2.nodes.items()
            if node.volatile.get("initiator"))
        assert initiators == ["n03"]
        store2.settle()
        assert store2.read("alpha", via="n03").value == {"a": 1}
        store2.verify()
