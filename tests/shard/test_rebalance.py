"""Hot-shard detection, rebalance planning, and migration under chaos."""

from repro.chaos.nemesis import Nemesis
from repro.shard import (
    ShardedStore,
    hot_shards,
    node_loads,
    placement_fairness,
    plan_moves,
    shard_loads,
)
from repro.shard.map import ShardMap

NODES = tuple(f"n{i:02d}" for i in range(6))


class TestDetection:
    def test_shard_loads_parses_the_obs_counters(self):
        store = ShardedStore.create(5, n_shards=16, seed=30)
        store.write("alpha", {"a": 1})
        store.read("alpha")
        store.read("alpha")
        shard = store.shard_of("alpha")
        loads = shard_loads(store.metrics_snapshot())
        assert loads == {shard: 3}

    def test_mean_is_over_the_whole_shard_space(self):
        # load concentrated on one shard of many: with the mean taken
        # only over touched shards nothing would ever look hot
        assert hot_shards({0: 1000}, factor=4.0, min_ops=100,
                          n_shards=64) == [0]
        assert hot_shards({0: 1000}, factor=4.0, min_ops=100) == []

    def test_min_ops_suppresses_tiny_samples(self):
        assert hot_shards({0: 5}, factor=4.0, min_ops=100,
                          n_shards=64) == []

    def test_hottest_first(self):
        loads = {0: 500, 1: 900, 2: 700, 3: 1}
        assert hot_shards(loads, factor=2.0, min_ops=100,
                          n_shards=64) == [1, 2, 0]


class TestPlanning:
    def test_moves_improve_fairness(self):
        shard_map = ShardMap(NODES, 64, 3, seed=0)
        # background load everywhere plus two hot shards
        loads = {shard: 10 for shard in range(64)}
        loads[5] = 2000
        loads[9] = 1500
        before = placement_fairness(shard_map, loads)
        moves = plan_moves(shard_map, loads, factor=4.0, min_ops=100)
        assert moves
        for shard, new_replicas in moves:
            assert shard in (5, 9)
            shard_map.move(shard, new_replicas)
        assert placement_fairness(shard_map, loads) > before

    def test_plan_is_deterministic(self):
        loads = {shard: 10 for shard in range(64)}
        loads[5] = 2000
        a = plan_moves(ShardMap(NODES, 64, 3, seed=0), loads)
        b = plan_moves(ShardMap(NODES, 64, 3, seed=0), loads)
        assert a == b

    def test_no_op_when_nothing_is_hot(self):
        shard_map = ShardMap(NODES, 64, 3, seed=0)
        loads = {shard: 10 for shard in range(64)}
        assert plan_moves(shard_map, loads) == []

    def test_node_loads_counts_every_replica(self):
        shard_map = ShardMap(NODES, 8, 3, seed=0)
        loads = {0: 100}
        totals = node_loads(shard_map, loads)
        assert sum(totals.values()) == 300
        for name in shard_map.replicas(0):
            assert totals[name] == 100


class TestMigration:
    def test_migrate_moves_data_and_serves_reads(self):
        store = ShardedStore.create(6, n_shards=16, seed=31,
                                    track_history=True)
        keys = [f"k{i}" for i in range(40)]
        for i, key in enumerate(keys):
            store.write(key, {"v": i})
        shard = store.shard_of(keys[0])
        old = store.map.replicas(shard)
        new = tuple(sorted(set(store.node_names) - set(old)))[:3]
        result = store.migrate(shard, new)
        assert result.ok
        store.settle()
        store.sweep()   # second sweep completes the handover
        elist, _ = store.current_epoch(shard)
        assert set(elist) == set(new)
        for i, key in enumerate(keys):
            if store.shard_of(key) != shard:
                continue
            for via in new:
                read = store.read(key, via=via)
                assert read.ok and read.value == {"v": i}, (key, via)
        store.verify()

    def test_rebalance_end_to_end(self):
        store = ShardedStore.create(6, n_shards=16, seed=32,
                                    track_history=True)
        # hammer one key so its shard goes hot, plus moderate load on a
        # sibling shard that shares its replicas -- offloading the hot
        # shard to the quiet half of the cluster then genuinely improves
        # fairness (a lone hot shard with an idle background would just
        # relocate the imbalance, and the planner refuses such moves)
        hot_shard = store.shard_of("hot")          # shard 7 on n00/n03/n05
        assert store.shard_of("bg4") == 9
        assert store.map.replicas(9) == store.map.replicas(hot_shard)
        for i in range(60):
            store.write("hot", {"v": i})
        for i in range(15):
            store.write("bg4", {"v": i})
        before = store.map.replicas(hot_shard)
        moves = store.rebalance(factor=4.0, min_ops=10)
        assert [shard for shard, _ in moves] == [hot_shard]
        assert store.map.replicas(hot_shard) != before
        store.settle()
        store.sweep()
        assert store.read("hot").value == {"v": 59}
        store.verify()

    def test_crash_during_migration_keeps_reads_fresh(self):
        # nemesis kills an incoming replica the instant the migration
        # install begins; the transition must either abort cleanly or
        # complete without the victim -- never serve a stale read
        store = ShardedStore.create(6, n_shards=16, seed=33,
                                    trace_enabled=True,
                                    track_history=True)
        keys = [f"k{i}" for i in range(40)]
        for i, key in enumerate(keys):
            store.write(key, {"v": i})
        shard = store.shard_of(keys[0])
        old = store.map.replicas(shard)
        new = tuple(sorted(set(store.node_names) - set(old)))[:3]
        victim = new[0]
        nemesis = Nemesis(store.env, store.trace, store.nodes).attach()
        nemesis.crash_on("txn-begin", op_contains="-shmove",
                         target=victim, count=1)
        store.migrate(shard, new)
        assert nemesis.fired  # the crash really hit mid-install
        assert not store.nodes[victim].up
        store.advance(20)
        store.recover(victim)
        store.sweep()
        store.settle()
        store.sweep()
        elist, _ = store.current_epoch(shard)
        assert set(elist) == set(new)
        for i, key in enumerate(keys):
            if store.shard_of(key) != shard:
                continue
            for via in sorted(store.node_names):
                read = store.read(key, via=via)
                assert read.ok and read.value == {"v": i}, (key, via)
        store.verify()
