"""The sharded store: keyed operations, bounded state, fault tolerance."""

import pytest

from repro.core.config import ProtocolConfig
from repro.shard import ShardedStore


class TestBasicOperations:
    def test_write_then_read(self):
        store = ShardedStore.create(5, n_shards=16, seed=1,
                                    track_history=True)
        result = store.write("alpha", {"a": 1})
        assert result.ok and result.version == 1
        read = store.read("alpha")
        assert read.ok and read.value == {"a": 1}
        store.verify()

    def test_keys_version_independently(self):
        store = ShardedStore.create(5, n_shards=16, seed=2,
                                    track_history=True)
        for i in range(3):
            store.write("hot", {"k": i})
        store.write("cold", {"k": 0})
        assert store.read("hot").version == 3
        assert store.read("cold").version == 1
        store.verify()

    def test_partial_writes_merge(self):
        store = ShardedStore.create(5, n_shards=16, seed=3,
                                    track_history=True)
        store.write("alpha", {"a": 1}, via="n00")
        store.write("alpha", {"b": 2}, via="n04")
        store.settle()
        assert store.read("alpha").value == {"a": 1, "b": 2}
        store.verify()

    def test_read_unwritten_key_is_empty(self):
        store = ShardedStore.create(5, n_shards=16, seed=4)
        read = store.read("never-written")
        assert read.ok and read.value == {}

    def test_reads_route_via_any_node(self):
        store = ShardedStore.create(6, n_shards=32, seed=5,
                                    track_history=True)
        store.write("alpha", {"a": 1})
        store.settle()
        for name in store.node_names:
            read = store.read("alpha", via=name)
            assert read.ok and read.value == {"a": 1}, name
        store.verify()


class TestBoundedState:
    def test_reads_never_materialize_state(self):
        store = ShardedStore.create(5, n_shards=16, seed=6)
        for i in range(50):
            assert store.read(f"ghost{i}").ok
        assert store.resident_items() == 0

    def test_resident_state_bounded_by_written_keys(self):
        store = ShardedStore.create(8, n_shards=64, replication=3, seed=7)
        n_keys = 40
        for i in range(n_keys):
            store.write(f"k{i}", {"v": i})
        # each written key exists on at most `replication` nodes
        assert 0 < store.resident_items() <= 3 * n_keys

    def test_update_log_capacity_is_a_config_knob(self):
        config = ProtocolConfig(update_log_capacity=4)
        store = ShardedStore.create(5, n_shards=16, seed=8, config=config)
        for i in range(20):
            store.write("hot", {f"f{i}": i})
        assert store.max_update_log() <= 4
        # ...and the default keeps more history
        assert ProtocolConfig().update_log_capacity > 4

    def test_update_log_capacity_validated(self):
        with pytest.raises(ValueError):
            ProtocolConfig(update_log_capacity=-1).validate()

    def test_locks_are_pooled_and_released(self):
        store = ShardedStore.create(5, n_shards=16, seed=9)
        for i in range(20):
            store.write(f"k{i}", {"v": i})
            store.read(f"k{i}")
        store.advance(30)
        assert store.live_locks() == 0

    def test_coterie_cache_counters_exported(self):
        store = ShardedStore.create(5, n_shards=16, seed=10)
        for i in range(10):
            store.write(f"k{i}", {"v": i})
        counters = store.metrics_snapshot()["counters"]
        hits = counters.get("coterie_cache{outcome=hit}", 0)
        misses = counters.get("coterie_cache{outcome=miss}", 0)
        assert misses >= 1
        assert hits > misses  # repeated ops reuse compiled coteries

    def test_coterie_cache_capacity_validated(self):
        with pytest.raises(ValueError):
            ProtocolConfig(coterie_cache_capacity=0).validate()


class TestFaults:
    def test_write_survives_one_crash(self):
        store = ShardedStore.create(5, n_shards=16, seed=11,
                                    track_history=True)
        store.write("alpha", {"a": 1})
        store.crash("n04")
        result = store.write("alpha", {"b": 2})
        assert result.ok
        assert store.read("alpha").value == {"a": 1, "b": 2}
        store.verify()

    def test_crash_recover_heals_via_sweep(self):
        store = ShardedStore.create(5, n_shards=16, seed=12,
                                    track_history=True)
        for i in range(8):
            store.write(f"k{i}", {"v": i})
        store.crash("n04")
        sweep = store.sweep()
        assert sweep.ok
        for i in range(8):
            store.write(f"k{i}", {"w": i})
        store.recover("n04")
        store.sweep()
        store.settle()
        for i in range(8):
            read = store.read(f"k{i}", via="n04")
            assert read.ok and read.value == {"v": i, "w": i}, i
        store.verify()

    def test_no_quorum_fails_cleanly(self):
        store = ShardedStore.create(3, n_shards=4, replication=3, seed=13,
                                    track_history=True)
        store.write("alpha", {"a": 1})
        store.crash("n01", "n02")
        result = store.write("alpha", {"b": 2})
        assert not result.ok
        store.recover("n01", "n02")
        store.settle()
        assert store.read("alpha").value == {"a": 1}
        store.verify()
