"""Shard map: deterministic rendezvous placement and move bookkeeping."""

import random

import pytest

from repro.shard.map import ShardMap

NODES = tuple(f"n{i:02d}" for i in range(8))


class TestDeterminism:
    def test_same_inputs_same_placement(self):
        a = ShardMap(NODES, 128, 3, seed=7)
        b = ShardMap(NODES, 128, 3, seed=7)
        for shard in range(128):
            assert a.base_replicas(shard) == b.base_replicas(shard)

    def test_node_input_order_is_irrelevant(self):
        # placement depends on the *set* of nodes, never on the order
        # (or dict/set iteration order) they were supplied in
        shuffled = list(NODES)
        random.Random(3).shuffle(shuffled)
        a = ShardMap(NODES, 64, 3, seed=1)
        b = ShardMap(shuffled, 64, 3, seed=1)
        c = ShardMap(set(NODES), 64, 3, seed=1)
        for shard in range(64):
            assert a.base_replicas(shard) == b.base_replicas(shard)
            assert a.base_replicas(shard) == c.base_replicas(shard)

    def test_seed_changes_placement(self):
        a = ShardMap(NODES, 64, 3, seed=1)
        b = ShardMap(NODES, 64, 3, seed=2)
        assert any(a.base_replicas(s) != b.base_replicas(s)
                   for s in range(64))

    def test_golden_key_routing(self):
        # key -> shard is a pure function of the key and n_shards;
        # pin a few values so accidental hash-function changes surface
        shard_map = ShardMap(NODES, 64, 3, seed=0)
        golden = {"k0": 63, "k1": 41, "k42": 36, "user:alice": 54}
        for key, expected in golden.items():
            assert shard_map.shard_of(key) == expected, key

    def test_hosted_is_the_inverse_of_replicas(self):
        shard_map = ShardMap(NODES, 96, 3, seed=5)
        for name in NODES:
            for shard in shard_map.hosted(name):
                assert name in shard_map.replicas(shard)
        for shard in range(96):
            for name in shard_map.replicas(shard):
                assert shard in shard_map.hosted(name)


class TestPlacementShape:
    def test_replica_sets_are_sorted_subsets(self):
        shard_map = ShardMap(NODES, 64, 3, seed=0)
        for shard in range(64):
            replicas = shard_map.replicas(shard)
            assert len(replicas) == 3
            assert list(replicas) == sorted(replicas)
            assert set(replicas) <= set(NODES)

    def test_rendezvous_spreads_load(self):
        # with many shards every node should host a fair share: within
        # a factor of two of the mean, and nobody idle
        shard_map = ShardMap(NODES, 256, 3, seed=0)
        counts = shard_map.host_counts()
        mean = 256 * 3 / len(NODES)
        assert set(counts) == set(NODES)
        for name, count in counts.items():
            assert mean / 2 < count < mean * 2, (name, count)

    def test_replicas_for_key_matches_shard(self):
        shard_map = ShardMap(NODES, 64, 3, seed=0)
        key = "some-key"
        assert shard_map.replicas_for_key(key) == \
            shard_map.replicas(shard_map.shard_of(key))

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardMap(NODES, 0, 3)
        with pytest.raises(ValueError):
            ShardMap(NODES, 8, 0)
        with pytest.raises(ValueError):
            ShardMap(NODES, 8, len(NODES) + 1)
        with pytest.raises(ValueError):
            ShardMap((), 8, 1)


class TestMoves:
    def test_move_overrides_and_reverts(self):
        shard_map = ShardMap(NODES, 64, 3, seed=0)
        base = shard_map.base_replicas(10)
        new = tuple(sorted(set(NODES) - set(base)))[:3]
        shard_map.move(10, new)
        assert shard_map.replicas(10) == tuple(sorted(new))
        assert shard_map.base_replicas(10) == base
        assert 10 in shard_map.overrides
        for name in new:
            assert 10 in shard_map.hosted(name)
        # moving back to the base placement clears the override
        shard_map.move(10, base)
        assert 10 not in shard_map.overrides
        assert shard_map.replicas(10) == base

    def test_move_validates_members(self):
        shard_map = ShardMap(NODES, 64, 3, seed=0)
        with pytest.raises(ValueError):
            shard_map.move(0, ("n00", "nXX", "n01"))
        with pytest.raises(ValueError):
            shard_map.move(0, ())
        with pytest.raises(ValueError):
            shard_map.move(64, ("n00", "n01", "n02"))
