"""Tests for majority/weighted voting, tree, hierarchical, and ROWA
coteries, plus the axiom verifiers themselves."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coteries.base import CoterieError
from repro.coteries.hierarchical import HierarchicalCoterie, default_arities
from repro.coteries.majority import MajorityCoterie, WeightedVotingCoterie
from repro.coteries.properties import (
    minimal_quorums,
    quorums_intersect_everywhere,
    verify_coterie,
    verify_monotonicity,
)
from repro.coteries.rowa import ReadOneWriteAllCoterie
from repro.coteries.tree import TreeCoterie


def names(n):
    return [f"n{i:02d}" for i in range(n)]


class TestMajority:
    def test_default_sizes_match_paper(self):
        # Paper Section 1: voting quorum size floor((N+1)/2) in the
        # simplest case.
        for n in (3, 5, 7, 9, 15):
            coterie = MajorityCoterie(names(n))
            assert coterie.write_votes == (n + 1) // 2
            assert coterie.read_votes == (n + 1) // 2

    def test_even_n_write_majority(self):
        coterie = MajorityCoterie(names(4))
        assert coterie.write_votes == 3
        assert coterie.read_votes == 2

    def test_membership(self):
        coterie = MajorityCoterie(names(5))
        assert coterie.is_write_quorum(names(5)[:3])
        assert not coterie.is_write_quorum(names(5)[:2])
        assert coterie.is_read_quorum(names(5)[:3])

    def test_custom_asymmetric_quorums(self):
        coterie = MajorityCoterie(names(5), read_size=2, write_size=4)
        assert coterie.is_read_quorum(names(5)[:2])
        assert not coterie.is_write_quorum(names(5)[:3])
        assert coterie.is_write_quorum(names(5)[:4])

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(CoterieError):
            MajorityCoterie(names(5), read_size=2, write_size=3)  # r+w <= N
        with pytest.raises(CoterieError):
            MajorityCoterie(names(5), read_size=4, write_size=2)  # 2w <= N

    def test_quorum_function_sizes(self):
        coterie = MajorityCoterie(names(9))
        assert len(coterie.write_quorum("x")) == 5
        assert len(coterie.read_quorum("y")) == 5

    def test_find_write_quorum(self):
        coterie = MajorityCoterie(names(5))
        assert coterie.find_write_quorum(names(5)[:3]) == frozenset(names(5)[:3])
        assert coterie.find_write_quorum(names(5)[:2]) is None

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6, 7, 8, 9])
    def test_axioms(self, n):
        summary = verify_coterie(MajorityCoterie(names(n)))
        assert summary["min_write_size"] == n // 2 + 1

    def test_duplicate_names_rejected(self):
        with pytest.raises(CoterieError):
            MajorityCoterie(["a", "a", "b"])

    def test_empty_universe_rejected(self):
        with pytest.raises(CoterieError):
            MajorityCoterie([])


class TestWeightedVoting:
    def test_weights_shift_power(self):
        coterie = WeightedVotingCoterie(
            ["big", "s1", "s2"], weights={"big": 3, "s1": 1, "s2": 1})
        # total 5, w = 3: "big" alone is a write quorum
        assert coterie.is_write_quorum({"big"})
        assert not coterie.is_write_quorum({"s1", "s2"})

    def test_zero_weight_witness(self):
        coterie = WeightedVotingCoterie(
            ["a", "b", "w"], weights={"a": 1, "b": 1, "w": 0},
            read_votes=1, write_votes=2)
        assert not coterie.is_write_quorum({"w", "a"})
        assert coterie.is_write_quorum({"a", "b"})
        # quorum function never picks the zero-weight witness
        for i in range(5):
            assert "w" not in coterie.write_quorum(f"s{i}")

    def test_missing_weight_rejected(self):
        with pytest.raises(CoterieError):
            WeightedVotingCoterie(["a", "b"], weights={"a": 1})

    def test_negative_weight_rejected(self):
        with pytest.raises(CoterieError):
            WeightedVotingCoterie(["a", "b"], weights={"a": 1, "b": -1})

    def test_find_prefers_heavy_nodes(self):
        coterie = WeightedVotingCoterie(
            ["big", "s1", "s2", "s3"],
            weights={"big": 3, "s1": 1, "s2": 1, "s3": 1})
        found = coterie.find_write_quorum(["s1", "big", "s2", "s3"])
        assert "big" in found and len(found) <= 2

    def test_axioms_with_weights(self):
        coterie = WeightedVotingCoterie(
            names(5), weights={n: w for n, w in zip(names(5), [3, 2, 1, 1, 1])})
        verify_coterie(coterie)


class TestTree:
    def test_failure_free_quorum_is_root_leaf_path(self):
        tree = TreeCoterie(names(7), branching=2)  # perfect binary, depth 3
        quorum = tree.write_quorum("client")
        assert len(quorum) == tree.depth() == 3
        assert quorum[0] == tree.nodes[0]  # root first

    def test_root_failure_replaced_by_both_children_paths(self):
        tree = TreeCoterie(names(7), branching=2)
        root = tree.nodes[0]
        found = tree.find_write_quorum(set(names(7)) - {root})
        assert found is not None
        assert root not in found
        assert tree.is_write_quorum(found)
        assert len(found) == 4  # two paths of two below the root

    def test_leaf_level_majority_needed(self):
        tree = TreeCoterie(names(7), branching=2)
        leaves = set(names(7)[3:])
        # all leaves alone form a quorum (every internal node substituted)
        assert tree.is_write_quorum(leaves)
        # with the root down, quorums of *both* subtrees are required, so
        # additionally losing one whole subtree is fatal
        root = tree.nodes[0]
        internal = tree.nodes[1]
        kids = {tree.nodes[c] for c in tree.children(1)}
        dead = {root, internal} | kids
        assert tree.find_write_quorum(set(names(7)) - dead) is None
        # but the same subtree loss is survivable while the root is up
        assert tree.find_write_quorum(set(names(7)) - kids - {internal}) is not None

    @pytest.mark.parametrize("n,d", [(1, 2), (3, 2), (7, 2), (13, 3),
                                     (6, 2), (10, 3)])
    def test_axioms(self, n, d):
        verify_coterie(TreeCoterie(names(n), branching=d))

    def test_monotone(self):
        verify_monotonicity(TreeCoterie(names(15), branching=2))

    def test_generated_quorums_intersect(self):
        assert quorums_intersect_everywhere(TreeCoterie(names(31)))

    def test_bad_branching_rejected(self):
        with pytest.raises(CoterieError):
            TreeCoterie(names(3), branching=1)

    def test_find_is_sound(self):
        tree = TreeCoterie(names(15))
        for dead in (set(), {"n00"}, {"n00", "n01"}, set(names(15)[:7])):
            found = tree.find_write_quorum(set(names(15)) - dead)
            if found is not None:
                assert tree.is_write_quorum(found)
                assert not (found & dead)


class TestHierarchical:
    def test_kumar_motivating_example(self):
        # Three levels of 3 with w=2 everywhere: write quorum of 8 over 27.
        coterie = HierarchicalCoterie(names(27), arities=(3, 3, 3),
                                      write_thresholds=(2, 2, 2))
        assert coterie.min_write_quorum_size() == 8
        quorum = coterie.write_quorum("client")
        assert len(quorum) == 8
        assert coterie.is_write_quorum(quorum)
        # majority would need 14
        assert MajorityCoterie(names(27)).write_votes == 14

    def test_default_arities(self):
        assert default_arities(27) == (3, 3, 3)
        assert default_arities(9) == (3, 3)
        assert default_arities(7) == (7,)   # prime: flat majority
        assert default_arities(1) == (1,)

    def test_single_level_equals_majority(self):
        hqc = HierarchicalCoterie(names(5), arities=(5,))
        maj = MajorityCoterie(names(5))
        for subset in ([], names(5)[:2], names(5)[:3], names(5)):
            assert hqc.is_write_quorum(subset) == maj.is_write_quorum(subset)

    def test_arity_product_mismatch_rejected(self):
        with pytest.raises(CoterieError):
            HierarchicalCoterie(names(8), arities=(3, 3))

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(CoterieError):
            HierarchicalCoterie(names(9), arities=(3, 3),
                                write_thresholds=(1, 2))  # 2w <= d

    @pytest.mark.parametrize("n,arities", [(4, (2, 2)), (9, (3, 3)),
                                           (6, (2, 3)), (12, (3, 4))])
    def test_axioms(self, n, arities):
        verify_coterie(HierarchicalCoterie(names(n), arities=arities))

    def test_find_write_quorum_sound(self):
        coterie = HierarchicalCoterie(names(9), arities=(3, 3))
        available = set(names(9)) - {"n00", "n03"}
        found = coterie.find_write_quorum(available)
        assert found is not None and coterie.is_write_quorum(found)
        # losing 2 of 3 nodes in 2 of 3 groups kills the write quorum
        assert coterie.find_write_quorum(
            set(names(9)) - {"n00", "n01", "n03", "n04"}) is None


class TestRowa:
    def test_read_one(self):
        coterie = ReadOneWriteAllCoterie(names(5))
        assert coterie.is_read_quorum({"n03"})
        assert len(coterie.read_quorum("x")) == 1

    def test_write_all(self):
        coterie = ReadOneWriteAllCoterie(names(5))
        assert coterie.is_write_quorum(names(5))
        assert not coterie.is_write_quorum(names(5)[:4])
        assert coterie.write_quorum("x") == names(5)

    def test_single_failure_blocks_writes(self):
        coterie = ReadOneWriteAllCoterie(names(5))
        assert coterie.find_write_quorum(names(5)[1:]) is None
        assert coterie.find_read_quorum(names(5)[1:]) is not None

    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_axioms(self, n):
        summary = verify_coterie(ReadOneWriteAllCoterie(names(n)))
        assert summary["min_read_size"] == 1
        assert summary["min_write_size"] == n


class TestVerifiers:
    def test_minimal_quorums_rejects_huge_universe(self):
        with pytest.raises(CoterieError):
            minimal_quorums(lambda s: True, names(25))

    def test_minimal_quorums_finds_antichain(self):
        family = minimal_quorums(
            lambda s: len(s) >= 2, ["a", "b", "c"])
        assert sorted(sorted(q) for q in family) == [
            ["a", "b"], ["a", "c"], ["b", "c"]]

    def test_verify_coterie_catches_broken_intersection(self):
        with pytest.raises(CoterieError):
            verify_coterie(_broken())

    def test_verify_monotonicity_catches_non_monotone(self):
        class NonMonotone(MajorityCoterie):
            def is_read_quorum(self, subset):
                return len(self.restrict(subset)) == 2  # not monotone

        with pytest.raises(CoterieError):
            verify_monotonicity(NonMonotone(names(6)), samples=500)


def _broken():
    """A coterie whose write quorums do not intersect."""
    class Broken(MajorityCoterie):
        def is_write_quorum(self, subset):
            return bool(self.restrict(subset))

    return Broken(names(4))


class TestCrossFamilyProperties:
    """Hypothesis: every rule yields valid coteries at random sizes."""

    @given(st.integers(min_value=1, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_grid_axioms_random_n(self, n):
        from repro.coteries.grid import GridCoterie
        verify_coterie(GridCoterie(names(n)))

    @given(st.integers(min_value=1, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_majority_axioms_random_n(self, n):
        verify_coterie(MajorityCoterie(names(n)))

    @given(st.integers(min_value=1, max_value=10),
           st.integers(min_value=2, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_tree_axioms_random_n(self, n, d):
        verify_coterie(TreeCoterie(names(n), branching=d))

    @given(st.integers(min_value=2, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_grid_write_implies_read(self, n):
        from repro.coteries.grid import GridCoterie
        import itertools
        grid = GridCoterie(names(n))
        for size in range(n + 1):
            for combo in itertools.combinations(names(n), size):
                if grid.is_write_quorum(combo):
                    assert grid.is_read_quorum(combo)
