"""Differential testing: the paper's pseudo-code, transcribed literally,
against our GridCoterie implementation.

``define_grid_paper`` and ``is_write_quorum_paper`` below follow the
appendix/Section 5 pseudo-code line by line (DefineGrid, ordered-number,
the (i, j) coordinate formulas, COLUMN-COVER and COLUMNS bookkeeping, and
the ``{1..m} if j <= n-b else {1..m-1}`` full-column test).  Hypothesis
then drives both versions over random universes and subsets -- any
divergence is a transcription bug in one of them.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coteries.grid import GridCoterie, define_grid


def define_grid_paper(n_nodes: int):
    """The paper's DefineGrid, verbatim."""
    m = math.floor(math.sqrt(n_nodes))
    n = math.ceil(math.sqrt(n_nodes))
    if m * n < n_nodes:
        m = m + 1
    b = m * n - n_nodes
    return m, n, b


def is_write_quorum_paper(v: list, s: set) -> bool:
    """The paper's IsWriteQuorum, verbatim (with Neuman's optimisation)."""
    m, n, b = define_grid_paper(len(v))
    column_cover = set()
    columns = {j: set() for j in range(1, n + 1)}
    for node in s:
        if node not in v:
            continue  # "We assume that S ⊆ V"
        k = v.index(node) + 1          # ordered-number(V, s)
        i = (k - 1) // n + 1
        j = (k - 1) % n + 1
        column_cover.add(j)
        columns[j].add(i)
    if column_cover != set(range(1, n + 1)):
        return False
    for j in range(1, n + 1):
        wanted = set(range(1, m + 1)) if j <= n - b \
            else set(range(1, m))
        if columns[j] == wanted:
            return True
    return False


def is_read_quorum_paper(v: list, s: set) -> bool:
    """IsReadQuorum: 'disregard the part that involves COLUMNS'."""
    m, n, b = define_grid_paper(len(v))
    column_cover = set()
    for node in s:
        if node not in v:
            continue
        k = v.index(node) + 1
        j = (k - 1) % n + 1
        column_cover.add(j)
    return column_cover == set(range(1, n + 1))


def names(n):
    return [f"n{i:02d}" for i in range(n)]


class TestDefineGridDifferential:
    @given(st.integers(min_value=1, max_value=2000))
    def test_shapes_agree(self, n):
        shape = define_grid(n)
        assert (shape.m, shape.n, shape.b) == define_grid_paper(n)


class TestQuorumDifferential:
    @given(st.integers(min_value=1, max_value=24), st.data())
    @settings(max_examples=300, deadline=None)
    def test_write_quorum_agrees(self, n, data):
        universe = names(n)
        subset = {name for name in universe
                  if data.draw(st.booleans(), label=name)}
        grid = GridCoterie(universe, column_cover="physical")
        assert grid.is_write_quorum(subset) == \
            is_write_quorum_paper(universe, subset)

    @given(st.integers(min_value=1, max_value=24), st.data())
    @settings(max_examples=300, deadline=None)
    def test_read_quorum_agrees(self, n, data):
        universe = names(n)
        subset = {name for name in universe
                  if data.draw(st.booleans(), label=name)}
        grid = GridCoterie(universe, column_cover="physical")
        assert grid.is_read_quorum(subset) == \
            is_read_quorum_paper(universe, subset)

    @given(st.integers(min_value=1, max_value=20), st.integers(0, 1000))
    @settings(max_examples=100, deadline=None)
    def test_generated_quorums_validate_under_paper_rule(self, n, salt):
        universe = names(n)
        grid = GridCoterie(universe)
        assert is_write_quorum_paper(
            universe, set(grid.write_quorum(f"s{salt}")))
        assert is_read_quorum_paper(
            universe, set(grid.read_quorum(f"s{salt}")))

    @given(st.integers(min_value=1, max_value=16), st.data())
    @settings(max_examples=100, deadline=None)
    def test_outside_names_ignored_in_both(self, n, data):
        universe = names(n)
        subset = {name for name in universe
                  if data.draw(st.booleans(), label=name)}
        noisy = subset | {"alien1", "alien2"}
        grid = GridCoterie(universe)
        assert grid.is_write_quorum(noisy) == \
            is_write_quorum_paper(universe, noisy)
