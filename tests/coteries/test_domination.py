"""Coterie domination theory (Garcia-Molina & Barbara)."""

import pytest

from repro.coteries.base import CoterieError
from repro.coteries.domination import (
    dominate,
    dominating_witness,
    family_availability,
    is_dominated,
    transversals,
)
from repro.coteries.grid import GridCoterie
from repro.coteries.majority import MajorityCoterie
from repro.coteries.properties import minimal_quorums
from repro.coteries.rowa import ReadOneWriteAllCoterie
from repro.coteries.tree import TreeCoterie


def names(n):
    return [f"n{i:02d}" for i in range(n)]


class TestTransversals:
    def test_majority3_is_self_dual(self):
        coterie = MajorityCoterie(names(3))
        family = minimal_quorums(coterie.is_write_quorum, coterie.nodes)
        duals = transversals(family, coterie.nodes)
        assert set(duals) == set(family)  # pairs are their own transversals

    def test_simple_family(self):
        family = [frozenset("ab"), frozenset("ac")]
        duals = transversals(family, list("abc"))
        assert set(duals) == {frozenset("a"), frozenset("bc")}

    def test_empty_family_rejected(self):
        with pytest.raises(CoterieError):
            transversals([], list("ab"))

    def test_large_universe_refused(self):
        with pytest.raises(CoterieError):
            transversals([frozenset("a")], names(19))


class TestDomination:
    @pytest.mark.parametrize("n", [1, 3, 5, 7])
    def test_odd_majorities_are_non_dominated(self, n):
        assert not is_dominated(MajorityCoterie(names(n)))

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_even_majorities_are_dominated(self, n):
        # the tie-breaking half (what dynamic-linear voting exploits) is a
        # transversal containing no majority
        witness = dominating_witness(MajorityCoterie(names(n)))
        assert witness is not None
        assert len(witness) == n // 2

    def test_write_all_is_dominated_for_n_ge_2(self):
        assert is_dominated(ReadOneWriteAllCoterie(names(3)), kind="write")
        assert not is_dominated(ReadOneWriteAllCoterie(["solo"]))

    @pytest.mark.parametrize("n", [4, 6, 9])
    def test_grid_write_coteries_are_dominated(self, n):
        # the price of sqrt(N) quorums: e.g. for the 3x3 grid, a set with
        # one full row and parts of others hits every write quorum without
        # containing one
        assert is_dominated(GridCoterie(names(n)))

    def test_tree_coterie_non_dominated_for_perfect_binary(self):
        # Agrawal & El Abbadi prove their tree protocol's coterie is ND.
        assert not is_dominated(TreeCoterie(names(3)))
        assert not is_dominated(TreeCoterie(names(7)))

    def test_single_node_not_dominated(self):
        assert not is_dominated(MajorityCoterie(["only"]))


class TestDominate:
    def test_result_contains_no_witness(self):
        coterie = MajorityCoterie(names(4))
        family = dominate(coterie)
        from repro.coteries.domination import _family_witness
        assert _family_witness(family, coterie.nodes, 16) is None

    def test_dominating_family_strictly_more_available(self):
        coterie = GridCoterie(names(4))
        original = minimal_quorums(coterie.is_write_quorum, coterie.nodes)
        improved = dominate(coterie)
        p = 0.8
        original_availability = family_availability(original,
                                                    coterie.nodes, p)
        improved_availability = family_availability(improved,
                                                    coterie.nodes, p)
        assert improved_availability > original_availability

    def test_dominating_family_still_intersecting(self):
        coterie = MajorityCoterie(names(6))
        family = dominate(coterie)
        for q1 in family:
            for q2 in family:
                assert q1 & q2, (q1, q2)

    def test_nd_input_returned_unchanged(self):
        coterie = MajorityCoterie(names(5))
        family = dominate(coterie)
        original = minimal_quorums(coterie.is_write_quorum, coterie.nodes)
        assert set(family) == set(original)


class TestFamilyAvailability:
    def test_matches_formula_for_majority(self):
        from repro.availability.formulas import majority_availability
        coterie = MajorityCoterie(names(5))
        family = minimal_quorums(coterie.is_write_quorum, coterie.nodes)
        assert family_availability(family, coterie.nodes, 0.9) == \
            pytest.approx(majority_availability(5, 0.9))

    def test_bad_probability_rejected(self):
        with pytest.raises(CoterieError):
            family_availability([frozenset("a")], ["a"], 1.5)
