"""Golden equivalence: batch kernels vs the scalar quorum engine.

The :mod:`repro.coteries.batch` kernels must agree with the compiled
scalar :class:`~repro.coteries.base.QuorumEvaluator` bit for bit:

* on every one of the ``2^N`` masks for every registered family at
  every registered size (the lint registry's ``COTERIE_FAMILIES``);
* after randomized epoch rebinds at N = 25 and N = 49 for the families
  supporting :meth:`rebind_epoch` (grid, default majority);
* through both mask representations (integer arrays and pre-unpacked
  bit matrices) and for universes wider than 64 bits.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.coteries import CoterieError, GridCoterie, MajorityCoterie
from repro.coteries.batch import (
    BatchGridEvaluator,
    BatchVotingEvaluator,
    ScalarFallbackBatchEvaluator,
    batch_evaluator_for,
    pack_bits,
    pack_matrix,
    unpack_masks,
    unpack_words,
    word_count,
)
from repro.lint.coterie_check import COTERIE_FAMILIES

FAMILY_CASES = [(family, rule, n)
                for family, (rule, sizes) in COTERIE_FAMILIES.items()
                for n in sizes]


def _nodes(n):
    return [f"n{i:03d}" for i in range(n)]


def _scalar_tables(coterie, nodes):
    evaluator = coterie.compile(nodes)
    full = (1 << len(nodes)) - 1
    reads = np.empty(full + 1, dtype=bool)
    writes = np.empty(full + 1, dtype=bool)
    for mask in range(full + 1):
        reads[mask] = evaluator.is_read_quorum(mask)
        writes[mask] = evaluator.is_write_quorum(mask)
    return reads, writes


class TestExhaustiveEquivalence:
    @pytest.mark.parametrize("family,rule,n", FAMILY_CASES,
                             ids=[f"{f}-{n}" for f, _, n in FAMILY_CASES])
    def test_all_masks_match_scalar_engine(self, family, rule, n):
        nodes = _nodes(n)
        coterie = rule(nodes)
        reads, writes = _scalar_tables(coterie, nodes)
        batch = coterie.compile_batch(nodes)
        masks = np.arange(1 << n, dtype=np.uint64)
        assert (batch.is_read_quorum_batch(masks) == reads).all()
        assert (batch.is_write_quorum_batch(masks) == writes).all()

    @pytest.mark.parametrize("family,rule,n", FAMILY_CASES,
                             ids=[f"{f}-{n}" for f, _, n in FAMILY_CASES])
    def test_scalar_fallback_matches_specialized(self, family, rule, n):
        coterie = rule(_nodes(n))
        fallback = ScalarFallbackBatchEvaluator(coterie)
        batch = batch_evaluator_for(coterie)
        assert not isinstance(batch, ScalarFallbackBatchEvaluator)
        masks = np.arange(1 << n, dtype=np.uint64)
        assert (fallback.is_read_quorum_batch(masks)
                == batch.is_read_quorum_batch(masks)).all()
        assert (fallback.is_write_quorum_batch(masks)
                == batch.is_write_quorum_batch(masks)).all()

    def test_out_of_universe_bits_are_ignored(self):
        # compile over a wider universe: extra bits never affect answers
        nodes = _nodes(6)
        universe = _nodes(9)
        coterie = GridCoterie(nodes)
        batch = coterie.compile_batch(universe)
        scalar = coterie.compile(universe)
        rng = random.Random(5)
        masks = [rng.randrange(1 << 9) for _ in range(200)]
        got_w = batch.is_write_quorum_batch(np.array(masks, dtype=np.uint64))
        got_r = batch.is_read_quorum_batch(np.array(masks, dtype=np.uint64))
        for mask, w, r in zip(masks, got_w, got_r):
            assert w == scalar.is_write_quorum(mask)
            assert r == scalar.is_read_quorum(mask)


class TestEpochRebind:
    @pytest.mark.parametrize("rule,cls", [
        (GridCoterie, BatchGridEvaluator),
        (MajorityCoterie, BatchVotingEvaluator),
    ])
    @pytest.mark.parametrize("n", [25, 49])
    def test_randomized_rebind_matches_scalar(self, rule, cls, n):
        nodes = _nodes(n)
        scalar = rule(nodes).compile(nodes)
        batch = rule(nodes).compile_batch(nodes)
        assert isinstance(batch, cls) and batch.supports_rebind
        assert scalar.supports_rebind
        rng = random.Random(n)
        full = (1 << n) - 1
        for _ in range(25):
            # epochs need >= 1 member; bias towards mostly-up sets like
            # the dynamic protocol produces
            epoch = full & ~sum(1 << i for i in rng.sample(range(n),
                                                           rng.randrange(n)))
            if not epoch:
                epoch = full
            scalar.rebind_epoch(epoch)
            batch.rebind_epoch(epoch)
            probes = np.array([rng.randrange(1 << n) for _ in range(100)])
            probe_bits = unpack_masks(probes.tolist(), n)
            got_r = batch.read_bits(probe_bits)
            got_w = batch.write_bits(probe_bits)
            for mask, r, w in zip(probes.tolist(), got_r, got_w):
                assert r == scalar.is_read_quorum(int(mask))
                assert w == scalar.is_write_quorum(int(mask))

    def test_rebind_unsupported_families_raise(self):
        for family in ("tree", "wall", "rowa"):
            rule, sizes = COTERIE_FAMILIES[family]
            batch = rule(_nodes(sizes[-1])).compile_batch()
            assert not batch.supports_rebind
            with pytest.raises(CoterieError):
                batch.rebind_epoch(1)


class TestPackedWords:
    @pytest.mark.parametrize("family,rule,n", FAMILY_CASES,
                             ids=[f"{f}-{n}" for f, _, n in FAMILY_CASES])
    def test_packed_matches_bit_matrix_exhaustively(self, family, rule, n):
        # families without native word kernels go through the base
        # unpack-and-dispatch fallback, so every family must agree
        batch = rule(_nodes(n)).compile_batch()
        bits = batch.unpack(np.arange(1 << n, dtype=np.uint64))
        words = pack_matrix(bits)
        assert (batch.read_packed(words) == batch.read_bits(bits)).all()
        assert (batch.write_packed(words) == batch.write_bits(bits)).all()

    def test_grid_and_majority_have_native_word_kernels(self):
        assert GridCoterie(_nodes(9)).compile_batch().supports_packed
        assert MajorityCoterie(_nodes(9)).compile_batch().supports_packed

    @pytest.mark.parametrize("rule", [GridCoterie, MajorityCoterie])
    def test_rebind_keeps_packed_kernels_in_sync(self, rule):
        n = 70  # two words, so rebinds cross the word boundary
        nodes = _nodes(n)
        batch = rule(nodes).compile_batch(nodes)
        assert batch.supports_packed
        rng = random.Random(13)
        full = (1 << n) - 1
        for _ in range(10):
            epoch = full & ~sum(1 << i for i in rng.sample(range(n),
                                                           rng.randrange(n)))
            if not epoch:
                epoch = full
            batch.rebind_epoch(epoch)
            probes = [rng.randrange(full + 1) for _ in range(80)]
            bits = unpack_masks(probes, n)
            words = pack_matrix(bits)
            assert (batch.read_packed(words) == batch.read_bits(bits)).all()
            assert (batch.write_packed(words)
                    == batch.write_bits(bits)).all()

    def test_pack_matrix_roundtrip(self):
        rng = random.Random(3)
        for n_bits in (1, 63, 64, 65, 130):
            masks = [rng.randrange(1 << n_bits) for _ in range(40)]
            bits = unpack_masks(masks, n_bits)
            words = pack_matrix(bits)
            assert words.shape == (40, word_count(n_bits))
            assert (unpack_words(words, n_bits) == bits).all()
            # packed words are the little-endian limbs of the mask ints
            for mask, row in zip(masks, words):
                got = sum(int(w) << (64 * i) for i, w in enumerate(row))
                assert got == mask


class TestMaskConversion:
    def test_roundtrip_narrow_and_wide(self):
        rng = random.Random(11)
        for n_bits in (1, 7, 64, 65, 130):
            masks = [rng.randrange(1 << n_bits) for _ in range(50)]
            bits = unpack_masks(masks, n_bits)
            assert bits.shape == (50, n_bits)
            assert pack_bits(bits) == masks

    def test_numpy_integer_input(self):
        masks = np.array([0, 1, 5, (1 << 60) + 3], dtype=np.uint64)
        bits = unpack_masks(masks, 61)
        assert pack_bits(bits) == [int(m) for m in masks]

    def test_numpy_integers_refused_beyond_64_bits(self):
        with pytest.raises(CoterieError):
            unpack_masks(np.array([1], dtype=np.uint64), 65)

    def test_bit_matrix_passthrough_checks_width(self):
        bits = np.zeros((3, 9), dtype=bool)
        assert unpack_masks(bits, 9) is bits
        with pytest.raises(CoterieError):
            unpack_masks(bits, 10)

    def test_wide_universe_evaluation(self):
        # 70 nodes: the Python-int path is the only mask representation
        nodes = _nodes(70)
        coterie = MajorityCoterie(nodes)
        batch = coterie.compile_batch(nodes)
        full = (1 << 70) - 1
        rng = random.Random(2)
        masks = [0, full, full >> 1] + [rng.randrange(full + 1)
                                        for _ in range(40)]
        got = batch.is_write_quorum_batch(masks)
        for mask, w in zip(masks, got):
            live = frozenset(name for i, name in enumerate(nodes)
                             if mask >> i & 1)
            assert w == coterie.is_write_quorum(live)
