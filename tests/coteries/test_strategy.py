"""Tests for the workload-aware quorum strategy optimizer
(``repro.coteries.optimizer``): support soundness, deterministic
sampling, the read-one tier pricing, the strategy cache, and the
``plan_quorum(..., strategy=)`` wiring."""

import pytest

from repro.coteries import (
    CoterieError,
    GridCoterie,
    MajorityCoterie,
    TreeCoterie,
)
from repro.coteries.optimizer import (
    READ_ONE_MARGIN,
    Strategy,
    StrategyCache,
    enumerate_candidates,
    optimize_strategy,
)
from repro.coteries.planner import plan_quorum

NODES9 = [f"n{i:02d}" for i in range(9)]
NODES25 = [f"n{i:02d}" for i in range(25)]

FAMILIES = [
    ("grid", lambda nodes: GridCoterie(nodes)),
    ("majority", lambda nodes: MajorityCoterie(nodes)),
    ("tree", lambda nodes: TreeCoterie(nodes)),
]


class TestSupportSoundness:
    @pytest.mark.parametrize("name,make", FAMILIES)
    @pytest.mark.parametrize("fraction", [0.0, 0.5, 0.9, 1.0])
    def test_every_support_quorum_is_a_true_quorum(self, name, make,
                                                   fraction):
        coterie = make(NODES9)
        strategy = optimize_strategy(coterie, fraction, seed=3)
        for kind, predicate in (("read", coterie.is_read_quorum),
                                ("write", coterie.is_write_quorum)):
            support = strategy.support(kind)
            assert support
            for quorum in support:
                assert predicate(frozenset(quorum)), (kind, quorum)

    @pytest.mark.parametrize("name,make", FAMILIES)
    def test_weights_are_a_distribution(self, name, make):
        strategy = optimize_strategy(make(NODES9), 0.75, seed=0)
        for kind in ("read", "write"):
            weights = strategy.weights(kind)
            assert len(weights) == len(strategy.support(kind))
            assert all(w > 0 for w in weights)
            assert sum(weights) == pytest.approx(1.0)

    def test_large_n_pool_candidates_are_true_quorums(self):
        coterie = GridCoterie(NODES25)  # 25 > ENUMERATION_MAX_NODES
        for kind, predicate in (("read", coterie.is_read_quorum),
                                ("write", coterie.is_write_quorum)):
            candidates = enumerate_candidates(coterie, kind)
            assert candidates
            for quorum in candidates:
                assert predicate(frozenset(quorum))

    def test_large_n_strategy_builds_and_samples(self):
        coterie = GridCoterie(NODES25)
        strategy = optimize_strategy(coterie, 0.5, seed=1,
                                     allow_read_one=False)
        sampled = strategy.sample("write", salt="c", attempt=0)
        assert coterie.is_write_quorum(frozenset(sampled))

    def test_rejects_bad_read_fraction(self):
        coterie = GridCoterie(NODES9)
        with pytest.raises(CoterieError):
            optimize_strategy(coterie, -0.1)
        with pytest.raises(CoterieError):
            optimize_strategy(coterie, 1.1)

    def test_duplicate_support_entries_are_merged(self):
        quorum = tuple(sorted(NODES9[:5]))
        strategy = Strategy(NODES9, 0, 0.5, "test",
                            read_quorums=(quorum, quorum),
                            read_weights=(0.25, 0.75),
                            write_quorums=(tuple(NODES9),),
                            write_weights=(1.0,))
        assert strategy.read_quorums == (quorum,)
        assert strategy.read_weights == (1.0,)

    def test_negative_weight_rejected(self):
        with pytest.raises(CoterieError):
            Strategy(NODES9, 0, 0.5, "test",
                     read_quorums=(tuple(NODES9),),
                     read_weights=(-1.0,),
                     write_quorums=(tuple(NODES9),),
                     write_weights=(1.0,))


class TestSampling:
    def test_same_seed_sampling_is_bit_identical(self):
        coterie = GridCoterie(NODES9)
        a = optimize_strategy(coterie, 0.9, seed=7)
        b = optimize_strategy(coterie, 0.9, seed=7)
        for kind in ("read", "write"):
            for attempt in range(16):
                assert a.sample(kind, salt="n03", attempt=attempt) == \
                    b.sample(kind, salt="n03", attempt=attempt)

    def test_salt_and_attempt_give_independent_draws(self):
        strategy = optimize_strategy(GridCoterie(NODES9), 0.9, seed=0,
                                     allow_read_one=False)
        draws = {tuple(strategy.sample("read", salt=s, attempt=a))
                 for s in ("n00", "n01", "n02")
                 for a in range(8)}
        assert len(draws) > 1  # the distribution actually spreads

    def test_avoid_filters_the_support(self):
        coterie = GridCoterie(NODES9)
        strategy = optimize_strategy(coterie, 0.5, seed=0,
                                     allow_read_one=False)
        avoid = {NODES9[0]}
        for attempt in range(8):
            sampled = strategy.sample("read", avoid=avoid, salt="x",
                                      attempt=attempt)
            assert sampled is not None
            assert avoid.isdisjoint(sampled)
            assert coterie.is_read_quorum(frozenset(sampled))

    def test_avoid_exhausting_the_support_returns_none(self):
        strategy = optimize_strategy(GridCoterie(NODES9), 0.5, seed=0,
                                     allow_read_one=False)
        # every read quorum needs one node per column: avoiding a full
        # column leaves no support quorum standing
        column = set(GridCoterie(NODES9).columns[0])
        assert strategy.sample("read", avoid=column, salt="x") is None

    def test_rejects_bad_kind(self):
        strategy = optimize_strategy(GridCoterie(NODES9), 0.5)
        with pytest.raises(CoterieError):
            strategy.sample("scan")

    def test_pick_read_replica_is_deterministic_and_respects_avoid(self):
        strategy = optimize_strategy(GridCoterie(NODES9), 0.9, seed=5,
                                     force_read_one=True)
        picks = [strategy.pick_read_replica(salt="c", attempt=a)
                 for a in range(16)]
        replay = [strategy.pick_read_replica(salt="c", attempt=a)
                  for a in range(16)]
        assert picks == replay
        assert all(p in NODES9 for p in picks)
        assert len(set(picks)) > 1  # spreads over replicas
        avoid = set(NODES9[:8])
        assert strategy.pick_read_replica(avoid=avoid) == NODES9[8]
        assert strategy.pick_read_replica(avoid=set(NODES9)) is None


class TestReadOneTier:
    def test_tier_engages_on_read_heavy_grid(self):
        strategy = optimize_strategy(GridCoterie(NODES9), 0.9, seed=0)
        assert strategy.read_one_tier
        # write-all: the single write quorum covers every node
        assert strategy.write_quorums == (tuple(NODES9),)
        # tier load is exactly fr/N + (1 - fr)
        assert strategy.max_load == pytest.approx(0.9 / 9 + 0.1)

    def test_tier_stays_off_at_two_to_one_grid(self):
        # the 3x3 grid's busiest-node loads cross at read fraction 2/3;
        # at (and below) the crossover the margin keeps the quorum
        # strategy, whose writes tolerate failures
        strategy = optimize_strategy(GridCoterie(NODES9), 2.0 / 3.0, seed=0)
        assert not strategy.read_one_tier
        assert len(strategy.write_quorums) > 1

    def test_allow_read_one_false_disables_the_tier(self):
        strategy = optimize_strategy(GridCoterie(NODES9), 0.95, seed=0,
                                     allow_read_one=False)
        assert not strategy.read_one_tier

    def test_force_read_one_overrides_the_pricing(self):
        strategy = optimize_strategy(GridCoterie(NODES9), 0.1, seed=0,
                                     force_read_one=True)
        assert strategy.read_one_tier

    def test_tier_keeps_optimized_read_support_as_fallback(self):
        coterie = GridCoterie(NODES9)
        strategy = optimize_strategy(coterie, 0.9, seed=0)
        assert strategy.read_one_tier
        sampled = strategy.sample("read", salt="x", attempt=0)
        assert coterie.is_read_quorum(frozenset(sampled))

    def test_margin_is_respected(self):
        # a mix where the tier wins but by less than the margin keeps
        # the quorum strategy: find it by scanning near the crossover
        coterie = GridCoterie(NODES9)
        engaged = [optimize_strategy(coterie, fr / 100.0).read_one_tier
                   for fr in range(60, 100, 2)]
        # monotone: once the tier engages it stays engaged as the mix
        # gets more read-heavy
        assert engaged == sorted(engaged)
        assert engaged[-1] and not engaged[0]
        margin_fr = 2.0 / 3.0 + 0.01
        near = optimize_strategy(coterie, margin_fr)
        tier_load = margin_fr / 9 + (1.0 - margin_fr)
        if tier_load >= near.max_load * (1.0 - READ_ONE_MARGIN):
            assert not near.read_one_tier


class TestLoads:
    def test_lp_strategy_beats_the_singleton_strategy(self):
        coterie = GridCoterie(NODES9)
        strategy = optimize_strategy(coterie, 0.5, seed=0,
                                     allow_read_one=False)
        # the canonical planner uses one quorum per (salt, attempt); a
        # fixed single pair concentrates load 0.5 + 0.5 on the overlap
        singleton = Strategy(
            NODES9, 0, 0.5, "test",
            read_quorums=(tuple(sorted(coterie.read_quorum(salt="x"))),),
            read_weights=(1.0,),
            write_quorums=(tuple(sorted(coterie.write_quorum(salt="x"))),),
            write_weights=(1.0,))
        assert strategy.max_load < singleton.max_load

    def test_grid_lp_load_matches_the_analytic_value(self):
        # 3x3 grid at fr = 2/3: reads cost 3 nodes, writes 5, and the LP
        # balances both distributions perfectly: (2/3*3 + 1/3*5)/9
        strategy = optimize_strategy(GridCoterie(NODES9), 2.0 / 3.0,
                                     allow_read_one=False)
        if strategy.source == "lp":
            assert strategy.max_load == pytest.approx(11.0 / 27.0, abs=1e-6)

    def test_search_fallback_builds_a_sound_strategy(self, monkeypatch):
        import repro.coteries.optimizer as optimizer
        monkeypatch.setattr(optimizer, "_linprog_or_none", lambda: None)
        coterie = GridCoterie(NODES9)
        strategy = optimize_strategy(coterie, 0.5, seed=0,
                                     allow_read_one=False)
        assert strategy.source == "search"
        for kind, predicate in (("read", coterie.is_read_quorum),
                                ("write", coterie.is_write_quorum)):
            assert sum(strategy.weights(kind)) == pytest.approx(1.0)
            for quorum in strategy.support(kind):
                assert predicate(frozenset(quorum))

    def test_latency_scores_tilt_toward_fast_quorums(self):
        coterie = GridCoterie(NODES9)
        # one grid column is 10x slower: its quorums should lose weight
        slow = set(coterie.columns[0])
        scores = {name: (0.1 if name in slow else 0.01) for name in NODES9}
        tilted = optimize_strategy(coterie, 0.5, scores=scores,
                                   allow_read_one=False)
        if tilted.source == "lp":
            slow_weight = sum(
                w for q, w in zip(tilted.read_quorums, tilted.read_weights)
                if slow.intersection(q))
            flat = optimize_strategy(coterie, 0.5, allow_read_one=False)
            flat_slow = sum(
                w for q, w in zip(flat.read_quorums, flat.read_weights)
                if slow.intersection(q))
            assert slow_weight <= flat_slow + 1e-9

    def test_describe_is_json_able(self):
        import json

        strategy = optimize_strategy(GridCoterie(NODES9), 0.9, seed=2)
        described = json.loads(json.dumps(strategy.describe()))
        assert described["read_one_tier"] is True
        assert described["max_load"] == pytest.approx(0.2)


class TestStrategyCache:
    def test_same_bucket_hits_the_cache(self):
        cache = StrategyCache(seed=0, buckets=16)
        coterie = GridCoterie(NODES9)
        a = cache.strategy_for(coterie, 0.50)
        b = cache.strategy_for(coterie, 0.51)  # same 1/16 bucket
        assert a is b
        assert len(cache) == 1

    def test_different_bucket_rebuilds(self):
        cache = StrategyCache(seed=0, buckets=16)
        coterie = GridCoterie(NODES9)
        a = cache.strategy_for(coterie, 0.5)
        b = cache.strategy_for(coterie, 0.9)
        assert a is not b
        assert len(cache) == 2

    def test_allow_flag_is_part_of_the_key(self):
        cache = StrategyCache(seed=0)
        coterie = GridCoterie(NODES9)
        tiered = cache.strategy_for(coterie, 0.9, allow_read_one=True)
        plain = cache.strategy_for(coterie, 0.9, allow_read_one=False)
        assert tiered.read_one_tier and not plain.read_one_tier

    def test_rebuild_counter_counts_builds_not_hits(self):
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        cache = StrategyCache(seed=0, metrics=metrics)
        coterie = GridCoterie(NODES9)
        cache.strategy_for(coterie, 0.5)
        cache.strategy_for(coterie, 0.5)
        cache.strategy_for(coterie, 0.9)
        assert metrics.snapshot()["counters"]["strategy_rebuilds"] == 2

    def test_lru_evicts_least_recently_used(self):
        cache = StrategyCache(seed=0, capacity=2)
        grid = GridCoterie(NODES9)
        majority = MajorityCoterie(NODES9)
        a = cache.strategy_for(grid, 0.5)
        cache.strategy_for(majority, 0.5)
        cache.strategy_for(grid, 0.5)      # touch: majority is now LRU
        cache.strategy_for(grid, 0.9)      # evicts the majority entry
        assert len(cache) == 2
        assert cache.strategy_for(grid, 0.5) is a

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            StrategyCache(capacity=0)


class TestPlannerWiring:
    def test_plan_quorum_returns_the_strategy_sample(self):
        coterie = GridCoterie(NODES9)
        strategy = optimize_strategy(coterie, 0.5, seed=0,
                                     allow_read_one=False)
        for kind in ("read", "write"):
            for attempt in range(4):
                plan = plan_quorum(coterie, kind, salt="n00",
                                   attempt=attempt, strategy=strategy)
                assert plan == strategy.sample(kind, salt="n00",
                                               attempt=attempt)

    def test_exhausted_strategy_falls_through_to_the_planner(self):
        coterie = GridCoterie(NODES9)
        strategy = optimize_strategy(coterie, 0.5, seed=0,
                                     allow_read_one=False)
        # avoiding a full column exhausts the read support; the call
        # must still return a true quorum (the constructive fallback)
        column = set(coterie.columns[0])
        plan = plan_quorum(coterie, "read", avoid=column, salt="x",
                           strategy=strategy)
        assert coterie.is_read_quorum(frozenset(plan))

    def test_strategy_plan_avoids_suspects(self):
        coterie = GridCoterie(NODES9)
        strategy = optimize_strategy(coterie, 0.5, seed=0,
                                     allow_read_one=False)
        avoid = {NODES9[4]}
        for attempt in range(6):
            plan = plan_quorum(coterie, "read", avoid=avoid, salt="x",
                               attempt=attempt, strategy=strategy)
            assert avoid.isdisjoint(plan)
            assert coterie.is_read_quorum(frozenset(plan))
