"""Tests for the liveness-aware quorum planner and the compiled-coterie
LRU cache (``repro.coteries.planner``)."""

import pytest

from repro.coteries import (
    GridCoterie,
    MajorityCoterie,
    ReadOneWriteAllCoterie,
    TreeCoterie,
    WeightedVotingCoterie,
)
from repro.coteries.planner import (
    CompiledCoterieCache,
    minimal_quorum,
    plan_quorum,
)

NODES9 = [f"n{i:02d}" for i in range(9)]
NODES25 = [f"n{i:02d}" for i in range(25)]

FAMILIES = [
    ("grid", lambda nodes: GridCoterie(nodes)),
    ("majority", lambda nodes: MajorityCoterie(nodes)),
    ("tree", lambda nodes: TreeCoterie(nodes)),
    ("rowa", lambda nodes: ReadOneWriteAllCoterie(nodes)),
]


class TestMinimalQuorum:
    @pytest.mark.parametrize("name,make", FAMILIES)
    @pytest.mark.parametrize("kind", ["read", "write"])
    def test_result_is_a_minimal_quorum(self, name, make, kind):
        coterie = make(NODES9)
        quorum = minimal_quorum(coterie, NODES9, kind)
        assert quorum is not None
        is_quorum = (coterie.is_write_quorum if kind == "write"
                     else coterie.is_read_quorum)
        assert is_quorum(quorum)
        # minimal: removing any single member breaks the quorum
        for member in quorum:
            assert not is_quorum(quorum - {member})

    def test_respects_available_subset(self):
        coterie = MajorityCoterie(NODES9)
        available = NODES9[:7]
        quorum = minimal_quorum(coterie, available, "write")
        assert quorum is not None and quorum <= set(available)

    def test_none_when_no_quorum_available(self):
        coterie = MajorityCoterie(NODES9)
        assert minimal_quorum(coterie, NODES9[:4], "write") is None

    def test_none_when_grid_column_dead(self):
        coterie = GridCoterie(NODES9)
        # remove an entire column: no read quorum can exist
        dead_column = set(coterie.columns[0])
        available = [n for n in NODES9 if n not in dead_column]
        assert minimal_quorum(coterie, available, "read") is None

    def test_salt_rotates_the_choice(self):
        coterie = MajorityCoterie(NODES25)
        picks = {minimal_quorum(coterie, NODES25, "write", salt=s)
                 for s in ("a", "b", "c", "d")}
        assert len(picks) > 1  # different salts shrink toward different quorums

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            minimal_quorum(MajorityCoterie(NODES9), NODES9, "scan")


class TestPlanQuorum:
    @pytest.mark.parametrize("name,make", FAMILIES)
    @pytest.mark.parametrize("kind", ["read", "write"])
    def test_empty_avoid_is_exactly_the_blind_draw(self, name, make, kind):
        coterie = make(NODES9)
        for salt in ("n00", "n05"):
            for attempt in (0, 1, 7):
                draw = (coterie.write_quorum(salt=salt, attempt=attempt)
                        if kind == "write"
                        else coterie.read_quorum(salt=salt, attempt=attempt))
                plan = plan_quorum(coterie, kind, avoid=(), salt=salt,
                                   attempt=attempt)
                assert plan == draw

    @pytest.mark.parametrize("name,make", [f for f in FAMILIES])
    def test_plan_avoids_suspects_when_possible(self, name, make):
        coterie = make(NODES25)
        # spread suspects, but keep the grid's last column fully live so
        # a suspect-free write quorum exists for every family
        avoid = {"n00", "n05", "n10", "n15", "n01"}
        for kind in ("read", "write"):
            plan = plan_quorum(coterie, kind, avoid=avoid, salt="x")
            is_quorum = (coterie.is_write_quorum if kind == "write"
                         else coterie.is_read_quorum)
            assert is_quorum(plan)
            if name != "rowa" or kind != "write":  # ROWA writes need everyone
                assert avoid.isdisjoint(plan)

    def test_plan_is_always_a_quorum_even_on_fallback(self):
        coterie = MajorityCoterie(NODES9)
        # 6 of 9 suspected: the rest cannot form a write quorum, so the
        # planner must fall back to the blind draw rather than fail
        avoid = set(NODES9[:6])
        plan = plan_quorum(coterie, "write", avoid=avoid, salt="x")
        assert coterie.is_write_quorum(plan)
        assert avoid & set(plan)  # the fallback necessarily overlaps

    def test_grid_write_plan_contains_full_live_column(self):
        coterie = GridCoterie(NODES25)
        avoid = {coterie.columns[0][0], coterie.columns[1][0]}
        plan = plan_quorum(coterie, "write", avoid=avoid, salt="x")
        assert coterie.is_write_quorum(plan)
        assert avoid.isdisjoint(plan)
        assert any(set(column) <= set(plan) for column in coterie.columns)

    def test_constructive_plan_is_canonical(self):
        # With the same suspicion set, every coordinator gets the same
        # plan regardless of salt or attempt: a stable quorum keeps the
        # unpolled live nodes from churning in and out of the write set
        # (each rotation marks the previous spectators stale and costs
        # catch-up propagation).
        coterie = MajorityCoterie(NODES25)
        avoid = {"n00", "n05", "n10"}
        plans = {tuple(plan_quorum(coterie, "write", avoid=avoid,
                                   salt=salt, attempt=attempt))
                 for salt in ("a", "b", "c")
                 for attempt in (0, 3, 11)}
        assert len(plans) == 1

    def test_weighted_voting_skips_zero_weight_nodes(self):
        weights = {name: (0 if name == "n01" else 1) for name in NODES9}
        coterie = WeightedVotingCoterie(NODES9, weights=weights)
        plan = plan_quorum(coterie, "write", avoid={"n02"}, salt="x")
        assert coterie.is_write_quorum(plan)
        assert "n01" not in plan and "n02" not in plan

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            plan_quorum(MajorityCoterie(NODES9), "scan")


class TestScoreFilterRegression:
    """Pin the unknown-peer semantics of the ranked plan (the previous
    ``score > 0.0`` filter silently dropped peers whose latency EWMA
    was exactly 0.0 and let all-equal non-zero maps bypass the
    documented blind-draw property)."""

    @pytest.mark.parametrize("kind", ["read", "write"])
    def test_all_equal_nonzero_scores_are_exactly_the_blind_draw(self, kind):
        coterie = GridCoterie(NODES9)
        scores = {name: 0.005 for name in NODES9}
        for salt in ("n00", "n07"):
            for attempt in (0, 3, 11):
                draw = (coterie.write_quorum(salt=salt, attempt=attempt)
                        if kind == "write"
                        else coterie.read_quorum(salt=salt, attempt=attempt))
                plan = plan_quorum(coterie, kind, salt=salt,
                                   attempt=attempt, scores=scores)
                assert plan == draw

    def test_measured_zero_ties_with_unknown_peers(self):
        coterie = GridCoterie(NODES9)
        # two peers measured at exactly 0.0, the rest unmeasured: every
        # rank is UNKNOWN_SCORE, so this must be the blind draw too --
        # not a partially filtered map routed through the ranked path
        scores = {"n00": 0.0, "n04": 0.0}
        for attempt in (0, 2):
            draw = coterie.read_quorum(salt="s", attempt=attempt)
            assert plan_quorum(coterie, "read", salt="s", attempt=attempt,
                               scores=scores) == draw

    def test_measured_zero_peer_is_preferred_not_dropped(self):
        coterie = GridCoterie(NODES9)
        # one column scored slow except a single 0.0-scored member: the
        # ranked plan must pick that member for its column (a filter
        # that drops 0.0 entries cannot see the preference)
        column = coterie.columns[0]
        scores = {name: 0.1 for name in column}
        scores[column[1]] = 0.0
        for attempt in range(4):
            plan = plan_quorum(coterie, "read", salt="x", attempt=attempt,
                               scores=scores)
            assert column[1] in plan
            assert coterie.is_read_quorum(frozenset(plan))

    def test_distinct_scores_still_rank(self):
        coterie = GridCoterie(NODES9)
        # make one member of each column clearly fastest: the ranked
        # read plan is exactly those members, regardless of salt
        fast = [column[2] for column in coterie.columns]
        scores = {name: (0.001 if name in fast else 0.1)
                  for name in NODES9}
        for salt in ("a", "b"):
            plan = plan_quorum(coterie, "read", salt=salt, scores=scores)
            assert sorted(plan) == sorted(fast)


class TestCompiledCoterieCache:
    def test_same_epoch_list_returns_same_instances(self):
        cache = CompiledCoterieCache(GridCoterie)
        coterie = cache.coterie(NODES9)
        evaluator = cache.evaluator(NODES9)
        assert cache.coterie(list(NODES9)) is coterie
        assert cache.evaluator(list(NODES9)) is evaluator

    def test_evaluator_compiled_lazily(self):
        cache = CompiledCoterieCache(GridCoterie)
        cache.coterie(NODES9)
        key = tuple(NODES9)
        assert cache._entries[key][1] is None
        cache.evaluator(NODES9)
        assert cache._entries[key][1] is not None

    def test_lru_evicts_least_recently_used(self):
        cache = CompiledCoterieCache(MajorityCoterie, capacity=2)
        a, b, c = NODES9[:3], NODES9[3:6], NODES9[6:9]
        cache.coterie(a)
        cache.coterie(b)
        cache.coterie(a)      # touch a: b is now least recently used
        cache.coterie(c)      # evicts b, not a
        assert a in cache and c in cache and b not in cache
        assert len(cache) == 2

    def test_eviction_is_one_at_a_time(self):
        cache = CompiledCoterieCache(MajorityCoterie, capacity=3)
        lists = [NODES9[i:i + 3] for i in range(6)]
        kept = [cache.coterie(epoch) for epoch in lists]
        assert len(cache) == 3
        # the three most recent survive, with identity preserved
        for epoch, coterie in zip(lists[-3:], kept[-3:]):
            assert epoch in cache
            assert cache.coterie(epoch) is coterie

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            CompiledCoterieCache(GridCoterie, capacity=0)
