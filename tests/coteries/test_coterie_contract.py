"""The Coterie contract, enforced uniformly across every implementation.

Any class implementing :class:`repro.coteries.base.Coterie` must satisfy
the same obligations; this module checks them all in one parametrized
matrix so a new coterie family cannot ship half a contract.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coteries.composite import CompositeCoterie
from repro.coteries.grid import GridCoterie
from repro.coteries.hierarchical import HierarchicalCoterie, default_arities
from repro.coteries.majority import MajorityCoterie, WeightedVotingCoterie
from repro.coteries.rowa import ReadOneWriteAllCoterie
from repro.coteries.tree import TreeCoterie
from repro.coteries.wall import WallCoterie


def names(n):
    return [f"n{i:02d}" for i in range(n)]


def build(kind, n):
    nodes = names(n)
    if kind == "grid":
        return GridCoterie(nodes)
    if kind == "grid-full":
        return GridCoterie(nodes, column_cover="full")
    if kind == "majority":
        return MajorityCoterie(nodes)
    if kind == "weighted":
        weights = {name: 1 + (i % 3) for i, name in enumerate(nodes)}
        return WeightedVotingCoterie(nodes, weights=weights)
    if kind == "tree":
        return TreeCoterie(nodes)
    if kind == "hierarchical":
        return HierarchicalCoterie(nodes, arities=default_arities(n))
    if kind == "rowa":
        return ReadOneWriteAllCoterie(nodes)
    if kind == "wall":
        return WallCoterie(nodes)
    if kind == "composite":
        groups = max(1, min(3, n))
        return CompositeCoterie(nodes, MajorityCoterie, MajorityCoterie,
                                n_groups=groups)
    raise ValueError(kind)


KINDS = ["grid", "grid-full", "majority", "weighted", "tree",
         "hierarchical", "rowa", "wall", "composite"]
SIZES = [1, 2, 5, 9]


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("n", SIZES)
class TestContract:
    def test_quorum_function_satisfies_predicates(self, kind, n):
        coterie = build(kind, n)
        for salt in ("a", "b", "client-7"):
            for attempt in (0, 1, 5):
                read = coterie.read_quorum(salt, attempt)
                write = coterie.write_quorum(salt, attempt)
                assert coterie.is_read_quorum(read), (salt, attempt)
                assert coterie.is_write_quorum(write), (salt, attempt)
                assert set(read) <= set(coterie.nodes)
                assert set(write) <= set(coterie.nodes)

    def test_quorum_function_deterministic(self, kind, n):
        first = build(kind, n)
        second = build(kind, n)
        assert first.write_quorum("x", 2) == second.write_quorum("x", 2)
        assert first.read_quorum("y", 1) == second.read_quorum("y", 1)

    def test_full_universe_is_always_a_quorum(self, kind, n):
        coterie = build(kind, n)
        assert coterie.is_read_quorum(coterie.nodes)
        assert coterie.is_write_quorum(coterie.nodes)

    def test_empty_set_is_never_a_quorum(self, kind, n):
        coterie = build(kind, n)
        assert not coterie.is_read_quorum(())
        assert not coterie.is_write_quorum(())

    def test_find_on_full_universe_succeeds(self, kind, n):
        coterie = build(kind, n)
        read = coterie.find_read_quorum(coterie.nodes)
        write = coterie.find_write_quorum(coterie.nodes)
        assert read is not None and coterie.is_read_quorum(read)
        assert write is not None and coterie.is_write_quorum(write)

    def test_find_on_empty_set_fails(self, kind, n):
        coterie = build(kind, n)
        assert coterie.find_read_quorum(()) is None
        assert coterie.find_write_quorum(()) is None

    def test_write_read_relationship(self, kind, n):
        # The coterie axioms only require read/write *intersection*; most
        # families happen to build write quorums that contain read quorums
        # (the paper's grid does so by construction), but the crumbling
        # wall is an honest counterexample: a full low row plus reps below
        # it covers no rows above.  Verify the property where promised and
        # the counterexample where not.
        coterie = build(kind, n)
        write = coterie.write_quorum("probe")
        if kind == "wall":
            read = coterie.read_quorum("probe")
            assert set(read) & set(write), "axiom: read meets write"
        else:
            assert coterie.is_read_quorum(write)


@pytest.mark.parametrize("kind", KINDS)
class TestContractRandomised:
    @given(n=st.integers(min_value=1, max_value=10), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_find_is_sound_and_complete(self, kind, n, data):
        coterie = build(kind, n)
        available = frozenset(
            name for name in coterie.nodes
            if data.draw(st.booleans(), label=name))
        for predicate, find in (
                (coterie.is_read_quorum, coterie.find_read_quorum),
                (coterie.is_write_quorum, coterie.find_write_quorum)):
            found = find(available)
            if found is None:
                assert not predicate(available)
            else:
                assert found <= available
                assert predicate(found)

    @given(n=st.integers(min_value=1, max_value=10), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_predicates_monotone(self, kind, n, data):
        coterie = build(kind, n)
        smaller = frozenset(
            name for name in coterie.nodes
            if data.draw(st.booleans(), label=f"s-{name}"))
        larger = smaller | frozenset(
            name for name in coterie.nodes
            if data.draw(st.booleans(), label=f"l-{name}"))
        for predicate in (coterie.is_read_quorum, coterie.is_write_quorum):
            if predicate(smaller):
                assert predicate(larger)
