"""Tests for DefineGrid and the grid coterie (paper Section 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coteries.base import CoterieError
from repro.coteries.grid import GridCoterie, GridShape, define_grid
from repro.coteries.properties import (
    minimal_quorums,
    quorums_intersect_everywhere,
    verify_coterie,
    verify_monotonicity,
)


def names(n):
    return [f"n{i:02d}" for i in range(n)]


class TestDefineGrid:
    def test_figure_1_grid_for_14_nodes(self):
        # Paper Figure 1: N=14 is a 4x4 grid with two unoccupied positions.
        assert define_grid(14) == GridShape(m=4, n=4, b=2)

    def test_figure_2_grid_for_3_nodes(self):
        assert define_grid(3) == GridShape(m=2, n=2, b=1)

    @pytest.mark.parametrize("n,shape", [
        (1, (1, 1, 0)),
        (2, (1, 2, 0)),
        (4, (2, 2, 0)),
        (5, (2, 3, 1)),
        (6, (2, 3, 0)),
        (7, (3, 3, 2)),
        (9, (3, 3, 0)),
        (12, (3, 4, 0)),
        (15, (3, 5, 0)),   # note: DefineGrid gives 4x4 b=1 for N=15
        (16, (4, 4, 0)),
        (20, (4, 5, 0)),
        # Note: Table 1's static "best dimensions" for N=24 is 4x6, but that
        # is Cheung et al.'s free choice; DefineGrid prefers near-square.
        (24, (5, 5, 1)),
        (30, (5, 6, 0)),
    ])
    def test_shapes(self, n, shape):
        if n == 15:
            # DefineGrid prefers near-square: floor(sqrt 15)=3, ceil=4,
            # 3*4=12 < 15 so m becomes 4 -> 4x4 with one empty cell.
            assert define_grid(15) == GridShape(m=4, n=4, b=1)
        else:
            m, cols, b = shape
            assert define_grid(n) == GridShape(m=m, n=cols, b=b)

    @given(st.integers(min_value=1, max_value=4000))
    def test_invariants(self, n):
        shape = define_grid(n)
        # capacity covers all nodes, with fewer than one spare row
        assert shape.capacity >= n
        assert shape.b == shape.capacity - n
        assert shape.b < shape.n          # paper: "b is always less than n"
        assert abs(shape.m - shape.n) <= 1  # near-square rule

    def test_rejects_zero_nodes(self):
        with pytest.raises(CoterieError):
            define_grid(0)


class TestGridShapeGeometry:
    def test_row_major_positions(self):
        shape = define_grid(14)  # 4x4, b=2
        assert shape.position(1) == (1, 1)
        assert shape.position(4) == (1, 4)
        assert shape.position(5) == (2, 1)
        assert shape.position(14) == (4, 2)

    def test_ordinal_roundtrip(self):
        shape = define_grid(14)
        for k in range(1, 15):
            i, j = shape.position(k)
            assert shape.ordinal(i, j) == k

    def test_unoccupied_cells_rejected(self):
        shape = define_grid(14)  # cells (4,3) and (4,4) are empty
        with pytest.raises(CoterieError):
            shape.ordinal(4, 3)
        with pytest.raises(CoterieError):
            shape.ordinal(4, 4)

    def test_column_heights(self):
        shape = define_grid(14)  # 4x4 b=2: columns 3,4 are short
        assert [shape.column_height(j) for j in (1, 2, 3, 4)] == [4, 4, 3, 3]

    def test_out_of_range(self):
        shape = define_grid(9)
        with pytest.raises(CoterieError):
            shape.position(10)
        with pytest.raises(CoterieError):
            shape.column_height(4)


class TestPaperExamples:
    def test_figure_1_write_quorum_example(self):
        # Paper: in the N=14 grid, {1, 6, 3, 7, 11, 4} is a write quorum
        # because it includes reads {1, 6, 3, 4} covering all columns plus
        # the full column {3, 7, 11}.
        grid = GridCoterie(names(14))
        by_ordinal = {k: grid.nodes[k - 1] for k in range(1, 15)}
        quorum = {by_ordinal[k] for k in (1, 6, 3, 7, 11, 4)}
        assert grid.is_write_quorum(quorum)
        assert grid.is_read_quorum({by_ordinal[k] for k in (1, 6, 3, 4)})

    def test_figure_2_all_three_needed_without_optimization(self):
        # Paper Figure 2 text: for N=3 "all three nodes are needed to
        # collect a quorum" -- true under the pre-optimisation rule where
        # only complete columns of m physical nodes count.
        grid = GridCoterie(names(3), column_cover="full")
        all_nodes = set(names(3))
        assert grid.is_write_quorum(all_nodes)
        for node in all_nodes:
            assert not grid.is_write_quorum(all_nodes - {node})

    def test_neuman_optimization_shrinks_n3_quorum(self):
        # With the pseudo-code's physical-column rule, the singleton short
        # column {n2} counts as full, so {n0,n2} and {n1,n2} are quorums.
        grid = GridCoterie(names(3), column_cover="physical")
        n0, n1, n2 = names(3)
        assert grid.is_write_quorum({n0, n1})   # full short column 2 = {n1}
        assert grid.is_write_quorum({n1, n2})
        assert not grid.is_write_quorum({n0, n2})  # no column 2 representative

    def test_square_grid_quorum_sizes_match_intro(self):
        # Paper Section 1: read quorums sqrt(N), write quorums 2*sqrt(N)-1.
        for n in (4, 9, 16, 25):
            grid = GridCoterie(names(n))
            root = int(n ** 0.5)
            assert grid.min_read_quorum_size() == root
            assert grid.min_write_quorum_size() == 2 * root - 1
            assert len(grid.read_quorum("x")) == root
            assert len(grid.write_quorum("x")) == 2 * root - 1


class TestQuorumPredicates:
    def test_read_quorum_needs_every_column(self):
        grid = GridCoterie(names(9))  # 3x3
        columns = grid.columns
        # one per column -> read quorum
        assert grid.is_read_quorum({columns[0][0], columns[1][1], columns[2][2]})
        # missing a column -> not a read quorum
        assert not grid.is_read_quorum({columns[0][0], columns[1][1]})
        # a full column alone is not a read quorum (for n > 1)
        assert not grid.is_read_quorum(set(columns[0]))

    def test_write_quorum_needs_cover_and_column(self):
        grid = GridCoterie(names(9))
        columns = grid.columns
        full_col = set(columns[1])
        reads = {columns[0][2], columns[2][0]}
        assert grid.is_write_quorum(full_col | reads)
        assert not grid.is_write_quorum(full_col)          # no cover
        assert not grid.is_write_quorum(reads | {columns[1][0]})  # no column

    def test_names_outside_universe_ignored(self):
        grid = GridCoterie(names(4))
        assert not grid.is_read_quorum({"alien1", "alien2"})
        quorum = set(grid.write_quorum("s"))
        assert grid.is_write_quorum(quorum | {"alien"})

    def test_single_node_grid(self):
        grid = GridCoterie(["only"])
        assert grid.is_read_quorum({"only"})
        assert grid.is_write_quorum({"only"})
        assert grid.read_quorum() == ["only"]
        assert grid.write_quorum() == ["only"]

    def test_two_node_grid_needs_both_for_everything(self):
        grid = GridCoterie(names(2))  # 1x2: two columns of height 1
        assert not grid.is_read_quorum({grid.nodes[0]})
        assert grid.is_read_quorum(set(grid.nodes))
        assert grid.is_write_quorum(set(grid.nodes))

    def test_unknown_cover_mode_rejected(self):
        with pytest.raises(CoterieError):
            GridCoterie(names(4), column_cover="diagonal")


class TestQuorumFunction:
    def test_generated_quorums_satisfy_predicates(self):
        for n in (3, 5, 9, 14, 20):
            grid = GridCoterie(names(n))
            for salt in ("a", "b", "c"):
                assert grid.is_read_quorum(grid.read_quorum(salt))
                assert grid.is_write_quorum(grid.write_quorum(salt))

    def test_deterministic_per_salt(self):
        grid = GridCoterie(names(16))
        assert grid.write_quorum("alice") == grid.write_quorum("alice")
        assert grid.read_quorum("bob", 3) == grid.read_quorum("bob", 3)

    def test_different_salts_spread_load(self):
        grid = GridCoterie(names(25))
        quorums = {tuple(grid.write_quorum(f"client{i}")) for i in range(20)}
        assert len(quorums) > 1  # load sharing: not everyone picks the same

    def test_full_cover_mode_avoids_short_columns(self):
        grid = GridCoterie(names(14), column_cover="full")
        for i in range(10):
            quorum = grid.write_quorum(f"s{i}")
            # the fully covered column must be a complete one (height m)
            covered = [j for j in range(1, 5)
                       if all(name in quorum for name in grid.columns[j - 1])]
            assert any(grid.shape.column_height(j) == grid.shape.m
                       for j in covered)

    def test_generated_quorums_always_intersect(self):
        for n in (9, 14, 30, 50):
            assert quorums_intersect_everywhere(GridCoterie(names(n)))


class TestFindQuorum:
    def test_finds_quorum_when_available(self):
        grid = GridCoterie(names(9))
        available = set(names(9)) - {grid.columns[0][0]}
        quorum = grid.find_write_quorum(available)
        assert quorum is not None
        assert quorum <= available
        assert grid.is_write_quorum(quorum)

    def test_none_when_column_unreachable(self):
        grid = GridCoterie(names(9))
        # kill an entire column -> no read (hence no write) quorum
        dead_column = set(grid.columns[1])
        available = set(names(9)) - dead_column
        assert grid.find_read_quorum(available) is None
        assert grid.find_write_quorum(available) is None

    def test_none_when_no_full_column(self):
        grid = GridCoterie(names(9))
        # one failure per column: reads fine, writes impossible
        available = set(names(9)) - {col[i] for i, col in enumerate(grid.columns)}
        assert grid.find_read_quorum(available) is not None
        assert grid.find_write_quorum(available) is None

    def test_singleton_column_failure_blocks_writes_for_n5(self):
        # The 2x3,b=1 grid has a singleton column; losing it makes even the
        # dynamic protocol's epoch change impossible (see DESIGN.md E6).
        grid = GridCoterie(names(5))
        singleton = grid.columns[2]
        assert len(singleton) == 1
        available = set(names(5)) - set(singleton)
        assert grid.find_write_quorum(available) is None

    def test_any_single_failure_tolerated_for_n_ge_4_except_5(self):
        for n in (4, 6, 7, 8, 9, 10, 12, 14, 16):
            grid = GridCoterie(names(n))
            for dead in grid.nodes:
                available = set(grid.nodes) - {dead}
                assert grid.find_write_quorum(available) is not None, (n, dead)

    @given(st.integers(min_value=1, max_value=20), st.data())
    @settings(max_examples=60)
    def test_find_write_quorum_is_sound_and_complete(self, n, data):
        grid = GridCoterie(names(n))
        available = frozenset(
            name for name in grid.nodes
            if data.draw(st.booleans(), label=name))
        found = grid.find_write_quorum(available)
        if found is None:
            assert not grid.is_write_quorum(available)
        else:
            assert found <= available
            assert grid.is_write_quorum(found)


class TestAxioms:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12])
    @pytest.mark.parametrize("cover", ["physical", "full"])
    def test_coterie_axioms_by_enumeration(self, n, cover):
        summary = verify_coterie(GridCoterie(names(n), column_cover=cover))
        assert summary["min_read_size"] == define_grid(n).n

    @pytest.mark.parametrize("n", [14, 20, 30])
    def test_monotonicity_large(self, n):
        verify_monotonicity(GridCoterie(names(n)))

    def test_minimal_write_quorums_for_9_nodes(self):
        grid = GridCoterie(names(9))
        family = minimal_quorums(grid.is_write_quorum, grid.nodes)
        # 3 choices of full column x 3 reps in each of the 2 other columns
        assert len(family) == 3 * 3 * 3
        assert all(len(q) == 5 for q in family)


class TestLayout:
    def test_layout_shows_empty_cells(self):
        grid = GridCoterie(names(14))
        text = grid.layout()
        assert text.count("\n") == 3  # 4 rows
        assert "..." in text          # unoccupied positions rendered as dots

    def test_repr_mentions_shape(self):
        assert "4x4" in repr(GridCoterie(names(14)))
