"""The compiled quorum evaluators agree exactly with the set predicates.

Every :meth:`Coterie.compile` evaluator must return the same answers as
its coterie's set-based reference predicates on *every* subset, under
every way of reaching that subset: a full ``reset(mask)``, an
incremental up/down walk, a ``reset_full``, compilation over a superset
universe, and (where supported) an in-place ``rebind_epoch``.  The
whole dynamic Monte Carlo estimator rides on this equivalence, so it is
enforced property-style across all coterie families and sizes up to
100 nodes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coteries import CoterieError, MajorityCoterie, WeightedVotingCoterie
from repro.coteries.base import SetRecomputeEvaluator
from repro.coteries.grid import GridCoterie

from tests.coteries.test_coterie_contract import KINDS, build, names


def mask_names(universe, mask):
    return {name for i, name in enumerate(universe) if mask >> i & 1}


def assert_agree(evaluator, coterie, mask, universe):
    live = mask_names(universe, mask)
    assert evaluator.is_read_quorum(mask) == coterie.is_read_quorum(live)
    assert evaluator.is_write_quorum(mask) == coterie.is_write_quorum(live)


@pytest.mark.parametrize("kind", KINDS)
class TestEvaluatorMatchesPredicates:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_masks(self, kind, data):
        n = data.draw(st.integers(min_value=1, max_value=100))
        coterie = build(kind, n)
        evaluator = coterie.compile()
        for _ in range(5):
            mask = data.draw(st.integers(min_value=0,
                                         max_value=(1 << n) - 1))
            assert_agree(evaluator, coterie, mask, coterie.nodes)

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_incremental_walk(self, kind, data):
        n = data.draw(st.integers(min_value=1, max_value=60))
        coterie = build(kind, n)
        evaluator = coterie.compile()
        start = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        evaluator.reset(start)
        mask = start
        flips = data.draw(st.lists(st.integers(min_value=0, max_value=n - 1),
                                   min_size=1, max_size=40))
        for i in flips:
            if mask >> i & 1:
                evaluator.node_down(i)
                mask &= ~(1 << i)
            else:
                evaluator.node_up(i)
                mask |= 1 << i
            live = mask_names(coterie.nodes, mask)
            assert evaluator.mask == mask
            assert evaluator.is_read_quorum() == coterie.is_read_quorum(live)
            assert evaluator.is_write_quorum() == coterie.is_write_quorum(live)

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_superset_universe(self, kind, data):
        """Compiling over a larger universe: extra bits never matter."""
        n = data.draw(st.integers(min_value=1, max_value=30))
        extra = data.draw(st.integers(min_value=1, max_value=10))
        universe = names(n + extra)
        member_idx = sorted(data.draw(
            st.sets(st.integers(min_value=0, max_value=n + extra - 1),
                    min_size=n, max_size=n)))
        members = [universe[i] for i in member_idx]
        coterie = build_over(kind, members)
        evaluator = coterie.compile(universe)
        for _ in range(4):
            mask = data.draw(st.integers(min_value=0,
                                         max_value=(1 << (n + extra)) - 1))
            assert_agree(evaluator, coterie, mask, universe)

    def test_reset_full_equals_reset_of_v_mask(self, kind):
        for n in (1, 2, 5, 9, 23):
            coterie = build(kind, n)
            a = coterie.compile()
            b = coterie.compile()
            a.reset_full()
            b.reset(b.v_mask)
            assert a.mask == b.mask == a.v_mask
            assert a.is_read_quorum() == b.is_read_quorum()
            assert a.is_write_quorum() == b.is_write_quorum()
            assert a.is_read_quorum() and a.is_write_quorum()


def build_over(kind, members):
    """Like ``build`` but over an explicit member list."""
    from tests.coteries import test_coterie_contract as contract

    original = contract.names
    try:
        contract.names = lambda n: list(members)
        return contract.build(kind, len(members))
    finally:
        contract.names = original


class TestSetRecomputeFallback:
    def test_base_compile_returns_fallback(self):
        class Anonymous(MajorityCoterie):
            # no compile() override: exercises the default
            def compile(self, universe=None):
                from repro.coteries.base import Coterie
                return Coterie.compile(self, universe)

        coterie = Anonymous(names(7))
        evaluator = coterie.compile()
        assert isinstance(evaluator, SetRecomputeEvaluator)
        for mask in (0, 0b1010101, 0b1111111, 0b0001111):
            assert_agree(evaluator, coterie, mask, coterie.nodes)


class TestRebindEpoch:
    """In-place epoch rebinding equals compiling the rule from scratch."""

    @pytest.mark.parametrize("cover", ["physical", "full"])
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_grid_rebind_matches_fresh_compile(self, cover, data):
        n = data.draw(st.integers(min_value=1, max_value=60))
        universe = names(n)
        rule = lambda nodes: GridCoterie(nodes, column_cover=cover)
        evaluator = rule(universe).compile(universe)
        assert evaluator.supports_rebind
        epoch_mask = data.draw(st.integers(min_value=1,
                                           max_value=(1 << n) - 1))
        evaluator.rebind_epoch(epoch_mask)
        epoch = [name for i, name in enumerate(universe)
                 if epoch_mask >> i & 1]
        reference = rule(epoch)
        fresh = reference.compile(universe)
        # post-rebind state: exactly the epoch members up
        assert evaluator.mask == epoch_mask
        assert evaluator.v_mask == epoch_mask
        assert evaluator.is_write_quorum() and evaluator.is_read_quorum()
        for _ in range(5):
            mask = data.draw(st.integers(min_value=0,
                                         max_value=(1 << n) - 1))
            assert_agree(evaluator, reference, mask, universe)
            assert (evaluator.is_write_quorum(mask)
                    == fresh.is_write_quorum(mask))

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_majority_rebind_matches_fresh_compile(self, data):
        n = data.draw(st.integers(min_value=1, max_value=60))
        universe = names(n)
        evaluator = MajorityCoterie(universe).compile(universe)
        assert evaluator.supports_rebind
        epoch_mask = data.draw(st.integers(min_value=1,
                                           max_value=(1 << n) - 1))
        evaluator.rebind_epoch(epoch_mask)
        epoch = [name for i, name in enumerate(universe)
                 if epoch_mask >> i & 1]
        reference = MajorityCoterie(epoch)
        for _ in range(5):
            mask = data.draw(st.integers(min_value=0,
                                         max_value=(1 << n) - 1))
            assert_agree(evaluator, reference, mask, universe)

    def test_rebind_then_incremental_walk(self):
        universe = names(20)
        evaluator = GridCoterie(universe).compile(universe)
        evaluator.rebind_epoch(0b1111_0110_1011_0110_1011)
        epoch = [name for i, name in enumerate(universe)
                 if 0b1111_0110_1011_0110_1011 >> i & 1]
        reference = GridCoterie(epoch)
        mask = evaluator.mask
        import random
        rng = random.Random(4)
        for _ in range(200):
            i = rng.randrange(20)
            if mask >> i & 1:
                evaluator.node_down(i)
                mask &= ~(1 << i)
            else:
                evaluator.node_up(i)
                mask |= 1 << i
            live = mask_names(universe, mask)
            assert (evaluator.is_write_quorum()
                    == reference.is_write_quorum(live))
            assert (evaluator.is_read_quorum()
                    == reference.is_read_quorum(live))

    def test_custom_thresholds_refuse_rebind(self):
        coterie = WeightedVotingCoterie(names(5), read_votes=5,
                                        write_votes=5)
        evaluator = coterie.compile()
        assert not evaluator.supports_rebind
        with pytest.raises(CoterieError):
            evaluator.rebind_epoch(0b111)

    def test_weighted_votes_refuse_rebind(self):
        weights = {name: 1 + (i % 3) for i, name in enumerate(names(6))}
        coterie = WeightedVotingCoterie(names(6), weights=weights)
        evaluator = coterie.compile()
        assert not evaluator.supports_rebind

    def test_unsupported_structures_refuse_rebind(self):
        for kind in ("tree", "hierarchical", "rowa", "wall", "composite"):
            evaluator = build(kind, 9).compile()
            assert not evaluator.supports_rebind
            with pytest.raises(CoterieError):
                evaluator.rebind_epoch(0b1)
