"""Crumbling-wall coteries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coteries.base import CoterieError
from repro.coteries.properties import (
    minimal_quorums,
    verify_coterie,
    verify_monotonicity,
)
from repro.coteries.wall import WallCoterie, triangle_widths, wall_rule


def names(n):
    return [f"n{i:02d}" for i in range(n)]


class TestTriangleWidths:
    def test_perfect_triangles(self):
        assert triangle_widths(10) == [1, 2, 3, 4]
        assert triangle_widths(6) == [1, 2, 3]
        assert triangle_widths(1) == [1]

    def test_ragged_last_row(self):
        assert triangle_widths(8) == [1, 2, 3, 2]

    @given(st.integers(min_value=1, max_value=300))
    def test_widths_sum_to_n(self, n):
        assert sum(triangle_widths(n)) == n


class TestWallStructure:
    def test_rows_fill_in_order(self):
        wall = WallCoterie(names(6))
        assert wall.rows == (("n00",), ("n01", "n02"),
                             ("n03", "n04", "n05")) or \
            [list(r) for r in wall.rows] == [["n00"], ["n01", "n02"],
                                             ["n03", "n04", "n05"]]

    def test_custom_widths(self):
        wall = WallCoterie(names(5), widths=[2, 3])
        assert [len(r) for r in wall.rows] == [2, 3]

    def test_bad_widths_rejected(self):
        with pytest.raises(CoterieError):
            WallCoterie(names(5), widths=[2, 2])
        with pytest.raises(CoterieError):
            WallCoterie(names(5), widths=[0, 5])

    def test_layout(self):
        text = WallCoterie(names(6)).layout()
        assert text.count("\n") == 2


class TestQuorums:
    def test_top_singleton_row_gives_tiny_write_quorums(self):
        # triangle wall of 10: full row {n00} + one per row below = 4
        wall = WallCoterie(names(10))
        assert wall.min_write_quorum_size() == 4
        quorum = wall.write_quorum("c")
        assert wall.is_write_quorum(quorum)

    def test_write_needs_rows_below_covered(self):
        wall = WallCoterie(names(6))  # rows [1, 2, 3]
        # full top row but nothing below: not a quorum
        assert not wall.is_write_quorum({"n00"})
        # top row + one from each lower row: quorum
        assert wall.is_write_quorum({"n00", "n01", "n03"})
        # full bottom row alone (nothing below to cover): quorum
        assert wall.is_write_quorum({"n03", "n04", "n05"})

    def test_read_needs_every_row(self):
        wall = WallCoterie(names(6))
        assert wall.is_read_quorum({"n00", "n02", "n05"})
        assert not wall.is_read_quorum({"n01", "n02", "n03"})  # row 0 missed

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 6, 8, 10])
    def test_axioms(self, n):
        verify_coterie(WallCoterie(names(n)))

    def test_monotone(self):
        verify_monotonicity(WallCoterie(names(15)))

    @given(st.integers(min_value=1, max_value=14), st.data())
    @settings(max_examples=80, deadline=None)
    def test_find_write_quorum_sound_and_complete(self, n, data):
        wall = WallCoterie(names(n))
        available = frozenset(name for name in wall.nodes
                              if data.draw(st.booleans(), label=name))
        found = wall.find_write_quorum(available)
        if found is None:
            assert not wall.is_write_quorum(available)
        else:
            assert found <= available
            assert wall.is_write_quorum(found)

    def test_quorum_function_spreads_full_rows(self):
        wall = WallCoterie(names(10))
        chosen = {tuple(wall.write_quorum(f"c{i}")) for i in range(12)}
        assert len(chosen) > 1


class TestWallLoad:
    def test_triangle_wall_write_load_beats_majority(self):
        from repro.analysis.optimal_load import optimal_load
        from repro.coteries.majority import MajorityCoterie
        wall_load, _ = optimal_load(WallCoterie(names(10)))
        majority_load, _ = optimal_load(MajorityCoterie(names(10)))
        assert wall_load < majority_load

    def test_minimal_quorums_include_every_full_row_variant(self):
        wall = WallCoterie(names(6))
        family = minimal_quorums(wall.is_write_quorum, wall.nodes)
        sizes = sorted({len(q) for q in family})
        assert sizes == [3]  # 1+1+1, 2+1, and 3 all have size 3 here


class TestDynamicWallStore:
    def test_protocol_runs_on_wall_rule(self):
        from repro.core.store import ReplicatedStore
        store = ReplicatedStore.create(10, seed=5,
                                       coterie_rule=wall_rule())
        assert store.write({"x": 1}).ok
        assert store.read().value == {"x": 1}
        store.verify()

    def test_epoch_adapts_on_wall(self):
        from repro.core.store import ReplicatedStore
        store = ReplicatedStore.create(10, seed=6,
                                       coterie_rule=wall_rule())
        store.write({"x": 1})
        # the singleton top row is a single point of READ failure (every
        # read must cover every row) -- until the epoch re-forms a new,
        # smaller wall without it
        store.crash("n00")
        assert not store.read().ok
        assert store.check_epoch().ok
        assert store.read().ok
        assert store.write({"x": 2}).ok
        store.settle()
        store.verify()
