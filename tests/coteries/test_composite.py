"""Composite coteries: structures of structures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coteries.base import CoterieError
from repro.coteries.composite import (
    CompositeCoterie,
    composite_rule,
    default_group_count,
    partition_groups,
)
from repro.coteries.grid import GridCoterie
from repro.coteries.majority import MajorityCoterie
from repro.coteries.properties import verify_coterie, verify_monotonicity
from repro.coteries.rowa import ReadOneWriteAllCoterie


def names(n):
    return [f"n{i:02d}" for i in range(n)]


class TestPartition:
    def test_even_split(self):
        groups = partition_groups(names(9), 3)
        assert [len(g) for g in groups] == [3, 3, 3]

    def test_uneven_split_front_loads_extras(self):
        groups = partition_groups(names(10), 3)
        assert [len(g) for g in groups] == [4, 3, 3]

    def test_deterministic_and_order_preserving(self):
        groups = partition_groups(names(7), 2)
        assert groups[0] + groups[1] == tuple(names(7))

    def test_invalid_counts_rejected(self):
        with pytest.raises(CoterieError):
            partition_groups(names(3), 0)
        with pytest.raises(CoterieError):
            partition_groups(names(3), 4)

    def test_default_group_count(self):
        assert default_group_count(9) == 3
        assert default_group_count(1) == 1
        assert default_group_count(30) == 5


class TestMajorityOfMajorities:
    """The HQC-like composition: outer majority of group majorities."""

    def make(self, n=9, groups=3):
        return CompositeCoterie(names(n), MajorityCoterie,
                                MajorityCoterie, n_groups=groups)

    def test_write_quorum_smaller_than_flat_majority(self):
        composite = self.make(9, 3)
        quorum = composite.write_quorum("c")
        assert len(quorum) == 4  # 2 groups x 2 members < 5
        assert composite.is_write_quorum(quorum)

    def test_membership_semantics(self):
        composite = self.make(9, 3)
        g0, g1, _g2 = composite.groups
        # majorities of two groups: a write quorum
        assert composite.is_write_quorum(set(g0[:2]) | set(g1[:2]))
        # a majority of just one group: not enough groups
        assert not composite.is_write_quorum(set(g0))
        # one member from each group: no group is satisfied
        assert not composite.is_write_quorum({g0[0], g1[0], _g2[0]})

    @pytest.mark.parametrize("n,groups", [(4, 2), (9, 3), (8, 3), (12, 4)])
    def test_axioms(self, n, groups):
        verify_coterie(self.make(n, groups))

    def test_monotone(self):
        verify_monotonicity(self.make(12, 3))


class TestMixedCompositions:
    def test_grid_of_majorities(self):
        composite = CompositeCoterie(names(12), GridCoterie,
                                     MajorityCoterie, n_groups=4)
        verify_coterie(composite)
        quorum = composite.write_quorum("client")
        assert composite.is_write_quorum(quorum)

    def test_majority_of_grids(self):
        composite = CompositeCoterie(names(12), MajorityCoterie,
                                     GridCoterie, n_groups=3)
        verify_coterie(composite)

    def test_rowa_of_majorities_reads_one_group_majority(self):
        composite = CompositeCoterie(names(9), ReadOneWriteAllCoterie,
                                     MajorityCoterie, n_groups=3)
        read = composite.read_quorum("c")
        assert len(read) == 2  # one group's majority
        assert composite.is_read_quorum(read)
        # writes need a write quorum in EVERY group
        assert len(composite.write_quorum("c")) == 6
        verify_coterie(composite)

    def test_find_write_quorum_routes_around_dead_group(self):
        composite = CompositeCoterie(names(9), MajorityCoterie,
                                     MajorityCoterie, n_groups=3)
        dead_group = set(composite.groups[0])
        available = set(names(9)) - dead_group
        found = composite.find_write_quorum(available)
        assert found is not None
        assert not (found & dead_group)
        assert composite.is_write_quorum(found)

    def test_find_none_when_too_many_groups_dead(self):
        composite = CompositeCoterie(names(9), MajorityCoterie,
                                     MajorityCoterie, n_groups=3)
        # kill majorities of two groups: outer majority unreachable
        dead = set(composite.groups[0][:2]) | set(composite.groups[1][:2])
        assert composite.find_write_quorum(set(names(9)) - dead) is None

    @given(st.integers(min_value=4, max_value=12),
           st.integers(min_value=2, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_axioms_random_shapes(self, n, groups):
        if groups > n:
            groups = n
        verify_coterie(CompositeCoterie(names(n), MajorityCoterie,
                                        MajorityCoterie, n_groups=groups))


class TestDynamicProtocolWithCompositeRule:
    def test_store_runs_on_composite_coterie(self):
        from repro.core.store import ReplicatedStore
        rule = composite_rule(MajorityCoterie, MajorityCoterie, n_groups=3)
        store = ReplicatedStore.create(9, seed=3, coterie_rule=rule)
        assert store.write({"x": 1}).ok
        assert store.read().value == {"x": 1}
        store.verify()

    def test_epoch_shrink_rebuilds_composite(self):
        from repro.core.store import ReplicatedStore
        rule = composite_rule(MajorityCoterie, MajorityCoterie, n_groups=3)
        store = ReplicatedStore.create(9, seed=4, coterie_rule=rule)
        store.write({"x": 1})
        for victim in ("n08", "n07"):
            store.crash(victim)
            assert store.check_epoch().ok
            assert store.write({"x": 2}).ok
        store.verify()

    def test_rule_clamps_groups_for_tiny_epochs(self):
        rule = composite_rule(MajorityCoterie, MajorityCoterie, n_groups=5)
        small = rule(names(3))  # fewer nodes than requested groups
        assert len(small.groups) == 3
        verify_coterie(small)
