"""Opt-in wrapper around the quorum-engine perf smoke gate.

Timing assertions are flaky on loaded CI machines, so this test only
runs when explicitly requested::

    REPRO_PERF_SMOKE=1 PYTHONPATH=src python -m pytest tests/test_perf_smoke.py

It delegates to ``scripts/check_perf.py``, which replays a small grid
event budget through both engines and fails if the compiled bitmask
engine is ever slower than the set-based reference predicates.
"""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.mark.skipif(os.environ.get("REPRO_PERF_SMOKE") != "1",
                    reason="perf smoke gate is opt-in: set "
                           "REPRO_PERF_SMOKE=1")
def test_bitmask_engine_never_slower():
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "check_perf.py")],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "PASS" in proc.stdout
