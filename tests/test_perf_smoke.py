"""Opt-in wrapper around the performance smoke gates.

Timing assertions are flaky on loaded CI machines, so this test only
runs when explicitly requested::

    REPRO_PERF_SMOKE=1 PYTHONPATH=src python -m pytest tests/test_perf_smoke.py

It delegates to ``scripts/check_perf.py``, which replays a small grid
event budget through both quorum engines (compiled bitmask vs set
predicates) and one failed-cluster protocol cell (liveness-aware
planner vs blind quorum picking), and fails on either regression:
the bitmask engine slower than the sets, or the planner not beating
the blind picker on poll rounds and wall-clock ops/sec under failures.
"""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.mark.skipif(os.environ.get("REPRO_PERF_SMOKE") != "1",
                    reason="perf smoke gate is opt-in: set "
                           "REPRO_PERF_SMOKE=1")
def test_perf_smoke_gates():
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "check_perf.py")],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "PASS" in proc.stdout
    assert "quorum engine smoke" in proc.stdout
    assert "vector engine smoke" in proc.stdout
    assert "protocol ops smoke" in proc.stdout
    assert "Sharded keyspace at scale" in proc.stdout
    assert "Workload-aware strategy" in proc.stdout
