"""CLI smoke tests (every command, captured output)."""

import pytest

from repro.cli import build_parser, main


class TestTable1Command:
    def test_default_table(self, capsys):
        assert main(["table1", "--sizes", "9", "12", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "3x3" in out and "3x4" in out
        assert "p = 0.95" in out

    def test_custom_p(self, capsys):
        assert main(["table1", "--sizes", "9", "--p", "0.9", "--fast"]) == 0
        assert "p = 0.9" in capsys.readouterr().out

    def test_exact_mode(self, capsys):
        assert main(["table1", "--sizes", "9"]) == 0
        out = capsys.readouterr().out
        assert "1.8291e-07" in out


class TestGridCommand:
    def test_figure1(self, capsys):
        assert main(["grid", "14"]) == 0
        out = capsys.readouterr().out
        assert "4 x 4, b = 2" in out
        assert "read quorum size : 4" in out
        assert "write quorum size: 6" in out

    def test_full_cover(self, capsys):
        assert main(["grid", "3", "--cover", "full"]) == 0
        out = capsys.readouterr().out
        assert "write quorum size: 3" in out

    def test_physical_cover_n3(self, capsys):
        assert main(["grid", "3"]) == 0
        assert "write quorum size: 2" in capsys.readouterr().out


class TestAvailabilityCommand:
    def test_lists_all_protocols(self, capsys):
        assert main(["availability", "--n", "6", "--p", "0.9"]) == 0
        out = capsys.readouterr().out
        for label in ("static grid", "static majority", "ROWA",
                      "dynamic grid (writes)", "dynamic grid (reads)",
                      "dynamic voting", "dynamic-linear"):
            assert label in out


class TestSimulateCommand:
    def test_basic_run(self, capsys):
        assert main(["simulate", "--n", "6", "--horizon", "500",
                     "--mu", "4"]) == 0
        out = capsys.readouterr().out
        assert "availability=" in out
        assert "instantaneous" in out

    def test_finite_check_interval(self, capsys):
        assert main(["simulate", "--n", "6", "--horizon", "500",
                     "--check-interval", "1.0"]) == 0
        assert "every 1" in capsys.readouterr().out

    def test_read_kind(self, capsys):
        assert main(["simulate", "--n", "6", "--horizon", "300",
                     "--kind", "read"]) == 0
        assert "kind = read" in capsys.readouterr().out

    def test_parallel_workers(self, capsys):
        assert main(["simulate", "--n", "6", "--horizon", "600",
                     "--workers", "2"]) == 0
        assert "workers = 2" in capsys.readouterr().out

    def test_engine_and_sampler_flags(self, capsys):
        assert main(["simulate", "--n", "6", "--horizon", "300",
                     "--engine", "set", "--sampler", "swap"]) == 0
        out = capsys.readouterr().out
        assert "engine = set" in out and "sampler = swap" in out

    def test_serial_default_matches_engine_choice(self, capsys):
        """Same seed, either engine: the CLI prints identical numbers."""
        assert main(["simulate", "--n", "6", "--horizon", "400",
                     "--seed", "9"]) == 0
        default = capsys.readouterr().out.splitlines()[-1]
        assert main(["simulate", "--n", "6", "--horizon", "400",
                     "--seed", "9", "--engine", "set"]) == 0
        set_engine = capsys.readouterr().out.splitlines()[-1]
        assert default == set_engine


class TestDemoCommand:
    def test_full_scenario(self, capsys):
        assert main(["demo", "--n", "9", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "epoch -> #1" in out
        assert "ok=True" in out
        assert "history verified" in out


class TestChaosCommand:
    def test_smoke_all_protocols(self, capsys):
        assert main(["chaos", "--seed", "0", "--ops", "25"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        for protocol, line in zip(("dynamic", "static", "voting"), lines):
            assert line.startswith(f"OK   {protocol} seed=0")

    def test_seed_range_single_protocol(self, capsys):
        assert main(["chaos", "--seeds", "3", "--ops", "15",
                     "--protocol", "static"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert [line.split()[2] for line in lines] == [
            "seed=0", "seed=1", "seed=2"]

    def test_canary_exit_zero_means_caught(self, capsys):
        assert main(["chaos", "--canary"]) == 0
        out = capsys.readouterr().out
        assert "FAIL" in out and "stale read" in out

    def test_canary_shrink_and_replay_artifact(self, capsys, tmp_path):
        path = str(tmp_path / "artifact.json")
        assert main(["chaos", "--canary", "--artifact", path]) == 0
        out = capsys.readouterr().out
        assert "shrunk" in out and path in out
        # replaying a violation artifact exits 0 while it still fails
        assert main(["chaos", "--replay", path]) == 0
        assert "FAIL" in capsys.readouterr().out


class TestMetricsCommand:
    def test_table_output(self, capsys):
        assert main(["metrics", "--seed", "0", "--ops", "15"]) == 0
        out = capsys.readouterr().out
        assert "p95" in out and "rpc:" in out
        assert "staleness:" in out and "epoch-check ages" in out

    def test_json_artifact(self, capsys, tmp_path):
        import json

        from repro.obs import validate_summary

        path = str(tmp_path / "metrics.json")
        assert main(["metrics", "--seeds", "2", "--ops", "15",
                     "--json", path]) == 0
        assert path in capsys.readouterr().out
        with open(path) as fh:
            payload = json.load(fh)
        validate_summary(payload["summary"])
        assert payload["snapshot"]["schema"] == "repro-metrics-v1"


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
