"""Centralised RNG derivation: determinism and stream independence."""

from __future__ import annotations

import random

from repro.sim.seeding import derive_rng, derive_seed


def test_derive_seed_is_deterministic():
    assert derive_seed(0, "a") == derive_seed(0, "a")
    assert derive_seed(7, "sim.network.latency") == \
        derive_seed(7, "sim.network.latency")


def test_namespaces_get_distinct_streams():
    seen = {derive_seed(0, ns) for ns in
            ("sim.network.latency", "sim.failures.site",
             "sim.failures.zones", "chaos.faults", "a", "b", "")}
    assert len(seen) == 7


def test_root_seeds_get_distinct_streams():
    assert derive_seed(0, "ns") != derive_seed(1, "ns")


def test_no_cross_boundary_collision():
    # the "/" separator keeps (1, "2/x") and (12, "/x")-style prefixes
    # from colliding
    assert derive_seed(1, "2/x") != derive_seed(12, "x")


def test_empty_namespace_is_plain_random():
    """The golden-value compatibility path: ``derive_rng(seed)`` must
    reproduce ``random.Random(seed)`` bit for bit."""
    for seed in (0, 1, 12345):
        ours = derive_rng(seed)
        ref = random.Random(seed)
        assert [ours.random() for _ in range(20)] == \
            [ref.random() for _ in range(20)]
        assert ours.getrandbits(64) == ref.getrandbits(64)


def test_named_namespace_diverges_from_root_stream():
    assert derive_rng(0, "ns").random() != random.Random(0).random()


def test_derived_streams_are_reproducible():
    a = derive_rng(42, "chaos.faults")
    b = derive_rng(42, "chaos.faults")
    assert [a.random() for _ in range(10)] == \
        [b.random() for _ in range(10)]


def test_default_components_draw_namespaced_streams():
    """The rewired constructors derive per-component streams, so two
    components no longer share literal stream 0."""
    from repro.chaos.faults import LinkFaults
    from repro.sim.engine import Environment
    from repro.sim.network import LatencyModel

    latency = LatencyModel(min_delay=0.0, max_delay=1.0)
    faults = LinkFaults()
    assert latency.rng.random() != faults.rng.random()

    env = Environment()
    del env  # only needed to prove import side-effect-free construction


def test_explicit_rng_still_injectable():
    from repro.sim.network import LatencyModel

    rng = random.Random(99)
    model = LatencyModel(min_delay=0.0, max_delay=1.0, rng=rng)
    assert model.rng is rng
