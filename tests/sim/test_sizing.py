"""Message size estimation and network byte accounting."""

import pytest

from repro.sim.engine import Environment
from repro.sim.network import LatencyModel, Network
from repro.sim.node import Node
from repro.sim.sizing import ENVELOPE_BYTES, estimate_size, message_size
from repro.sim.trace import TraceLog


class TestEstimateSize:
    def test_scalars(self):
        assert estimate_size(None) == 8
        assert estimate_size(42) == 8
        assert estimate_size(3.14) == 8
        assert estimate_size(True) == 8

    def test_strings_scale_with_length(self):
        assert estimate_size("abc") == 5
        assert estimate_size("x" * 100) == 102

    def test_containers_sum_elements(self):
        assert estimate_size([1, 2, 3]) == 8 + 24
        assert estimate_size({"k": 1}) == 8 + 3 + 8

    def test_nested_structures(self):
        payload = {"log": [(1, {"a": 1}), (2, {"b": 2})]}
        flat = estimate_size(payload)
        assert flat > estimate_size({"log": []})

    def test_dataclasses_counted_by_fields(self):
        from repro.core.messages import PropagationData
        small = PropagationData(source_version=1, log=((1, {"k": 1}),))
        big = PropagationData(source_version=1,
                              snapshot={f"k{i}": "v" * 50
                                        for i in range(20)})
        assert estimate_size(big) > estimate_size(small) * 5

    def test_message_size_adds_envelope(self):
        assert message_size(1) == ENVELOPE_BYTES + 8


class TestNetworkByteAccounting:
    def test_counters_accumulate(self):
        env = Environment()
        net = Network(env, LatencyModel(0.01, 0.01), trace=TraceLog())
        a = Node(env, net, "a")
        Node(env, net, "b")
        a.send("b", "ping", "payload")
        a.send("b", "ping", {"big": "x" * 100})
        env.run()
        assert net.messages_sent == 2
        assert net.bytes_sent > 2 * ENVELOPE_BYTES + 100

    def test_trace_records_bytes(self):
        env = Environment()
        trace = TraceLog()
        net = Network(env, LatencyModel(0.01, 0.01), trace=trace)
        a = Node(env, net, "a")
        Node(env, net, "b")
        a.send("b", "ping", "12345")
        env.run()
        sends = trace.select(kind="send")
        assert sends[0].detail["bytes"] == ENVELOPE_BYTES + 7


class TestDeltaVsSnapshotBytes:
    def test_log_shipping_is_smaller_than_snapshots(self):
        # the partial-write payoff in bytes: heal a replica that missed
        # one small update to a large object
        from repro.core.store import ReplicatedStore
        store = ReplicatedStore.create(9, seed=1, trace_enabled=True)
        big_value = {f"field{i}": "x" * 80 for i in range(30)}
        store.write(big_value, via="n00")
        store.settle()
        before = store.network.bytes_sent
        second = store.write({"field0": "tiny"}, via="n05")
        store.settle()
        delta_bytes = store.network.bytes_sent - before
        # the whole object is ~30*90 bytes per copy; healing N replicas by
        # snapshot would dwarf the quorum write + delta propagation
        object_size = 30 * 90
        assert second.stale  # someone was healed
        assert delta_bytes < object_size * len(store.node_names)
