"""Tests for the network, node, and partition substrate."""

import random

import pytest

from repro.sim.engine import Environment
from repro.sim.network import LatencyModel, Network, PartitionManager
from repro.sim.node import Node
from repro.sim.trace import TraceLog


def make_net(n=3, seed=0, min_delay=0.01, max_delay=0.01):
    env = Environment()
    trace = TraceLog()
    latency = LatencyModel(min_delay, max_delay, rng=random.Random(seed))
    net = Network(env, latency=latency, trace=trace)
    nodes = [Node(env, net, f"n{i}") for i in range(n)]
    return env, net, nodes, trace


class TestLatencyModel:
    def test_constant_latency(self):
        model = LatencyModel(0.5, 0.5)
        assert model.sample("a", "b") == 0.5

    def test_uniform_latency_within_bounds(self):
        model = LatencyModel(0.1, 0.2, rng=random.Random(1))
        samples = [model.sample("a", "b") for _ in range(100)]
        assert all(0.1 <= s <= 0.2 for s in samples)
        assert len(set(samples)) > 1

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(-1.0, 1.0)
        with pytest.raises(ValueError):
            LatencyModel(2.0, 1.0)


class TestPartitionManager:
    def test_initially_connected(self):
        pm = PartitionManager(["a", "b", "c"])
        assert pm.reachable("a", "b")
        assert not pm.is_partitioned

    def test_partition_splits(self):
        pm = PartitionManager(["a", "b", "c", "d"])
        pm.partition(["a", "b"], ["c"])
        assert pm.reachable("a", "b")
        assert not pm.reachable("a", "c")
        assert not pm.reachable("c", "d")
        assert pm.is_partitioned

    def test_unlisted_nodes_form_residual_group(self):
        pm = PartitionManager(["a", "b", "c", "d"])
        pm.partition(["a"])
        assert pm.reachable("b", "c")
        assert not pm.reachable("a", "b")

    def test_heal_restores(self):
        pm = PartitionManager(["a", "b"])
        pm.partition(["a"], ["b"])
        pm.heal()
        assert pm.reachable("a", "b")
        assert not pm.is_partitioned

    def test_duplicate_membership_rejected(self):
        pm = PartitionManager(["a", "b"])
        with pytest.raises(ValueError):
            pm.partition(["a"], ["a", "b"])

    def test_groups_listing(self):
        pm = PartitionManager(["a", "b", "c"])
        assert pm.groups() == [{"a", "b", "c"}]
        pm.partition(["a"], ["b"])
        groups = pm.groups()
        assert {"a"} in groups and {"b"} in groups and {"c"} in groups


class TestDelivery:
    def test_message_delivered_with_latency(self):
        env, net, nodes, trace = make_net()
        got = []
        nodes[1].register_handler("ping", lambda m: got.append((env.now, m.payload)))
        nodes[0].send("n1", "ping", "hello")
        env.run()
        assert got == [(0.01, "hello")]

    def test_message_to_down_node_dropped(self):
        env, net, nodes, trace = make_net()
        got = []
        nodes[1].register_handler("ping", lambda m: got.append(m))
        nodes[1].crash()
        nodes[0].send("n1", "ping", "x")
        env.run()
        assert got == []
        assert trace.count("drop") == 1

    def test_message_from_node_that_crashed_in_flight_dropped(self):
        env, net, nodes, trace = make_net()
        got = []
        nodes[1].register_handler("ping", lambda m: got.append(m))
        nodes[0].send("n1", "ping", "x")
        nodes[0].crash()  # crashes before delivery
        env.run()
        assert got == []

    def test_cross_partition_message_dropped(self):
        env, net, nodes, trace = make_net()
        got = []
        nodes[1].register_handler("ping", lambda m: got.append(m))
        net.partitions.partition(["n0"], ["n1", "n2"])
        nodes[0].send("n1", "ping", "x")
        env.run()
        assert got == []
        drops = trace.select(kind="drop")
        assert drops[0].detail["reason"] == "partitioned"

    def test_same_partition_message_delivered(self):
        env, net, nodes, trace = make_net()
        got = []
        nodes[2].register_handler("ping", lambda m: got.append(m.payload))
        net.partitions.partition(["n0"], ["n1", "n2"])
        nodes[1].send("n2", "ping", "y")
        env.run()
        assert got == ["y"]

    def test_unknown_destination_dropped(self):
        env, net, nodes, trace = make_net()
        nodes[0].send("n99", "ping", "x")
        env.run()
        assert trace.count("drop") == 1

    def test_duplicate_registration_rejected(self):
        env, net, nodes, trace = make_net()
        with pytest.raises(ValueError):
            Node(env, net, "n0")

    def test_unhandled_kind_traced(self):
        env, net, nodes, trace = make_net()
        nodes[0].send("n1", "mystery", None)
        env.run()
        assert trace.count("unhandled") == 1


class TestNodeLifecycle:
    def test_crash_wipes_volatile_keeps_stable(self):
        env, net, nodes, trace = make_net()
        node = nodes[0]
        node.stable["epoch"] = 3
        node.volatile["cache"] = "hot"
        node.crash()
        assert node.stable["epoch"] == 3
        assert node.volatile == {}

    def test_crash_resets_locks(self):
        env, net, nodes, trace = make_net()
        node = nodes[0]
        lock = node.make_lock("replica")

        def holder(env, lock):
            yield lock.acquire("op1")
            yield env.timeout(100.0)

        node.spawn(holder(env, lock))

        def crasher(env, node):
            yield env.timeout(1.0)
            node.crash()

        env.process(crasher(env, node))
        env.run()
        assert not lock.locked

    def test_crash_interrupts_spawned_processes(self):
        env, net, nodes, trace = make_net()
        node = nodes[0]
        survived = []

        def task(env):
            yield env.timeout(100.0)
            survived.append(True)

        node.spawn(task(env))

        def crasher(env, node):
            yield env.timeout(1.0)
            node.crash()

        env.process(crasher(env, node))
        env.run()
        # The task never completed its body (the orphaned timeout still
        # drains through the queue, but nobody is resumed by it).
        assert not survived

    def test_double_crash_and_double_recover_are_noops(self):
        env, net, nodes, trace = make_net()
        node = nodes[0]
        node.crash()
        node.crash()
        assert trace.count("node-crash") == 1
        node.recover()
        node.recover()
        assert trace.count("node-recover") == 1

    def test_hooks_fire(self):
        env, net, nodes, trace = make_net()
        node = nodes[0]
        events = []
        node.add_crash_hook(lambda: events.append("crash"))
        node.add_recover_hook(lambda: events.append("recover"))
        node.crash()
        node.recover()
        assert events == ["crash", "recover"]

    def test_generator_handler_spawned_as_process(self):
        env, net, nodes, trace = make_net()
        got = []

        def handler(msg):
            def work():
                yield env.timeout(0.5)
                got.append((env.now, msg.payload))
            return work()

        nodes[1].register_handler("slow", handler)
        nodes[0].send("n1", "slow", "job")
        env.run()
        assert got == [(0.51, "job")]


class TestTraceLog:
    def test_counts_survive_disabled_tracing(self):
        trace = TraceLog(enabled=False)
        trace.record(0.0, "send", "n0")
        trace.record(1.0, "send", "n1")
        assert trace.count("send") == 2
        assert len(trace) == 0

    def test_select_filters(self):
        trace = TraceLog()
        trace.record(0.0, "send", "n0", dst="n1")
        trace.record(1.0, "send", "n1", dst="n0")
        trace.record(2.0, "drop", "n1")
        assert len(trace.select(kind="send")) == 2
        assert len(trace.select(node="n1")) == 2
        assert len(trace.select(kind="send", node="n1")) == 1
        only_late = trace.select(predicate=lambda r: r.time > 0.5)
        assert len(only_late) == 2

    def test_format_is_readable(self):
        trace = TraceLog()
        trace.record(1.5, "send", "n0", dst="n1")
        text = trace.format()
        assert "send" in text and "n0" in text and "dst='n1'" in text

    def test_clear(self):
        trace = TraceLog()
        trace.record(0.0, "x", None)
        trace.clear()
        assert len(trace) == 0 and trace.count("x") == 0
