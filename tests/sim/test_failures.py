"""Tests for Poisson failure injection and scripted fault schedules."""

import random

import pytest

from repro.sim.engine import Environment
from repro.sim.failures import FailureInjector, FailureSchedule
from repro.sim.network import LatencyModel, Network
from repro.sim.node import Node
from repro.sim.trace import TraceLog


def make_nodes(n, env=None):
    env = env or Environment()
    net = Network(env, LatencyModel(0.01, 0.01), trace=TraceLog())
    return env, net, [Node(env, net, f"n{i}") for i in range(n)]


class TestFailureInjector:
    def test_availability_formula(self):
        env, net, nodes = make_nodes(1)
        injector = FailureInjector(env, nodes, lam=1.0, mu=19.0)
        assert injector.availability == pytest.approx(0.95)

    def test_bad_rates_rejected(self):
        env, net, nodes = make_nodes(1)
        with pytest.raises(ValueError):
            FailureInjector(env, nodes, lam=-1.0, mu=1.0)
        with pytest.raises(ValueError):
            FailureInjector(env, nodes, lam=1.0, mu=0.0)

    def test_double_start_rejected(self):
        env, net, nodes = make_nodes(1)
        injector = FailureInjector(env, nodes, lam=1.0, mu=1.0)
        injector.start()
        with pytest.raises(RuntimeError):
            injector.start()

    def test_empirical_availability_matches_theory(self):
        env, net, nodes = make_nodes(1)
        node = nodes[0]
        injector = FailureInjector(env, nodes, lam=1.0, mu=19.0,
                                   rng=random.Random(42))
        injector.start()
        up_time = 0.0
        last = [0.0, True]  # time, was_up

        def on_event(kind, node):
            nonlocal up_time
            now = env.now
            if last[1]:
                up_time += now - last[0]
            last[0], last[1] = now, node.up

        injector.on_event = on_event
        horizon = 20000.0
        env.run(until=horizon)
        if last[1]:
            up_time += horizon - last[0]
        assert up_time / horizon == pytest.approx(0.95, abs=0.01)

    def test_events_alternate_crash_recover(self):
        env, net, nodes = make_nodes(1)
        sequence = []
        injector = FailureInjector(env, nodes, lam=2.0, mu=2.0,
                                   rng=random.Random(7),
                                   on_event=lambda kind, n: sequence.append(kind))
        injector.start()
        env.run(until=50.0)
        assert len(sequence) > 10
        for a, b in zip(sequence, sequence[1:]):
            assert a != b  # strict alternation per node

    def test_zero_failure_rate_never_crashes(self):
        env, net, nodes = make_nodes(2)
        injector = FailureInjector(env, nodes, lam=0.0, mu=1.0)
        injector.start()
        env.run(until=100.0)
        assert all(node.up for node in nodes)


class TestFailureSchedule:
    def test_scripted_crash_and_recover(self):
        env, net, nodes = make_nodes(2)
        schedule = FailureSchedule(env, net, nodes)
        schedule.crash_at(1.0, "n0").recover_at(2.0, "n0")
        schedule.start()
        states = []

        def observer(env):
            for _ in range(3):
                states.append((env.now, nodes[0].up))
                yield env.timeout(0.75)

        env.process(observer(env))
        env.run()
        assert states == [(0.0, True), (0.75, True), (1.5, False)]
        assert nodes[0].up  # recovered by the end

    def test_partition_and_heal(self):
        env, net, nodes = make_nodes(3)
        schedule = FailureSchedule(env, net, nodes)
        schedule.partition_at(1.0, ["n0"], ["n1", "n2"]).heal_at(2.0)
        schedule.start()
        checks = []

        def observer(env):
            yield env.timeout(1.5)
            checks.append(net.partitions.reachable("n0", "n1"))
            yield env.timeout(1.0)
            checks.append(net.partitions.reachable("n0", "n1"))

        env.process(observer(env))
        env.run()
        assert checks == [False, True]

    def test_custom_action(self):
        env, net, nodes = make_nodes(1)
        fired = []
        schedule = FailureSchedule(env, net, nodes)
        schedule.at(3.0, lambda: fired.append(env.now))
        schedule.start()
        env.run()
        assert fired == [3.0]

    def test_past_action_rejected(self):
        env, net, nodes = make_nodes(1)
        env.run(until=5.0)
        schedule = FailureSchedule(env, net, nodes)
        schedule.crash_at(1.0, "n0")
        with pytest.raises(ValueError):
            schedule.start()

    def test_unknown_node_rejected(self):
        env, net, nodes = make_nodes(1)
        schedule = FailureSchedule(env, net, nodes)
        with pytest.raises(KeyError):
            schedule.crash_at(1.0, "n99")


class TestPartitionSemantics:
    """Pin the documented (non-compositional) partition semantics and the
    compositional directed-cut alternative."""

    def test_second_partition_replaces_the_first(self):
        # Documented behavior: each partition_at installs a COMPLETE
        # component map; it does not overlay the previous episode.
        env, net, nodes = make_nodes(4)
        schedule = FailureSchedule(env, net, nodes)
        schedule.partition_at(1.0, ["n0"])
        schedule.partition_at(2.0, ["n1"])   # n0 silently rejoins here
        schedule.start()
        seen = []

        def observer(env):
            for _ in range(2):
                yield env.timeout(1.5)
                seen.append((net.partitions.reachable("n0", "n3"),
                             net.partitions.reachable("n1", "n3")))

        env.process(observer(env))
        env.run()
        # t=1.5: only n0 isolated; t=3.0: only n1 isolated -- the second
        # episode dissolved the first instead of stacking on it
        assert seen == [(False, True), (True, False)]

    def test_overlapping_episodes_need_combined_groups(self):
        # The documented recipe: script the union at every boundary.
        env, net, nodes = make_nodes(4)
        schedule = FailureSchedule(env, net, nodes)
        schedule.partition_at(1.0, ["n0"])
        schedule.partition_at(2.0, ["n0"], ["n1"])  # both isolated
        schedule.partition_at(3.0, ["n1"])          # n0's episode ends
        schedule.heal_at(4.0)
        schedule.start()
        seen = []

        def observer(env):
            for _ in range(4):
                yield env.timeout(1.0)
                seen.append((net.partitions.reachable("n0", "n3"),
                             net.partitions.reachable("n1", "n3"),
                             net.partitions.reachable("n0", "n1")))

        env.process(observer(env))
        env.run()
        assert seen == [(False, True, False), (False, False, False),
                        (True, False, False), (True, True, True)]

    def test_heal_is_global_across_overlapping_episodes(self):
        env, net, nodes = make_nodes(3)
        schedule = FailureSchedule(env, net, nodes)
        schedule.partition_at(1.0, ["n0"], ["n1"])
        schedule.heal_at(2.0)   # one heal lifts every group at once
        schedule.start()
        env.run()
        assert net.partitions.reachable("n0", "n1")
        assert net.partitions.reachable("n0", "n2")
        assert not net.partitions.is_partitioned

    def test_directed_cuts_compose_and_are_asymmetric(self):
        # Unlike partitions, cut_at/restore_at overlay as a set: two
        # overlapping cut episodes never cancel each other, and each
        # direction lifts independently.
        env, net, nodes = make_nodes(3)
        schedule = FailureSchedule(env, net, nodes)
        schedule.cut_at(1.0, "n0", "n1")
        schedule.cut_at(2.0, "n2", "n1")      # overlaps the first cut
        schedule.restore_at(3.0, "n0", "n1")
        schedule.restore_at(4.0, "n2", "n1")
        schedule.start()
        seen = []

        def observer(env):
            for _ in range(4):
                yield env.timeout(1.0)
                seen.append((("n0", "n1") in net.cut_links,
                             ("n1", "n0") in net.cut_links,
                             ("n2", "n1") in net.cut_links))

        env.process(observer(env))
        env.run()
        assert seen == [(True, False, False),   # first cut, one-way only
                        (True, False, True),    # second cut stacked on it
                        (False, False, True),   # first lifted, second holds
                        (False, False, False)]

    def test_heal_does_not_lift_directed_cuts(self):
        env, net, nodes = make_nodes(2)
        schedule = FailureSchedule(env, net, nodes)
        schedule.cut_at(1.0, "n0", "n1")
        schedule.partition_at(2.0, ["n0"])
        schedule.heal_at(3.0)
        schedule.start()
        env.run()
        assert net.partitions.reachable("n0", "n1")
        assert ("n0", "n1") in net.cut_links  # survives the heal

    def test_cut_drops_messages_one_way(self):
        env, net, nodes = make_nodes(2)
        received = []
        net._endpoints["n1"] = lambda msg: received.append(("n1", msg.kind))
        net._endpoints["n0"] = lambda msg: received.append(("n0", msg.kind))
        schedule = FailureSchedule(env, net, nodes)
        schedule.cut_at(0.5, "n0", "n1")
        schedule.start()

        def talk(env):
            yield env.timeout(1.0)
            net.send("n0", "n1", "ping", None)   # cut: dropped
            net.send("n1", "n0", "pong", None)   # reverse direction: ok
            yield env.timeout(1.0)

        env.process(talk(env))
        env.run()
        assert received == [("n0", "pong")]


class TestScheduleFromTrace:
    def test_replays_recorded_fault_timeline(self):
        import random as _random
        from repro.sim.failures import FailureInjector, schedule_from_trace
        from repro.sim.trace import TraceLog

        # run 1: random faults, recorded in the trace
        env1, net1, nodes1 = make_nodes(4)
        injector = FailureInjector(env1, nodes1, lam=0.5, mu=1.0,
                                   rng=_random.Random(13))
        injector.start()
        env1.run(until=30.0)
        events1 = [(r.time, r.kind, r.node) for r in net1.trace
                   if r.kind in ("node-crash", "node-recover")]
        assert events1, "the injector should have produced faults"

        # run 2: replay the extracted schedule on a fresh cluster
        env2, net2, nodes2 = make_nodes(4)
        schedule = schedule_from_trace(net1.trace, env2, net2, nodes2)
        schedule.start()
        env2.run(until=30.0)
        events2 = [(r.time, r.kind, r.node) for r in net2.trace
                   if r.kind in ("node-crash", "node-recover")]
        assert events2 == events1

    def test_ignores_non_fault_records(self):
        from repro.sim.failures import schedule_from_trace
        from repro.sim.trace import TraceLog

        trace = TraceLog()
        trace.record(1.0, "send", "n0", dst="n1")
        trace.record(2.0, "node-crash", "n0")
        env, net, nodes = make_nodes(1)
        schedule = schedule_from_trace(trace, env, net, nodes)
        assert len(schedule._actions) == 1
