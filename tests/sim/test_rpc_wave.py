"""Tests for the batched RPC wave fan-out (``RpcLayer.call_wave``) and
the liveness-observer hook."""

import random

from repro.sim.engine import Environment
from repro.sim.network import LatencyModel, Network
from repro.sim.node import Node
from repro.sim.rpc import CALL_FAILED, RpcLayer
from repro.sim.trace import TraceLog


def make_cluster(n=4, timeout=0.5, seed=0):
    env = Environment()
    trace = TraceLog()
    net = Network(env, LatencyModel(0.01, 0.01, rng=random.Random(seed)),
                  trace=trace)
    nodes = [Node(env, net, f"n{i}") for i in range(n)]
    rpcs = [RpcLayer(node, default_timeout=timeout) for node in nodes]
    return env, nodes, rpcs, trace


class TestCallWave:
    def test_gathers_all_responses(self):
        env, nodes, rpcs, trace = make_cluster()
        for rpc in rpcs[1:]:
            rpc.serve("echo", lambda src, args, name=rpc.node.name:
                      (name, args))
        results = []

        def client(env):
            response = yield rpcs[0].call_wave(
                {f"n{i}": ("echo", i) for i in (1, 2, 3)})
            results.append(response)

        nodes[0].spawn(client(env))
        env.run(until=1.0)
        assert results == [{"n1": ("n1", 1), "n2": ("n2", 2),
                            "n3": ("n3", 3)}]

    def test_empty_wave_completes_immediately(self):
        env, nodes, rpcs, _trace = make_cluster()
        results = []

        def client(env):
            response = yield rpcs[0].call_wave({})
            results.append((env.now, response))

        nodes[0].spawn(client(env))
        env.run(until=1.0)
        assert results == [(0.0, {})]

    def test_dead_destination_fails_only_its_slot(self):
        env, nodes, rpcs, trace = make_cluster()
        for rpc in rpcs[1:]:
            rpc.serve("echo", lambda src, args: args)
        nodes[2].crash()
        results = []

        def client(env):
            response = yield rpcs[0].call_wave(
                {f"n{i}": ("echo", i) for i in (1, 2, 3)}, timeout=0.5)
            results.append((env.now, response))

        nodes[0].spawn(client(env))
        env.run(until=2.0)
        (when, response), = results
        assert response == {"n1": 1, "n2": CALL_FAILED, "n3": 3}
        # the wave completes at the shared deadline, not later
        assert abs(when - 0.5) < 1e-9

    def test_per_destination_calls_are_traced(self):
        env, nodes, rpcs, trace = make_cluster()
        for rpc in rpcs[1:]:
            rpc.serve("echo", lambda src, args: args)

        def client(env):
            yield rpcs[0].call_wave({f"n{i}": ("echo", i) for i in (1, 2, 3)})

        nodes[0].spawn(client(env))
        env.run(until=1.0)
        dsts = [rec.detail["dst"] for rec in trace.records
                if rec.kind == "rpc-call"]
        assert sorted(dsts) == ["n1", "n2", "n3"]

    def test_multicast_delegates_to_wave(self):
        env, nodes, rpcs, _trace = make_cluster()
        for rpc in rpcs[1:]:
            rpc.serve("ping", lambda src, args: "pong")
        results = []

        def client(env):
            response = yield rpcs[0].multicast(("n1", "n2"), "ping")
            results.append(response)

        nodes[0].spawn(client(env))
        env.run(until=1.0)
        assert results == [{"n1": "pong", "n2": "pong"}]


class TestLivenessObserver:
    def test_observer_sees_success_and_timeout(self):
        env, nodes, rpcs, _trace = make_cluster()
        rpcs[1].serve("echo", lambda src, args: args)
        nodes[2].crash()
        seen = []
        rpcs[0].liveness_observer = lambda dst, ok: seen.append((dst, ok))

        def client(env):
            yield rpcs[0].call_wave(
                {"n1": ("echo", 1), "n2": ("echo", 2)}, timeout=0.5)

        nodes[0].spawn(client(env))
        env.run(until=2.0)
        assert sorted(seen) == [("n1", True), ("n2", False)]

    def test_single_call_feeds_observer_too(self):
        env, nodes, rpcs, _trace = make_cluster()
        nodes[1].crash()
        seen = []
        rpcs[0].liveness_observer = lambda dst, ok: seen.append((dst, ok))

        def client(env):
            yield rpcs[0].call("n1", "echo", timeout=0.5)

        nodes[0].spawn(client(env))
        env.run(until=2.0)
        assert seen == [("n1", False)]

    def test_caller_crash_never_feeds_observer(self):
        env, nodes, rpcs, _trace = make_cluster()
        seen = []
        rpcs[0].liveness_observer = lambda dst, ok: seen.append((dst, ok))

        def client(env):
            yield rpcs[0].call_wave(
                {"n1": ("echo", 1), "n2": ("echo", 2)}, timeout=5.0)

        nodes[0].spawn(client(env))
        env.run(until=0.005)  # wave is in flight
        nodes[0].crash()      # the *caller* fails, not the destinations
        env.run(until=6.0)
        assert seen == []
