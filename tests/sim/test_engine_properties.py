"""Property-based tests of the simulation kernel."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Environment


class TestTimeoutOrdering:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        env = Environment()
        fired = []

        def waiter(env, delay):
            yield env.timeout(delay)
            fired.append(env.now)

        for delay in delays:
            env.process(waiter(env, delay))
        env.run()
        assert fired == sorted(fired)
        assert sorted(fired) == sorted(delays)

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=50),
                              st.integers(0, 10 ** 6)),
                    min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_ties_break_by_schedule_order(self, items):
        env = Environment()
        fired = []

        def waiter(env, delay, tag):
            yield env.timeout(delay)
            fired.append((env.now, tag))

        for order, (delay, tag) in enumerate(items):
            env.process(waiter(env, delay, (delay, order)))
        env.run()
        # among equal times, the earlier-scheduled process fires first
        for (t1, tag1), (t2, tag2) in zip(fired, fired[1:]):
            if t1 == t2:
                assert tag1[1] < tag2[1]


class TestNestedProcesses:
    @given(st.integers(min_value=1, max_value=8),
           st.floats(min_value=0.1, max_value=3.0))
    @settings(max_examples=30, deadline=None)
    def test_process_chain_accumulates_delays(self, depth, delay):
        env = Environment()

        def worker(env, remaining):
            yield env.timeout(delay)
            if remaining:
                yield env.process(worker(env, remaining - 1))
            return remaining

        import pytest

        root = env.process(worker(env, depth))
        env.run()
        assert env.now == pytest.approx((depth + 1) * delay)
        assert root.value == depth

    @given(st.integers(min_value=2, max_value=12))
    @settings(max_examples=30, deadline=None)
    def test_all_of_fires_at_maximum(self, count):
        env = Environment()
        rng = random.Random(count)
        delays = [rng.uniform(0.1, 9.9) for _ in range(count)]
        done = []

        def proc(env):
            yield env.all_of([env.timeout(d) for d in delays])
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [max(delays)]

    @given(st.integers(min_value=2, max_value=12))
    @settings(max_examples=30, deadline=None)
    def test_any_of_fires_at_minimum(self, count):
        env = Environment()
        rng = random.Random(count * 7)
        delays = [rng.uniform(0.1, 9.9) for _ in range(count)]
        done = []

        def proc(env):
            yield env.any_of([env.timeout(d) for d in delays])
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [min(delays)]


class TestLockProperties:
    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=5),
                              st.floats(min_value=0.01, max_value=2),
                              st.booleans()),
                    min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_no_write_write_or_read_write_overlap(self, arrivals):
        env = Environment()
        lock = env.lock()
        active: list[tuple[str, str]] = []
        overlaps = []

        def client(env, lock, name, start, hold, shared):
            yield env.timeout(start)
            yield lock.acquire(name, shared=shared)
            mode = "shared" if shared else "exclusive"
            for _other, other_mode in active:
                if mode == "exclusive" or other_mode == "exclusive":
                    overlaps.append((name, mode))
            active.append((name, mode))
            yield env.timeout(hold)
            active.remove((name, mode))
            lock.release(name)

        for index, (start, hold, shared) in enumerate(arrivals):
            env.process(client(env, lock, f"c{index}", start, hold, shared))
        env.run()
        assert overlaps == []
        assert not lock.locked
