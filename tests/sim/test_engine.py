"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
    Timeout,
)


class TestClockAndTimeouts:
    def test_clock_starts_at_zero(self):
        env = Environment()
        assert env.now == 0.0

    def test_timeout_advances_clock(self):
        env = Environment()
        fired = []

        def proc(env):
            yield env.timeout(3.5)
            fired.append(env.now)

        env.process(proc(env))
        env.run()
        assert fired == [3.5]

    def test_timeouts_fire_in_time_order(self):
        env = Environment()
        order = []

        def proc(env, name, delay):
            yield env.timeout(delay)
            order.append(name)

        env.process(proc(env, "late", 5.0))
        env.process(proc(env, "early", 1.0))
        env.process(proc(env, "mid", 3.0))
        env.run()
        assert order == ["early", "mid", "late"]

    def test_equal_times_fire_in_schedule_order(self):
        env = Environment()
        order = []

        def proc(env, name):
            yield env.timeout(1.0)
            order.append(name)

        for name in "abcd":
            env.process(proc(env, name))
        env.run()
        assert order == list("abcd")

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Timeout(env, -1.0)

    def test_run_until_stops_early(self):
        env = Environment()
        fired = []

        def proc(env):
            yield env.timeout(10.0)
            fired.append(True)

        env.process(proc(env))
        stopped_at = env.run(until=4.0)
        assert stopped_at == 4.0
        assert env.now == 4.0
        assert not fired
        env.run()
        assert fired == [True]

    def test_run_until_beyond_queue_advances_clock(self):
        env = Environment()
        assert env.run(until=7.0) == 7.0
        assert env.now == 7.0

    def test_timeout_carries_value(self):
        env = Environment()
        got = []

        def proc(env):
            value = yield env.timeout(1.0, value="payload")
            got.append(value)

        env.process(proc(env))
        env.run()
        assert got == ["payload"]

    def test_zero_delay_timeout_runs_same_time(self):
        env = Environment()
        times = []

        def proc(env):
            yield env.timeout(0.0)
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [0.0]


class TestEvents:
    def test_succeed_delivers_value(self):
        env = Environment()
        event = env.event()
        got = []

        def waiter(env, event):
            got.append((yield event))

        env.process(waiter(env, event))

        def trigger(env, event):
            yield env.timeout(1.0)
            event.succeed(42)

        env.process(trigger(env, event))
        env.run()
        assert got == [42]

    def test_fail_raises_in_waiter(self):
        env = Environment()
        event = env.event()
        caught = []

        def waiter(env, event):
            try:
                yield event
            except ValueError as exc:
                caught.append(str(exc))

        env.process(waiter(env, event))

        def trigger(env, event):
            yield env.timeout(1.0)
            event.fail(ValueError("boom"))

        env.process(trigger(env, event))
        env.run()
        assert caught == ["boom"]

    def test_double_trigger_rejected(self):
        env = Environment()
        event = env.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)
        with pytest.raises(SimulationError):
            event.fail(ValueError())

    def test_value_before_trigger_rejected(self):
        env = Environment()
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_waiting_on_already_fired_event(self):
        env = Environment()
        event = env.event()
        event.succeed("early")
        got = []

        def waiter(env, event):
            got.append((yield event))

        env.process(waiter(env, event))
        env.run()
        assert got == ["early"]

    def test_multiple_waiters_all_resumed(self):
        env = Environment()
        event = env.event()
        got = []

        def waiter(env, event, name):
            value = yield event
            got.append((name, value))

        for name in ("a", "b", "c"):
            env.process(waiter(env, event, name))

        def trigger(env, event):
            yield env.timeout(2.0)
            event.succeed("x")

        env.process(trigger(env, event))
        env.run()
        assert sorted(got) == [("a", "x"), ("b", "x"), ("c", "x")]


class TestConditions:
    def test_all_of_waits_for_all(self):
        env = Environment()
        done = []

        def proc(env):
            t1 = env.timeout(1.0, value="one")
            t2 = env.timeout(3.0, value="three")
            results = yield env.all_of([t1, t2])
            done.append((env.now, sorted(results.values())))

        env.process(proc(env))
        env.run()
        assert done == [(3.0, ["one", "three"])]

    def test_any_of_fires_on_first(self):
        env = Environment()
        done = []

        def proc(env):
            t1 = env.timeout(1.0, value="fast")
            t2 = env.timeout(9.0, value="slow")
            results = yield env.any_of([t1, t2])
            done.append((env.now, list(results.values())))

        env.process(proc(env))
        env.run()
        assert done == [(1.0, ["fast"])]

    def test_all_of_empty_fires_immediately(self):
        env = Environment()
        done = []

        def proc(env):
            results = yield env.all_of([])
            done.append(results)

        env.process(proc(env))
        env.run()
        assert done == [{}]

    def test_all_of_with_pretriggered_events(self):
        env = Environment()
        event = env.event()
        event.succeed(7)
        done = []

        def proc(env, event):
            results = yield env.all_of([event, env.timeout(1.0, value=8)])
            done.append(sorted(results.values()))

        env.process(proc(env, event))
        env.run()
        assert done == [[7, 8]]

    def test_all_of_propagates_failure(self):
        env = Environment()
        event = env.event()
        caught = []

        def proc(env, event):
            try:
                yield env.all_of([event, env.timeout(5.0)])
            except RuntimeError as exc:
                caught.append(str(exc))

        env.process(proc(env, event))

        def trigger(env, event):
            yield env.timeout(1.0)
            event.fail(RuntimeError("part failed"))

        env.process(trigger(env, event))
        env.run()
        assert caught == ["part failed"]


class TestProcesses:
    def test_process_return_value(self):
        env = Environment()

        def child(env):
            yield env.timeout(1.0)
            return "result"

        def parent(env):
            value = yield env.process(child(env))
            return value

        parent_proc = env.process(parent(env))
        env.run()
        assert parent_proc.value == "result"

    def test_process_exception_propagates_to_run(self):
        env = Environment()

        def broken(env):
            yield env.timeout(1.0)
            raise KeyError("bug")

        env.process(broken(env))
        with pytest.raises(SimulationError):
            env.run()

    def test_interrupt_raises_in_process(self):
        env = Environment()
        caught = []

        def victim(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                caught.append((env.now, interrupt.cause))

        process = env.process(victim(env))

        def killer(env, process):
            yield env.timeout(2.0)
            process.interrupt("die")

        env.process(killer(env, process))
        env.run()
        assert caught == [(2.0, "die")]

    def test_interrupt_finished_process_is_noop(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1.0)

        process = env.process(quick(env))
        env.run()
        process.interrupt("too late")
        env.run()
        assert process.triggered

    def test_unhandled_interrupt_terminates_quietly(self):
        env = Environment()

        def victim(env):
            yield env.timeout(100.0)

        process = env.process(victim(env))

        def killer(env, process):
            yield env.timeout(1.0)
            process.interrupt()

        env.process(killer(env, process))
        env.run()
        assert process.triggered and process.ok

    def test_interrupted_process_does_not_resume_on_old_event(self):
        env = Environment()
        resumed = []

        def victim(env):
            try:
                yield env.timeout(5.0)
                resumed.append("timeout")
            except Interrupt:
                yield env.timeout(100.0)
                resumed.append("after-interrupt")

        process = env.process(victim(env))

        def killer(env, process):
            yield env.timeout(1.0)
            process.interrupt()

        env.process(killer(env, process))
        env.run()
        assert resumed == ["after-interrupt"]
        assert env.now == 101.0

    def test_non_generator_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_yielding_non_event_fails_process(self):
        env = Environment()

        def bad(env):
            yield 42

        env.process(bad(env))
        with pytest.raises(SimulationError):
            env.run()


class TestLock:
    def test_exclusive_mutual_exclusion(self):
        env = Environment()
        lock = env.lock()
        order = []

        def worker(env, lock, name, hold):
            yield lock.acquire(name)
            order.append(("acq", name, env.now))
            yield env.timeout(hold)
            lock.release(name)
            order.append(("rel", name, env.now))

        env.process(worker(env, lock, "a", 2.0))
        env.process(worker(env, lock, "b", 1.0))
        env.run()
        assert order == [
            ("acq", "a", 0.0), ("rel", "a", 2.0),
            ("acq", "b", 2.0), ("rel", "b", 3.0),
        ]

    def test_shared_holders_coexist(self):
        env = Environment()
        lock = env.lock()
        concurrent = []

        def reader(env, lock, name):
            yield lock.acquire(name, shared=True)
            concurrent.append(len(lock.holders))
            yield env.timeout(1.0)
            lock.release(name)

        env.process(reader(env, lock, "r1"))
        env.process(reader(env, lock, "r2"))
        env.run()
        assert max(concurrent) == 2

    def test_exclusive_waits_for_shared(self):
        env = Environment()
        lock = env.lock()
        times = {}

        def reader(env, lock):
            yield lock.acquire("reader", shared=True)
            yield env.timeout(2.0)
            lock.release("reader")

        def writer(env, lock):
            yield env.timeout(0.5)
            yield lock.acquire("writer")
            times["writer"] = env.now
            lock.release("writer")

        env.process(reader(env, lock))
        env.process(writer(env, lock))
        env.run()
        assert times["writer"] == 2.0

    def test_fifo_no_starvation_for_writer(self):
        env = Environment()
        lock = env.lock()
        times = {}

        def reader(env, lock, name, start):
            yield env.timeout(start)
            yield lock.acquire(name, shared=True)
            yield env.timeout(2.0)
            lock.release(name)

        def writer(env, lock):
            yield env.timeout(0.5)
            yield lock.acquire("writer")
            times["writer"] = env.now
            lock.release("writer")

        env.process(reader(env, lock, "r1", 0.0))
        env.process(reader(env, lock, "r2", 1.0))  # arrives after the writer
        env.process(writer(env, lock))
        env.run()
        # r2 queued behind the writer, so the writer runs at r1's release.
        assert times["writer"] == 2.0

    def test_release_unheld_is_noop(self):
        env = Environment()
        lock = env.lock()
        lock.release("ghost")
        assert not lock.locked

    def test_reacquire_while_holding_rejected(self):
        env = Environment()
        lock = env.lock()

        def proc(env, lock):
            yield lock.acquire("me")
            with pytest.raises(SimulationError):
                lock.acquire("me")
            lock.release("me")

        env.process(proc(env, lock))
        env.run()

    def test_reset_evicts_and_fails_waiters(self):
        env = Environment()
        lock = env.lock()
        outcomes = []

        def holder(env, lock):
            yield lock.acquire("holder")
            yield env.timeout(10.0)

        def waiter(env, lock):
            try:
                yield lock.acquire("waiter")
                outcomes.append("granted")
            except Interrupt:
                outcomes.append("interrupted")

        def resetter(env, lock):
            yield env.timeout(1.0)
            lock.reset()

        env.process(holder(env, lock))
        env.process(waiter(env, lock))
        env.process(resetter(env, lock))
        env.run()
        assert outcomes == ["interrupted"]
        assert not lock.locked

    def test_cancel_withdraws_waiter(self):
        env = Environment()
        lock = env.lock()
        got = []

        def holder(env, lock):
            yield lock.acquire("holder")
            yield env.timeout(2.0)
            lock.release("holder")

        def impatient(env, lock):
            request = lock.acquire("impatient")
            yield env.timeout(1.0)
            if not request.triggered:
                lock.cancel("impatient")
                got.append("gave-up")

        def other(env, lock):
            yield env.timeout(0.5)
            yield lock.acquire("other")
            got.append(("other", env.now))
            lock.release("other")

        env.process(holder(env, lock))
        env.process(impatient(env, lock))
        env.process(other(env, lock))
        env.run()
        assert "gave-up" in got
        assert ("other", 2.0) in got


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run_once():
            import random
            env = Environment()
            rng = random.Random(1234)
            log = []

            def proc(env, rng, name):
                for _ in range(20):
                    yield env.timeout(rng.expovariate(1.0))
                    log.append((round(env.now, 9), name))

            for name in ("a", "b", "c"):
                env.process(proc(env, rng, name))
            env.run()
            return log

        assert run_once() == run_once()


class TestPublicScheduling:
    """Environment.schedule: the public face of the callback queue."""

    def test_schedule_runs_callback_after_delay(self):
        env = Environment()
        fired = []
        env.schedule(lambda: fired.append(env.now), delay=2.5)
        env.run(until=2.0)
        assert fired == []
        env.run(until=3.0)
        assert fired == [2.5]

    def test_schedule_default_delay_is_immediate(self):
        env = Environment()
        fired = []
        env.schedule(lambda: fired.append(env.now))
        env.run(until=1.0)
        assert fired == [0.0]
