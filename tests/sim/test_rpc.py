"""Tests for the RPC layer and its CALL_FAILED semantics."""

import random

from repro.sim.engine import Environment
from repro.sim.network import LatencyModel, Network
from repro.sim.node import Node
from repro.sim.rpc import CALL_FAILED, CallFailed, RpcLayer
from repro.sim.trace import TraceLog


def make_cluster(n=3, timeout=0.5, min_delay=0.01, max_delay=0.01, seed=0):
    env = Environment()
    trace = TraceLog()
    net = Network(env, LatencyModel(min_delay, max_delay,
                                    rng=random.Random(seed)), trace=trace)
    nodes = [Node(env, net, f"n{i}") for i in range(n)]
    rpcs = [RpcLayer(node, default_timeout=timeout) for node in nodes]
    return env, net, nodes, rpcs, trace


class TestCallFailedSentinel:
    def test_singleton(self):
        assert CallFailed() is CALL_FAILED

    def test_falsy_and_repr(self):
        assert not CALL_FAILED
        assert repr(CALL_FAILED) == "CALL_FAILED"


class TestBasicCalls:
    def test_roundtrip(self):
        env, net, nodes, rpcs, trace = make_cluster()
        rpcs[1].serve("echo", lambda src, args: ("from", src, args))
        results = []

        def client(env):
            response = yield rpcs[0].call("n1", "echo", {"k": 1})
            results.append((env.now, response))

        env.process(client(env))
        env.run()
        assert results == [(0.02, ("from", "n0", {"k": 1}))]

    def test_call_to_down_node_fails_at_timeout(self):
        env, net, nodes, rpcs, trace = make_cluster(timeout=0.5)
        rpcs[1].serve("echo", lambda src, args: args)
        nodes[1].crash()
        results = []

        def client(env):
            response = yield rpcs[0].call("n1", "echo", 1)
            results.append((env.now, response))

        env.process(client(env))
        env.run()
        assert results == [(0.5, CALL_FAILED)]

    def test_call_across_partition_fails(self):
        env, net, nodes, rpcs, trace = make_cluster()
        rpcs[1].serve("echo", lambda src, args: args)
        net.partitions.partition(["n0"], ["n1", "n2"])
        results = []

        def client(env):
            results.append((yield rpcs[0].call("n1", "echo", 1)))

        env.process(client(env))
        env.run()
        assert results == [CALL_FAILED]

    def test_unknown_method_fails_at_timeout(self):
        env, net, nodes, rpcs, trace = make_cluster()
        results = []

        def client(env):
            results.append((yield rpcs[0].call("n1", "nope", 1)))

        env.process(client(env))
        env.run()
        assert results == [CALL_FAILED]

    def test_per_call_timeout_override(self):
        env, net, nodes, rpcs, trace = make_cluster(timeout=10.0)
        nodes[1].crash()
        results = []

        def client(env):
            response = yield rpcs[0].call("n1", "echo", 1, timeout=0.1)
            results.append((env.now, response))

        env.process(client(env))
        env.run()
        assert results == [(0.1, CALL_FAILED)]

    def test_generator_handler_can_wait(self):
        env, net, nodes, rpcs, trace = make_cluster(timeout=5.0)

        def handler(src, args):
            yield env.timeout(1.0)
            return args * 2

        rpcs[1].serve("double", handler)
        results = []

        def client(env):
            response = yield rpcs[0].call("n1", "double", 21)
            results.append((env.now, response))

        env.process(client(env))
        env.run()
        assert results == [(1.02, 42)]

    def test_late_response_after_timeout_ignored(self):
        env, net, nodes, rpcs, trace = make_cluster(timeout=0.5)

        def handler(src, args):
            yield env.timeout(1.0)  # slower than the caller's timeout
            return "late"

        rpcs[1].serve("slow", handler)
        results = []

        def client(env):
            results.append((yield rpcs[0].call("n1", "slow", None)))
            yield env.timeout(5.0)  # let the late response arrive

        env.process(client(env))
        env.run()
        assert results == [CALL_FAILED]

    def test_callee_crash_mid_handler_means_call_failed(self):
        env, net, nodes, rpcs, trace = make_cluster(timeout=2.0)

        def handler(src, args):
            yield env.timeout(1.0)
            return "done"

        rpcs[1].serve("work", handler)
        results = []

        def client(env):
            results.append((yield rpcs[0].call("n1", "work", None)))

        def crasher(env):
            yield env.timeout(0.5)
            nodes[1].crash()

        env.process(client(env))
        env.process(crasher(env))
        env.run()
        assert results == [CALL_FAILED]

    def test_concurrent_calls_keep_ids_apart(self):
        env, net, nodes, rpcs, trace = make_cluster(timeout=5.0)
        rpcs[1].serve("id", lambda src, args: args)
        rpcs[2].serve("id", lambda src, args: args)
        results = {}

        def client(env, dst, tag):
            results[tag] = yield rpcs[0].call(dst, "id", tag)

        env.process(client(env, "n1", "a"))
        env.process(client(env, "n2", "b"))
        env.run()
        assert results == {"a": "a", "b": "b"}


class TestMulticast:
    def test_gathers_all(self):
        env, net, nodes, rpcs, trace = make_cluster(n=4, timeout=1.0)
        for i in (1, 2, 3):
            rpcs[i].serve("state", lambda src, args, i=i: f"state{i}")
        results = []

        def client(env):
            responses = yield rpcs[0].multicast(["n1", "n2", "n3"], "state")
            results.append(responses)

        env.process(client(env))
        env.run()
        assert results == [{"n1": "state1", "n2": "state2", "n3": "state3"}]

    def test_mixed_responses_and_failures(self):
        env, net, nodes, rpcs, trace = make_cluster(n=4, timeout=0.3)
        for i in (1, 2, 3):
            rpcs[i].serve("state", lambda src, args, i=i: i)
        nodes[2].crash()
        results = []

        def client(env):
            responses = yield rpcs[0].multicast(["n1", "n2", "n3"], "state")
            results.append(responses)

        env.process(client(env))
        env.run()
        assert results == [{"n1": 1, "n2": CALL_FAILED, "n3": 3}]

    def test_empty_multicast_completes(self):
        env, net, nodes, rpcs, trace = make_cluster()
        results = []

        def client(env):
            results.append((yield rpcs[0].multicast([], "state")))

        env.process(client(env))
        env.run()
        assert results == [{}]

    def test_self_call_in_multicast(self):
        env, net, nodes, rpcs, trace = make_cluster(timeout=1.0)
        rpcs[0].serve("state", lambda src, args: "me")
        results = []

        def client(env):
            results.append((yield rpcs[0].multicast(["n0"], "state")))

        env.process(client(env))
        env.run()
        assert results == [{"n0": "me"}]


class TestCallerCrash:
    def test_pending_calls_resolve_when_caller_crashes(self):
        env, net, nodes, rpcs, trace = make_cluster(timeout=10.0)

        def handler(src, args):
            yield env.timeout(5.0)
            return "slow"

        rpcs[1].serve("slow", handler)
        observed = []

        def client(env):
            observed.append((yield rpcs[0].call("n1", "slow", None)))

        def crasher(env):
            yield env.timeout(1.0)
            nodes[0].crash()

        nodes[0].spawn(client(env))  # the client runs on (and dies with) n0
        env.process(crasher(env))
        env.run()
        # The client process died with its node; nothing observed, and the
        # simulation drains without deadlock.
        assert observed == []
