"""Tests for the gray-failure RPC extensions: adaptive per-link
deadlines, managed waves (per-destination expiry, hedged backup
requests, early completion), and late-response harvesting."""

import random

from repro.sim.engine import Environment
from repro.sim.network import LatencyModel, Network
from repro.sim.node import Node
from repro.sim.rpc import (
    CALL_FAILED,
    AdaptiveTimeouts,
    HedgePolicy,
    RpcLayer,
    _LinkRtt,
)
from repro.sim.trace import TraceLog


def make_cluster(n=4, timeout=0.5, delay=0.01, seed=0, adaptive=None):
    env = Environment()
    trace = TraceLog()
    net = Network(env, LatencyModel(delay, delay, rng=random.Random(seed)),
                  trace=trace)
    nodes = [Node(env, net, f"n{i}") for i in range(n)]
    rpcs = [RpcLayer(node, default_timeout=timeout, adaptive=adaptive)
            for node in nodes]
    return env, nodes, rpcs, trace


def slow_handler(env, delay, value="slow"):
    def handler(src, args):
        yield env.timeout(delay)
        return value
    return handler


class TestLinkRttEstimator:
    def test_first_sample_initialises_rfc6298(self):
        est = _LinkRtt()
        est.observe(0.1, alpha=0.125, beta=0.25)
        assert est.srtt == 0.1
        assert est.rttvar == 0.05

    def test_ewma_recurrences(self):
        est = _LinkRtt()
        est.observe(0.1, alpha=0.125, beta=0.25)
        est.observe(0.2, alpha=0.125, beta=0.25)
        # rttvar before srtt, against the *old* srtt (RFC 6298 order)
        assert abs(est.rttvar - (0.75 * 0.05 + 0.25 * 0.1)) < 1e-12
        assert abs(est.srtt - (0.875 * 0.1 + 0.125 * 0.2)) < 1e-12

    def test_steady_link_converges(self):
        est = _LinkRtt()
        for _ in range(200):
            est.observe(0.02, alpha=0.125, beta=0.25)
        assert abs(est.srtt - 0.02) < 1e-6
        assert est.rttvar < 1e-3


class TestAdaptiveDeadlines:
    def test_default_until_first_sample(self):
        env, nodes, rpcs, _ = make_cluster(adaptive=AdaptiveTimeouts())
        assert rpcs[0].deadline_for("n1") == 0.5
        assert rpcs[0].hedge_delay_for("n1") == 0.5

    def test_deadline_tracks_responses_and_clamps(self):
        adaptive = AdaptiveTimeouts(floor=0.05, ceil=2.0)
        env, nodes, rpcs, _ = make_cluster(adaptive=adaptive)
        rpcs[1].serve("echo", lambda src, args: args)

        def client(env):
            for _ in range(20):
                yield rpcs[0].call("n1", "echo", 1)

        nodes[0].spawn(client(env))
        env.run(until=10.0)
        # rtt = 0.02 steady; srtt + 4*rttvar is tiny -> clamped to floor
        assert rpcs[0].deadline_for("n1") == 0.05
        est = rpcs[0]._rtt["n1"]
        assert abs(est.srtt - 0.02) < 1e-3

    def test_timeouts_never_update_estimate(self):
        env, nodes, rpcs, _ = make_cluster(adaptive=AdaptiveTimeouts())
        nodes[1].crash()

        def client(env):
            yield rpcs[0].call("n1", "echo", 1, timeout=0.2)

        nodes[0].spawn(client(env))
        env.run(until=2.0)
        assert "n1" not in rpcs[0]._rtt  # Karn's rule

    def test_crash_clears_estimates(self):
        env, nodes, rpcs, _ = make_cluster(adaptive=AdaptiveTimeouts())
        rpcs[1].serve("echo", lambda src, args: args)

        def client(env):
            yield rpcs[0].call("n1", "echo", 1)

        nodes[0].spawn(client(env))
        env.run(until=1.0)
        assert "n1" in rpcs[0]._rtt
        nodes[0].crash()
        assert rpcs[0]._rtt == {}


class TestManagedWaveDeadlines:
    def test_per_destination_expiry(self):
        env, nodes, rpcs, trace = make_cluster(timeout=5.0)
        rpcs[1].serve("echo", lambda src, args: args)
        rpcs[2].serve("echo", slow_handler(env, 3.0))
        results = []

        def client(env):
            response = yield rpcs[0].call_wave(
                {"n1": ("echo", 1), "n2": ("echo", 2)},
                deadlines={"n1": 1.0, "n2": 0.3})
            results.append((env.now, response))

        nodes[0].spawn(client(env))
        env.run(until=10.0)
        (when, response), = results
        # n1 answers at 0.02; n2 expires individually at its 0.3 deadline
        assert response == {"n1": 1, "n2": CALL_FAILED}
        assert abs(when - 0.3) < 1e-9

    def test_missing_deadline_falls_back_to_timeout(self):
        env, nodes, rpcs, _ = make_cluster(timeout=0.4)
        results = []

        def client(env):
            response = yield rpcs[0].call_wave(
                {"n1": ("echo", 1), "n2": ("echo", 2)},
                deadlines={"n1": 0.1})
            results.append((env.now, response))

        nodes[0].spawn(client(env))
        env.run(until=2.0)
        (when, response), = results
        assert response == {"n1": CALL_FAILED, "n2": CALL_FAILED}
        assert abs(when - 0.4) < 1e-9


class TestLateResponses:
    def test_late_reply_feeds_observers(self):
        env, nodes, rpcs, trace = make_cluster(timeout=5.0,
                                               adaptive=AdaptiveTimeouts())
        rpcs[1].serve("slow", slow_handler(env, 1.0))
        seen, rtts = [], []
        rpcs[0].liveness_observer = lambda dst, ok: seen.append((dst, ok))
        rpcs[0].latency_observer = lambda dst, rtt: rtts.append((dst, rtt))

        def client(env):
            yield rpcs[0].call_wave({"n1": ("slow", None)},
                                    deadlines={"n1": 0.3})
            yield env.timeout(5.0)  # let the late reply arrive

        nodes[0].spawn(client(env))
        env.run(until=10.0)
        # first the timeout, then the harvested late reply
        assert seen == [("n1", False), ("n1", True)]
        assert len(rtts) == 1 and abs(rtts[0][1] - 1.02) < 1e-9
        # the late reply updated the RTT estimate after the timeout
        assert "n1" in rpcs[0]._rtt
        kinds = [rec.kind for rec in trace.records
                 if rec.kind == "rpc-late-response"]
        assert kinds == ["rpc-late-response"]

    def test_single_call_late_reply_harvested_too(self):
        env, nodes, rpcs, _ = make_cluster(timeout=0.3,
                                           adaptive=AdaptiveTimeouts())
        rpcs[1].serve("slow", slow_handler(env, 1.0))
        seen = []
        rpcs[0].liveness_observer = lambda dst, ok: seen.append((dst, ok))

        def client(env):
            result = yield rpcs[0].call("n1", "slow", None)
            assert result is CALL_FAILED
            yield env.timeout(5.0)

        nodes[0].spawn(client(env))
        env.run(until=10.0)
        assert seen == [("n1", False), ("n1", True)]


class TestHedging:
    def _wave(self, rpcs, env, nodes, hedge, results,
              targets=("n1", "n2")):
        def client(env):
            response = yield rpcs[0].call_wave(
                {dst: ("echo", dst) for dst in targets},
                deadlines={dst: 2.0 for dst in targets}, hedge=hedge)
            results.append((env.now, response))
        nodes[0].spawn(client(env))

    def test_hedge_fires_and_wins(self):
        env, nodes, rpcs, trace = make_cluster(n=4, timeout=5.0)
        rpcs[1].serve("echo", lambda src, args: args)
        rpcs[2].serve("echo", slow_handler(env, 10.0))   # never answers
        rpcs[3].serve("echo", lambda src, args: "spare")
        results = []
        hedge = HedgePolicy(spares=("n3",), request=("echo", "backup"),
                            delays={"n2": 0.2}, deadlines={"n3": 1.0})
        self._wave(rpcs, env, nodes, hedge, results)
        env.run(until=5.0)
        (when, response), = results
        # hedge fired at 0.2; spare answered at ~0.24; straggler expired
        # at its own 2.0 deadline, which is when the wave completes
        assert response["n1"] == "n1"
        assert response["n3"] == "spare"
        assert response["n2"] is CALL_FAILED
        hedge_recs = [r for r in trace.records if r.kind == "rpc-hedge"]
        assert len(hedge_recs) == 1
        assert hedge_recs[0].detail["dst"] == "n3"
        assert hedge_recs[0].detail["straggler"] == "n2"

    def test_hedge_wasted_when_straggler_answers(self):
        env, nodes, rpcs, trace = make_cluster(n=4, timeout=5.0)
        rpcs[1].serve("echo", lambda src, args: args)
        rpcs[2].serve("echo", slow_handler(env, 0.5, value="eventually"))
        rpcs[3].serve("echo", slow_handler(env, 3.0, value="spare"))
        results = []
        hedge = HedgePolicy(spares=("n3",), request=("echo", "backup"),
                            delays={"n2": 0.2}, deadlines={"n3": 5.0})
        self._wave(rpcs, env, nodes, hedge, results)
        env.run(until=10.0)
        (when, response), = results
        # the straggler answered after the hedge fired but before the
        # spare; both responses land without double-counting
        assert response["n2"] == "eventually"
        assert response["n1"] == "n1"

    def test_hedge_respects_limit_and_one_backup_per_straggler(self):
        env, nodes, rpcs, trace = make_cluster(n=6, timeout=5.0)
        for i in (1, 2):
            rpcs[i].serve("echo", slow_handler(env, 10.0))
        for i in (3, 4, 5):
            rpcs[i].serve("echo", lambda src, args: "spare")
        results = []
        hedge = HedgePolicy(spares=("n3", "n4", "n5"),
                            request=("echo", "backup"),
                            delays={"n1": 0.2, "n2": 0.2},
                            deadlines={}, limit=1)
        self._wave(rpcs, env, nodes, hedge, results,
                   targets=("n1", "n2"))
        env.run(until=10.0)
        hedge_recs = [r for r in trace.records if r.kind == "rpc-hedge"]
        assert len(hedge_recs) == 1  # limit=1 caps the whole wave

    def test_no_hedge_to_already_contacted_node(self):
        env, nodes, rpcs, trace = make_cluster(n=3, timeout=5.0)
        rpcs[1].serve("echo", lambda src, args: args)
        rpcs[2].serve("echo", slow_handler(env, 10.0))
        results = []
        # the only spare is already a wave target: nothing to hedge to
        hedge = HedgePolicy(spares=("n1",), request=("echo", "backup"),
                            delays={"n2": 0.2}, deadlines={})
        self._wave(rpcs, env, nodes, hedge, results)
        env.run(until=10.0)
        assert not [r for r in trace.records if r.kind == "rpc-hedge"]

    def test_hedge_counters(self):
        from repro.obs.metrics import MetricsRegistry, split_key

        env = Environment()
        trace = TraceLog()
        net = Network(env, LatencyModel(0.01, 0.01,
                                        rng=random.Random(0)), trace=trace)
        nodes = [Node(env, net, f"n{i}") for i in range(4)]
        reg = MetricsRegistry(clock=lambda: env.now)
        rpcs = [RpcLayer(node, default_timeout=5.0, metrics=reg)
                for node in nodes]
        rpcs[1].serve("echo", lambda src, args: args)
        rpcs[2].serve("echo", slow_handler(env, 10.0))
        rpcs[3].serve("echo", lambda src, args: "spare")
        hedge = HedgePolicy(spares=("n3",), request=("echo", "backup"),
                            delays={"n2": 0.2}, deadlines={"n3": 1.0})
        results = []

        def client(env):
            response = yield rpcs[0].call_wave(
                {"n1": ("echo", 1), "n2": ("echo", 2)},
                deadlines={"n1": 2.0, "n2": 2.0}, hedge=hedge)
            results.append(response)

        nodes[0].spawn(client(env))
        env.run(until=5.0)
        counters = {split_key(k)[1]["outcome"]: v
                    for k, v in reg.snapshot()["counters"].items()
                    if split_key(k)[0] == "rpc_hedges"
                    and split_key(k)[1]["src"] == "n0"}
        assert counters == {"fired": 1, "won": 1, "wasted": 0}


class TestEarlyCompletion:
    def test_enough_completes_before_stragglers(self):
        env, nodes, rpcs, _ = make_cluster(n=4, timeout=5.0)
        rpcs[1].serve("echo", lambda src, args: args)
        rpcs[2].serve("echo", lambda src, args: args)
        rpcs[3].serve("echo", slow_handler(env, 3.0))
        results = []

        def client(env):
            response = yield rpcs[0].call_wave(
                {dst: ("echo", dst) for dst in ("n1", "n2", "n3")},
                deadlines={dst: 4.0 for dst in ("n1", "n2", "n3")},
                enough=lambda res: len([v for v in res.values()
                                        if v is not CALL_FAILED]) >= 2)
            results.append((env.now, response))

        nodes[0].spawn(client(env))
        env.run(until=10.0)
        (when, response), = results
        assert when < 0.1  # the two fast answers decide the wave
        assert response["n1"] == "n1" and response["n2"] == "n2"
        assert response["n3"] is CALL_FAILED

    def test_straggler_answer_after_early_completion_feeds_observers(self):
        env, nodes, rpcs, _ = make_cluster(n=4, timeout=5.0)
        rpcs[1].serve("echo", lambda src, args: args)
        rpcs[2].serve("echo", lambda src, args: args)
        rpcs[3].serve("echo", slow_handler(env, 1.0))
        seen = []
        rpcs[0].liveness_observer = lambda dst, ok: seen.append((dst, ok))
        results = []

        def client(env):
            response = yield rpcs[0].call_wave(
                {dst: ("echo", dst) for dst in ("n1", "n2", "n3")},
                deadlines={dst: 4.0 for dst in ("n1", "n2", "n3")},
                enough=lambda res: len(res) >= 2)
            results.append(dict(response))
            yield env.timeout(5.0)

        nodes[0].spawn(client(env))
        env.run(until=10.0)
        assert results[0]["n3"] is CALL_FAILED
        # the straggler's eventual answer still lands as a live signal
        assert ("n3", True) in seen
        assert ("n3", False) not in seen


class TestLegacyWaveUnchanged:
    def test_plain_wave_still_single_timer(self):
        env, nodes, rpcs, _ = make_cluster(timeout=0.5)
        rpcs[1].serve("echo", lambda src, args: args)
        nodes[2].crash()
        results = []

        def client(env):
            response = yield rpcs[0].call_wave(
                {"n1": ("echo", 1), "n2": ("echo", 2)})
            results.append((env.now, response))

        nodes[0].spawn(client(env))
        env.run(until=2.0)
        (when, response), = results
        assert response == {"n1": 1, "n2": CALL_FAILED}
        assert abs(when - 0.5) < 1e-9
