"""The dynamic protocol with weighted voting and asymmetric quorums.

Section 4's protocol takes *any* coterie rule; these tests exercise two
less-obvious instantiations: weighted votes (a beefy primary site) and
read-cheap/write-expensive majorities.
"""

import pytest

from repro.core.store import ReplicatedStore
from repro.coteries.majority import MajorityCoterie, WeightedVotingCoterie


def weighted_rule(weights_by_suffix):
    """A coterie rule giving nodes weights by their name, robust to
    epochs shrinking (weights defined for any subset)."""

    def rule(nodes):
        weights = {name: weights_by_suffix.get(name, 1) for name in nodes}
        return WeightedVotingCoterie(tuple(nodes), weights=weights)

    return rule


class TestWeightedDynamicStore:
    def test_heavy_node_dominates_quorums(self):
        # n00 has 5 votes; others 1 each (total 9, majority 5): n00 plus
        # nothing else is a write quorum, and every quorum includes n00.
        rule = weighted_rule({"n00": 5})
        store = ReplicatedStore.create(5, seed=1, coterie_rule=rule)
        result = store.write({"x": 1})
        assert result.ok
        assert "n00" in set(result.good) | set(result.stale)
        store.verify()

    def test_losing_the_heavy_node_blocks_everything(self):
        rule = weighted_rule({"n00": 5})
        store = ReplicatedStore.create(5, seed=2, coterie_rule=rule)
        store.write({"x": 1})
        store.crash("n00")
        assert not store.write({"x": 2}).ok
        assert not store.check_epoch().ok  # no quorum without n00
        store.recover("n00")
        assert store.write({"x": 2}).ok
        store.verify()

    def test_light_nodes_can_fail_freely(self):
        rule = weighted_rule({"n00": 5})
        store = ReplicatedStore.create(5, seed=3, coterie_rule=rule)
        store.write({"x": 1})
        store.crash("n01", "n02", "n03", "n04")
        # n00 alone: 5 of 9 votes -- still a write quorum
        result = store.write({"x": 2})
        assert result.ok
        assert store.read().value == {"x": 2}
        store.verify()

    def test_epoch_change_with_weighted_rule(self):
        rule = weighted_rule({"n00": 3})
        store = ReplicatedStore.create(5, seed=4, coterie_rule=rule)
        store.write({"x": 1})
        store.crash("n04")
        check = store.check_epoch()
        assert check.ok and check.changed
        assert store.write({"x": 2}).ok
        store.settle()
        store.verify()


class TestAsymmetricQuorums:
    def asymmetric_rule(self, nodes):
        # read-one-ish, write-most: r + w > N with small r
        n = len(nodes)
        write_size = max(n - 1, n // 2 + 1, 1)
        read_size = max(n + 1 - write_size, 1)
        if read_size + write_size <= n:
            read_size = n + 1 - write_size
        return MajorityCoterie(tuple(nodes), read_size=read_size,
                               write_size=write_size)

    def test_cheap_reads_expensive_writes(self):
        store = ReplicatedStore.create(6, seed=5,
                                       coterie_rule=self.asymmetric_rule,
                                       trace_enabled=True)
        store.write({"x": 1})
        store.trace.clear()
        read = store.read()
        assert read.ok and read.value == {"x": 1}
        polled = {rec.detail["dst"]
                  for rec in store.trace.select(kind="rpc-call")
                  if rec.detail["method"] == "read-request"}
        assert len(polled) == 2  # read quorum of 2 over 6 nodes

    def test_two_failures_block_writes_but_not_reads(self):
        store = ReplicatedStore.create(6, seed=6,
                                       coterie_rule=self.asymmetric_rule)
        store.write({"x": 1})
        store.crash("n05")
        assert store.write({"x": 2}).ok   # 5 survivors = the 5-of-6 quorum
        store.crash("n04")
        assert store.read().ok            # reads need only 2
        assert not store.write({"x": 3}).ok  # 4 < 5
        # 4 survivors cannot hold a 5-member write quorum of the old
        # epoch either, so the epoch is wedged until someone returns
        assert not store.check_epoch().ok
        store.recover("n04")
        assert store.check_epoch().ok
        assert store.write({"x": 3}).ok
        store.verify()

    def test_read_one_write_all_epochs_cannot_adapt(self):
        # The paper's own caveat (Section 2): with the read-one/write-all
        # discipline "a single failure would make the epoch change
        # impossible and the data object unavailable for update."
        from repro.coteries.rowa import ReadOneWriteAllCoterie
        store = ReplicatedStore.create(5, seed=7,
                                       coterie_rule=ReadOneWriteAllCoterie)
        store.write({"x": 1})
        store.crash("n04")
        assert store.read().ok                  # read-one still fine
        assert not store.write({"x": 2}).ok     # write-all cannot
        assert not store.check_epoch().ok       # and neither can the epoch
        store.verify()
