"""Two-phase commit under faults: atomicity, recovery, termination."""

from repro.core.store import ReplicatedStore


def committed_versions(store):
    return {name: store.replica_state(name).version
            for name in store.node_names}


class TestAtomicity:
    def test_all_or_nothing_across_good_set(self):
        store = ReplicatedStore.create(9, seed=1)
        result = store.write({"x": 1})
        versions = committed_versions(store)
        applied = {n for n, v in versions.items() if v == 1}
        assert applied == set(result.good)

    def test_participant_crash_during_write_window(self):
        # Crash a node shortly after the write starts; whatever happens,
        # the surviving replicas agree and the history stays 1SR.
        store = ReplicatedStore.create(9, seed=2)
        store.write({"x": 0})
        write = store.start_write({"x": 1}, via="n00")
        schedule = store.schedule()
        schedule.crash_at(store.env.now + 0.015, "n01")
        schedule.start()
        store.join(write, timeout=300)
        store.recover("n01")
        store.advance(15)   # recovery termination protocol resolves
        store.settle()
        read = store.read()
        assert read.ok
        store.verify()

    def test_recovered_participant_learns_commit(self):
        # A prepared participant that crashes before receiving the commit
        # must apply it after recovery (stable prepare + termination).
        store = ReplicatedStore.create(4, seed=3)
        store.write({"x": 1})

        # find a write where all four nodes participate (2x2 grid quorum=3,
        # heavy path touches all); crash one right at the commit point
        crash_times = [0.02, 0.03, 0.04]
        for i, t in enumerate(crash_times):
            victim = "n03"
            write = store.start_write({"x": 2 + i}, via="n00")
            schedule = store.schedule()
            schedule.crash_at(store.env.now + t, victim)
            schedule.start()
            store.join(write, timeout=300)
            store.recover(victim)
            store.advance(20)
            store.settle()
        # all up replicas that are epoch members and not stale converge
        store.settle()
        read = store.read()
        assert read.ok
        store.verify()

    def test_coordinator_crash_mid_transaction_resolves_on_recovery(self):
        # The coordinator dies while participants are prepared.  Classic
        # 2PC: they must BLOCK (the coordinator may have recorded a commit
        # decision), so writes needing them stall -- and resolve as soon as
        # the coordinator returns and termination learns the outcome.
        store = ReplicatedStore.create(9, seed=4)
        store.write({"x": 1})
        write = store.start_write({"x": 2}, via="n00")
        schedule = store.schedule()
        schedule.crash_at(store.env.now + 0.025, "n00")
        schedule.start()
        store.env.run(until=store.env.now + 30)
        blocked = [name for name in store.node_names
                   if store.servers[name].node.stable["prepared"]]
        store.recover("n00")
        store.advance(20)  # termination protocol resolves the in-doubt txn
        for name in blocked:
            assert not store.servers[name].node.stable["prepared"], name
        result = store.write({"x": 3}, via="n05")
        assert result.ok
        store.settle()
        store.verify()

    def test_coordinator_crash_sweep(self):
        # Sweep the crash instant across the whole write window: no timing
        # may violate serializability or wedge the system.
        for offset in (0.005, 0.02, 0.035, 0.05, 0.1, 0.5):
            store = ReplicatedStore.create(9, seed=5)
            store.write({"x": 1})
            write = store.start_write({"x": 2}, via="n00")
            schedule = store.schedule()
            schedule.crash_at(store.env.now + offset, "n00")
            schedule.start()
            store.env.run(until=store.env.now + 40)
            result = store.write({"x": 3}, via="n05")
            assert result.ok, f"offset {offset}: follow-up write failed"
            store.settle()
            store.verify()


class TestDecisionRecords:
    def test_presumed_abort_status(self):
        store = ReplicatedStore.create(3, seed=6)
        server = store.servers["n00"]
        assert server._on_txn_status("x", "unknown-txn") == "aborted"
        server.node.stable["coord_committed"].add("t1")
        assert server._on_txn_status("x", "t1") == "committed"
        server.node.volatile.setdefault("coord_active", set()).add("t2")
        assert server._on_txn_status("x", "t2") == "pending"

    def test_peer_status_views(self):
        store = ReplicatedStore.create(3, seed=7)
        server = store.servers["n01"]
        assert server._on_txn_status_peer("x", "t?") == "unknown"
        server.node.stable["txn_outcomes"]["t1"] = "committed"
        assert server._on_txn_status_peer("x", "t1") == "committed"

    def test_duplicate_commit_is_idempotent(self):
        store = ReplicatedStore.create(4, seed=8)
        store.write({"x": 1})
        server = store.servers["n00"]
        before = server.state.version
        server._commit_txn("no-such-txn")   # duplicate/unknown: no-op
        assert server.state.version == before


class TestLockHygiene:
    def test_no_locks_held_after_quiet_period(self):
        store = ReplicatedStore.create(9, seed=9)
        for i in range(5):
            store.write({"k": i}, via=f"n{i:02d}")
        store.advance(20)
        for name in store.node_names:
            assert not store.servers[name].lock.locked, name

    def test_lease_reclaims_lock_from_dead_coordinator(self):
        store = ReplicatedStore.create(9, seed=10)
        write = store.start_write({"x": 1}, via="n00")
        schedule = store.schedule()
        schedule.crash_at(store.env.now + 0.012, "n00")  # right after polls
        schedule.start()
        store.env.run(until=store.env.now + 30)
        for name in store.node_names:
            if name != "n00":
                assert not store.servers[name].lock.locked, name
        assert store.write({"x": 2}, via="n01").ok
