"""Randomized fault soak: the strongest correctness evidence.

Drive a cluster with a random interleaving of writes, reads, crashes,
recoveries, partitions, and epoch checks, then assert one-copy
serializability of everything any client observed (Lemmas 1-3 as seen from
the outside).  Any lost update, stale read, or split-brain epoch shows up
here as a ConsistencyError with a witness.
"""

import random

import pytest

from repro.core.config import ProtocolConfig
from repro.core.store import ReplicatedStore


def run_soak(seed: int, n_nodes: int = 9, steps: int = 40,
             crash_probability: float = 0.25,
             use_partitions: bool = False,
             auto_epoch_check: bool = False) -> ReplicatedStore:
    rng = random.Random(seed)
    config = ProtocolConfig(epoch_check_interval=4.0,
                            epoch_check_staleness=10.0)
    store = ReplicatedStore.create(n_nodes, seed=seed, config=config,
                                   auto_epoch_check=auto_epoch_check)
    names = list(store.node_names)
    counter = 0
    for step in range(steps):
        action = rng.random()
        via = rng.choice(store.up_nodes() or names)
        if action < 0.35:
            counter += 1
            store.start_write({f"k{rng.randrange(4)}": counter}, via=via)
        elif action < 0.6:
            store.start_read(via=via)
        elif action < 0.6 + crash_probability:
            down = [n for n in names if not store.nodes[n].up]
            if down and rng.random() < 0.6:
                store.recover(rng.choice(down))
            else:
                up = store.up_nodes()
                # keep at least 4 nodes up so progress stays possible
                if len(up) > 4:
                    store.crash(rng.choice(up))
        elif use_partitions and action < 0.92:
            if store.network.partitions.is_partitioned:
                store.heal()
            else:
                cut = rng.sample(names, rng.randrange(1, 3))
                store.partition(cut)
        elif not auto_epoch_check:
            store.start_epoch_check(via=via)
        store.advance(rng.uniform(0.05, 2.0))
    # let everything settle: heal, recover, resolve, propagate
    store.heal()
    store.recover(*[n for n in names if not store.nodes[n].up])
    store.advance(40)
    store.check_epoch()
    store.settle()
    return store


class TestRandomSoak:
    @pytest.mark.parametrize("seed", range(8))
    def test_crash_recover_soak(self, seed):
        store = run_soak(seed)
        stats = store.verify()
        assert stats["writes"] >= 1, "soak must commit some writes"

    @pytest.mark.parametrize("seed", range(8, 12))
    def test_partition_soak(self, seed):
        store = run_soak(seed, use_partitions=True)
        store.verify()

    @pytest.mark.parametrize("seed", range(12, 15))
    def test_soak_with_automatic_epoch_checking(self, seed):
        store = run_soak(seed, auto_epoch_check=True)
        store.verify()

    @pytest.mark.parametrize("seed", [20, 21])
    def test_small_cluster_soak(self, seed):
        store = run_soak(seed, n_nodes=4, steps=30, crash_probability=0.15)
        store.verify()

    def test_final_state_converges_to_replay(self):
        store = run_soak(seed=30)
        read = store.read()
        if read.ok:
            from repro.core.history import replay
            writes = store.history.committed_writes()
            # the read's version must be the latest committed version and
            # its value the full replay (everything has settled)
            assert read.version == (writes[-1].version if writes else 0)
            assert read.value == replay(writes, read.version)
