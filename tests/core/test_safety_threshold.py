"""The Section 4.1 safety-threshold extension.

Without it, a write that found a single good replica leaves the system one
failure away from losing currency: if that replica dies before propagating,
the data item becomes unavailable for writes.  With a threshold of k, the
coordinator adds known-good replicas (from the recorded good list) to the
write set so at least k copies of the new version exist at commit.
"""

from repro.core.config import ProtocolConfig
from repro.core.store import ReplicatedStore


class TestVulnerabilityWindow:
    def test_single_good_replica_crash_wedges_writes(self):
        # Demonstrate the window the extension closes.  Arrange a write
        # whose GOOD set is a single node, then kill that node before
        # propagation runs.
        store = ReplicatedStore.create(9, seed=1)
        first = store.write({"x": 1}, via="n00")
        # kill all good replicas except one, immediately
        survivors = list(first.good)
        keep = survivors[0]
        store.crash(*survivors[1:])
        second = store.write({"x": 2}, via=keep)
        if second.ok and len(second.good) == 1:
            # the vulnerability: the only good replica dies right away
            store.crash(second.good[0])
            third = store.write({"x": 3})
            assert not third.ok   # no current replica reachable
        store.verify()


class TestExtension:
    def make_store(self, threshold, seed=2):
        config = ProtocolConfig(safety_threshold=threshold)
        return ReplicatedStore.create(9, seed=seed, config=config)

    def test_good_list_recorded_on_participants(self):
        store = self.make_store(0)
        result = store.write({"x": 1})
        for name in result.good:
            recorded = store.servers[name].node.stable["last_good"]
            assert recorded is not None
            assert recorded[0] == result.version
            assert set(result.good) <= set(recorded[1])

    def test_threshold_widens_good_set(self):
        # Steady state: all replicas current.  A normal write updates just
        # its quorum's good members; with a threshold larger than the
        # typical good set, extras get the write too.
        plain = self.make_store(0, seed=3)
        plain.write({"x": 1}, via="n00")
        second_plain = plain.write({"x": 2}, via="n05")

        guarded = self.make_store(6, seed=3)
        guarded.write({"x": 1}, via="n00")
        second_guarded = guarded.write({"x": 2}, via="n05")

        assert second_plain.ok and second_guarded.ok
        plain_copies = sum(1 for n in plain.node_names
                           if plain.replica_state(n).version == 2)
        guarded_copies = sum(1 for n in guarded.node_names
                             if guarded.replica_state(n).version == 2)
        assert guarded_copies >= plain_copies
        assert guarded_copies >= min(6, plain_copies + 1)
        guarded.verify()

    def test_threshold_preserves_consistency(self):
        store = self.make_store(4, seed=4)
        for i in range(6):
            assert store.write({"k": i}, via=f"n{i % 9:02d}").ok
        store.settle()
        assert store.read().value == {"k": 5}
        store.verify()

    def test_extras_validated_not_blindly_written(self):
        # An extra that is no longer current must reject the prepare; the
        # write still commits on the polled set after the retry.
        store = self.make_store(5, seed=5)
        store.write({"x": 1}, via="n00")
        # manually diverge one potential extra: mark it stale
        epoch, _ = store.current_epoch()
        victim = "n08"
        store.servers[victim].state = \
            store.servers[victim].state.marked_stale(1)
        result = store.write({"x": 2}, via="n00")
        assert result.ok
        assert store.replica_state(victim).version != 2 or \
            not store.replica_state(victim).stale
        store.settle()
        store.verify()

    def test_zero_threshold_means_base_protocol(self):
        store = self.make_store(0, seed=6)
        result = store.write({"x": 1})
        untouched = (set(store.node_names) - set(result.good)
                     - set(result.stale))
        assert untouched  # base protocol leaves non-quorum nodes alone
