"""The dynamic protocol under correlated zone failures (live protocol)."""

import pytest

from repro.analysis.placement import column_zones, row_zones
from repro.core.store import ReplicatedStore
from repro.coteries.grid import GridCoterie
from repro.sim.failures import ZoneFailureInjector


def make_store_with_zones(zone_map_fn, n=9, seed=3):
    store = ReplicatedStore.create(n, seed=seed)
    grid = GridCoterie(list(store.node_names))
    zone_names = zone_map_fn(grid)
    zones = {z: [store.nodes[name] for name in members]
             for z, members in zone_names.items()}
    return store, zones, zone_names


class TestSingleZoneOutage:
    def test_row_aligned_reads_survive(self):
        store, zones, zone_names = make_store_with_zones(row_zones)
        store.write({"x": 1})
        first = sorted(zone_names)[0]
        store.crash(*zone_names[first])
        read = store.read()
        assert read.ok and read.value == {"x": 1}
        store.verify()

    def test_column_aligned_reads_die(self):
        store, zones, zone_names = make_store_with_zones(column_zones)
        store.write({"x": 1})
        store.crash(*zone_names["zone0"])
        assert not store.read().ok
        store.verify()

    def test_epoch_adapts_after_row_zone_outage(self):
        # losing a full row leaves no full column -> writes and the epoch
        # change itself are blocked (the outage IS a write quorum's worth
        # of failures)...
        store, zones, zone_names = make_store_with_zones(row_zones)
        store.write({"x": 1})
        first = sorted(zone_names)[0]
        store.crash(*zone_names[first])
        assert not store.write({"y": 2}).ok
        assert not store.check_epoch().ok
        # ...but one returning zone member restores a write quorum and the
        # epoch sheds the remaining dead nodes
        store.recover(zone_names[first][0])
        assert store.check_epoch().ok
        assert store.write({"y": 2}).ok
        store.verify()


class TestZoneInjectorOnProtocol:
    def test_store_survives_zone_churn(self):
        store, zones, zone_names = make_store_with_zones(row_zones)
        injector = ZoneFailureInjector(
            store.env, zones, zone_lam=1 / 30.0, zone_mu=1 / 3.0,
            node_lam=1 / 60.0, node_mu=1 / 5.0)
        injector.start()
        committed = 0
        for i in range(20):
            up = store.up_nodes()
            if up:
                via = sorted(up)[0]
                # a write may return None if its coordinator's node
                # crashes mid-operation (the process dies with the node)
                result = store.write({"k": i}, via=via)
                if result is not None and result.ok:
                    committed += 1
                up = store.up_nodes()
                if up:
                    store.check_epoch(via=sorted(up)[0])
            store.advance(3.0)
        assert committed > 5
        # converge and verify
        for zone in injector.zone_up:
            injector.zone_up[zone] = True
        for name in store.node_names:
            injector._node_ok[name] = True
            store.recover(name)
        store.advance(20)
        store.check_epoch()
        store.settle()
        store.verify()
