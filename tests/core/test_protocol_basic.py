"""End-to-end tests of the failure-free protocol paths."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.store import ReplicatedStore, StoreError
from repro.coteries.majority import MajorityCoterie
from repro.coteries.tree import TreeCoterie


class TestHappyPath:
    def test_single_write_and_read(self):
        store = ReplicatedStore.create(9, seed=1)
        result = store.write({"x": 1})
        assert result.ok and result.version == 1 and result.case == "fast"
        read = store.read()
        assert read.ok and read.value == {"x": 1} and read.version == 1
        assert store.verify()["writes"] == 1

    def test_partial_writes_accumulate(self):
        store = ReplicatedStore.create(9, seed=2)
        store.write({"a": 1})
        store.write({"b": 2})
        store.write({"a": 3})
        read = store.read()
        assert read.value == {"a": 3, "b": 2}
        assert read.version == 3
        store.verify()

    def test_initial_value_visible(self):
        store = ReplicatedStore.create(4, seed=3,
                                       initial_value={"seed": True})
        read = store.read()
        assert read.ok and read.value == {"seed": True} and read.version == 0

    def test_versions_advance_on_quorum_replicas_only(self):
        store = ReplicatedStore.create(9, seed=4)
        result = store.write({"x": 1})
        versions = store.versions()
        for name in result.good:
            assert versions[name] == 1
        untouched = set(store.node_names) - set(result.good) - set(result.stale)
        for name in untouched:
            assert versions[name] == 0

    def test_different_coordinators_use_different_quorums(self):
        store = ReplicatedStore.create(16, seed=5)
        results = [store.write({"k": i}, via=f"n{i:02d}") for i in range(6)]
        quorums = {tuple(sorted(set(r.good) | set(r.stale))) for r in results}
        assert len(quorums) > 1  # load sharing across coordinators

    def test_write_marks_unreached_responders_stale(self):
        store = ReplicatedStore.create(9, seed=6)
        store.write({"x": 1}, via="n00")
        second = store.write({"y": 2}, via="n05")
        # whoever answered the second write without the latest version got
        # marked stale with desired version 2
        for name in second.stale:
            state = store.replica_state(name)
            assert state.stale or state.version == 2  # healed already?

    def test_propagation_heals_stale_replicas(self):
        store = ReplicatedStore.create(9, seed=7)
        store.write({"x": 1}, via="n00")
        second = store.write({"y": 2}, via="n05")
        assert second.stale  # someone was marked stale
        store.settle()
        assert store.stale_replicas() == []
        for name in second.stale:
            assert store.replica_state(name).version == 2
            assert store.replica_state(name).value == {"x": 1, "y": 2}

    def test_read_after_heal_from_any_node(self):
        store = ReplicatedStore.create(9, seed=8)
        store.write({"x": 1})
        store.write({"x": 2}, via="n04")
        store.settle()
        for via in store.node_names:
            read = store.read(via=via)
            assert read.ok and read.value == {"x": 2}
        store.verify()

    def test_epoch_check_without_failures_changes_nothing(self):
        store = ReplicatedStore.create(9, seed=9)
        store.write({"x": 1})
        result = store.check_epoch()
        assert result.ok and not result.changed
        assert store.current_epoch()[1] == 0

    def test_works_with_majority_coterie(self):
        store = ReplicatedStore.create(5, seed=10,
                                       coterie_rule=MajorityCoterie)
        assert store.write({"x": 1}).ok
        assert store.read().value == {"x": 1}
        store.verify()

    def test_works_with_tree_coterie(self):
        store = ReplicatedStore.create(7, seed=11, coterie_rule=TreeCoterie)
        assert store.write({"x": 1}).ok
        assert store.read().value == {"x": 1}
        store.verify()

    def test_single_replica_store(self):
        store = ReplicatedStore.create(1, seed=12)
        assert store.write({"x": 1}).ok
        assert store.read().value == {"x": 1}
        store.verify()


class TestFacade:
    def test_unknown_via_rejected(self):
        store = ReplicatedStore.create(3, seed=0)
        with pytest.raises(StoreError):
            store.write({"x": 1}, via="n99")

    def test_no_up_node_rejected(self):
        store = ReplicatedStore.create(3, seed=0)
        store.crash("n00", "n01", "n02")
        with pytest.raises(StoreError):
            store.write({"x": 1})

    def test_duplicate_names_rejected(self):
        with pytest.raises(StoreError):
            ReplicatedStore(["a", "a"])

    def test_join_timeout(self):
        store = ReplicatedStore.create(3, seed=0)
        stuck = store.env.event()  # never triggered

        def waiter():
            yield stuck

        process = store.env.process(waiter())
        with pytest.raises(StoreError):
            store.join(process, timeout=1.0)

    def test_default_via_is_lowest_up_node(self):
        store = ReplicatedStore.create(4, seed=0)
        store.crash("n00")
        result = store.write({"x": 1})
        assert result.op_id.startswith("n01:")

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ReplicatedStore.create(3, config=ProtocolConfig(rpc_timeout=-1))

    def test_advance_moves_clock(self):
        store = ReplicatedStore.create(3, seed=0)
        store.advance(5.0)
        assert store.env.now == 5.0


class TestMessageEconomy:
    def test_fast_write_contacts_only_the_quorum(self):
        store = ReplicatedStore.create(16, seed=13, trace_enabled=True)
        store.write({"x": 1})
        polled = {rec.detail["dst"]
                  for rec in store.trace.select(kind="send")
                  if rec.detail.get("msg_kind") == "rpc-req"}
        # 4x4 grid: a write quorum is 7 nodes; only they hear anything
        assert len(polled) == 7

    def test_read_contacts_read_quorum_only(self):
        store = ReplicatedStore.create(16, seed=14, trace_enabled=True)
        store.write({"x": 1})
        store.trace.clear()
        store.read()
        polled = {rec.detail["dst"]
                  for rec in store.trace.select(kind="send")
                  if rec.detail.get("msg_kind") == "rpc-req"}
        assert len(polled) == 4  # sqrt(16)
