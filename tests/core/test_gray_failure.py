"""Gray-failure tolerance at the protocol layer: graded latency scores,
score-aware quorum planning, overload shedding, and degraded reads."""

import pytest

from repro.chaos.faults import LinkFaults
from repro.core.config import ProtocolConfig
from repro.core.coordinator import _busy_hint
from repro.core.liveness import LATENCY_ALPHA, LivenessView
from repro.core.messages import Busy, StateResponse
from repro.core.store import ReplicatedStore
from repro.coteries import GridCoterie
from repro.coteries.planner import plan_quorum
from repro.sim.engine import Environment

NODES9 = [f"n{i:02d}" for i in range(9)]


def make_view(ttl=10.0):
    env = Environment()
    return env, LivenessView(env, ttl)


class TestLatencyScores:
    def test_unknown_peer_scores_zero(self):
        _env, view = make_view()
        assert view.latency_score("n1") == 0.0
        assert view.latency_scores() == {}

    def test_first_sample_is_the_score(self):
        _env, view = make_view()
        view.observe_latency("n1", 0.4)
        assert view.latency_score("n1") == 0.4

    def test_ewma_update(self):
        _env, view = make_view()
        view.observe_latency("n1", 0.4)
        view.observe_latency("n1", 0.8)
        expected = 0.4 + LATENCY_ALPHA * (0.8 - 0.4)
        assert abs(view.latency_score("n1") - expected) < 1e-12

    def test_score_decays_after_ttl(self):
        env, view = make_view(ttl=10.0)
        view.observe_latency("n1", 0.4)
        env.run(until=9.0)
        assert view.latency_score("n1") == 0.4
        env.run(until=10.5)
        assert view.latency_score("n1") == 0.0
        assert view.latency_scores() == {}

    def test_stale_entry_resets_instead_of_averaging(self):
        env, view = make_view(ttl=10.0)
        view.observe_latency("n1", 5.0)
        env.run(until=20.0)
        # the old regime decayed: the new sample starts a clean slate
        view.observe_latency("n1", 0.1)
        assert view.latency_score("n1") == 0.1

    def test_rank_fastest_first_with_stable_ties(self):
        _env, view = make_view()
        view.observe_latency("n2", 0.5)
        view.observe_latency("n3", 0.1)
        # n1 unknown -> 0.0 -> ranks first; ties break by name
        assert view.rank(["n3", "n2", "n1", "n0"]) == \
            ["n0", "n1", "n3", "n2"]

    def test_clear_wipes_scores(self):
        _env, view = make_view()
        view.observe_latency("n1", 0.4)
        view.clear()
        assert view.latency_scores() == {}


class TestScoredPlanning:
    def test_no_scores_is_exactly_the_blind_draw(self):
        coterie = GridCoterie(NODES9)
        blind = coterie.read_quorum(salt="c", attempt=3)
        assert plan_quorum(coterie, "read", salt="c", attempt=3,
                           scores={}) == blind
        assert plan_quorum(coterie, "read", salt="c", attempt=3,
                           scores=None) == blind

    @pytest.mark.parametrize("kind", ["read", "write"])
    def test_slow_node_demoted_but_result_is_a_quorum(self, kind):
        coterie = GridCoterie(NODES9)
        slow = "n04"  # middle of the grid: every column has alternatives
        scores = {slow: 10.0}
        for salt in ("a", "b", "c"):
            for attempt in range(4):
                quorum = plan_quorum(coterie, kind, salt=salt,
                                     attempt=attempt, scores=scores)
                is_quorum = (coterie.is_write_quorum if kind == "write"
                             else coterie.is_read_quorum)
                assert is_quorum(set(quorum))
                assert slow not in quorum

    def test_write_prefers_column_without_the_slow_node(self):
        coterie = GridCoterie(NODES9)
        slow = "n00"
        slow_column = next(col for col in coterie.columns if slow in col)
        quorum = plan_quorum(coterie, "write", salt="c", scores={slow: 10.0})
        # the fully-polled column must not be the one with the gray node
        assert not set(slow_column) <= set(quorum)

    def test_all_equal_scores_keep_the_blind_spread(self):
        coterie = GridCoterie(NODES9)
        scores = {name: 0.0 for name in NODES9}
        for attempt in range(3):
            assert plan_quorum(coterie, "read", salt="c", attempt=attempt,
                               scores=scores) == \
                coterie.read_quorum(salt="c", attempt=attempt)


class TestOverloadShedding:
    def test_shed_answers_busy_over_the_limit(self):
        config = ProtocolConfig(busy_queue_limit=2)
        store = ReplicatedStore.create(3, config=config)
        server = store.servers["n00"]
        assert server._shed() is None
        server.node.volatile["inflight_polls"] = 2
        shed = server._shed()
        assert isinstance(shed, Busy)
        assert config.retry_after_min <= shed.retry_after \
            <= config.retry_after_max

    def test_retry_after_grows_with_depth_and_clamps(self):
        config = ProtocolConfig(busy_queue_limit=2)
        store = ReplicatedStore.create(3, config=config)
        server = store.servers["n00"]
        server.node.volatile["inflight_polls"] = 2
        mild = server._shed().retry_after
        server.node.volatile["inflight_polls"] = 1000
        assert server._shed().retry_after == config.retry_after_max
        assert mild < config.retry_after_max

    def test_zero_limit_never_sheds(self):
        store = ReplicatedStore.create(3)  # busy_queue_limit=0 default
        server = store.servers["n00"]
        server.node.volatile["inflight_polls"] = 10_000
        assert server._shed() is None

    def test_busy_hint_picks_the_largest(self):
        responses = {"n1": Busy(retry_after=0.3),
                     "n2": Busy(retry_after=0.7),
                     "n3": StateResponse(node="n3", elist=("n3",),
                                         enumber=0, version=0, dversion=0,
                                         stale=False)}
        assert _busy_hint(responses) == 0.7
        assert _busy_hint({}) == 0.0

    def test_spike_sheds_yet_stays_consistent(self):
        config = ProtocolConfig(adaptive_timeouts=True, hedge_requests=True,
                                busy_queue_limit=1)
        store = ReplicatedStore.create(9, seed=3, config=config)
        for round_no in range(3):
            procs = [store.start_write({f"k{w}": round_no * 8 + w},
                                       via=store.node_names[w % 4])
                     for w in range(8)]
            store.join(*procs)
        from repro.obs import build_summary
        summary = build_summary(store.metrics_snapshot())
        assert summary["overload"]["shed"] > 0
        store.verify()  # degradation must never cost consistency


class TestDegradedReads:
    def make_store(self, deadline=0.5):
        config = ProtocolConfig(adaptive_timeouts=True, degraded_reads=True,
                                op_deadline=deadline)
        return ReplicatedStore.create(9, seed=5, config=config)

    def test_fast_cluster_never_degrades(self):
        store = self.make_store()
        store.write({"x": 1})
        result = store.read(via="n00")
        assert result.ok and result.case != "degraded"
        assert store.verify()["degraded"] == 0

    def test_predicted_slow_quorum_takes_the_degraded_tier(self):
        store = self.make_store(deadline=0.5)
        store.write({"x": 1}, via="n00")
        server = store.servers["n00"]
        # every peer's learned score says a quorum would blow the deadline
        for peer in store.node_names:
            if peer != "n00":
                server.liveness.observe_latency(peer, 5.0)
        result = store.read(via="n00")
        assert result.ok and result.case == "degraded"
        # bounded staleness: the value is some committed prefix -- here
        # either the pre-write state or the write itself, depending on
        # whether the answering replica was in the write quorum
        assert result.version in (0, 1)
        assert result.value == ({} if result.version == 0 else {"x": 1})
        # recorded under the bounded-staleness rules, and checkable
        stats = store.verify()
        assert stats["degraded"] == 1
        from repro.obs import build_summary
        summary = build_summary(store.metrics_snapshot())
        assert summary["overload"]["degraded_reads"] == 1

    def test_degraded_read_asks_the_fastest_peer(self):
        store = self.make_store(deadline=0.5)
        store.write({"x": 1}, via="n00")
        server = store.servers["n00"]
        for peer in store.node_names:
            if peer != "n00":
                server.liveness.observe_latency(peer, 5.0)
        server.liveness.observe_latency("n03", 4.0)  # still over deadline
        store.read(via="n00")
        polled = [rec for rec in store.history.operations
                  if rec.kind == "read-degraded"]
        assert len(polled) == 1
        # n00 itself has no score (0.0) so it is its own fastest replica;
        # a degraded read never leaves the box in that case
        assert polled[0].ok

    def test_degraded_tier_falls_through_when_target_is_stale(self):
        store = self.make_store(deadline=0.5)
        store.write({"x": 1}, via="n00")
        server = store.servers["n00"]
        for peer in store.node_names:
            if peer != "n00":
                server.liveness.observe_latency(peer, 5.0)
        # the would-be target (n00 itself: score 0.0 ranks first) is
        # stale: the cheap tier refuses it and the quorum path answers
        state = store.servers["n00"].state
        store.servers["n00"].state = state.marked_stale(1)
        result = store.read(via="n00")
        assert result.ok and result.case != "degraded"
        assert result.version == 1 and result.value == {"x": 1}


class TestHedgedOperationHygiene:
    def gray_store(self, **overrides):
        config = ProtocolConfig(adaptive_timeouts=True, hedge_requests=True,
                                **overrides)
        store = ReplicatedStore.create(9, seed=7, config=config)
        faults = LinkFaults()
        store.network.faults = faults
        victim = store.node_names[-1]
        faults.slow_node(victim, 10.0, list(store.node_names))
        return store, victim

    def test_gray_run_commits_and_verifies(self):
        store, victim = self.gray_store()
        for i in range(12):
            assert store.write({"k": i}, via="n00").ok
            assert store.read(via="n01").ok
        store.verify()

    def test_no_stranded_locks_after_early_completed_waves(self):
        # Early-completed waves leave stragglers unanswered; the
        # coordinator's fire-and-forget op-release must clean their
        # granted locks up well before the lock lease would.
        store, victim = self.gray_store()
        for i in range(6):
            store.write({"k": i}, via="n00")
        store.advance(store.config.lock_lease / 2)
        for name, server in store.servers.items():
            assert not server._op_locks, (name, server._op_locks)

    def test_same_seed_gray_runs_are_identical(self):
        outcomes = []
        for _ in range(2):
            store, _victim = self.gray_store()
            records = []
            for i in range(10):
                result = (store.write({"k": i}, via="n00") if i % 2
                          else store.read(via="n01"))
                records.append((result.ok, result.version, result.case,
                                round(store.env.now, 9)))
            outcomes.append((records, store.versions()))
        assert outcomes[0] == outcomes[1]
