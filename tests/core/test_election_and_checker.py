"""The periodic epoch checker and its bully election."""

from repro.core.config import ProtocolConfig
from repro.core.store import ReplicatedStore
from repro.obs import epoch_health


def fast_config(**overrides):
    defaults = dict(epoch_check_interval=5.0, epoch_check_staleness=12.0,
                    election_timeout=1.0)
    defaults.update(overrides)
    return ProtocolConfig(**defaults)


class TestElection:
    def test_an_initiator_emerges(self):
        store = ReplicatedStore.create(5, seed=1, config=fast_config(),
                                       auto_epoch_check=True,
                                       trace_enabled=True)
        store.advance(60)
        initiators = [name for name, checker in store.checkers.items()
                      if checker.is_initiator]
        assert len(initiators) == 1
        # bully: the highest-named live node wins
        assert initiators == ["n04"]

    def test_initiator_failover(self):
        store = ReplicatedStore.create(5, seed=2, config=fast_config(),
                                       auto_epoch_check=True)
        store.advance(60)
        assert store.checkers["n04"].is_initiator
        store.crash("n04")
        store.advance(80)
        survivors = [name for name, checker in store.checkers.items()
                     if checker.is_initiator and store.nodes[name].up]
        assert survivors == ["n03"]

    def test_recovered_higher_node_takes_back_initiation(self):
        store = ReplicatedStore.create(5, seed=3, config=fast_config(),
                                       auto_epoch_check=True)
        store.advance(60)
        store.crash("n04")
        store.advance(80)
        store.recover("n04")
        store.advance(120)
        initiators = [name for name, checker in store.checkers.items()
                      if checker.is_initiator and store.nodes[name].up]
        assert initiators == ["n04"]

    def test_only_one_initiator_among_up_nodes(self):
        store = ReplicatedStore.create(7, seed=4, config=fast_config(),
                                       auto_epoch_check=True)
        store.advance(50)
        for _round in range(3):
            store.crash("n06")
            store.advance(60)
            store.recover("n06")
            store.advance(60)
        live_initiators = [name for name, checker in store.checkers.items()
                           if checker.is_initiator and store.nodes[name].up]
        assert len(live_initiators) == 1


class TestAutomaticEpochManagement:
    def test_failures_absorbed_without_manual_checks(self):
        store = ReplicatedStore.create(9, seed=5, config=fast_config(),
                                       auto_epoch_check=True)
        store.advance(40)  # elect an initiator
        store.write({"x": 1})
        store.crash("n03")
        store.advance(30)  # checker runs at least twice
        epoch, number = store.current_epoch()
        assert "n03" not in epoch and number >= 1
        assert store.write({"y": 2}).ok
        store.verify()

    def test_recovery_absorbed_automatically(self):
        store = ReplicatedStore.create(9, seed=6, config=fast_config(),
                                       auto_epoch_check=True)
        store.advance(40)
        store.crash("n03")
        store.advance(30)
        store.write({"x": 1})
        store.recover("n03")
        store.advance(30)
        epoch, _ = store.current_epoch()
        assert "n03" in epoch
        store.settle()
        assert store.replica_state("n03").value == {"x": 1}
        store.verify()

    def test_epoch_checks_keep_running(self):
        store = ReplicatedStore.create(5, seed=7, config=fast_config(),
                                       auto_epoch_check=True)
        store.advance(100)
        assert len(store.history.epoch_checks) >= 5

    def test_no_interference_without_failures(self):
        # With no failures, automatic epoch checking must never change the
        # epoch or abort writes.
        store = ReplicatedStore.create(9, seed=8, config=fast_config(),
                                       auto_epoch_check=True)
        store.advance(50)
        for i in range(10):
            assert store.write({"k": i}, via=f"n{i % 9:02d}").ok
            store.advance(3.0)
        assert store.current_epoch()[1] == 0
        store.verify()


class TestInitiatorStallRegression:
    """The initiator's periodic loop must survive an ``already-running``
    pulse.  It used to ``return`` instead: one collision with a
    concurrent check (workload-driven, suspicion-triggered, boot-time)
    silently killed periodic epoch checking forever -- the initiator
    still believed it held the role, so nobody re-elected either."""

    def _checks_run(self, store) -> int:
        counters = store.metrics_snapshot()["counters"]
        return sum(v for k, v in counters.items()
                   if k.startswith("epoch_checks"))

    def test_pulse_survives_concurrent_check(self):
        # staleness is huge so a watchdog re-election cannot mask the
        # stall: if the loop dies, checking stays dead
        store = ReplicatedStore.create(
            5, seed=9, config=fast_config(epoch_check_staleness=10_000.0),
            auto_epoch_check=True)
        interval = store.config.epoch_check_interval
        store.advance(40)
        assert store.checkers["n04"].is_initiator

        # hold the per-node guard long enough that at least two pulses
        # collide with the "concurrent" check and see already-running
        store.nodes["n04"].volatile["epoch_checking"] = True
        store.advance(2 * interval + 1)
        del store.nodes["n04"].volatile["epoch_checking"]
        checks_at_release = self._checks_run(store)

        store.advance(4 * interval)
        # the watchdog metric is the alertable signal: time since each
        # node last saw an epoch-check poll must be below ~one interval
        ages = epoch_health(store.metrics_snapshot())
        assert ages["n04"] < 2 * interval, \
            f"epoch checking stalled: watchdog age {ages['n04']}"
        # and the pulses really resumed
        assert self._checks_run(store) > checks_at_release
        assert store.checkers["n04"].is_initiator

    def test_concurrent_check_bursts_counted_and_survived(self):
        # through the public API: same-tick manual checks on the
        # initiator collide on the per-node guard.  The collisions must
        # surface in the metrics (outcome=already-running) and the
        # periodic pulse must keep running afterwards.
        store = ReplicatedStore.create(
            5, seed=10, config=fast_config(epoch_check_staleness=10_000.0),
            auto_epoch_check=True)
        interval = store.config.epoch_check_interval
        store.advance(40)
        for _ in range(6):
            procs = [store.start_epoch_check(via="n04") for _ in range(3)]
            store.join(*procs)
            store.advance(interval / 3)
        counters = store.metrics_snapshot()["counters"]
        assert counters["epoch_checks{outcome=already-running}"] >= 6
        store.advance(3 * interval)
        ages = epoch_health(store.metrics_snapshot())
        assert ages["n04"] < 2 * interval


class TestDuplicateInitiatorConvergence:
    def test_partition_heal_leaves_one_initiator(self):
        store = ReplicatedStore.create(5, seed=11, config=fast_config(),
                                       auto_epoch_check=True)
        store.advance(60)
        assert store.checkers["n04"].is_initiator
        store.partition(["n04"])
        store.advance(80)
        # split brain while partitioned: the majority elected n03, and
        # isolated n04 has no way to know
        initiators = sorted(name for name, checker in store.checkers.items()
                            if checker.is_initiator)
        assert initiators == ["n03", "n04"]

        store.heal()
        # n03's next pulse probes the higher names, hears n04 answer
        # "alive", and steps down (the victory message n04 once sent was
        # lost to the partition and is never re-sent)
        store.advance(4 * store.config.epoch_check_interval)
        initiators = sorted(name for name, checker in store.checkers.items()
                            if checker.is_initiator)
        assert initiators == ["n04"]
        counters = store.metrics_snapshot()["counters"]
        assert counters.get("initiator_demoted", 0) >= 1
        store.settle()
        store.verify()
