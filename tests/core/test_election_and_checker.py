"""The periodic epoch checker and its bully election."""

from repro.core.config import ProtocolConfig
from repro.core.store import ReplicatedStore


def fast_config(**overrides):
    defaults = dict(epoch_check_interval=5.0, epoch_check_staleness=12.0,
                    election_timeout=1.0)
    defaults.update(overrides)
    return ProtocolConfig(**defaults)


class TestElection:
    def test_an_initiator_emerges(self):
        store = ReplicatedStore.create(5, seed=1, config=fast_config(),
                                       auto_epoch_check=True,
                                       trace_enabled=True)
        store.advance(60)
        initiators = [name for name, checker in store.checkers.items()
                      if checker.is_initiator]
        assert len(initiators) == 1
        # bully: the highest-named live node wins
        assert initiators == ["n04"]

    def test_initiator_failover(self):
        store = ReplicatedStore.create(5, seed=2, config=fast_config(),
                                       auto_epoch_check=True)
        store.advance(60)
        assert store.checkers["n04"].is_initiator
        store.crash("n04")
        store.advance(80)
        survivors = [name for name, checker in store.checkers.items()
                     if checker.is_initiator and store.nodes[name].up]
        assert survivors == ["n03"]

    def test_recovered_higher_node_takes_back_initiation(self):
        store = ReplicatedStore.create(5, seed=3, config=fast_config(),
                                       auto_epoch_check=True)
        store.advance(60)
        store.crash("n04")
        store.advance(80)
        store.recover("n04")
        store.advance(120)
        initiators = [name for name, checker in store.checkers.items()
                      if checker.is_initiator and store.nodes[name].up]
        assert initiators == ["n04"]

    def test_only_one_initiator_among_up_nodes(self):
        store = ReplicatedStore.create(7, seed=4, config=fast_config(),
                                       auto_epoch_check=True)
        store.advance(50)
        for _round in range(3):
            store.crash("n06")
            store.advance(60)
            store.recover("n06")
            store.advance(60)
        live_initiators = [name for name, checker in store.checkers.items()
                           if checker.is_initiator and store.nodes[name].up]
        assert len(live_initiators) == 1


class TestAutomaticEpochManagement:
    def test_failures_absorbed_without_manual_checks(self):
        store = ReplicatedStore.create(9, seed=5, config=fast_config(),
                                       auto_epoch_check=True)
        store.advance(40)  # elect an initiator
        store.write({"x": 1})
        store.crash("n03")
        store.advance(30)  # checker runs at least twice
        epoch, number = store.current_epoch()
        assert "n03" not in epoch and number >= 1
        assert store.write({"y": 2}).ok
        store.verify()

    def test_recovery_absorbed_automatically(self):
        store = ReplicatedStore.create(9, seed=6, config=fast_config(),
                                       auto_epoch_check=True)
        store.advance(40)
        store.crash("n03")
        store.advance(30)
        store.write({"x": 1})
        store.recover("n03")
        store.advance(30)
        epoch, _ = store.current_epoch()
        assert "n03" in epoch
        store.settle()
        assert store.replica_state("n03").value == {"x": 1}
        store.verify()

    def test_epoch_checks_keep_running(self):
        store = ReplicatedStore.create(5, seed=7, config=fast_config(),
                                       auto_epoch_check=True)
        store.advance(100)
        assert len(store.history.epoch_checks) >= 5

    def test_no_interference_without_failures(self):
        # With no failures, automatic epoch checking must never change the
        # epoch or abort writes.
        store = ReplicatedStore.create(9, seed=8, config=fast_config(),
                                       auto_epoch_check=True)
        store.advance(50)
        for i in range(10):
            assert store.write({"k": i}, via=f"n{i % 9:02d}").ok
            store.advance(3.0)
        assert store.current_epoch()[1] == 0
        store.verify()
