"""ProtocolConfig validation and the describe() contract."""

import dataclasses

import pytest

from repro.core.config import ProtocolConfig


class TestDescribe:
    def test_describe_stays_in_sync_with_the_dataclass(self):
        # the canonical config dump must list every knob, in declaration
        # order, so a new field cannot be silently dropped from docs,
        # the CLI, or benchmark records
        config = ProtocolConfig()
        described = config.describe()
        field_names = [f.name for f in dataclasses.fields(ProtocolConfig)]
        assert [name for name, _value in described] == field_names

    def test_describe_reports_current_values(self):
        config = ProtocolConfig(adaptive_timeouts=True, op_deadline=1.25)
        described = dict(config.describe())
        assert described["adaptive_timeouts"] is True
        assert described["op_deadline"] == 1.25
        for field in dataclasses.fields(ProtocolConfig):
            assert described[field.name] == getattr(config, field.name)


class TestValidateGrayKnobs:
    def test_defaults_validate(self):
        assert ProtocolConfig().validate() is not None

    @pytest.mark.parametrize("field,value", [
        ("rtt_alpha", 0.0), ("rtt_alpha", 1.5),
        ("rtt_beta", 0.0), ("rtt_beta", -0.1),
        ("rtt_deadline_mult", 0.0),
        ("hedge_threshold_mult", -1.0),
        ("hedge_max", -1),
        ("busy_queue_limit", -1),
        ("op_deadline", -0.5),
    ])
    def test_bad_scalar_rejected(self, field, value):
        with pytest.raises(ValueError, match=field):
            ProtocolConfig(**{field: value}).validate()

    def test_deadline_clamp_band_must_be_ordered(self):
        with pytest.raises(ValueError, match="rtt_deadline_min"):
            ProtocolConfig(rtt_deadline_min=0.0).validate()
        with pytest.raises(ValueError, match="rtt_deadline_min"):
            ProtocolConfig(rtt_deadline_min=3.0,
                           rtt_deadline_max=2.0).validate()

    def test_retry_after_band_must_be_ordered(self):
        with pytest.raises(ValueError, match="retry_after_min"):
            ProtocolConfig(retry_after_min=0.0).validate()
        with pytest.raises(ValueError, match="retry_after_min"):
            ProtocolConfig(retry_after_min=5.0,
                           retry_after_max=2.0).validate()

    def test_hedging_requires_adaptive_timeouts(self):
        with pytest.raises(ValueError, match="adaptive_timeouts"):
            ProtocolConfig(hedge_requests=True).validate()
        ProtocolConfig(hedge_requests=True,
                       adaptive_timeouts=True).validate()

    def test_degraded_reads_require_a_deadline(self):
        with pytest.raises(ValueError, match="op_deadline"):
            ProtocolConfig(degraded_reads=True).validate()
        ProtocolConfig(degraded_reads=True, op_deadline=0.5).validate()

    def test_chaos_bug_must_be_a_known_canary(self):
        with pytest.raises(ValueError, match="chaos_bug"):
            ProtocolConfig(chaos_bug="standed-lock").validate()  # typo'd
        for bug in ProtocolConfig.CHAOS_BUGS:
            ProtocolConfig(chaos_bug=bug).validate()
