"""Tests for the suspicion view fed by RPC outcomes
(``repro.core.liveness``)."""

import pytest

from repro.core.liveness import LivenessView
from repro.sim.engine import Environment


def make_view(ttl=10.0):
    env = Environment()
    return env, LivenessView(env, ttl)


class TestObservation:
    def test_starts_empty(self):
        _env, view = make_view()
        assert view.suspects() == frozenset()
        assert not view.is_suspect("n1")

    def test_failure_suspects_until_ttl(self):
        env, view = make_view(ttl=10.0)
        view.observe("n1", ok=False)
        assert view.is_suspect("n1")
        assert view.suspects() == {"n1"}
        env.run(until=9.9)
        assert view.is_suspect("n1")
        env.run(until=10.0)
        assert not view.is_suspect("n1")
        assert view.suspects() == frozenset()

    def test_success_clears_immediately(self):
        _env, view = make_view()
        view.observe("n1", ok=False)
        view.observe("n1", ok=True)
        assert not view.is_suspect("n1")

    def test_repeated_failure_refreshes_the_ttl(self):
        env, view = make_view(ttl=10.0)
        view.observe("n1", ok=False)
        env.run(until=8.0)
        view.observe("n1", ok=False)  # re-suspected until t=18
        env.run(until=12.0)
        assert view.is_suspect("n1")
        env.run(until=18.0)
        assert not view.is_suspect("n1")

    def test_suspects_prunes_only_expired_entries(self):
        env, view = make_view(ttl=10.0)
        view.observe("n1", ok=False)
        env.run(until=5.0)
        view.observe("n2", ok=False)  # suspected until t=15
        env.run(until=12.0)
        assert view.suspects() == {"n2"}

    def test_success_for_one_peer_keeps_others(self):
        _env, view = make_view()
        view.observe("n1", ok=False)
        view.observe("n2", ok=False)
        view.observe("n1", ok=True)
        assert view.suspects() == {"n2"}

    def test_clear_forgets_everything(self):
        _env, view = make_view()
        view.observe("n1", ok=False)
        view.observe("n2", ok=False)
        view.clear()
        assert view.suspects() == frozenset()

    def test_rejects_bad_ttl(self):
        env = Environment()
        with pytest.raises(ValueError):
            LivenessView(env, 0.0)
        with pytest.raises(ValueError):
            LivenessView(env, -1.0)


class TestRankSnapshot:
    """Pin the regression where ``rank()`` called ``latency_score()``
    inside the sort key: scoring deletes expired entries mid-sort, a
    mutation hidden inside a read-only-looking call (and a crash when
    the peers iterable is a view over the table itself)."""

    def test_rank_orders_fastest_first_with_name_tie_break(self):
        _env, view = make_view()
        view.observe_latency("n2", 0.5)
        view.observe_latency("n3", 0.1)
        # n1 unmeasured: ranks as fast (0.0), ahead of measured peers
        assert view.rank(["n3", "n1", "n2"]) == ["n1", "n3", "n2"]

    def test_rank_over_the_tables_own_keys_with_expired_entries(self):
        env, view = make_view(ttl=10.0)
        view.observe_latency("n1", 0.5)
        env.run(until=5.0)
        view.observe_latency("n2", 0.1)
        env.run(until=12.0)  # n1's entry is now expired, n2's is live
        # iterating the internal table directly: scoring inside the
        # sort key would delete n1's expired entry from the table the
        # peers view reads -- the up-front snapshot does all pruning
        # before the peers iterable is consumed, so the call is safe
        # and sees one consistent table state
        assert view.rank(view._latency.keys()) == ["n2"]
        # a materialized peer list keeps expired peers, ranked as
        # unknown-fast (score 0.0)
        view.observe_latency("n1", 0.5)
        env.run(until=25.0)
        assert view.rank(["n2", "n1"]) == ["n1", "n2"]

    def test_rank_is_consistent_when_entries_expire_mid_call(self):
        env, view = make_view(ttl=10.0)
        view.observe_latency("n1", 0.9)
        view.observe_latency("n2", 0.2)
        env.run(until=11.0)  # both expired
        # one snapshot up front: every peer scores 0.0, so the order is
        # purely the name tie-break -- per-element scoring could see
        # different table states for different peers
        assert view.rank(["n2", "n1", "n3"]) == ["n1", "n2", "n3"]


class TestServerIntegration:
    def test_server_suspects_crashed_node_and_crash_clears_own_view(self):
        from repro.core.store import ReplicatedStore

        store = ReplicatedStore.create(9, seed=0)
        store.write({"x": 1}, via="n00")
        store.crash("n04")
        store.write({"y": 2}, via="n00")  # observes the CALL_FAILED
        server = store.servers["n00"]
        assert "n04" in server.liveness.suspects()
        # suspicion is volatile state: it does not survive a crash
        store.crash("n00")
        assert server.liveness.suspects() == frozenset()

    def test_successful_poll_clears_stale_suspicion(self):
        from repro.core.store import ReplicatedStore

        store = ReplicatedStore.create(9, seed=1)
        store.crash("n04")
        store.write({"x": 1}, via="n00")
        server = store.servers["n00"]
        assert "n04" in server.liveness.suspects()
        store.recover("n04")
        # heavy path polls everyone: any answer from n04 clears it
        for _ in range(3):
            store.write({"x": 2}, via="n00")
            if "n04" not in server.liveness.suspects():
                break
        else:
            # not polled again (planner routes around it); decay clears
            store.advance(server.config.suspect_ttl + 1)
        assert "n04" not in server.liveness.suspects()
