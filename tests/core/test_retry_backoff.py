"""Tests for the coordinator retry/backoff path (``_with_retries``) and
the liveness-aware re-pick on retry."""

from repro.core.config import ProtocolConfig
from repro.core.messages import WriteResult
from repro.core.store import ReplicatedStore


def rpc_call_dsts(store, start):
    """Destinations of every rpc-call traced since *start*."""
    return [rec.detail["dst"] for rec in store.trace.records[start:]
            if rec.kind == "rpc-call"]


class TestAttemptCounts:
    def test_successful_write_is_one_attempt(self):
        store = ReplicatedStore.create(9, seed=0)
        result = store.write({"x": 1})
        assert result.ok
        assert result.attempts == 1
        assert result.polls == 1  # fast path: one poll wave

    def test_heavy_write_counts_two_polls_one_attempt(self):
        store = ReplicatedStore.create(9, seed=0, config=ProtocolConfig(
            quorum_planner=False))
        store.crash("n00", "n04")
        result = store.write({"x": 1}, via="n05")
        assert result.ok
        assert result.attempts == 1
        assert result.polls in (1, 2)  # heavy rescue adds a poll wave

    def test_no_quorum_exhausts_all_retries(self):
        config = ProtocolConfig(op_retries=3)
        store = ReplicatedStore.create(9, seed=1, config=config)
        store.crash("n02", "n05", "n08")  # a full grid column: no quorum
        result = store.write({"x": 1})
        assert not result.ok and result.case == "no-quorum"
        assert result.attempts == config.op_retries + 1
        # every attempt burned its fast poll and its heavy rescue
        assert result.polls == 2 * result.attempts

    def test_zero_retries_is_a_single_attempt(self):
        store = ReplicatedStore.create(9, seed=2,
                                       config=ProtocolConfig(op_retries=0))
        store.crash("n02", "n05", "n08")
        result = store.write({"x": 1})
        assert not result.ok and result.attempts == 1


class TestBackoffGrowth:
    def test_backoff_is_exponential_with_bounded_jitter(self):
        config = ProtocolConfig(op_retries=3, retry_backoff=0.5)
        store = ReplicatedStore.create(9, seed=3, config=config)
        store.crash("n02", "n05", "n08")
        t0 = store.env.now
        result = store.write({"x": 1})
        elapsed = store.env.now - t0
        assert not result.ok
        # jitter multiplies each pause by [0.5, 1.5); with three retries
        # the pauses alone span backoff * (1+2+4) * jitter
        min_backoff = config.retry_backoff * 7 * 0.5
        # per-attempt work: fast + heavy poll, each bounded by
        # lock_wait + rpc_timeout, plus release rounds and slack
        per_attempt_ceiling = 3 * (config.lock_wait + config.rpc_timeout)
        max_total = (config.retry_backoff * 7 * 1.5
                     + 4 * per_attempt_ceiling)
        assert min_backoff < elapsed < max_total

    def test_longer_backoff_config_waits_longer(self):
        def elapsed_with(backoff):
            config = ProtocolConfig(op_retries=2, retry_backoff=backoff)
            store = ReplicatedStore.create(9, seed=4, config=config)
            store.crash("n02", "n05", "n08")
            t0 = store.env.now
            store.write({"x": 1})
            return store.env.now - t0

        assert elapsed_with(2.0) > elapsed_with(0.25) + 2.0


class TestRetryAfterClamp:
    """The ``Busy(retry_after)`` backoff stretch must respect *both*
    clamp bounds.  The stretch previously applied only the
    ``retry_after_max`` ceiling, so a tiny hint silently no-opted below
    the ``retry_after_min`` floor the replica's ``_shed()`` promises."""

    def gaps_with_hint(self, hint, **overrides):
        config = ProtocolConfig(op_retries=1, retry_backoff=1e-4,
                                **overrides)
        store = ReplicatedStore.create(3, seed=0, config=config)
        coordinator = store.coordinators["n00"]
        times = []

        def attempt():
            times.append(store.env.now)
            if False:
                yield  # pragma: no cover - makes this a generator
            return WriteResult(False, case="no-quorum", op_id="t",
                               polls=1, retry_after=hint)

        process = store.nodes["n00"].spawn(
            coordinator._with_retries(attempt), name="t")
        store.join(process)
        return [b - a for a, b in zip(times, times[1:])], config

    def test_tiny_hint_is_raised_to_the_floor(self):
        gaps, config = self.gaps_with_hint(1e-9)
        assert gaps and gaps[0] >= config.retry_after_min

    def test_huge_hint_is_capped_at_the_ceiling(self):
        gaps, config = self.gaps_with_hint(100.0)
        # the stretched delay is the clamped hint (the exponential base
        # is negligible here); allow jitter slack on the base term
        assert gaps and gaps[0] <= config.retry_after_max * 1.01

    def test_no_hint_keeps_the_plain_backoff(self):
        gaps, config = self.gaps_with_hint(0.0)
        # no stretch: the gap is just backoff * jitter, far below the
        # retry_after_min floor
        assert gaps and gaps[0] < config.retry_after_min

    def test_shed_replica_hint_respects_both_bounds(self):
        # end to end: a shedding replica's own hint goes through the
        # same clamp (config.clamp_retry_after is the single definition)
        config = ProtocolConfig(busy_queue_limit=1)
        assert config.clamp_retry_after(0.0) == config.retry_after_min
        assert config.clamp_retry_after(1e9) == config.retry_after_max
        assert config.clamp_retry_after(0.5) == 0.5


class TestRetryRoutesAroundFailures:
    def test_repicked_quorum_excludes_the_node_that_just_failed(self):
        store = ReplicatedStore.create(25, seed=5, trace_enabled=True)
        # first write via n10: discover the current fast-path quorum
        assert store.write({"x": 1}, via="n10").ok
        server = store.servers["n10"]
        coterie = server.coterie_for(server.state.epoch_list)
        victim = sorted(coterie.write_quorum(salt="n10", attempt=2))[0]
        store.crash(victim)
        # this op observes the CALL_FAILED (fast poll hits the victim,
        # heavy rescues) and feeds the liveness view
        assert store.write({"x": 2}, via="n10").ok
        assert victim in server.liveness.suspects()
        # the next op's first-attempt quorum routes around the victim:
        # no rpc at all is sent to it, and the op stays on the fast path
        mark = len(store.trace.records)
        result = store.write({"x": 3}, via="n10")
        assert result.ok
        assert result.case == "fast" and result.polls == 1
        assert victim not in rpc_call_dsts(store, mark)

    def test_blind_picker_keeps_polling_the_dead_node(self):
        store = ReplicatedStore.create(
            25, seed=5, trace_enabled=True,
            config=ProtocolConfig(quorum_planner=False))
        assert store.write({"x": 1}, via="n10").ok
        server = store.servers["n10"]
        coterie = server.coterie_for(server.state.epoch_list)
        victim = sorted(coterie.write_quorum(salt="n10", attempt=2))[0]
        store.crash(victim)
        store.write({"x": 2}, via="n10")
        mark = len(store.trace.records)
        # the blind heavy fallback polls everyone, dead nodes included
        results = [store.write({"x": 3 + i}, via="n10") for i in range(3)]
        assert all(r.ok for r in results)
        assert victim in rpc_call_dsts(store, mark)
