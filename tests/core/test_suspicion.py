"""Suspicion-triggered epoch checking (optional extension)."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.store import ReplicatedStore


def make_store(suspicion=True, seed=1):
    config = ProtocolConfig(
        suspicion_triggers_check=suspicion,
        suspicion_debounce=1.0,
        epoch_check_interval=60.0,       # periodic pulse far away
        epoch_check_staleness=120.0,
        election_timeout=0.5)
    store = ReplicatedStore.create(9, seed=seed, config=config,
                                   auto_epoch_check=True,
                                   trace_enabled=True)
    store.advance(5)  # boot election completes (highest node wins)
    return store


class TestSuspicionTrigger:
    def test_failed_poll_triggers_prompt_epoch_change(self):
        store = make_store(suspicion=True)
        store.write({"x": 1})
        store.crash("n03")
        before = store.env.now
        # issue writes until one's quorum includes the dead node and the
        # resulting CALL_FAILED raises the suspicion
        for i in range(8):
            assert store.write({"y": i}, via=f"n{i % 3:02d}").ok
            if store.trace.select(kind="suspicion-check"):
                break
        store.advance(5)                 # far below the 60-unit pulse
        epoch, number = store.current_epoch()
        assert number >= 1 and "n03" not in epoch
        assert store.env.now - before < 30
        checks = store.trace.select(kind="suspicion-check")
        assert checks, "the initiator should have run a suspicion check"

    def test_without_suspicion_epoch_waits_for_the_pulse(self):
        store = make_store(suspicion=False)
        store.write({"x": 1})
        store.crash("n03")
        store.write({"y": 2})
        store.advance(5)
        assert store.current_epoch()[1] == 0  # nothing happened yet
        store.advance(80)                     # the periodic pulse fires
        epoch, number = store.current_epoch()
        assert number >= 1 and "n03" not in epoch

    def test_debounce_limits_check_rate(self):
        store = make_store(suspicion=True)
        store.write({"x": 1})
        store.crash("n03")
        for i in range(4):                # burst of failing observations
            store.write({"k": i})
        store.advance(2)
        checks = store.trace.select(kind="suspicion-check")
        # debounce 1.0: the burst lands in at most a few windows
        assert 1 <= len(checks) <= 3

    def test_non_initiator_ignores_suspicion(self):
        store = make_store(suspicion=True)
        server = store.servers["n00"]     # n08 is the initiator
        checker = store.checkers["n00"]
        assert not checker.is_initiator
        assert checker._on_suspect("n01", ("n03",)) == "not-initiator"

    def test_consistency_preserved_with_suspicion_checks(self):
        store = make_store(suspicion=True, seed=7)
        store.write({"x": 1})
        for victim in ("n08", "n07"):     # note: n08 is the initiator!
            store.crash(victim)
            store.write({"x": 2})
            store.advance(10)
        store.recover("n07", "n08")
        store.advance(150)                # re-election + rejoin pulses
        store.settle()
        store.verify()

    def test_bad_debounce_rejected(self):
        with pytest.raises(ValueError):
            ProtocolConfig(suspicion_debounce=0).validate()
