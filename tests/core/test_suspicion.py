"""Suspicion-triggered epoch checking (optional extension)."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.store import ReplicatedStore


def make_store(suspicion=True, seed=1, **overrides):
    settings = dict(
        suspicion_triggers_check=suspicion,
        suspicion_debounce=1.0,
        epoch_check_interval=60.0,       # periodic pulse far away
        epoch_check_staleness=120.0,
        election_timeout=0.5)
    settings.update(overrides)
    config = ProtocolConfig(**settings)
    store = ReplicatedStore.create(9, seed=seed, config=config,
                                   auto_epoch_check=True,
                                   trace_enabled=True)
    store.advance(5)  # boot election completes (highest node wins)
    return store


class TestSuspicionTrigger:
    def test_failed_poll_triggers_prompt_epoch_change(self):
        store = make_store(suspicion=True)
        store.write({"x": 1})
        store.crash("n03")
        before = store.env.now
        # issue writes until one's quorum includes the dead node and the
        # resulting CALL_FAILED raises the suspicion
        for i in range(8):
            assert store.write({"y": i}, via=f"n{i % 3:02d}").ok
            if store.trace.select(kind="suspicion-check"):
                break
        store.advance(5)                 # far below the 60-unit pulse
        epoch, number = store.current_epoch()
        assert number >= 1 and "n03" not in epoch
        assert store.env.now - before < 30
        checks = store.trace.select(kind="suspicion-check")
        assert checks, "the initiator should have run a suspicion check"

    def test_without_suspicion_epoch_waits_for_the_pulse(self):
        store = make_store(suspicion=False)
        store.write({"x": 1})
        store.crash("n03")
        store.write({"y": 2})
        store.advance(5)
        assert store.current_epoch()[1] == 0  # nothing happened yet
        store.advance(80)                     # the periodic pulse fires
        epoch, number = store.current_epoch()
        assert number >= 1 and "n03" not in epoch

    def test_debounce_limits_check_rate(self):
        store = make_store(suspicion=True)
        store.write({"x": 1})
        store.crash("n03")
        for i in range(4):                # burst of failing observations
            store.write({"k": i})
        store.advance(2)
        checks = store.trace.select(kind="suspicion-check")
        # debounce 1.0: the burst lands in at most a few windows
        assert 1 <= len(checks) <= 3

    def test_non_initiator_ignores_suspicion(self):
        store = make_store(suspicion=True)
        server = store.servers["n00"]     # n08 is the initiator
        checker = store.checkers["n00"]
        assert not checker.is_initiator
        assert checker._on_suspect("n01", ("n03",)) == "not-initiator"

    def test_consistency_preserved_with_suspicion_checks(self):
        store = make_store(suspicion=True, seed=7)
        store.write({"x": 1})
        for victim in ("n08", "n07"):     # note: n08 is the initiator!
            store.crash(victim)
            store.write({"x": 2})
            store.advance(10)
        store.recover("n07", "n08")
        store.advance(150)                # re-election + rejoin pulses
        store.settle()
        store.verify()

    def test_decay_mid_debounce_does_not_suppress_next_check(self):
        # A suspicion that decays (LivenessView ttl) while the debounce
        # window is still open must leave nothing behind that suppresses
        # the next suspicion-triggered check: the debounce is purely a
        # rate limit on _on_suspect, independent of whether the suspect
        # that opened the window is still held.
        store = make_store(suspicion=True,
                           suspicion_debounce=4.0, suspect_ttl=2.0)
        checker = store.checkers["n08"]          # the initiator
        liveness = store.servers["n08"].liveness
        assert checker.is_initiator

        liveness.observe("n03", ok=False)
        assert checker._on_suspect("n00", ("n03",)) == "checking"
        assert checker._on_suspect("n01", ("n03",)) == "debounced"

        # the suspect expires mid-debounce (ttl 2 < debounce 4) ...
        store.advance(store.config.suspect_ttl + 1)
        assert not liveness.suspects()
        # ... which must not reset or shorten the open window
        assert checker._on_suspect("n02", ("n03",)) == "debounced"

        # once the window closes, a fresh suspicion checks again
        store.advance(store.config.suspicion_debounce)
        liveness.observe("n05", ok=False)
        assert checker._on_suspect("n00", ("n05",)) == "checking"
        checks = store.trace.select(kind="suspicion-check")
        assert len(checks) == 2

    def test_bad_debounce_rejected(self):
        with pytest.raises(ValueError):
            ProtocolConfig(suspicion_debounce=0).validate()
