"""Durable epoch lineage and its Lemma 1 audit."""

import pytest

from repro.core.history import ConsistencyError, check_epoch_lineage
from repro.core.store import ReplicatedStore
from repro.coteries.grid import GridCoterie


class TestLineageRecording:
    def test_installs_recorded_durably(self):
        store = ReplicatedStore.create(9, seed=1)
        store.crash("n08")
        store.check_epoch()
        store.recover("n08")
        store.check_epoch()
        history = store.servers["n00"].node.stable["epoch_history"]
        assert set(history) == {1, 2}
        assert "n08" not in history[1]
        assert "n08" in history[2]

    def test_lineage_survives_crash(self):
        store = ReplicatedStore.create(9, seed=2)
        store.crash("n08")
        store.check_epoch()
        store.crash("n00")
        store.recover("n00")
        assert 1 in store.servers["n00"].node.stable["epoch_history"]


class TestLineageAudit:
    def test_clean_run_passes(self):
        store = ReplicatedStore.create(9, seed=3)
        for victim in ("n08", "n07", "n06"):
            store.crash(victim)
            store.check_epoch()
        store.recover("n06", "n07", "n08")
        store.check_epoch()
        store.verify()  # includes the lineage audit

    def test_forged_epoch_without_quorum_detected(self):
        store = ReplicatedStore.create(9, seed=4)
        store.crash("n08")
        store.check_epoch()
        # forge: epoch 2 whose members miss a write quorum of epoch 1
        server = store.servers["n00"]
        history = dict(server.node.stable["epoch_history"])
        history[2] = ("n00", "n01")  # nowhere near a quorum of epoch 1
        server.node.stable["epoch_history"] = history
        with pytest.raises(ConsistencyError, match="write quorum"):
            check_epoch_lineage(store.servers.values(), GridCoterie,
                                store.node_names)

    def test_diverging_lineages_detected(self):
        store = ReplicatedStore.create(9, seed=5)
        store.crash("n08")
        store.check_epoch()
        server = store.servers["n01"]
        history = dict(server.node.stable["epoch_history"])
        history[1] = tuple(sorted(set(history[1]) - {"n05"}))  # tampered
        server.node.stable["epoch_history"] = history
        with pytest.raises(ConsistencyError, match="two member lists"):
            check_epoch_lineage(store.servers.values(), GridCoterie,
                                store.node_names)

    def test_gap_in_lineage_tolerated(self):
        # a replica that was down for several epochs only has the later
        # ones; the audit checks consecutive pairs it can see
        store = ReplicatedStore.create(9, seed=6)
        store.crash("n08")
        store.check_epoch()
        store.crash("n07")
        store.check_epoch()
        # wipe epoch 1 from everyone: epoch 2 has no visible predecessor
        for server in store.servers.values():
            history = dict(server.node.stable.get("epoch_history", {}))
            history.pop(1, None)
            server.node.stable["epoch_history"] = history
        check_epoch_lineage(store.servers.values(), GridCoterie,
                            store.node_names)
