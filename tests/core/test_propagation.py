"""Asynchronous update propagation: log shipping, snapshots, races."""

from repro.core.config import ProtocolConfig
from repro.core.messages import PropagationData, PropagationOffer
from repro.core.store import ReplicatedStore


class TestHealing:
    def test_stale_replica_healed_by_log_shipping(self):
        store = ReplicatedStore.create(9, seed=1, trace_enabled=True)
        store.write({"x": 1}, via="n00")
        second = store.write({"y": 2}, via="n05")
        assert second.stale
        store.settle()
        shipped = store.trace.select(kind="propagation-shipped")
        assert shipped
        assert any(rec.detail["payload"] == "log" for rec in shipped)
        for name in second.stale:
            assert store.replica_state(name).version == second.version

    def test_snapshot_fallback_when_log_truncated(self):
        config = ProtocolConfig(update_log_capacity=2)
        store = ReplicatedStore.create(9, seed=2, config=config,
                                       trace_enabled=True)
        store.write({"k0": 0}, via="n00")
        # make n08 fall far behind: crash it, shrink the epoch, write a
        # lot, then let it rejoin -- it comes back >2 versions behind the
        # truncated log
        store.crash("n08")
        assert store.check_epoch().changed
        for i in range(1, 6):
            store.write({f"k{i}": i}, via="n00")
        store.recover("n08")
        result = store.check_epoch()
        assert result.changed and "n08" in result.stale
        store.settle()
        state = store.replica_state("n08")
        assert not state.stale
        assert state.value == {f"k{i}": i for i in range(6)}
        shipped = store.trace.select(kind="propagation-shipped",
                                     predicate=lambda r: r.detail["target"] == "n08")
        assert any(rec.detail["payload"] == "snapshot" for rec in shipped)

    def test_propagation_does_not_regress_newer_target(self):
        # A stale target must reject propagation from a source older than
        # its desired version (dversion check in PropagateResponse).
        store = ReplicatedStore.create(9, seed=3)
        server = store.servers["n00"]
        # hand-craft: n00 stale wanting v5; offer from a v3 source
        server.state = server.state.marked_stale(5)
        offers = []

        def client():
            response = yield store.servers["n01"].rpc.call(
                "n00", "propagation-offer",
                PropagationOffer(source="n01", version=3))
            offers.append(response)

        store.join(store.nodes["n01"].spawn(client()))
        assert offers == ["i-am-current"]  # refuses the stale source

    def test_offer_to_current_replica_answered_i_am_current(self):
        store = ReplicatedStore.create(4, seed=4)
        store.write({"x": 1})
        responses = []

        def client():
            response = yield store.servers["n01"].rpc.call(
                "n00", "propagation-offer",
                PropagationOffer(source="n01", version=1))
            responses.append(response)

        store.join(store.nodes["n01"].spawn(client()))
        assert responses == ["i-am-current"]

    def test_concurrent_offers_one_wins(self):
        # Two sources offer simultaneously; the second must see
        # already-recovering (the locked-for-propagation bit).
        store = ReplicatedStore.create(9, seed=5)
        target = store.servers["n02"]
        target.state = target.state.marked_stale(1)
        # make sources current at v1
        for source in ("n00", "n01"):
            server = store.servers[source]
            server.state = server.state.applied({"x": 1}, 1, 8)
        answers = {}

        def offer_from(source):
            response = yield store.servers[source].rpc.call(
                "n02", "propagation-offer",
                PropagationOffer(source=source, version=1))
            answers[source] = response

        p1 = store.nodes["n00"].spawn(offer_from("n00"))
        p2 = store.nodes["n01"].spawn(offer_from("n01"))
        store.join(p1, p2)
        granted = [s for s, a in answers.items()
                   if isinstance(a, tuple) and a[0] == "propagation-permitted"]
        deferred = [s for s, a in answers.items()
                    if a == "already-recovering"]
        assert len(granted) == 1 and len(deferred) == 1

    def test_same_tick_offers_do_not_crash(self):
        # regression: two offers delivered in the SAME tick both pass the
        # recovering check; with a shared lock-owner name the second
        # acquire was a duplicate-owner error that killed the simulation.
        store = ReplicatedStore.create(9, seed=5, latency=(0.01, 0.01))
        target = store.servers["n02"]
        target.state = target.state.marked_stale(1)
        for source in ("n00", "n01"):
            server = store.servers[source]
            server.state = server.state.applied({"x": 1}, 1, 8)
        answers = {}

        def offer_from(source):
            response = yield store.servers[source].rpc.call(
                "n02", "propagation-offer",
                PropagationOffer(source=source, version=1))
            answers[source] = response

        p1 = store.nodes["n00"].spawn(offer_from("n00"))
        p2 = store.nodes["n01"].spawn(offer_from("n01"))
        store.join(p1, p2)
        granted = [a for a in answers.values()
                   if isinstance(a, tuple) and a[0] == "propagation-permitted"]
        # constant latency: both arrive together; exactly one may hold the
        # permit, the other either defers or learns the truth under lock
        assert len(granted) <= 1
        assert len(answers) == 2

    def test_permit_lease_expires_without_data(self):
        store = ReplicatedStore.create(4, seed=6)
        target = store.servers["n01"]
        target.state = target.state.marked_stale(1)
        source = store.servers["n00"]
        source.state = source.state.applied({"x": 1}, 1, 8)
        answers = []

        def offer_only():
            response = yield source.rpc.call(
                "n01", "propagation-offer",
                PropagationOffer(source="n00", version=1))
            answers.append(response)

        store.join(store.nodes["n00"].spawn(offer_only()))
        assert answers[0][0] == "propagation-permitted"
        assert target.lock.locked
        store.advance(store.config.propagation_lease + 1)
        assert not target.lock.locked   # lease reclaimed the lock
        assert target.node.volatile.get("recovering") is None

    def test_data_without_permit_rejected(self):
        store = ReplicatedStore.create(4, seed=7)
        results = []

        def send_data():
            response = yield store.servers["n00"].rpc.call(
                "n01", "propagation-data",
                PropagationData(source_version=3, snapshot={"x": 3}))
            results.append(response)

        store.join(store.nodes["n00"].spawn(send_data()))
        assert results == ["no-permit"]
        assert store.replica_state("n01").version == 0

    def test_propagation_gives_up_on_dead_target(self):
        store = ReplicatedStore.create(9, seed=8, trace_enabled=True)
        store.write({"x": 1}, via="n00")
        second = store.write({"y": 2}, via="n05")
        victims = list(second.stale)
        store.crash(*victims)
        store.advance(60)
        gave_up = store.trace.select(kind="propagation-gave-up")
        assert {rec.detail["target"] for rec in gave_up} == set(victims)
        counters = store.metrics_snapshot()["counters"]
        assert counters.get("propagation_gave_up", 0) == len(gave_up)

    def test_epoch_check_reseeds_propagation_after_give_up(self):
        # A stale replica behind a partition outlives every courier: the
        # sources hit MAX_FAILED_ROUNDS and drop it.  After the heal the
        # next epoch check -- membership unchanged -- must notice the
        # still-stale member and re-seed propagation, or it stays stale
        # forever.
        store = ReplicatedStore.create(9, seed=13, trace_enabled=True)
        store.write({"a": 1}, via="n00")
        store.crash("n08")
        assert store.check_epoch().changed          # epoch sheds n08
        store.write({"b": 2}, via="n00")
        store.recover("n08")
        result = store.check_epoch()                # n08 rejoins, stale
        assert result.changed and "n08" in result.stale

        store.partition(["n08"])                    # couriers can't reach it
        store.advance(40)                           # every source gives up
        gave_up = store.trace.select(
            kind="propagation-gave-up",
            predicate=lambda r: r.detail["target"] == "n08")
        assert gave_up
        assert store.metrics_snapshot()["counters"][
            "propagation_gave_up"] >= 1

        store.heal()
        store.advance(10)
        # nobody is serving n08 any more; without the re-seed hook it
        # would stay stale indefinitely
        assert store.replica_state("n08").stale
        check = store.check_epoch(via="n00")
        assert check.ok and not check.changed
        store.settle()
        state = store.replica_state("n08")
        assert not state.stale
        assert state.value == {"a": 1, "b": 2}
        counters = store.metrics_snapshot()["counters"]
        assert counters.get("propagation_reseeded", 0) >= 1
        reseeded = store.trace.select(kind="propagation-reseeded")
        assert any("n08" in rec.detail["targets"] for rec in reseeded)
        store.verify()


class TestPartitionHealing:
    """Stale replicas created by a partition episode heal after the heal,
    with the desired-version bookkeeping of paper Section 4."""

    def test_stale_after_partition_heal_is_propagated(self):
        store = ReplicatedStore.create(9, seed=11, trace_enabled=True)
        store.write({"a": 1}, via="n00")
        store.partition(["n07", "n08"])
        assert store.check_epoch().changed  # majority sheds the minority
        for i in range(3):
            store.write({f"b{i}": i}, via="n00")
        store.heal()
        result = store.check_epoch()        # minority rejoins, marked stale
        assert result.changed
        assert {"n07", "n08"} <= set(result.stale)
        max_version = max(store.replica_state(n).version
                          for n in store.node_names)
        for name in ("n07", "n08"):
            state = store.replica_state(name)
            # Section 4: a stale replica records the version it must
            # reach (dversion), strictly above what it holds
            assert state.stale
            assert state.version < state.dversion
            assert state.dversion == max_version
        store.settle()
        expected = {"a": 1, "b0": 0, "b1": 1, "b2": 2}
        for name in ("n07", "n08"):
            state = store.replica_state(name)
            assert not state.stale
            assert state.version == max_version
            assert state.value == expected
        # the catch-up crossed the healed boundary as log shipping
        shipped = store.trace.select(
            kind="propagation-shipped",
            predicate=lambda r: r.detail["target"] in ("n07", "n08"))
        assert shipped

    def test_dversion_advances_with_each_missed_write(self):
        # A replica that stays stale across several writes must track the
        # moving target: every write it misses re-marks it with a higher
        # dversion (Section 4's desired-version bookkeeping).
        from repro.core.state import initial_state
        from repro.coteries.grid import GridCoterie

        store = ReplicatedStore.create(9, seed=12)
        store.write({"x": 1}, via="n00")
        # pick the victim from the quorum the next write via n00 will
        # poll (the blind salted draw, nothing suspected)
        names = tuple(store.node_names)
        quorum = GridCoterie(names).write_quorum(salt="n00", attempt=2)
        victim = sorted(n for n in quorum if n != "n00")[0]
        # pretend the victim missed write 1 and was marked for it
        store.servers[victim].state = initial_state(
            names, store.initial_value).marked_stale(1)
        assert store.replica_state(victim).dversion == 1
        second = store.write({"x": 2}, via="n00")
        assert victim in second.stale
        state = store.replica_state(victim)
        assert state.stale
        assert state.version < state.dversion == second.version == 2
        store.settle()
        healed = store.replica_state(victim)
        assert not healed.stale and healed.version == 2
        assert healed.value["x"] == 2


class TestPartialWritePayoff:
    def test_log_shipping_moves_only_deltas(self):
        # The partial-write design goal: catch-up transfers carry the
        # missing updates, not whole objects.
        store = ReplicatedStore.create(9, seed=9, trace_enabled=True)
        big_value = {f"field{i}": "x" * 50 for i in range(40)}
        store.write(big_value, via="n00")
        store.settle()
        store.trace.clear()
        small = store.write({"field0": "tiny"}, via="n05")
        store.settle()
        shipped = store.trace.select(kind="propagation-shipped")
        assert shipped and all(rec.detail["payload"] == "log"
                               for rec in shipped)
        for name in small.stale:
            assert store.replica_state(name).value["field0"] == "tiny"
            assert store.replica_state(name).value["field39"] == "x" * 50
