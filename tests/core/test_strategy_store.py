"""End-to-end tests for the ``quorum_strategy`` config knob: the
optimized strategy and the read-one tier running under the full
protocol stack (coordinator, replica, history checker)."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.coordinator import _MIX_WARMUP_OPS
from repro.core.store import ReplicatedStore
from repro.obs.report import build_summary, validate_summary


def run_mix(store, ops, read_fraction):
    """A deterministic interleaved mix (read i iff i mod 10 < fr*10)."""
    threshold = int(round(read_fraction * 10))
    for i in range(ops):
        if i % 10 < threshold:
            assert store.read().ok
        else:
            assert store.write({"k": i}).ok


class TestOptimizedStrategy:
    def test_read_heavy_mix_engages_the_tier_and_verifies(self):
        config = ProtocolConfig(quorum_strategy="optimized")
        store = ReplicatedStore.create(9, seed=7, config=config)
        run_mix(store, 60, 0.9)
        store.verify()
        summary = validate_summary(
            build_summary(store.metrics_snapshot()))
        strategy = summary["strategy"]
        assert strategy["read_one"].get("ok", 0) > 0
        assert strategy["samples"].get("write", 0) > 0
        assert strategy["rebuilds"] > 0

    def test_tier_reads_are_recorded_as_bounded_staleness(self):
        config = ProtocolConfig(quorum_strategy="optimized")
        store = ReplicatedStore.create(9, seed=7, config=config)
        run_mix(store, 60, 0.9)
        degraded = store.history.degraded_reads()
        assert degraded  # tier reads landed in the bounded-staleness bin
        assert all(record.case == "read-one" for record in degraded)
        # strict reads (warmup, quorum-strategy phase) stay linearizable
        assert store.history.successful_reads()

    def test_same_seed_runs_are_identical(self):
        def run(seed):
            config = ProtocolConfig(quorum_strategy="optimized")
            store = ReplicatedStore.create(9, seed=seed, config=config)
            run_mix(store, 50, 0.9)
            return ([(r.kind, r.coordinator, r.case, r.start, r.end,
                      r.version) for r in store.history.operations],
                    store.versions())

        assert run(11) == run(11)

    def test_mixed_workload_without_tier_still_verifies(self):
        # 2:1 reads: the observed mix settles below the tier crossover,
        # so ops flow through the optimized quorum distribution
        config = ProtocolConfig(quorum_strategy="optimized")
        store = ReplicatedStore.create(9, seed=3, config=config)
        for i in range(45):
            if i % 3 < 2:
                assert store.read().ok
            else:
                assert store.write({"k": i}).ok
        store.verify()
        summary = build_summary(store.metrics_snapshot())
        assert summary["strategy"]["samples"].get("read", 0) > 0

    def test_configured_fraction_skips_mix_observation(self):
        config = ProtocolConfig(quorum_strategy="optimized",
                                strategy_read_fraction=0.9)
        store = ReplicatedStore.create(9, seed=5, config=config)
        # the tier engages from op 1 -- no warmup needed
        for _ in range(_MIX_WARMUP_OPS // 2):
            assert store.read().ok
        summary = build_summary(store.metrics_snapshot())
        assert summary["strategy"]["read_one"].get("ok", 0) > 0

    def test_strategy_off_by_default(self):
        store = ReplicatedStore.create(9, seed=0)
        run_mix(store, 20, 0.9)
        store.verify()
        summary = build_summary(store.metrics_snapshot())
        assert summary["strategy"]["samples"] in ({}, {"read": 0,
                                                       "write": 0})
        assert summary["strategy"]["rebuilds"] == 0


class TestReadDominantMode:
    def test_forced_tier_serves_single_replica_reads(self):
        config = ProtocolConfig(quorum_strategy="read-dominant")
        store = ReplicatedStore.create(9, seed=5, config=config)
        run_mix(store, 30, 0.9)
        store.verify()
        summary = build_summary(store.metrics_snapshot())
        assert summary["strategy"]["read_one"].get("ok", 0) > 0

    def test_epoch_shrink_disables_the_tier(self):
        config = ProtocolConfig(quorum_strategy="read-dominant")
        store = ReplicatedStore.create(9, seed=5, config=config)
        run_mix(store, 30, 0.9)
        store.crash("n08")
        store.advance(5)
        assert store.check_epoch().ok
        before = build_summary(
            store.metrics_snapshot())["strategy"]["read_one"]
        for _ in range(10):
            assert store.read().ok
        after = build_summary(
            store.metrics_snapshot())["strategy"]["read_one"]
        # the shrunken epoch cannot cover all nodes with write-all, so
        # the tier turns off: no new tier reads, quorum reads succeed
        assert after.get("ok", 0) == before.get("ok", 0)
        store.verify()

    def test_tier_read_falls_back_when_the_target_is_down(self):
        config = ProtocolConfig(quorum_strategy="read-dominant")
        store = ReplicatedStore.create(9, seed=2, config=config)
        run_mix(store, 20, 0.9)
        # crash a node but do NOT shrink the epoch: the tier stays on
        # and some picks land on the dead node, falling back to quorums
        store.crash("n04")
        for _ in range(20):
            assert store.read(via="n00").ok
        summary = build_summary(store.metrics_snapshot())
        assert summary["strategy"]["read_one"].get("fallback", 0) > 0
        store.verify()


class TestStrategyUnderFaults:
    def test_optimized_strategy_survives_crash_and_recovery(self):
        config = ProtocolConfig(quorum_strategy="optimized")
        store = ReplicatedStore.create(9, seed=9, config=config)
        run_mix(store, 30, 0.9)
        store.crash("n07")
        store.advance(5)
        assert store.check_epoch().ok
        run_mix(store, 20, 0.9)
        store.recover("n07")
        assert store.check_epoch().ok
        store.settle()
        run_mix(store, 20, 0.9)
        store.verify()

    def test_final_write_is_visible_after_tier_reads(self):
        config = ProtocolConfig(quorum_strategy="optimized",
                                strategy_read_fraction=0.95)
        store = ReplicatedStore.create(9, seed=4, config=config)
        assert store.write({"k": "final"}).ok
        store.settle()
        result = store.read()
        assert result.ok
        # write-all writes reach every replica, so even a tier read
        # sees the settled value
        assert result.value.get("k") == "final"


class TestConfigValidation:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            ProtocolConfig(quorum_strategy="fancy").validate()

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            ProtocolConfig(strategy_read_fraction=1.5).validate()
        ProtocolConfig(strategy_read_fraction=-1.0).validate()
        ProtocolConfig(strategy_read_fraction=0.5).validate()
