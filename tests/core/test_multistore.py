"""Group epoch management across multiple data items (paper Section 2)."""

import pytest

from repro.core.multistore import MultiItemStore


class TestBasicOperations:
    def test_independent_items(self):
        store = MultiItemStore.create(9, 3, seed=1)
        store.write("item0", {"a": 1})
        store.write("item1", {"b": 2})
        assert store.read("item0").value == {"a": 1}
        assert store.read("item1").value == {"b": 2}
        assert store.read("item2").value == {}
        store.verify()

    def test_items_version_independently(self):
        store = MultiItemStore.create(9, 2, seed=2)
        for i in range(3):
            store.write("item0", {"k": i})
        store.write("item1", {"k": 0})
        assert store.read("item0").version == 3
        assert store.read("item1").version == 1
        store.verify()

    def test_partial_writes_per_item(self):
        store = MultiItemStore.create(9, 2, seed=3)
        store.write("item0", {"a": 1})
        store.write("item0", {"b": 2}, via="n05")
        store.settle()
        assert store.read("item0").value == {"a": 1, "b": 2}
        store.verify()

    def test_concurrent_writes_to_different_items_coexist(self):
        store = MultiItemStore.create(9, 3, seed=4)
        procs = [
            store.nodes[f"n0{i}"].spawn(
                store.coordinators[f"n0{i}"].write(f"item{i}", {"v": i}))
            for i in range(3)]
        results = store.join(*procs)
        # different items, different locks: no contention at all
        assert all(r.ok for r in results)
        store.verify()


class TestGroupEpoch:
    def test_one_check_serves_all_items(self):
        store = MultiItemStore.create(9, 4, seed=5)
        for k in range(4):
            store.write(f"item{k}", {"v": k})
        store.crash("n08")
        result = store.check_epoch()
        assert result.ok and result.changed
        epoch, number = store.current_epoch()
        assert number == 1 and "n08" not in epoch
        # every item's subsequent writes use the shared shrunk epoch
        for k in range(4):
            assert store.write(f"item{k}", {"v2": k}).ok
        store.verify()

    def test_rejoiner_marked_stale_per_item(self):
        store = MultiItemStore.create(9, 2, seed=6)
        store.write("item0", {"a": 1})
        store.crash("n05")
        assert store.check_epoch().changed
        store.write("item0", {"a": 2})      # n05 misses item0's update
        # item1 never written: n05 is still current for it
        store.recover("n05")
        result = store.check_epoch()
        assert result.changed
        store.settle()
        state0 = store.servers["n05"].item_state("item0")
        assert state0.value == {"a": 2} and not state0.stale
        store.verify()

    def test_epoch_numbers_shared_across_items(self):
        store = MultiItemStore.create(9, 3, seed=7)
        store.crash("n08")
        store.check_epoch()
        store.recover("n08")
        store.check_epoch()
        # a single epoch sequence for the whole group
        epoch, number = store.current_epoch()
        assert number == 2
        for server in store.servers.values():
            assert server.epoch[1] in (0, 1, 2)

    def test_check_message_cost_independent_of_item_count(self):
        # E14's claim: the epoch-check poll is one request per NODE, not
        # per item.
        for n_items in (1, 4):
            store = MultiItemStore.create(9, n_items, seed=8,
                                          trace_enabled=True)
            store.trace.clear()
            store.check_epoch()
            polls = sum(1 for rec in store.trace.select(kind="send")
                        if rec.detail.get("msg_kind") == "rpc-req")
            assert polls == 9, (n_items, polls)

    def test_install_atomic_across_items(self):
        store = MultiItemStore.create(9, 3, seed=9)
        for k in range(3):
            store.write(f"item{k}", {"v": k})
        store.crash("n07", "n08")
        result = store.check_epoch()
        assert result.ok and result.changed
        # all members hold the same epoch; no item left behind
        epoch, number = store.current_epoch()
        for name in epoch:
            assert store.servers[name].epoch == (epoch, number)
        store.verify()


class TestFaults:
    def test_crash_during_multi_item_activity(self):
        store = MultiItemStore.create(9, 2, seed=10)
        store.write("item0", {"a": 1})
        write = store.nodes["n00"].spawn(
            store.coordinators["n00"].write("item1", {"b": 2}))
        schedule = store.schedule()
        schedule.crash_at(store.env.now + 0.02, "n03")
        schedule.start()
        store.join(write, timeout=300)
        store.recover("n03")
        store.advance(20)
        store.settle()
        store.verify()

    def test_no_write_quorum_fails_cleanly(self):
        store = MultiItemStore.create(9, 2, seed=11)
        store.crash("n02", "n05", "n08")  # full grid column
        assert not store.write("item0", {"x": 1}).ok
        assert not store.check_epoch().ok
        store.verify()
