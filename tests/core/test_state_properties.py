"""Property-based tests of the replica state machine."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.state import ReplicaState, initial_state


@st.composite
def update_dicts(draw):
    keys = draw(st.lists(st.sampled_from("abcd"), min_size=1, max_size=3,
                         unique=True))
    return {key: draw(st.integers(min_value=0, max_value=99))
            for key in keys}


class TestAppliedProperties:
    @given(st.lists(update_dicts(), min_size=1, max_size=12),
           st.integers(min_value=0, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_value_equals_replay_of_updates(self, updates, capacity):
        state = initial_state(("a",))
        expected = {}
        for version, update in enumerate(updates, start=1):
            state = state.applied(update, version, capacity)
            expected.update(update)
        assert state.value == expected
        assert state.version == len(updates)

    @given(st.lists(update_dicts(), min_size=1, max_size=12),
           st.integers(min_value=1, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_log_capacity_respected_and_contiguous(self, updates, capacity):
        state = initial_state(("a",))
        for version, update in enumerate(updates, start=1):
            state = state.applied(update, version, capacity)
        assert len(state.update_log) <= capacity
        versions = [v for v, _u in state.update_log]
        assert versions == list(range(state.version - len(versions) + 1,
                                      state.version + 1))

    @given(st.lists(update_dicts(), min_size=1, max_size=10),
           st.integers(min_value=0, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_log_slice_replays_to_current_value(self, updates, start):
        state = initial_state(("a",))
        snapshots = [dict(state.value)]
        for version, update in enumerate(updates, start=1):
            state = state.applied(update, version, 0)  # unbounded log
            snapshots.append(dict(state.value))
        start = min(start, state.version)
        entries = state.log_slice(start)
        replayed = dict(snapshots[start])
        for _version, update in entries:
            replayed.update(update)
        assert replayed == state.value


class ReplicaStateMachine(RuleBasedStateMachine):
    """Random operation sequences keep the invariants."""

    def __init__(self):
        super().__init__()
        self.state = initial_state(("a", "b"))
        self.model_value = {}

    @rule(update=update_dicts())
    def apply_write(self, update):
        if self.state.stale:
            return  # only current replicas take writes
        self.state = self.state.applied(update, self.state.version + 1, 5)
        self.model_value.update(update)

    @rule(ahead=st.integers(min_value=0, max_value=3))
    def mark_stale(self, ahead):
        self.state = self.state.marked_stale(self.state.version + ahead)

    @rule()
    def heal(self):
        if not self.state.stale:
            return
        # propagation from a hypothetical source at desired version
        target_version = max(self.state.dversion, self.state.version)
        self.model_value["healed"] = target_version
        self.state = self.state.caught_up(dict(self.model_value),
                                          target_version, ())

    @rule(bump=st.integers(min_value=1, max_value=2))
    def new_epoch(self, bump):
        self.state = self.state.with_epoch(
            ("a", "b"), self.state.epoch_number + bump)

    @invariant()
    def version_fields_sane(self):
        assert self.state.version >= 0
        assert self.state.dversion >= 0
        if not self.state.stale:
            # a non-stale replica's value matches the model exactly
            assert self.state.value == self.model_value

    @invariant()
    def stale_implies_desired_at_least_version(self):
        # dversion only matters while stale; it never sits below what the
        # replica already has (marked_stale takes the max)
        if self.state.stale and self.state.dversion < self.state.version:
            raise AssertionError(
                f"stale with dversion {self.state.dversion} < "
                f"version {self.state.version}")


ReplicaStateMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=20, deadline=None)
TestReplicaStateMachine = ReplicaStateMachine.TestCase
