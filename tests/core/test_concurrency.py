"""Concurrent coordinators: mutual exclusion, deadlock resolution, and
serializability under contention (Lemma 2 as behaviour)."""

from repro.core.store import ReplicatedStore


class TestConcurrentWrites:
    def test_two_concurrent_writes_serialize(self):
        store = ReplicatedStore.create(9, seed=1)
        p1 = store.start_write({"a": 1}, via="n00")
        p2 = store.start_write({"b": 2}, via="n05")
        r1, r2 = store.join(p1, p2)
        committed = [r for r in (r1, r2) if r.ok]
        assert committed, "at least one concurrent write should commit"
        versions = sorted(r.version for r in committed)
        assert versions == list(range(1, len(committed) + 1))
        store.verify()

    def test_many_concurrent_writers_distinct_versions(self):
        store = ReplicatedStore.create(16, seed=2)
        procs = [store.start_write({"k": i}, via=f"n{i:02d}")
                 for i in range(8)]
        results = store.join(*procs, timeout=300)
        versions = [r.version for r in results if r.ok]
        assert len(versions) == len(set(versions))
        assert versions, "contention must not starve everyone"
        store.verify()

    def test_conflicting_writers_do_not_deadlock(self):
        # Writers locking overlapping quorums in opposite orders would
        # deadlock without the BUSY timeout; the run must terminate.
        store = ReplicatedStore.create(4, seed=3)  # tiny grid: max overlap
        procs = [store.start_write({"k": i}, via=name)
                 for i, name in enumerate(store.node_names)]
        results = store.join(*procs, timeout=300)
        assert all(r is not None for r in results)
        store.verify()

    def test_same_key_writes_last_version_wins(self):
        store = ReplicatedStore.create(9, seed=4)
        procs = [store.start_write({"x": i}, via=f"n{i:02d}")
                 for i in range(4)]
        results = store.join(*procs, timeout=300)
        store.settle()
        committed = sorted((r for r in results if r.ok),
                           key=lambda r: r.version)
        if committed:
            # the read must see the highest-version write's value
            winner = None
            for i, r in enumerate(results):
                if r.ok and r.version == committed[-1].version:
                    winner = i
            read = store.read()
            assert read.value == {"x": winner}
        store.verify()


class TestReadersAndWriters:
    def test_concurrent_reads_do_not_block_each_other(self):
        store = ReplicatedStore.create(9, seed=5)
        store.write({"x": 1})
        start = store.env.now
        procs = [store.start_read(via=f"n{i:02d}") for i in range(6)]
        results = store.join(*procs)
        assert all(r.ok and r.value == {"x": 1} for r in results)
        # shared locks: six reads take about one RPC round trip, not six
        assert store.env.now - start < 1.0

    def test_read_during_write_sees_before_or_after(self):
        store = ReplicatedStore.create(9, seed=6)
        store.write({"x": 0})
        write = store.start_write({"x": 1}, via="n00")
        read = store.start_read(via="n05")
        write_result, read_result = store.join(write, read)
        assert write_result.ok
        if read_result.ok:
            assert read_result.value in ({"x": 0}, {"x": 1})
        store.verify()  # the checker enforces the precise window

    def test_mixed_workload_serializable(self):
        store = ReplicatedStore.create(9, seed=7)
        procs = []
        for i in range(12):
            name = f"n{i % 9:02d}"
            if i % 3 == 0:
                procs.append(store.start_write({"k": i}, via=name))
            else:
                procs.append(store.start_read(via=name))
        store.join(*procs, timeout=300)
        stats = store.verify()
        assert stats["writes"] >= 1

    def test_write_concurrent_with_epoch_check(self):
        store = ReplicatedStore.create(9, seed=8)
        store.write({"x": 1})
        store.crash("n08")
        check = store.start_epoch_check(via="n00")
        write = store.start_write({"y": 2}, via="n05")
        check_result, write_result = store.join(check, write, timeout=300)
        # whichever order they serialised in, the state must be consistent
        if not check_result.ok:
            # the concurrent write invalidated the install; retry it
            check_result = store.check_epoch()
        assert write_result.ok or store.write({"y": 2}).ok
        store.settle()
        store.verify()


class TestRepeatedContention:
    def test_sustained_contention_run(self):
        store = ReplicatedStore.create(9, seed=9)
        total_committed = 0
        for round_number in range(6):
            procs = [store.start_write({"r": round_number, "w": i},
                                       via=f"n{(round_number + 2 * i) % 9:02d}")
                     for i in range(3)]
            results = store.join(*procs, timeout=300)
            total_committed += sum(1 for r in results if r.ok)
            store.advance(1.0)
        assert total_committed >= 6
        store.settle()
        store.verify()
