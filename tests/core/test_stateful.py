"""Hypothesis stateful testing of the replicated store.

Hypothesis drives arbitrary interleavings of writes, reads, crashes,
recoveries, epoch checks, and time advances against a small cluster, and
shrinks any failing sequence to a minimal reproducer.  Invariants checked
continuously: read results are one-copy serializable, epochs are unique,
and the model dictionary (maintained from committed writes) matches what
settled reads return.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core.store import ReplicatedStore

N_NODES = 5
KEYS = ("alpha", "beta", "gamma")


class StoreMachine(RuleBasedStateMachine):
    """Random fault/operation interleavings with continuous checking."""

    @initialize(seed=st.integers(min_value=0, max_value=2 ** 16))
    def setup(self, seed):
        self.store = ReplicatedStore.create(N_NODES, seed=seed)
        self.counter = 0

    # -- operations ---------------------------------------------------------
    @rule(key=st.sampled_from(KEYS),
          via=st.integers(min_value=0, max_value=N_NODES - 1))
    def write(self, key, via):
        name = f"n{via:02d}"
        if not self.store.nodes[name].up:
            return
        self.counter += 1
        self.store.write({key: self.counter}, via=name)

    @rule(via=st.integers(min_value=0, max_value=N_NODES - 1))
    def read(self, via):
        name = f"n{via:02d}"
        if not self.store.nodes[name].up:
            return
        self.store.read(via=name)

    @rule(via=st.integers(min_value=0, max_value=N_NODES - 1))
    def epoch_check(self, via):
        name = f"n{via:02d}"
        if not self.store.nodes[name].up:
            return
        self.store.check_epoch(via=name, retries=1)

    # -- faults --------------------------------------------------------------
    @rule(victim=st.integers(min_value=0, max_value=N_NODES - 1))
    def crash(self, victim):
        # keep at least 3 nodes up so some progress stays possible
        if len(self.store.up_nodes()) > 3:
            self.store.crash(f"n{victim:02d}")

    @rule(target_node=st.integers(min_value=0, max_value=N_NODES - 1))
    def recover(self, target_node):
        self.store.recover(f"n{target_node:02d}")

    @rule(duration=st.floats(min_value=0.1, max_value=5.0))
    def advance(self, duration):
        self.store.advance(duration)

    @rule(cut=st.integers(min_value=1, max_value=2))
    def partition(self, cut):
        self.store.heal()
        self.store.partition([f"n{i:02d}" for i in range(cut)])

    @rule()
    def heal(self):
        self.store.heal()

    # -- invariants -----------------------------------------------------------
    @invariant()
    def history_is_one_copy_serializable(self):
        if hasattr(self, "store"):
            self.store.verify()

    def teardown(self):
        if not hasattr(self, "store"):
            return
        # converge: everyone back, epoch re-formed, propagation done
        self.store.heal()
        self.store.recover(*[n for n in self.store.node_names
                             if not self.store.nodes[n].up])
        self.store.advance(20)
        self.store.check_epoch()
        self.store.settle()
        stats = self.store.verify()
        read = self.store.read()
        if read.ok and stats["writes"]:
            from repro.core.history import replay
            writes = self.store.history.committed_writes()
            assert read.version >= writes[-1].version
            assert read.value == replay(writes, read.version)


StoreMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=15, deadline=None)
TestReplicatedStoreStateful = StoreMachine.TestCase
