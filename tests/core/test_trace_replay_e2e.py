"""End-to-end determinism: replaying a recorded fault timeline against a
fresh cluster reproduces the same protocol evolution."""

import pytest

from repro.core.store import ReplicatedStore
from repro.sim.failures import schedule_from_trace


def run_with_random_faults(seed=21, horizon=60.0):
    store = ReplicatedStore.create(
        9, seed=seed, trace_enabled=True,
        auto_epoch_check=True,
        config=_fast_config())
    store.inject_failures(1 / 15.0, 1 / 3.0, seed=77)
    store.advance(horizon)
    return store


def _fast_config():
    from repro.core.config import ProtocolConfig
    return ProtocolConfig(epoch_check_interval=3.0,
                          epoch_check_staleness=8.0,
                          election_timeout=0.5)


def epoch_history(store):
    merged = {}
    for server in store.servers.values():
        merged.update(server.node.stable.get("epoch_history", {}))
    return {number: tuple(members) for number, members in merged.items()}


class TestReplay:
    def test_replayed_faults_reproduce_epoch_history(self):
        original = run_with_random_faults()
        fault_events = [(r.time, r.kind, r.node) for r in original.trace
                        if r.kind in ("node-crash", "node-recover")]
        assert fault_events, "need some faults to make the test meaningful"

        replay = ReplicatedStore.create(
            9, seed=21, trace_enabled=True, auto_epoch_check=True,
            config=_fast_config())
        schedule = schedule_from_trace(original.trace, replay.env,
                                       replay.network,
                                       replay.nodes.values())
        schedule.start()
        replay.advance(60.0)

        # identical fault timeline...
        replay_events = [(r.time, r.kind, r.node) for r in replay.trace
                         if r.kind in ("node-crash", "node-recover")]
        assert replay_events == fault_events
        # ...drives the identical epoch evolution (same seeds everywhere)
        assert epoch_history(replay) == epoch_history(original)

    def test_replay_on_different_seed_still_consistent(self):
        # different network jitter, same faults: epochs may differ in
        # timing but the run must remain one-copy serializable
        original = run_with_random_faults()
        replay = ReplicatedStore.create(
            9, seed=99, trace_enabled=True, auto_epoch_check=True,
            config=_fast_config())
        schedule = schedule_from_trace(original.trace, replay.env,
                                       replay.network,
                                       replay.nodes.values())
        schedule.start()
        replay.advance(60.0)
        replay.recover(*[n for n in replay.node_names
                         if not replay.nodes[n].up])
        replay.advance(20.0)
        replay.verify()


class TestEpochSizeDistribution:
    def test_chain_distribution_sums_to_one(self):
        from repro.availability.chains.dynamic_grid import (
            dynamic_grid_epoch_sizes,
        )
        sizes = dynamic_grid_epoch_sizes(9)
        assert sum(sizes.values()) == 1
        assert set(sizes) == set(range(3, 10))

    def test_distribution_follows_birth_death_ratios(self):
        # In the available band pi(y)/pi(y-1) = (N-y+1)*mu / (y*lam): the
        # epoch tracks the up-set, so epoch sizes mirror the binomial
        # number of up nodes (conditioned on availability).
        from repro.availability.chains.dynamic_grid import (
            dynamic_grid_epoch_sizes,
        )
        sizes = dynamic_grid_epoch_sizes(9, 1, 19)
        assert float(sizes[9]) == pytest.approx(0.63, abs=0.02)  # ~ p^9
        assert float(sizes[9] / sizes[8]) == pytest.approx(19 / 9, rel=0.01)
        assert float(sizes[8] / sizes[7]) == pytest.approx(2 * 19 / 8,
                                                           rel=0.01)
