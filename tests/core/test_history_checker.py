"""The consistency checker itself: it must accept legal histories and
reject each class of violation with a useful message."""

import pytest

from repro.core.history import (
    ConsistencyError,
    History,
    OpRecord,
    check_epoch_uniqueness,
    check_one_copy_serializability,
    replay,
)
from repro.core.messages import ReadResult, WriteResult


def add_write(history, op_id, start, end, version, updates):
    record = history.start("write", op_id, "c", start, updates=updates)
    history.finish(record, end, WriteResult(True, version=version))
    return record


def add_read(history, op_id, start, end, version, value):
    record = history.start("read", op_id, "c", start)
    history.finish(record, end,
                   ReadResult(True, value=value, version=version))
    return record


class TestReplay:
    def test_replay_applies_partial_updates_in_order(self):
        history = History()
        add_write(history, "w1", 0, 1, 1, {"a": 1})
        add_write(history, "w2", 2, 3, 2, {"b": 2})
        add_write(history, "w3", 4, 5, 3, {"a": 9})
        writes = history.committed_writes()
        assert replay(writes, 0) == {}
        assert replay(writes, 1) == {"a": 1}
        assert replay(writes, 2) == {"a": 1, "b": 2}
        assert replay(writes, 3) == {"a": 9, "b": 2}

    def test_replay_with_initial_value(self):
        history = History()
        add_write(history, "w1", 0, 1, 1, {"a": 1})
        assert replay(history.committed_writes(), 1, {"z": 0}) == \
            {"a": 1, "z": 0}


class TestAccepts:
    def test_empty_history(self):
        assert check_one_copy_serializability(History())["writes"] == 0

    def test_serial_history(self):
        history = History()
        add_write(history, "w1", 0, 1, 1, {"a": 1})
        add_read(history, "r1", 2, 3, 1, {"a": 1})
        add_write(history, "w2", 4, 5, 2, {"a": 2})
        add_read(history, "r2", 6, 7, 2, {"a": 2})
        stats = check_one_copy_serializability(history)
        assert stats == {"writes": 2, "reads": 2, "degraded": 0,
                         "failed": 0, "max_version": 2}

    def test_concurrent_read_may_see_either_side(self):
        history = History()
        add_write(history, "w1", 0, 1, 1, {"a": 1})
        add_write(history, "w2", 2, 6, 2, {"a": 2})
        # read overlaps w2: both v1 and v2 are legal outcomes
        add_read(history, "r1", 3, 5, 1, {"a": 1})
        add_read(history, "r2", 3, 5, 2, {"a": 2})
        check_one_copy_serializability(history)

    def test_failed_operations_ignored(self):
        history = History()
        record = history.start("write", "w1", "c", 0, updates={"a": 1})
        history.finish(record, 1, WriteResult(False, case="no-quorum"))
        stats = check_one_copy_serializability(history)
        assert stats["failed"] == 1 and stats["writes"] == 0


class TestRejects:
    def test_duplicate_versions(self):
        history = History()
        add_write(history, "w1", 0, 1, 1, {"a": 1})
        add_write(history, "w2", 2, 3, 1, {"a": 2})
        with pytest.raises(ConsistencyError, match="duplicate"):
            check_one_copy_serializability(history)

    def test_version_order_contradicts_real_time(self):
        history = History()
        add_write(history, "w1", 0, 1, 2, {"a": 1})   # v2 finished first...
        add_write(history, "w2", 5, 6, 1, {"a": 2})   # ...but v1 started later
        with pytest.raises(ConsistencyError, match="finished at"):
            check_one_copy_serializability(history)

    def test_read_with_wrong_value(self):
        history = History()
        add_write(history, "w1", 0, 1, 1, {"a": 1})
        add_read(history, "r1", 2, 3, 1, {"a": 999})
        with pytest.raises(ConsistencyError, match="replay gives"):
            check_one_copy_serializability(history)

    def test_stale_read(self):
        history = History()
        add_write(history, "w1", 0, 1, 1, {"a": 1})
        add_write(history, "w2", 2, 3, 2, {"a": 2})
        add_read(history, "r1", 5, 6, 1, {"a": 1})  # w2 ended before r1
        with pytest.raises(ConsistencyError, match="stale read"):
            check_one_copy_serializability(history)

    def test_read_from_the_future(self):
        history = History()
        add_write(history, "w1", 0, 1, 1, {"a": 1})
        add_read(history, "r1", 2, 3, 2, {"a": 2})   # v2 doesn't exist yet
        add_write(history, "w2", 5, 6, 2, {"a": 2})
        with pytest.raises(ConsistencyError, match="future"):
            check_one_copy_serializability(history)

    def test_read_without_version(self):
        history = History()
        record = history.start("read", "r1", "c", 0)
        history.finish(record, 1, ReadResult(True, value={}, version=None))
        with pytest.raises(ConsistencyError, match="no version"):
            check_one_copy_serializability(history)


class _FakeServer:
    def __init__(self, name, epoch_list, epoch_number):
        self.name = name
        from repro.core.state import ReplicaState
        self.state = ReplicaState(epoch_list=tuple(epoch_list),
                                  epoch_number=epoch_number)


class TestEpochUniqueness:
    def test_accepts_consistent_epochs(self):
        servers = [_FakeServer("a", ("a", "b"), 1),
                   _FakeServer("b", ("a", "b"), 1)]
        check_epoch_uniqueness(servers)

    def test_rejects_diverging_lists_for_same_number(self):
        servers = [_FakeServer("a", ("a", "b"), 1),
                   _FakeServer("c", ("a", "c"), 1)]
        with pytest.raises(ConsistencyError, match="two lists"):
            check_epoch_uniqueness(servers)

    def test_rejects_non_member_storing_epoch(self):
        servers = [_FakeServer("z", ("a", "b"), 1)]
        with pytest.raises(ConsistencyError, match="not a member"):
            check_epoch_uniqueness(servers)
