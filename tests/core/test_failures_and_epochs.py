"""Protocol behaviour under crashes, partitions, and epoch changes."""

import pytest

from repro.core.history import ConsistencyError
from repro.core.store import ReplicatedStore


class TestHeavyProcedure:
    def test_write_survives_quorum_member_crash(self):
        store = ReplicatedStore.create(9, seed=1)
        store.write({"x": 1})
        # crash two nodes; some quorums break, HeavyProcedure kicks in
        store.crash("n00", "n04")
        result = store.write({"y": 2})
        assert result.ok
        assert store.read().value == {"x": 1, "y": 2}
        store.verify()

    def test_heavy_case_reported(self):
        store = ReplicatedStore.create(9, seed=2)
        # n05's default quorum includes nodes we kill; find a seed-stable
        # situation by killing a whole column's worth of first choices
        store.crash("n00", "n04")
        result = store.write({"y": 2}, via="n05")
        assert result.ok
        assert result.case in ("fast", "heavy")

    def test_write_fails_without_any_write_quorum(self):
        store = ReplicatedStore.create(9, seed=3)
        # kill an entire grid column: no write (or read) quorum exists
        store.crash("n02", "n05", "n08")
        result = store.write({"x": 1})
        assert not result.ok and result.case == "no-quorum"
        read = store.read()
        assert not read.ok
        store.verify()  # failed ops don't corrupt anything

    def test_locks_released_after_failed_write(self):
        store = ReplicatedStore.create(9, seed=4)
        store.crash("n02", "n05", "n08")
        store.write({"x": 1})
        store.advance(10)  # releases + leases drain
        store.recover("n02", "n05", "n08")
        assert store.write({"x": 2}).ok  # nothing left locked

    def test_read_uses_heavy_path_when_quorum_member_down(self):
        store = ReplicatedStore.create(9, seed=5)
        store.write({"x": 1})
        store.crash("n01")
        read = store.read(via="n00")
        assert read.ok and read.value == {"x": 1}
        store.verify()


class TestEpochChanges:
    def test_epoch_shrinks_after_failures(self):
        store = ReplicatedStore.create(9, seed=6)
        store.write({"x": 1})
        store.crash("n03", "n07")
        result = store.check_epoch()
        assert result.ok and result.changed
        epoch, number = store.current_epoch()
        assert number == 1
        assert set(epoch) == set(store.node_names) - {"n03", "n07"}

    def test_epoch_regrows_after_recovery(self):
        store = ReplicatedStore.create(9, seed=7)
        store.crash("n03")
        assert store.check_epoch().changed
        store.recover("n03")
        result = store.check_epoch()
        assert result.ok and result.changed
        epoch, number = store.current_epoch()
        assert number == 2 and "n03" in epoch

    def test_rejoining_node_is_marked_stale_and_healed(self):
        store = ReplicatedStore.create(9, seed=8)
        store.write({"x": 1})
        store.crash("n05")
        store.check_epoch()
        store.write({"y": 2})          # n05 misses this write
        store.recover("n05")
        result = store.check_epoch()
        assert result.changed
        assert "n05" in result.stale   # flagged out-of-date on rejoin
        store.settle()
        assert store.replica_state("n05").value == {"x": 1, "y": 2}
        assert not store.replica_state("n05").stale

    def test_writes_work_in_shrunk_epoch(self):
        # Lose an entire grid column -- but gradually, with epoch checks in
        # between.  A static grid dies the moment its column is gone; the
        # dynamic protocol rebuilds a smaller grid each time and sails on.
        store = ReplicatedStore.create(9, seed=9)
        store.write({"x": 1})
        for victim in ("n02", "n05", "n08"):
            store.crash(victim)
            assert store.check_epoch().ok
        epoch, _ = store.current_epoch()
        assert len(epoch) == 6
        result = store.write({"y": 2})
        assert result.ok
        assert store.read().value == {"x": 1, "y": 2}
        store.verify()

    def test_losing_a_whole_column_at_once_wedges_the_epoch(self):
        # The flip side (paper Section 6's stuck states): simultaneous
        # failures that erase every write quorum of the current epoch make
        # even the epoch change impossible until enough nodes return.
        store = ReplicatedStore.create(9, seed=9)
        store.write({"x": 1})
        store.crash("n02", "n05", "n08")   # full column, all at once
        assert not store.write({"y": 2}).ok
        assert not store.check_epoch().ok
        store.recover("n05")
        assert store.check_epoch().ok      # quorum restored -> adapts
        assert store.write({"y": 2}).ok
        store.verify()

    def test_gradual_failures_down_to_three_nodes(self):
        # The dynamic protocol's whole point: sequential failures are
        # absorbed one epoch at a time, far past any static quorum.
        store = ReplicatedStore.create(9, seed=10)
        store.write({"x": 0})
        for i, victim in enumerate(
                ["n08", "n07", "n06", "n05", "n04", "n03"]):
            store.crash(victim)
            assert store.check_epoch().ok
            result = store.write({"x": i + 1})
            assert result.ok, f"write failed after killing {victim}"
        epoch, _ = store.current_epoch()
        assert set(epoch) == {"n00", "n01", "n02"}
        assert store.read().value == {"x": 6}
        store.verify()

    def test_epoch_cannot_change_without_write_quorum_of_old(self):
        store = ReplicatedStore.create(9, seed=11)
        store.crash("n02", "n05", "n08")  # full column gone
        result = store.check_epoch()
        assert not result.ok and result.reason == "no-quorum"
        assert store.current_epoch()[1] == 0

    def test_epoch_numbers_strictly_increase(self):
        store = ReplicatedStore.create(9, seed=12)
        numbers = [store.current_epoch()[1]]
        for victim in ("n08", "n07"):
            store.crash(victim)
            store.check_epoch()
            numbers.append(store.current_epoch()[1])
        store.recover("n07", "n08")
        store.check_epoch()
        numbers.append(store.current_epoch()[1])
        assert numbers == [0, 1, 2, 3]


class TestPartitions:
    def test_only_one_side_can_write(self):
        store = ReplicatedStore.create(9, seed=13)
        store.write({"x": 1})
        # split: minority takes part of each column except a full one
        store.partition(["n00", "n01"],
                        ["n02", "n03", "n04", "n05", "n06", "n07", "n08"])
        minority = store.write({"z": 9}, via="n00")
        majority = store.write({"z": 3}, via="n03")
        assert not minority.ok
        assert majority.ok
        store.heal()
        store.settle()
        assert store.read().value == {"x": 1, "z": 3}
        store.verify()

    def test_epoch_unique_across_partition(self):
        # Lemma 1: at most one partition can form a new epoch.
        store = ReplicatedStore.create(9, seed=14)
        store.partition(["n00", "n01"],
                        ["n02", "n03", "n04", "n05", "n06", "n07", "n08"])
        small = store.check_epoch(via="n00")
        big = store.check_epoch(via="n02")
        assert not small.ok
        assert big.ok and big.changed
        store.heal()
        store.verify()  # includes epoch uniqueness over replica states

    def test_minority_catches_up_after_heal(self):
        store = ReplicatedStore.create(9, seed=15)
        store.write({"x": 1})
        store.partition(["n00", "n01"],
                        ["n02", "n03", "n04", "n05", "n06", "n07", "n08"])
        store.check_epoch(via="n02")
        store.write({"y": 2}, via="n02")
        store.heal()
        result = store.check_epoch(via="n02")
        assert result.changed
        epoch, _ = store.current_epoch()
        assert set(epoch) == set(store.node_names)
        store.settle()
        read = store.read(via="n00")
        assert read.ok and read.value == {"x": 1, "y": 2}
        store.verify()

    def test_total_partition_blocks_everyone_but_preserves_data(self):
        store = ReplicatedStore.create(9, seed=16)
        store.write({"x": 1})
        store.partition(["n00", "n03", "n06"], ["n01", "n04", "n07"],
                        ["n02", "n05", "n08"])
        for via in ("n00", "n01", "n02"):
            assert not store.write({"bad": 1}, via=via).ok
        store.heal()
        store.settle()
        assert store.read().value == {"x": 1}
        store.verify()


class TestStaleReads:
    def test_read_never_returns_stale_value(self):
        store = ReplicatedStore.create(9, seed=17)
        store.write({"x": 1}, via="n00")
        second = store.write({"x": 2}, via="n05")
        # read via every replica immediately; stale replicas must not win
        for via in store.node_names:
            read = store.read(via=via)
            if read.ok:
                assert read.value == {"x": 2}, (via, read)
        store.verify()

    def test_reads_fail_rather_than_return_doubtful_data(self):
        # Force a situation where only stale replicas answer: kill all the
        # good ones right after a write that marked others stale.
        store = ReplicatedStore.create(4, seed=18)
        result = store.write({"x": 1})
        assert result.ok
        store.crash(*result.good)
        read = store.read()
        if read.ok:   # only acceptable if some good replica survived
            assert read.value == {"x": 1}
        store.verify()
