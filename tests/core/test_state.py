"""Unit tests for ReplicaState and protocol messages."""

import pytest

from repro.core.messages import BUSY, ReadResult, StateResponse, WriteResult
from repro.core.state import ReplicaState, initial_state


class TestInitialState:
    def test_paper_initial_conditions(self):
        # Paper Section 4: version, epoch number, stale flags all zero;
        # epoch lists include all nodes.
        state = initial_state(("a", "b", "c"))
        assert state.version == 0
        assert state.epoch_number == 0
        assert not state.stale
        assert state.epoch_list == ("a", "b", "c")
        assert state.value == {}

    def test_initial_value_copied(self):
        seed_value = {"k": 1}
        state = initial_state(("a",), seed_value)
        seed_value["k"] = 2
        assert state.value == {"k": 1}


class TestApplied:
    def test_partial_update_merges(self):
        state = initial_state(("a",), {"x": 0, "y": 0})
        state = state.applied({"x": 1}, 1, log_capacity=8)
        assert state.value == {"x": 1, "y": 0}
        assert state.version == 1
        assert not state.stale

    def test_version_must_be_contiguous(self):
        state = initial_state(("a",))
        with pytest.raises(ValueError):
            state.applied({"x": 1}, 2, log_capacity=8)

    def test_update_log_grows_and_truncates(self):
        state = initial_state(("a",))
        for v in range(1, 6):
            state = state.applied({"k": v}, v, log_capacity=3)
        assert [entry[0] for entry in state.update_log] == [3, 4, 5]

    def test_zero_capacity_keeps_everything(self):
        state = initial_state(("a",))
        for v in range(1, 6):
            state = state.applied({"k": v}, v, log_capacity=0)
        assert len(state.update_log) == 5

    def test_apply_clears_stale(self):
        state = initial_state(("a",)).marked_stale(1)
        # propagation brings it current first in the real protocol; applied()
        # itself resets staleness for GOOD replicas that lagged in marking
        state = ReplicaState(epoch_list=("a",), value={}, version=0,
                             dversion=0, stale=False)
        state = state.applied({"x": 1}, 1, 4)
        assert not state.stale


class TestMarkedStale:
    def test_sets_flag_and_dversion(self):
        state = initial_state(("a", "b")).marked_stale(5)
        assert state.stale
        assert state.dversion == 5

    def test_dversion_never_decreases(self):
        state = initial_state(("a",)).marked_stale(5).marked_stale(3)
        assert state.dversion == 5

    def test_value_and_version_untouched(self):
        state = initial_state(("a",), {"x": 1}).applied({"x": 2}, 1, 4)
        stale = state.marked_stale(2)
        assert stale.value == {"x": 2}
        assert stale.version == 1


class TestWithEpoch:
    def test_installs_new_epoch(self):
        state = initial_state(("a", "b", "c")).with_epoch(("a", "b"), 1)
        assert state.epoch_list == ("a", "b")
        assert state.epoch_number == 1

    def test_epoch_numbers_must_grow(self):
        state = initial_state(("a", "b")).with_epoch(("a",), 3)
        with pytest.raises(ValueError):
            state.with_epoch(("a", "b"), 3)
        with pytest.raises(ValueError):
            state.with_epoch(("a", "b"), 2)


class TestCaughtUp:
    def test_clears_stale_and_jumps_version(self):
        state = initial_state(("a", "b")).marked_stale(3)
        healed = state.caught_up({"x": 9}, 3, ())
        assert not healed.stale
        assert healed.version == 3
        assert healed.value == {"x": 9}

    def test_rejects_catchup_below_desired_version(self):
        state = initial_state(("a",)).marked_stale(5)
        with pytest.raises(ValueError):
            state.caught_up({"x": 1}, 4, ())


class TestLogSlice:
    def make_state(self, versions, capacity=0):
        state = initial_state(("a",))
        for v in versions:
            state = state.applied({"k": v}, v, capacity)
        return state

    def test_full_slice(self):
        state = self.make_state([1, 2, 3])
        entries = state.log_slice(0)
        assert [v for v, _u in entries] == [1, 2, 3]

    def test_partial_slice(self):
        state = self.make_state([1, 2, 3, 4])
        entries = state.log_slice(2)
        assert [v for v, _u in entries] == [3, 4]

    def test_empty_slice_when_current(self):
        state = self.make_state([1, 2])
        assert state.log_slice(2) == ()

    def test_none_when_truncated(self):
        state = self.make_state([1, 2, 3, 4, 5], capacity=2)
        assert state.log_slice(1) is None
        assert [v for v, _u in state.log_slice(3)] == [4, 5]


class TestResponses:
    def test_response_tuple_matches_paper_fields(self):
        state = initial_state(("a", "b")).applied({"x": 1}, 1, 4)
        response = state.response("a")
        assert (response.node, response.version, response.dversion,
                response.stale, response.elist, response.enumber) == \
            ("a", 1, 0, False, ("a", "b"), 0)
        assert response.value is None

    def test_response_value_is_a_copy(self):
        state = initial_state(("a",), {"x": 1})
        response = state.response("a", include_value=True)
        response.value["x"] = 99
        assert state.value == {"x": 1}

    def test_snapshot_comparable(self):
        state = initial_state(("a",))
        assert state.response("a").snapshot() == (0, 0, False, 0)


class TestResultObjects:
    def test_truthiness(self):
        assert WriteResult(True, version=1)
        assert not WriteResult(False)
        assert ReadResult(True, value={})
        assert not ReadResult(False)

    def test_busy_singleton_falsy(self):
        assert not BUSY
        assert repr(BUSY) == "BUSY"

    def test_state_response_immutable(self):
        response = StateResponse("a", 0, 0, False, ("a",), 0)
        with pytest.raises(AttributeError):
            response.version = 5
