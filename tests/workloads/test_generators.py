"""Workload generator tests."""

import random

import pytest

from repro.baselines.static_protocol import StaticQuorumStore
from repro.core.store import ReplicatedStore
from repro.shard import ShardedStore
from repro.workloads.generators import (
    ClientWorkload,
    KeyedWorkload,
    ZipfKeyChooser,
    run_keyed_workload,
    run_workload,
)


class TestZipf:
    def test_skew_concentrates_on_first_keys(self):
        chooser = ZipfKeyChooser(10, skew=1.5)
        rng = random.Random(0)
        picks = [chooser.pick(rng) for _ in range(2000)]
        assert picks.count("key0") > picks.count("key5") > 0

    def test_zero_skew_is_uniform(self):
        chooser = ZipfKeyChooser(4, skew=0.0)
        rng = random.Random(1)
        picks = [chooser.pick(rng) for _ in range(4000)]
        counts = [picks.count(f"key{i}") for i in range(4)]
        assert max(counts) - min(counts) < 300

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfKeyChooser(0)
        with pytest.raises(ValueError):
            ZipfKeyChooser(3, skew=-1)

    def test_bisect_matches_linear_scan(self):
        # the binary search must pick exactly the index the replaced
        # linear scan stopped at, for any seed: first cumulative >= point
        chooser = ZipfKeyChooser(50, skew=1.2)
        rng_fast, rng_slow = random.Random(11), random.Random(11)
        for _ in range(2000):
            fast = chooser.pick_index(rng_fast)
            point = rng_slow.random()
            slow = chooser.n_keys - 1
            for i, cumulative in enumerate(chooser._cumulative):
                if point <= cumulative:
                    slow = i
                    break
            assert fast == slow

    def test_pick_index_scales_to_large_keyspaces(self):
        chooser = ZipfKeyChooser(10 ** 6, skew=1.0)
        rng = random.Random(0)
        picks = [chooser.pick_index(rng) for _ in range(100)]
        assert all(0 <= p < 10 ** 6 for p in picks)
        assert chooser.pick(rng).startswith("key")


class TestWorkloadValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            ClientWorkload(n_clients=0).validate()
        with pytest.raises(ValueError):
            ClientWorkload(read_fraction=1.5).validate()
        with pytest.raises(ValueError):
            ClientWorkload(think_time=0).validate()


class TestRunWorkload:
    def test_runs_against_dynamic_store(self):
        store = ReplicatedStore.create(9, seed=1)
        stats = run_workload(store, ClientWorkload(n_clients=3,
                                                   duration=30.0), seed=1)
        assert stats.operations > 10
        assert stats.success_rate > 0.9
        assert stats.mean_latency("read") > 0
        store.verify()

    def test_runs_against_static_store(self):
        store = StaticQuorumStore.create(9, seed=2)
        stats = run_workload(store, ClientWorkload(n_clients=3,
                                                   duration=30.0,
                                                   total_writes=True,
                                                   n_keys=3), seed=2)
        assert stats.writes_ok > 0 and stats.reads_ok > 0
        store.verify()

    def test_workload_with_failures_still_consistent(self):
        store = ReplicatedStore.create(9, seed=3)
        schedule = store.schedule()
        schedule.crash_at(5.0, "n02").recover_at(15.0, "n02")
        schedule.crash_at(10.0, "n07")
        schedule.start()
        stats = run_workload(store, ClientWorkload(n_clients=4,
                                                   duration=40.0), seed=3)
        assert stats.writes_ok > 0
        store.recover("n07")
        store.advance(20)
        store.settle()
        store.verify()

    def test_stats_summary_readable(self):
        store = ReplicatedStore.create(4, seed=4)
        stats = run_workload(store, ClientWorkload(n_clients=2,
                                                   duration=10.0), seed=4)
        text = stats.summary()
        assert "ops" in text and "success" in text

    def test_rehoming_clients_survive_home_crash(self):
        store = ReplicatedStore.create(9, seed=6)
        schedule = store.schedule()
        schedule.crash_at(5.0, "n00")  # client 0's home
        schedule.start()
        workload = ClientWorkload(n_clients=2, duration=40.0,
                                  think_time=1.0, rehome=True)
        stats = run_workload(store, workload, seed=6)
        assert stats.rehomes >= 1
        # the rehomed client kept issuing operations after the crash
        late_ops = [op for op in store.history.operations if op.start > 10]
        assert late_ops
        store.recover("n00")
        store.advance(10)
        store.settle()
        store.verify()

    def test_without_rehoming_client_goes_silent(self):
        store = ReplicatedStore.create(9, seed=7)
        schedule = store.schedule()
        schedule.crash_at(5.0, "n00")
        schedule.start()
        workload = ClientWorkload(n_clients=1, duration=40.0,
                                  think_time=1.0, rehome=False)
        stats = run_workload(store, workload, seed=7)
        assert stats.rehomes == 0
        assert all(op.start < 8 for op in store.history.operations)

    def test_deterministic_given_seed(self):
        def once():
            store = ReplicatedStore.create(5, seed=5)
            stats = run_workload(store, ClientWorkload(n_clients=2,
                                                       duration=15.0),
                                 seed=9)
            return (stats.reads_ok, stats.writes_ok, stats.operations)

        assert once() == once()


class TestKeyedWorkload:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            KeyedWorkload(n_ops=0).validate()
        with pytest.raises(ValueError):
            KeyedWorkload(n_keys=0).validate()
        with pytest.raises(ValueError):
            KeyedWorkload(read_fraction=-0.1).validate()

    def test_issues_exactly_n_ops(self):
        store = ShardedStore.create(5, n_shards=16, seed=8,
                                    track_history=True)
        workload = KeyedWorkload(n_ops=150, n_keys=2000, n_clients=7,
                                 read_fraction=0.8)
        stats = run_keyed_workload(store, workload, seed=8)
        assert stats.operations == 150
        assert stats.success_rate == 1.0
        store.verify()

    def test_deterministic_given_seed(self):
        def once():
            store = ShardedStore.create(5, n_shards=16, seed=9)
            stats = run_keyed_workload(
                store, KeyedWorkload(n_ops=80, n_keys=500), seed=3)
            return (stats.reads_ok, stats.writes_ok,
                    store.env.events_processed)

        assert once() == once()

    def test_rehomes_when_home_crashes(self):
        store = ShardedStore.create(5, n_shards=16, seed=10,
                                    track_history=True)
        schedule = store.schedule()
        schedule.crash_at(0.2, "n00")
        schedule.start()
        workload = KeyedWorkload(n_ops=120, n_keys=200, n_clients=5,
                                 read_fraction=0.5)
        stats = run_keyed_workload(store, workload, seed=4)
        assert stats.rehomes >= 1
        assert stats.operations == 120
        store.recover("n00")
        store.settle()
        store.verify()
