"""Workload generator tests."""

import random

import pytest

from repro.baselines.static_protocol import StaticQuorumStore
from repro.core.store import ReplicatedStore
from repro.workloads.generators import (
    ClientWorkload,
    ZipfKeyChooser,
    run_workload,
)


class TestZipf:
    def test_skew_concentrates_on_first_keys(self):
        chooser = ZipfKeyChooser(10, skew=1.5)
        rng = random.Random(0)
        picks = [chooser.pick(rng) for _ in range(2000)]
        assert picks.count("key0") > picks.count("key5") > 0

    def test_zero_skew_is_uniform(self):
        chooser = ZipfKeyChooser(4, skew=0.0)
        rng = random.Random(1)
        picks = [chooser.pick(rng) for _ in range(4000)]
        counts = [picks.count(f"key{i}") for i in range(4)]
        assert max(counts) - min(counts) < 300

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfKeyChooser(0)
        with pytest.raises(ValueError):
            ZipfKeyChooser(3, skew=-1)


class TestWorkloadValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            ClientWorkload(n_clients=0).validate()
        with pytest.raises(ValueError):
            ClientWorkload(read_fraction=1.5).validate()
        with pytest.raises(ValueError):
            ClientWorkload(think_time=0).validate()


class TestRunWorkload:
    def test_runs_against_dynamic_store(self):
        store = ReplicatedStore.create(9, seed=1)
        stats = run_workload(store, ClientWorkload(n_clients=3,
                                                   duration=30.0), seed=1)
        assert stats.operations > 10
        assert stats.success_rate > 0.9
        assert stats.mean_latency("read") > 0
        store.verify()

    def test_runs_against_static_store(self):
        store = StaticQuorumStore.create(9, seed=2)
        stats = run_workload(store, ClientWorkload(n_clients=3,
                                                   duration=30.0,
                                                   total_writes=True,
                                                   n_keys=3), seed=2)
        assert stats.writes_ok > 0 and stats.reads_ok > 0
        store.verify()

    def test_workload_with_failures_still_consistent(self):
        store = ReplicatedStore.create(9, seed=3)
        schedule = store.schedule()
        schedule.crash_at(5.0, "n02").recover_at(15.0, "n02")
        schedule.crash_at(10.0, "n07")
        schedule.start()
        stats = run_workload(store, ClientWorkload(n_clients=4,
                                                   duration=40.0), seed=3)
        assert stats.writes_ok > 0
        store.recover("n07")
        store.advance(20)
        store.settle()
        store.verify()

    def test_stats_summary_readable(self):
        store = ReplicatedStore.create(4, seed=4)
        stats = run_workload(store, ClientWorkload(n_clients=2,
                                                   duration=10.0), seed=4)
        text = stats.summary()
        assert "ops" in text and "success" in text

    def test_rehoming_clients_survive_home_crash(self):
        store = ReplicatedStore.create(9, seed=6)
        schedule = store.schedule()
        schedule.crash_at(5.0, "n00")  # client 0's home
        schedule.start()
        workload = ClientWorkload(n_clients=2, duration=40.0,
                                  think_time=1.0, rehome=True)
        stats = run_workload(store, workload, seed=6)
        assert stats.rehomes >= 1
        # the rehomed client kept issuing operations after the crash
        late_ops = [op for op in store.history.operations if op.start > 10]
        assert late_ops
        store.recover("n00")
        store.advance(10)
        store.settle()
        store.verify()

    def test_without_rehoming_client_goes_silent(self):
        store = ReplicatedStore.create(9, seed=7)
        schedule = store.schedule()
        schedule.crash_at(5.0, "n00")
        schedule.start()
        workload = ClientWorkload(n_clients=1, duration=40.0,
                                  think_time=1.0, rehome=False)
        stats = run_workload(store, workload, seed=7)
        assert stats.rehomes == 0
        assert all(op.start < 8 for op in store.history.operations)

    def test_deterministic_given_seed(self):
        def once():
            store = ReplicatedStore.create(5, seed=5)
            stats = run_workload(store, ClientWorkload(n_clients=2,
                                                       duration=15.0),
                                 seed=9)
            return (stats.reads_ok, stats.writes_ok, stats.operations)

        assert once() == once()
