"""Message-level fault injection: policies and the network hook."""

import random

import pytest

from repro.chaos.faults import FaultPolicy, LinkFaults
from repro.sim.engine import Environment
from repro.sim.network import LatencyModel, Message, Network
from repro.sim.node import Node
from repro.sim.trace import TraceLog


def msg(kind="ping"):
    return Message("n0", "n1", kind, None, msg_id=1)


class TestFaultPolicy:
    def test_defaults_are_faultless(self):
        policy = FaultPolicy().validate()
        assert policy.drop == policy.duplicate == policy.delay == 0.0
        assert policy.reorder == 0.0

    def test_bad_probability_rejected(self):
        for field in ("drop", "duplicate", "delay", "reorder"):
            with pytest.raises(ValueError):
                FaultPolicy(**{field: 1.5}).validate()
            with pytest.raises(ValueError):
                FaultPolicy(**{field: -0.1}).validate()

    def test_negative_span_rejected(self):
        with pytest.raises(ValueError):
            FaultPolicy(delay_span=-1.0).validate()
        with pytest.raises(ValueError):
            FaultPolicy(reorder_span=-1.0).validate()

    def test_dict_roundtrip(self):
        policy = FaultPolicy(drop=0.01, duplicate=0.05, delay=0.03,
                             delay_span=0.4, reorder=0.02, reorder_span=0.2)
        assert FaultPolicy.from_dict(policy.to_dict()) == policy

    def test_from_dict_validates(self):
        with pytest.raises(ValueError):
            FaultPolicy.from_dict({"drop": 2.0})


class TestLinkFaults:
    def test_faultless_policy_passes_base_delay_through(self):
        faults = LinkFaults()
        assert faults.deliveries(msg(), 0.01) == [0.01]
        assert not faults.counts

    def test_drop_returns_no_deliveries(self):
        faults = LinkFaults(FaultPolicy(drop=1.0), rng=random.Random(1))
        assert faults.deliveries(msg(), 0.01) == []
        assert faults.counts["drop"] == 1

    def test_duplicate_returns_two_deliveries(self):
        faults = LinkFaults(FaultPolicy(duplicate=1.0), rng=random.Random(1))
        delays = faults.deliveries(msg(), 0.01)
        assert len(delays) == 2
        assert delays[0] == 0.01
        assert delays[1] >= delays[0]
        assert faults.counts["duplicate"] == 1

    def test_delay_adds_bounded_latency(self):
        faults = LinkFaults(FaultPolicy(delay=1.0, delay_span=0.3),
                            rng=random.Random(1))
        (delay,) = faults.deliveries(msg(), 0.01)
        assert 0.01 <= delay <= 0.01 + 0.3
        assert faults.counts["delay"] == 1

    def test_reorder_adds_bounded_latency(self):
        faults = LinkFaults(FaultPolicy(reorder=1.0, reorder_span=0.5),
                            rng=random.Random(1))
        (delay,) = faults.deliveries(msg(), 0.01)
        assert 0.01 <= delay <= 0.01 + 0.5
        assert faults.counts["reorder"] == 1

    def test_disabled_faults_pass_everything(self):
        faults = LinkFaults(FaultPolicy(drop=1.0))
        faults.enabled = False
        assert faults.deliveries(msg(), 0.01) == [0.01]
        assert not faults.counts

    def test_per_link_policy_only_affects_that_link(self):
        faults = LinkFaults(rng=random.Random(1))
        faults.set_policy(FaultPolicy(drop=1.0), src="n0", dst="n1")
        assert faults.deliveries(msg(), 0.01) == []          # n0 -> n1
        reverse = Message("n1", "n0", "ping", None)
        assert faults.deliveries(reverse, 0.01) == [0.01]    # untouched

    def test_per_link_policy_can_be_cleared(self):
        faults = LinkFaults()
        faults.set_policy(FaultPolicy(drop=1.0), src="n0", dst="n1")
        faults.set_policy(None, src="n0", dst="n1")
        assert faults.deliveries(msg(), 0.01) == [0.01]

    def test_per_link_policy_needs_both_endpoints(self):
        faults = LinkFaults()
        with pytest.raises(ValueError):
            faults.set_policy(FaultPolicy(), src="n0")

    def test_global_set_policy_replaces_default(self):
        faults = LinkFaults()
        faults.set_policy(FaultPolicy(drop=1.0))
        assert faults.policy_for("a", "b").drop == 1.0
        faults.set_policy(None)
        assert faults.policy_for("a", "b").drop == 0.0


class TestNetworkIntegration:
    def make_net(self, faults):
        env = Environment()
        net = Network(env, LatencyModel(0.01, 0.01), trace=TraceLog(),
                      faults=faults)
        nodes = [Node(env, net, f"n{i}") for i in range(2)]
        return env, net, nodes

    def test_fault_drop_recorded_at_the_wire(self):
        faults = LinkFaults(FaultPolicy(drop=1.0), rng=random.Random(1))
        env, net, nodes = self.make_net(faults)
        received = []
        net._endpoints["n1"] = lambda m: received.append(m.kind)
        net.send("n0", "n1", "ping", None)
        env.run(until=1.0)
        assert received == []
        drops = net.trace.select(kind="drop")
        assert [rec.detail["reason"] for rec in drops] == ["fault-drop"]

    def test_duplicate_delivers_two_copies(self):
        faults = LinkFaults(FaultPolicy(duplicate=1.0), rng=random.Random(1))
        env, net, nodes = self.make_net(faults)
        received = []
        net._endpoints["n1"] = lambda m: received.append(m.msg_id)
        net.send("n0", "n1", "ping", None)
        env.run(until=1.0)
        assert len(received) == 2
        assert received[0] == received[1]  # same message, delivered twice

    def test_no_faults_object_means_single_delivery(self):
        env, net, nodes = self.make_net(None)
        received = []
        net._endpoints["n1"] = lambda m: received.append(m.msg_id)
        net.send("n0", "n1", "ping", None)
        env.run(until=1.0)
        assert len(received) == 1
