"""Trace-triggered nemesis: crashes and link cuts at protocol instants."""

import pytest

from repro.chaos.nemesis import Nemesis
from repro.core.store import ReplicatedStore
from repro.sim.engine import Environment
from repro.sim.network import LatencyModel, Network
from repro.sim.node import Node
from repro.sim.trace import TraceLog


def make_cluster(n=3):
    env = Environment()
    trace = TraceLog()
    net = Network(env, LatencyModel(0.01, 0.01), trace=trace)
    nodes = {f"n{i}": Node(env, net, f"n{i}") for i in range(n)}
    return env, trace, net, nodes


class TestTriggerMatching:
    def test_fires_on_matching_kind(self):
        env, trace, net, nodes = make_cluster()
        nemesis = Nemesis(env, trace, nodes).attach()
        nemesis.crash_on("txn-prepared")
        trace.record(0.0, "txn-decided", "n0")   # wrong kind: no fire
        assert nodes["n0"].up
        trace.record(0.0, "txn-prepared", "n0")
        assert not nodes["n0"].up
        assert nemesis.fired == [(0.0, "txn-prepared", "n0")]
        assert nemesis.armed == 0

    def test_node_filter(self):
        env, trace, net, nodes = make_cluster()
        nemesis = Nemesis(env, trace, nodes).attach()
        nemesis.crash_on("txn-prepared", node="n1")
        trace.record(0.0, "txn-prepared", "n0")
        assert nodes["n0"].up                    # filtered out
        trace.record(0.0, "txn-prepared", "n1")
        assert not nodes["n1"].up

    def test_op_contains_filter(self):
        env, trace, net, nodes = make_cluster()
        nemesis = Nemesis(env, trace, nodes).attach()
        nemesis.crash_on("txn-begin", op_contains=":epoch")
        trace.record(0.0, "txn-begin", "n0", op_id="n0:w1")
        assert nodes["n0"].up
        trace.record(0.0, "txn-begin", "n0", op_id="n0:epoch1")
        assert not nodes["n0"].up

    def test_target_overrides_the_victim(self):
        env, trace, net, nodes = make_cluster()
        nemesis = Nemesis(env, trace, nodes).attach()
        nemesis.crash_on("txn-prepared", target="n2")
        trace.record(0.0, "txn-prepared", "n0")
        assert nodes["n0"].up and not nodes["n2"].up

    def test_count_limits_firings(self):
        env, trace, net, nodes = make_cluster()
        nemesis = Nemesis(env, trace, nodes).attach()
        nemesis.crash_on("txn-prepared", count=2)
        for name in ("n0", "n1", "n2"):
            trace.record(0.0, "txn-prepared", name)
        assert [nodes[n].up for n in ("n0", "n1", "n2")] == [
            False, False, True]   # third record: trigger exhausted

    def test_dead_victim_keeps_the_trigger_armed(self):
        env, trace, net, nodes = make_cluster()
        nodes["n0"].crash()
        nemesis = Nemesis(env, trace, nodes).attach()
        nemesis.crash_on("txn-prepared")
        trace.record(0.0, "txn-prepared", "n0")
        assert nemesis.armed == 1 and not nemesis.fired

    def test_recover_after_restarts_the_victim(self):
        env, trace, net, nodes = make_cluster()
        nemesis = Nemesis(env, trace, nodes).attach()
        nemesis.crash_on("txn-prepared", recover_after=2.0)
        trace.record(0.0, "txn-prepared", "n0")
        assert not nodes["n0"].up
        env.run(until=3.0)
        assert nodes["n0"].up

    def test_disarm_all(self):
        env, trace, net, nodes = make_cluster()
        nemesis = Nemesis(env, trace, nodes).attach()
        nemesis.crash_on("txn-prepared")
        nemesis.disarm_all()
        assert nemesis.armed == 0
        trace.record(0.0, "txn-prepared", "n0")
        assert nodes["n0"].up

    def test_detach_stops_observing(self):
        env, trace, net, nodes = make_cluster()
        nemesis = Nemesis(env, trace, nodes).attach()
        nemesis.crash_on("txn-prepared")
        nemesis.detach()
        trace.record(0.0, "txn-prepared", "n0")
        assert nodes["n0"].up
        assert nemesis.armed == 1   # armed but blind


class TestCutFault:
    def test_cut_severs_coordinator_to_victim(self):
        env, trace, net, nodes = make_cluster()
        nemesis = Nemesis(env, trace, nodes, network=net).attach()
        nemesis.crash_on("txn-prepared", node="n1", fault="cut")
        trace.record(0.0, "txn-prepared", "n1", coordinator="n0")
        assert ("n0", "n1") in net.cut_links     # commit wave severed
        assert ("n1", "n0") not in net.cut_links  # yes-vote direction open
        assert nodes["n1"].up                    # nobody crashed
        assert nemesis.fired == [(0.0, "txn-prepared", "cut:n0->n1")]

    def test_cut_restored_after_recover_after(self):
        env, trace, net, nodes = make_cluster()
        nemesis = Nemesis(env, trace, nodes, network=net).attach()
        nemesis.crash_on("txn-prepared", node="n1", fault="cut",
                         recover_after=1.0)
        trace.record(0.0, "txn-prepared", "n1", coordinator="n0")
        assert ("n0", "n1") in net.cut_links
        env.run(until=2.0)
        assert not net.cut_links

    def test_record_without_coordinator_keeps_trigger_armed(self):
        env, trace, net, nodes = make_cluster()
        nemesis = Nemesis(env, trace, nodes, network=net).attach()
        nemesis.crash_on("txn-prepared", fault="cut")
        trace.record(0.0, "txn-prepared", "n1")  # no coordinator detail
        assert nemesis.armed == 1 and not net.cut_links
        trace.record(0.0, "txn-prepared", "n1", coordinator="n1")
        assert nemesis.armed == 1   # self-cut makes no sense either

    def test_cut_requires_a_network(self):
        env, trace, net, nodes = make_cluster()
        nemesis = Nemesis(env, trace, nodes)   # no network
        with pytest.raises(ValueError):
            nemesis.crash_on("txn-prepared", fault="cut")

    def test_unknown_fault_rejected(self):
        env, trace, net, nodes = make_cluster()
        nemesis = Nemesis(env, trace, nodes, network=net)
        with pytest.raises(ValueError):
            nemesis.crash_on("txn-prepared", fault="explode")


class TestAgainstRealProtocol:
    def test_crash_at_txn_decided_blocks_then_recovers(self):
        # The classic 2PC window: coordinator dies between its durable
        # decision record and the commit wave.  Participants stay
        # prepared until cooperative termination (or the coordinator's
        # recovery rebroadcast) resolves them.
        store = ReplicatedStore.create(9, seed=31, trace_enabled=True)
        nemesis = Nemesis(store.env, store.trace, store.nodes,
                          network=store.network).attach()
        nemesis.crash_on("txn-decided", recover_after=5.0)
        store.start_write({"x": 1}, via="n00")
        store.advance(2.0)
        assert nemesis.fired and nemesis.fired[0][1] == "txn-decided"
        assert nemesis.fired[0][2] == "n00"      # the coordinator died
        assert not store.nodes["n00"].up
        store.advance(20.0)
        store.settle()
        nemesis.detach()
        # the decided write must have survived the crash
        versions = [store.replica_state(n).version for n in store.node_names]
        assert max(versions) == 1
        store.verify()

    def test_cut_at_txn_prepared_forces_in_doubt_termination(self):
        # Sever coordinator -> participant at the prepare instant: the
        # yes-vote gets out, the commit wave is dropped, and the
        # participant must resolve through termination once the link
        # heals -- ending committed, same as everyone else.
        store = ReplicatedStore.create(9, seed=32, trace_enabled=True)
        nemesis = Nemesis(store.env, store.trace, store.nodes,
                          network=store.network).attach()
        nemesis.crash_on("txn-prepared", fault="cut", recover_after=1.0)
        store.start_write({"x": 1}, via="n00")
        store.advance(30.0)
        store.settle()
        nemesis.detach()
        assert nemesis.fired and nemesis.fired[0][2].startswith("cut:")
        victim = nemesis.fired[0][2].split("->")[1]
        assert store.replica_state(victim).version == 1
        store.verify()
