"""The shrinker and the decision-record canary it exists for.

The canary is the PR's end-to-end proof: a protocol variant that skips
the durable 2PC decision record (``chaos_bug="skip-decision-record"``)
is caught by the history checker under a scripted schedule, delta-debugs
to a <= 10-event spec, and round-trips through a replayable artifact.
"""

import dataclasses
import json

import pytest

from repro.chaos.runner import make_canary_spec, run_spec
from repro.chaos.shrink import (
    ARTIFACT_FORMAT,
    _ddmin,
    load_artifact,
    replay_artifact,
    save_artifact,
    shrink,
)


class TestDdmin:
    def test_finds_a_two_event_cause(self):
        fails = lambda items: 3 in items and 6 in items
        assert _ddmin(list(range(10)), fails) == [3, 6]

    def test_finds_a_single_cause(self):
        assert _ddmin(list(range(10)), lambda items: 5 in items) == [5]

    def test_preserves_order(self):
        fails = lambda items: {2, 7, 9} <= set(items)
        assert _ddmin(list(range(12)), fails) == [2, 7, 9]

    def test_everything_needed_stays(self):
        items = [1, 2, 3]
        assert _ddmin(list(items), lambda c: c == items) == items


class TestCanary:
    def test_checker_catches_the_skipped_decision_record(self):
        report = run_spec(make_canary_spec())
        assert not report.ok
        assert "stale read" in report.violation
        # the cut fired: the commit wave was severed to one participant
        assert any(victim.startswith("cut:")
                   for _, _, victim in report.nemesis_fired)

    def test_same_schedule_is_harmless_without_the_bug(self):
        control = dataclasses.replace(make_canary_spec(), bug="")
        report = run_spec(control)
        assert report.ok, report.violation

    def test_canary_shrinks_to_a_small_replayable_spec(self, tmp_path):
        result = shrink(make_canary_spec())
        assert result.events <= 10          # the acceptance bound
        assert not result.report.ok
        assert "stale read" in result.report.violation
        assert result.runs >= 1
        assert result.original_events >= result.events

        path = str(tmp_path / "canary.json")
        artifact = save_artifact(path, result)
        assert artifact["format"] == ARTIFACT_FORMAT
        assert artifact["events"] == result.events
        assert artifact["trace_excerpt"]    # the storyline is attached
        loaded = load_artifact(path)
        assert loaded["spec"] == result.spec.to_dict()
        assert loaded["violation"] == result.report.violation

        replayed = replay_artifact(path)
        assert not replayed.ok
        assert replayed.violation == result.report.violation


class TestShrinkContract:
    def test_passing_spec_is_rejected(self):
        control = dataclasses.replace(make_canary_spec(), bug="")
        with pytest.raises(ValueError):
            shrink(control)

    def test_custom_fails_predicate(self):
        # a predicate the failure does not satisfy counts as "passes"
        with pytest.raises(ValueError):
            shrink(make_canary_spec(),
                   fails=lambda report: report.violation is not None
                   and "no-such-text" in report.violation)


class TestArtifactFormat:
    def test_wrong_format_marker_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "not-an-artifact"}))
        with pytest.raises(ValueError):
            load_artifact(str(path))
