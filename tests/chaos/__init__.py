"""Tests for the chaos harness: fault injection, nemesis, runner, shrinker."""
