"""The gray-failure fault mode: slow links, the slow nemesis trigger,
and the gray chaos spec (``repro.chaos`` PR 8 additions)."""

import random

import pytest

from repro.chaos.faults import FaultPolicy, LinkFaults
from repro.chaos.nemesis import Nemesis
from repro.chaos.runner import ChaosSpec, make_gray_spec, run_spec
from repro.sim.engine import Environment
from repro.sim.network import LatencyModel, Message, Network
from repro.sim.node import Node
from repro.sim.trace import TraceLog

PEERS = ["n0", "n1", "n2"]


def msg(src="n0", dst="n1"):
    return Message(src, dst, "ping", None, msg_id=1)


class TestSlowPolicy:
    def test_default_factor_is_neutral(self):
        assert FaultPolicy().validate().slow_factor == 1.0

    def test_nonpositive_factor_rejected(self):
        for bad in (0.0, -2.0):
            with pytest.raises(ValueError):
                FaultPolicy(slow_factor=bad).validate()

    def test_dict_roundtrip_carries_the_factor(self):
        policy = FaultPolicy(drop=0.01, slow_factor=10.0)
        assert FaultPolicy.from_dict(policy.to_dict()) == policy

    def test_old_dicts_without_the_field_still_load(self):
        # artifacts recorded before the slow mode existed must replay
        policy = FaultPolicy.from_dict({"drop": 0.01})
        assert policy.slow_factor == 1.0

    def test_slow_multiplies_base_delay_deterministically(self):
        faults = LinkFaults(FaultPolicy(slow_factor=10.0))
        # no RNG passed at all: slowing must not consume randomness
        assert faults.deliveries(msg(), 0.02) == [0.2]
        assert faults.counts["slow"] == 1

    def test_slow_composes_with_other_faults(self):
        faults = LinkFaults(FaultPolicy(slow_factor=10.0, duplicate=1.0),
                            rng=random.Random(1))
        delays = faults.deliveries(msg(), 0.02)
        assert len(delays) == 2 and delays[0] == 0.2


class TestSlowNode:
    def test_slows_every_link_touching_the_node(self):
        faults = LinkFaults()
        faults.slow_node("n1", 10.0, PEERS)
        assert faults.deliveries(msg("n0", "n1"), 0.01) == [0.1]
        assert faults.deliveries(msg("n1", "n2"), 0.01) == [0.1]
        # links not touching the victim are unaffected
        assert faults.deliveries(msg("n0", "n2"), 0.01) == [0.01]

    def test_restore_returns_links_to_the_default(self):
        faults = LinkFaults()
        faults.slow_node("n1", 10.0, PEERS)
        faults.slow_node("n1", 1.0, PEERS)
        assert faults.deliveries(msg("n0", "n1"), 0.01) == [0.01]
        assert not faults.per_link  # no leftover per-link entries

    def test_restore_keeps_unrelated_per_link_policies(self):
        faults = LinkFaults()
        faults.set_policy(FaultPolicy(drop=1.0), src="n0", dst="n1")
        faults.slow_node("n1", 10.0, PEERS)
        faults.slow_node("n1", 1.0, PEERS)
        assert faults.policy_for("n0", "n1").drop == 1.0
        assert faults.policy_for("n0", "n1").slow_factor == 1.0


class TestSlowNemesis:
    def make_cluster(self, n=3):
        env = Environment()
        trace = TraceLog()
        faults = LinkFaults()
        net = Network(env, LatencyModel(0.01, 0.01), trace=trace,
                      faults=faults)
        nodes = {f"n{i}": Node(env, net, f"n{i}") for i in range(n)}
        return env, trace, net, nodes, faults

    def test_slow_trigger_slows_the_victim(self):
        env, trace, net, nodes, faults = self.make_cluster()
        nemesis = Nemesis(env, trace, nodes, network=net).attach()
        nemesis.crash_on("txn-prepared", fault="slow", factor=10.0)
        trace.record(0.0, "txn-prepared", "n1")
        assert nodes["n1"].up                      # nobody crashed
        assert faults.deliveries(msg("n0", "n1"), 0.01) == [0.1]
        assert nemesis.fired == [(0.0, "txn-prepared", "slow:n1x10")]

    def test_recover_after_restores_full_speed(self):
        env, trace, net, nodes, faults = self.make_cluster()
        nemesis = Nemesis(env, trace, nodes, network=net).attach()
        nemesis.crash_on("txn-prepared", fault="slow", factor=10.0,
                         recover_after=1.0)
        trace.record(0.0, "txn-prepared", "n1")
        env.run(until=2.0)
        assert faults.deliveries(msg("n0", "n1"), 0.01) == [0.01]

    def test_slow_requires_a_faulted_network(self):
        env, trace, net, nodes, _faults = self.make_cluster()
        bare = Network(env, LatencyModel(0.01, 0.01), trace=TraceLog())
        nemesis = Nemesis(env, trace, nodes, network=bare)
        with pytest.raises(ValueError):
            nemesis.crash_on("txn-prepared", fault="slow")
        nemesis_none = Nemesis(env, trace, nodes)   # no network at all
        with pytest.raises(ValueError):
            nemesis_none.crash_on("txn-prepared", fault="slow")


class TestGraySpec:
    def test_spec_dict_roundtrip_carries_config(self):
        spec = make_gray_spec(seed=3, ops=10)
        assert spec.config == {"adaptive_timeouts": True,
                               "hedge_requests": True,
                               "busy_queue_limit": 64}
        restored = ChaosSpec.from_dict(spec.to_dict())
        assert restored == spec

    def test_spec_generation_is_deterministic(self):
        assert make_gray_spec(seed=7, ops=20) == make_gray_spec(seed=7,
                                                                ops=20)
        assert make_gray_spec(seed=7, ops=20) != make_gray_spec(seed=8,
                                                                ops=20)

    def test_schedule_slows_then_restores_one_victim(self):
        spec = make_gray_spec(seed=0, ops=20)
        actions = [event["action"] for event in spec.schedule]
        assert actions == ["slow", "slow_off"]
        assert spec.schedule[0]["node"] == spec.schedule[1]["node"]
        assert spec.schedule[0]["t"] < spec.schedule[1]["t"]

    def test_gray_run_passes_the_checker_and_replays(self):
        spec = make_gray_spec(seed=0, ops=16)
        report = run_spec(spec)
        assert report.ok, report.violation
        assert report.fault_counts.get("slow", 0) > 0
        # replay through the JSON round-trip: identical outcome
        again = run_spec(ChaosSpec.from_dict(spec.to_dict()))
        assert again.ok
        assert again.stats == report.stats
        assert again.fault_counts == report.fault_counts
        assert again.end_time == report.end_time

    def test_non_adaptive_gray_spec_has_no_config(self):
        spec = make_gray_spec(seed=0, ops=10, adaptive=False)
        assert spec.config is None
        report = run_spec(spec)
        assert report.ok, report.violation
