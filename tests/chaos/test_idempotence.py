"""Duplicate-delivery idempotence: RPC dedup and protocol-level txn dedup.

Two layers defend against duplicated messages:

* the RPC server's at-most-once cache (``RpcLayer._served``) replays the
  recorded answer for a duplicated request without re-running the handler
  -- but it is *volatile*, wiped by a crash;
* protocol-level dedup in the replica keyed by stable state (``prepared``,
  ``txn_outcomes``), which must therefore tolerate duplicates the RPC
  layer has forgotten about.
"""

import random

from repro.chaos.faults import FaultPolicy, LinkFaults
from repro.core.messages import ApplyWrite, Prepare
from repro.core.store import ReplicatedStore


class TestRpcDeduplication:
    def run_with_duplicates(self):
        store = ReplicatedStore.create(9, seed=21, trace_enabled=True)
        store.network.faults = LinkFaults(FaultPolicy(duplicate=1.0),
                                          rng=random.Random(1))
        results = [store.write({"x": 1}, via="n00"),
                   store.write({"x": 2, "y": 3}, via="n04")]
        store.settle()
        return store, results

    def test_every_message_duplicated_write_applies_once(self):
        store, results = self.run_with_duplicates()
        assert all(r.ok for r in results)
        top = results[-1].version
        versions = [store.replica_state(n).version for n in store.node_names]
        # broken dedup re-applies commits: versions overshoot the history
        assert max(versions) == top == 2
        for name in store.node_names:
            state = store.replica_state(name)
            if state.version == top:
                assert state.value == {"x": 2, "y": 3}
        store.verify()

    def test_duplicates_answered_from_the_served_cache(self):
        store, _ = self.run_with_duplicates()
        dupes = store.trace.select(kind="rpc-duplicate")
        assert dupes, "duplicate=1.0 must exercise the dedup cache"
        # every duplicate is either replayed from the cache or ignored
        # because the handler is still running -- never re-executed
        assert {rec.detail["state"] for rec in dupes} <= {
            "answered", "in-progress"}


class TestProtocolLevelDedup:
    """Stable-state dedup that must survive loss of the RPC cache."""

    def deliver(self, store, src, dst, method, payload):
        answers = []

        def client():
            response = yield store.servers[src].rpc.call(dst, method, payload)
            answers.append(response)

        store.join(store.nodes[src].spawn(client()))
        return answers[0]

    def test_duplicate_commit_decision_is_idempotent(self):
        store = ReplicatedStore.create(9, seed=22)
        result = store.write({"x": 1}, via="n00")
        participant = next(
            name for name in store.node_names
            if store.servers[name].node.stable["txn_outcomes"])
        server = store.servers[participant]
        (txn_id,) = server.node.stable["txn_outcomes"]
        before = store.replica_state(participant)
        answer = self.deliver(store, "n00", participant, "txn-commit", txn_id)
        assert answer == "ack"                       # acked, not re-applied
        after = store.replica_state(participant)
        assert after.version == before.version == result.version
        assert after.value == before.value

    def test_prepare_after_commit_revotes_yes_without_repreparing(self):
        store = ReplicatedStore.create(9, seed=23)
        server = store.servers["n01"]
        server.node.stable["txn_outcomes"]["n00:txn7"] = "committed"
        prepare = Prepare(
            txn_id="n00:txn7", coordinator="n00",
            participants=("n00", "n01"), op_id="n00:w99",
            command=ApplyWrite(updates={"x": 9}, new_version=1,
                               stale_nodes=()),
            expected_snapshot={"version": 0})
        answer = self.deliver(store, "n00", "n01", "txn-prepare", prepare)
        assert answer == "yes"   # consistent with the recorded outcome
        assert "n00:txn7" not in server.node.stable["prepared"]
        assert not server.lock.locked
        assert store.replica_state("n01").version == 0  # not re-applied

    def test_prepare_after_abort_revotes_no(self):
        store = ReplicatedStore.create(9, seed=24)
        server = store.servers["n01"]
        server.node.stable["txn_outcomes"]["n00:txn7"] = "aborted"
        prepare = Prepare(
            txn_id="n00:txn7", coordinator="n00",
            participants=("n00", "n01"), op_id="n00:w99",
            command=ApplyWrite(updates={"x": 9}, new_version=1,
                               stale_nodes=()),
            expected_snapshot={"version": 0})
        answer = self.deliver(store, "n00", "n01", "txn-prepare", prepare)
        assert answer == "no"
        assert "n00:txn7" not in server.node.stable["prepared"]

    def test_dedup_survives_a_crash_that_wipes_the_rpc_cache(self):
        # The at-most-once cache is volatile; a duplicate redelivered
        # after crash+recover reaches the handler, so the stable
        # txn_outcomes record has to carry the dedup.
        store = ReplicatedStore.create(9, seed=25)
        server = store.servers["n01"]
        server.node.stable["txn_outcomes"]["n00:txn7"] = "committed"
        store.crash("n01")
        store.advance(1.0)
        store.recover("n01")
        store.advance(1.0)
        assert not server.rpc._served   # the cache really was wiped
        prepare = Prepare(
            txn_id="n00:txn7", coordinator="n00",
            participants=("n00", "n01"), op_id="n00:w99",
            command=ApplyWrite(updates={"x": 9}, new_version=1,
                               stale_nodes=()),
            expected_snapshot={"version": 0})
        answer = self.deliver(store, "n00", "n01", "txn-prepare", prepare)
        assert answer == "yes"
        assert store.replica_state("n01").version == 0

    def test_duplicate_prepare_repeats_the_yes_vote_once_prepared(self):
        store = ReplicatedStore.create(9, seed=26)
        server = store.servers["n01"]
        prepare = Prepare(
            txn_id="n00:txn8", coordinator="n00",
            participants=("n00", "n01"), op_id="n00:w42",
            command=ApplyWrite(updates={"x": 1}, new_version=1,
                               stale_nodes=()),
            expected_snapshot={"version": 0})
        first = self.deliver(store, "n00", "n01", "txn-prepare", prepare)
        second = self.deliver(store, "n00", "n01", "txn-prepare", prepare)
        assert first == second == "yes"
        # one prepared entry, one lock -- the duplicate did not stack
        assert list(server.node.stable["prepared"]) == ["n00:txn8"]
        commit = self.deliver(store, "n00", "n01", "txn-commit", "n00:txn8")
        assert commit == "ack"
        state = store.replica_state("n01")
        assert state.version == 1 and state.value["x"] == 1
