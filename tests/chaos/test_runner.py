"""The chaos runner: spec generation, deterministic execution, seed sweeps."""

import dataclasses

import pytest

from repro.chaos.runner import (
    PROTOCOLS,
    ChaosSpec,
    generate_spec,
    run_seeds,
    run_spec,
)


class TestSpecGeneration:
    def test_same_seed_same_spec(self):
        assert generate_spec(3).to_dict() == generate_spec(3).to_dict()

    def test_different_seeds_differ(self):
        assert generate_spec(3).to_dict() != generate_spec(4).to_dict()

    def test_dict_roundtrip(self):
        spec = generate_spec(5, protocol="static", ops=10)
        assert ChaosSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            generate_spec(0, protocol="bogus")
        with pytest.raises(ValueError):
            ChaosSpec.from_dict({"protocol": "bogus"})

    def test_schedule_sorted_by_time(self):
        schedule = generate_spec(7).schedule
        times = [event["t"] for event in schedule]
        assert times == sorted(times)

    def test_every_crash_gets_a_recovery(self):
        spec = generate_spec(9, ops=30)
        crashes = [e["node"] for e in spec.schedule if e["action"] == "crash"]
        recovers = [e["node"] for e in spec.schedule
                    if e["action"] == "recover"]
        assert sorted(crashes) == sorted(recovers)

    def test_dynamic_workload_uses_partial_writes(self):
        spec = generate_spec(11, protocol="dynamic", ops=40)
        writes = [op for op in spec.workload if op["kind"] == "write"]
        assert writes and all(len(op["updates"]) == 1 for op in writes)

    def test_baseline_workload_uses_total_writes(self):
        # the baselines replay by full overwrite, so their checker needs
        # every write to carry the whole value
        for protocol in ("static", "voting"):
            spec = generate_spec(11, protocol=protocol, ops=40)
            writes = [op for op in spec.workload if op["kind"] == "write"]
            assert writes and all(len(op["updates"]) == 4 for op in writes)
            assert not any(op["kind"] == "epoch-check"
                           for op in spec.workload)


class TestRunSpec:
    def test_clean_run_for_every_protocol(self):
        for protocol in PROTOCOLS:
            spec = generate_spec(0, protocol=protocol, ops=25)
            report = run_spec(spec)
            assert report.ok, report.violation
            assert report.summary().startswith("OK")
            assert report.end_time > 0

    def test_run_is_deterministic(self):
        spec = generate_spec(2, ops=25)
        first, second = run_spec(spec), run_spec(spec)
        assert first.ok == second.ok
        assert first.stats == second.stats
        assert first.end_time == second.end_time
        assert first.nemesis_fired == second.nemesis_fired
        assert first.fault_counts == second.fault_counts

    def test_unknown_schedule_action_raises(self):
        spec = ChaosSpec()
        spec.workload = [{"kind": "write", "updates": {"x": 1}, "dt": 1.0}]
        spec.schedule = [{"t": 0.5, "action": "frobnicate"}]
        with pytest.raises(ValueError):
            run_spec(spec)

    def test_leftover_events_do_not_fire_after_the_workload(self):
        # A schedule event whose time lands beyond the workload (routine
        # after shrinking truncates the op list) must not crash anyone
        # during the settle phase.
        spec = ChaosSpec()
        spec.workload = [{"kind": "write", "updates": {"x": 1}, "dt": 1.0}]
        spec.schedule = [{"t": 30.0, "action": "crash", "node": "n00"}]
        report = run_spec(spec)
        assert report.ok, report.violation
        assert report.store.nodes["n00"].up

    def test_injected_bug_reaches_the_config(self):
        spec = ChaosSpec(bug="skip-decision-record")
        spec.workload = [{"kind": "write", "updates": {"x": 1}, "dt": 1.0}]
        report = run_spec(spec)
        # without the adversarial schedule the bug is latent: the run
        # passes, but the knob must be wired through to the cluster
        assert report.store.config.chaos_bug == "skip-decision-record"


class TestSeedSweep:
    def test_25_seeds_clean_across_all_protocols(self):
        # The acceptance bar: 25+ distinct randomized fault schedules per
        # protocol, zero checker violations.
        for protocol in PROTOCOLS:
            reports = run_seeds(range(25), protocol=protocol, ops=40)
            failures = [r.summary() for r in reports if not r.ok]
            assert not failures, failures

    def test_on_report_callback_sees_every_run(self):
        seen = []
        reports = run_seeds(range(3), ops=10, on_report=seen.append)
        assert seen == reports and len(seen) == 3
