"""The static quorum protocol baseline: correct, but fragile exactly the
way the paper says it is."""

import pytest

from repro.baselines.static_protocol import StaticQuorumStore
from repro.core.store import ReplicatedStore, StoreError
from repro.coteries.majority import MajorityCoterie
from repro.coteries.rowa import ReadOneWriteAllCoterie


class TestStaticGrid:
    def test_write_and_read(self):
        store = StaticQuorumStore.create(9, seed=1)
        result = store.write({"x": 1})
        assert result.ok and result.version == 1 and result.case == "static"
        read = store.read()
        assert read.ok and read.value == {"x": 1}
        store.verify()

    def test_total_writes_replace_on_every_quorum_member(self):
        store = StaticQuorumStore.create(9, seed=2)
        first = store.write({"x": 1}, via="n00")
        second = store.write({"y": 2}, via="n05")
        # total writes: members of the second quorum hold ONLY {'y': 2}
        for name in second.good:
            assert store.replica_state(name).value == {"y": 2}
            assert store.replica_state(name).version == 2
        # read returns the latest total value, not a merge
        assert store.read().value == {"y": 2}

    def test_laggards_caught_up_by_overwriting(self):
        store = StaticQuorumStore.create(9, seed=3)
        store.write({"v": 1}, via="n00")
        second = store.write({"v": 2}, via="n05")
        # a member of the second quorum that missed the first write is
        # simply overwritten -- no staleness machinery needed
        for name in second.good:
            assert store.replica_state(name).version == 2

    def test_single_failure_beyond_quorum_kills_availability(self):
        # the paper's Section 1 criticism: the static protocol cannot adapt
        store = StaticQuorumStore.create(9, seed=4)
        store.write({"x": 1})
        store.crash("n02", "n05", "n08")  # one full grid column
        assert not store.write({"x": 2}).ok
        assert not store.read().ok
        # ...and there is no epoch checking to save it
        with pytest.raises(StoreError):
            store.start_epoch_check()

    def test_dynamic_protocol_survives_where_static_dies(self):
        # same fault sequence, both protocols, side by side
        faults = ["n08", "n07", "n06", "n05"]
        static = StaticQuorumStore.create(9, seed=5)
        dynamic = ReplicatedStore.create(9, seed=5)
        static.write({"x": 0})
        dynamic.write({"x": 0})
        static_ok = dynamic_ok = 0
        for i, victim in enumerate(faults):
            static.crash(victim)
            dynamic.crash(victim)
            dynamic.check_epoch()
            static_ok += bool(static.write({"x": i + 1}).ok)
            dynamic_ok += bool(dynamic.write({"x": i + 1}).ok)
        assert dynamic_ok == len(faults)     # absorbed every failure
        assert static_ok < len(faults)       # static lost availability
        dynamic.verify()

    def test_concurrent_static_writes_serialize(self):
        store = StaticQuorumStore.create(9, seed=6)
        procs = [store.start_write({"x": i}, via=f"n{i:02d}")
                 for i in range(3)]
        results = store.join(*procs, timeout=300)
        versions = [r.version for r in results if r.ok]
        assert len(versions) == len(set(versions)) and versions
        store.verify()


class TestStaticOtherCoteries:
    def test_majority_voting(self):
        store = StaticQuorumStore.create(5, seed=7,
                                         coterie_rule=MajorityCoterie)
        assert store.write({"x": 1}).ok
        store.crash("n00", "n01")       # 3 of 5 left: still a majority
        assert store.write({"x": 2}).ok
        store.crash("n02")              # 2 of 5: no majority
        assert not store.write({"x": 3}).ok
        store.verify()

    def test_rowa_write_all(self):
        store = StaticQuorumStore.create(4, seed=8,
                                         coterie_rule=ReadOneWriteAllCoterie)
        assert store.write({"x": 1}).ok
        assert all(v == 1 for v in store.versions().values())
        store.crash("n03")
        assert not store.write({"x": 2}).ok   # write-all can't miss anyone
        read = store.read()
        assert read.ok and read.value == {"x": 1}  # reads stay cheap
        store.verify()
