"""Voting with witnesses (Paris 1986)."""

import pytest

from repro.baselines.witnesses import WitnessVotingStore
from repro.core.store import StoreError


def make_store(n_data=2, n_witness=1, seed=1, **kwargs):
    data = [f"d{i}" for i in range(n_data)]
    witnesses = [f"w{i}" for i in range(n_witness)]
    return WitnessVotingStore(data + witnesses, witnesses, seed=seed,
                              **kwargs)


class TestBasics:
    def test_write_and_read(self):
        store = make_store()
        result = store.write({"x": 1})
        assert result.ok and result.version == 1
        read = store.read()
        assert read.ok and read.value == {"x": 1}
        store.verify()

    def test_witnesses_store_no_data(self):
        store = make_store()
        store.crash("d1")  # force the witness into the write quorum
        store.write({"x": "payload" * 10})
        assert store.replica_state("w0").value == {}
        assert store.replica_state("w0").version == 1
        assert store.replica_state("d0").value == {"x": "payload" * 10}

    def test_storage_savings(self):
        store = make_store(n_data=2, n_witness=1)
        store.write({f"k{i}": "v" * 50 for i in range(10)})
        usage = store.storage_bytes()
        assert usage["w0"] < usage["d0"] / 10

    def test_write_result_reports_data_nodes_only(self):
        store = make_store()
        result = store.write({"x": 1})
        assert set(result.good) <= {"d0", "d1"}

    def test_configuration_validation(self):
        with pytest.raises(StoreError):
            WitnessVotingStore(["a", "b"], ["a", "b"])  # no data node
        with pytest.raises(StoreError):
            WitnessVotingStore(["a", "b"], ["zz"])      # unknown witness
        with pytest.raises(StoreError):
            make_store().start_epoch_check()


class TestAvailability:
    def test_witness_buys_a_tolerable_failure(self):
        # 2 data + 1 witness: majority is 2; one data node down, the
        # witness + the survivor still form quorums for reads and writes.
        store = make_store()
        store.write({"x": 1})
        store.crash("d1")
        result = store.write({"x": 2})
        assert result.ok
        read = store.read()
        assert read.ok and read.value == {"x": 2}
        store.verify()

    def test_witness_alone_with_one_data_node_down_both_data(self):
        # both data nodes down: a quorum may exist (witness + nothing =
        # 1 < 2), so everything fails cleanly
        store = make_store()
        store.write({"x": 1})
        store.crash("d0", "d1")
        assert not store.write({"x": 2}).ok
        assert not store.read().ok
        store.verify()

    def test_fresh_version_only_at_witness_blocks_read(self):
        # after d1 was down for a write, the quorum {d1, w0} has its max
        # version only at the witness -> the read must go wide and find d0
        store = make_store(seed=3)
        store.write({"x": 1})
        store.crash("d1")
        store.write({"x": 2})     # lands on d0 + w0
        store.recover("d1")
        for via in ("d0", "d1", "w0"):
            read = store.read(via=via)
            assert read.ok and read.value == {"x": 2}, via
        store.verify()

    def test_data_death_with_witness_majority_fails_safe(self):
        # 1 data + 2 witnesses: a majority of votes can exist without ANY
        # data node.  Reads must fail rather than return nothing, and
        # writes must refuse to "commit" a value that would be stored
        # nowhere (Paris: every write reaches at least one data copy).
        store = make_store(n_data=1, n_witness=2, seed=4)
        store.write({"x": 1})
        store.crash("d0")
        read = store.read()
        assert not read.ok and read.case == "no-current-data"
        result = store.write({"x": 2})
        assert not result.ok
        store.recover("d0")
        assert store.read().value == {"x": 1}  # nothing was lost
        store.verify()

    def test_same_availability_as_three_data_nodes_for_writes(self):
        # the witness pitch: 2 data + 1 witness votes like 3 data nodes
        from repro.baselines.static_protocol import StaticQuorumStore
        from repro.coteries.majority import MajorityCoterie
        witness_store = make_store(seed=5)
        full_store = StaticQuorumStore.create(
            3, seed=5, coterie_rule=MajorityCoterie)
        witness_store.write({"x": 1})
        full_store.write({"x": 1})
        # one failure each: both keep working
        witness_store.crash("d1")
        full_store.crash("n01")
        assert witness_store.write({"x": 2}).ok
        assert full_store.write({"x": 2}).ok
        # two failures each: both stop
        witness_store.crash("w0")
        full_store.crash("n02")
        assert not witness_store.write({"x": 3}).ok
        assert not full_store.write({"x": 3}).ok
