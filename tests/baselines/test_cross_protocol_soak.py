"""Randomized fault soaks for every protocol variant in the repository.

The dynamic store already has its own soak; these drive the baselines and
the multi-item store through random crash/recover/operation interleavings
and verify one-copy serializability of everything observed.
"""

import random

import pytest

from repro.baselines.dynamic_voting import DynamicVotingStore
from repro.baselines.static_protocol import StaticQuorumStore
from repro.baselines.witnesses import WitnessVotingStore
from repro.core.multistore import MultiItemStore


def drive(store, rng, steps, min_up, write_fn, read_fn):
    names = list(store.node_names)
    counter = 0
    for _step in range(steps):
        action = rng.random()
        up = [n for n in names if store.nodes[n].up]
        if not up:
            store.recover(rng.choice(names))
            continue
        via = rng.choice(up)
        if action < 0.4:
            counter += 1
            write_fn(counter, via)
        elif action < 0.7:
            read_fn(via)
        elif action < 0.85 and len(up) > min_up:
            store.crash(rng.choice(up))
        else:
            down = [n for n in names if not store.nodes[n].up]
            if down:
                store.recover(rng.choice(down))
        store.advance(rng.uniform(0.1, 1.5))
    store.recover(*[n for n in names if not store.nodes[n].up])
    store.advance(20)


class TestStaticSoak:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_static_grid_soak(self, seed):
        store = StaticQuorumStore.create(9, seed=seed)
        rng = random.Random(seed)
        drive(store, rng, steps=25, min_up=5,
              write_fn=lambda c, via: store.start_write({"k": c}, via=via),
              read_fn=lambda via: store.start_read(via=via))
        stats = store.verify()
        assert stats["writes"] + stats["failed"] > 0


class TestDynamicVotingSoak:
    @pytest.mark.parametrize("seed", [4, 5, 6])
    def test_dlv_soak(self, seed):
        store = DynamicVotingStore.create(5, seed=seed)
        rng = random.Random(seed)
        drive(store, rng, steps=25, min_up=2,
              write_fn=lambda c, via: store.start_write({"k": c}, via=via),
              read_fn=lambda via: store.start_read(via=via))
        store.verify()

    def test_dlv_deep_sequential_failures_consistent(self):
        store = DynamicVotingStore.create(7, seed=9)
        store.write({"v": 0})
        for i, victim in enumerate(store.node_names[:-1]):
            store.crash(victim)
            result = store.write({"v": i + 1})
            assert result.ok
        store.recover(*store.node_names[:-1])
        store.advance(10)
        assert store.write({"v": 99}).ok
        read = store.read()
        assert read.value == {"v": 99}
        store.verify()


class TestWitnessSoak:
    @pytest.mark.parametrize("seed", [7, 8])
    def test_witness_soak(self, seed):
        data = [f"d{i}" for i in range(3)]
        store = WitnessVotingStore(data + ["w0", "w1"], ["w0", "w1"],
                                   seed=seed)
        rng = random.Random(seed)
        drive(store, rng, steps=25, min_up=3,
              write_fn=lambda c, via: store.start_write({"k": c}, via=via),
              read_fn=lambda via: store.start_read(via=via))
        store.verify()
        # witnesses never accumulated data
        for witness in ("w0", "w1"):
            assert store.replica_state(witness).value == {}


class TestMultiItemSoak:
    @pytest.mark.parametrize("seed", [10, 11])
    def test_group_store_soak(self, seed):
        store = MultiItemStore.create(9, 3, seed=seed)
        rng = random.Random(seed)
        names = list(store.node_names)
        counter = 0
        for _step in range(25):
            action = rng.random()
            up = [n for n in names if store.nodes[n].up]
            if not up:
                store.recover(rng.choice(names))
                continue
            via = rng.choice(up)
            item = f"item{rng.randrange(3)}"
            if action < 0.4:
                counter += 1
                store.nodes[via].spawn(
                    store.coordinators[via].write(item, {"k": counter}))
            elif action < 0.6:
                store.nodes[via].spawn(store.coordinators[via].read(item))
            elif action < 0.75 and len(up) > 5:
                store.crash(rng.choice(up))
            elif action < 0.9:
                down = [n for n in names if not store.nodes[n].up]
                if down:
                    store.recover(rng.choice(down))
            else:
                from repro.core.multistore import check_group_epoch
                store.nodes[via].spawn(
                    check_group_epoch(store.servers[via]))
            store.advance(rng.uniform(0.1, 1.5))
        store.recover(*[n for n in names if not store.nodes[n].up])
        store.advance(20)
        store.check_epoch()
        store.settle()
        store.verify()
