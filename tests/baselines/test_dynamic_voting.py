"""Dynamic-linear voting baseline: majority-of-last-update semantics."""

import pytest

from repro.baselines.dynamic_voting import DynamicVotingStore, _may_proceed
from repro.core.store import StoreError


class TestMajorityCondition:
    def test_strict_majority(self):
        assert _may_proceed({"a", "b"}, 3, "c")
        assert not _may_proceed({"a"}, 3, "c")

    def test_tie_break_by_distinguished_site(self):
        assert _may_proceed({"b"}, 2, "b")
        assert not _may_proceed({"a"}, 2, "b")

    def test_no_distinguished_site_no_tie_break(self):
        assert not _may_proceed({"a"}, 2, None)


class TestProtocol:
    def test_write_and_read(self):
        store = DynamicVotingStore.create(5, seed=1)
        result = store.write({"x": 1})
        assert result.ok and result.version == 1
        assert store.read().value == {"x": 1}
        store.verify()

    def test_metadata_tracks_participants(self):
        store = DynamicVotingStore.create(5, seed=2)
        store.write({"x": 1})
        meta = store.partition_metadata()
        # everyone participated: SC = 5, DS = highest-ordered node
        assert all(m == (5, "n04") for m in meta.values())
        store.crash("n04")
        store.write({"x": 2})
        meta = store.partition_metadata()
        live = {n: m for n, m in meta.items() if n != "n04"}
        assert all(m == (4, "n03") for m in live.values())

    def test_survives_sequential_failures_to_one_node(self):
        # dynamic-linear voting's hallmark: with the tie-break, the
        # partition can shrink all the way to a single (priority) node
        store = DynamicVotingStore.create(5, seed=3)
        store.write({"x": 0})
        for i, victim in enumerate(["n00", "n01", "n02", "n03"]):
            store.crash(victim)
            result = store.write({"x": i + 1})
            assert result.ok, f"write failed after crashing {victim}"
        assert store.replica_state("n04").value == {"x": 4}
        store.verify()

    def test_wrong_half_of_pair_cannot_proceed(self):
        store = DynamicVotingStore.create(5, seed=4)
        store.write({"x": 0})
        for victim in ("n00", "n01", "n02"):
            store.crash(victim)
            assert store.write({"x": 1}).ok
        # partition is now {n03, n04} with DS = n04; kill n04
        store.crash("n04")
        assert not store.write({"x": 9}, via="n03").ok
        # the distinguished site returns: writes resume
        store.recover("n04")
        assert store.write({"x": 2}).ok
        store.verify()

    def test_minority_partition_cannot_write(self):
        store = DynamicVotingStore.create(5, seed=5)
        store.write({"x": 1})
        store.partition(["n00", "n01"], ["n02", "n03", "n04"])
        assert not store.write({"bad": 1}, via="n00").ok
        assert store.write({"x": 2}, via="n02").ok
        store.heal()
        # healed nodes are absorbed by the next write's total overwrite
        result = store.write({"x": 3})
        assert result.ok and set(result.good) == set(store.node_names)
        store.verify()

    def test_stale_partition_rejoins_consistently(self):
        store = DynamicVotingStore.create(5, seed=6)
        store.write({"x": 1})
        store.partition(["n03", "n04"], ["n00", "n01", "n02"])
        assert store.write({"x": 2}, via="n00").ok   # majority side
        store.heal()
        read = store.read(via="n03")
        assert read.ok and read.value == {"x": 2}
        store.verify()

    def test_no_epoch_checking(self):
        store = DynamicVotingStore.create(3, seed=7)
        with pytest.raises(StoreError):
            store.start_epoch_check()

    def test_reads_respect_majority_condition(self):
        store = DynamicVotingStore.create(5, seed=8)
        store.write({"x": 1})
        store.crash("n00", "n01")
        assert store.write({"x": 2}).ok       # SC drops to 3
        store.crash("n02", "n03")             # 1 of 3 left, DS=n04...
        meta = store.partition_metadata()["n04"]
        assert meta == (3, "n04")
        # n04 alone: |I|=1 of SC=3 -> no majority, no tie eligibility
        assert not store.read(via="n04").ok
        store.verify()
