"""Zone failures and grid placement."""

import random

import pytest

from repro.analysis.placement import (
    availability_with_zones,
    column_zones,
    placement_comparison,
    row_zones,
)
from repro.availability.formulas import (
    availability_by_enumeration,
    grid_read_availability,
)
from repro.coteries.base import CoterieError
from repro.coteries.grid import GridCoterie
from repro.sim.engine import Environment
from repro.sim.failures import ZoneFailureInjector
from repro.sim.network import LatencyModel, Network
from repro.sim.node import Node
from repro.sim.trace import TraceLog


def names(n):
    return [f"n{i:02d}" for i in range(n)]


class TestZoneMaps:
    def test_column_zones_match_grid_columns(self):
        grid = GridCoterie(names(9))
        zones = column_zones(grid)
        assert len(zones) == 3
        assert sorted(zones["zone0"]) == sorted(grid.columns[0])

    def test_row_zones_cover_every_column(self):
        grid = GridCoterie(names(9))
        zones = row_zones(grid)
        assert len(zones) == 3
        for members in zones.values():
            # one member in each grid column
            cols = set()
            for name in members:
                k = grid.ordered_number(name)
                cols.add(grid.shape.position(k)[1])
            assert cols == {1, 2, 3}


class TestAvailabilityWithZones:
    def test_reduces_to_site_model_when_zones_never_fail(self):
        grid = GridCoterie(names(6))
        zones = column_zones(grid)
        flat = availability_by_enumeration(grid, 0.85, "write")
        zoned = availability_with_zones(grid, zones, 1.0, 0.85, "write")
        assert zoned == pytest.approx(flat)

    def test_zone_only_failures_column_aligned_reads(self):
        # with perfect nodes, column-aligned reads need EVERY zone up
        grid = GridCoterie(names(9))
        zones = column_zones(grid)
        value = availability_with_zones(grid, zones, 0.9, 1.0, "read")
        assert value == pytest.approx(0.9 ** 3)

    def test_zone_only_failures_row_aligned_reads(self):
        # row-aligned: any single zone (row) may die, reads survive
        grid = GridCoterie(names(9))
        zones = row_zones(grid)
        value = availability_with_zones(grid, zones, 0.9, 1.0, "read")
        survive_two_down = 0.9 ** 3 + 3 * 0.9 ** 2 * 0.1
        assert value >= survive_two_down - 1e-12

    def test_row_alignment_dominates_for_reads(self):
        comparison = placement_comparison(9, p_zone=0.9, p_node=0.95)
        assert comparison["row-aligned"]["read"] > \
            comparison["column-aligned"]["read"] + 0.2

    def test_write_availability_placement_invariant_for_square_grids(self):
        # writes need a full column AND full cover; for exact grids the
        # two placements give identical write availability (the model is
        # symmetric under transposing rows and columns of failures)
        comparison = placement_comparison(9, p_zone=0.9, p_node=0.95)
        assert comparison["row-aligned"]["write"] == pytest.approx(
            comparison["column-aligned"]["write"])

    def test_validation(self):
        grid = GridCoterie(names(4))
        with pytest.raises(CoterieError):
            availability_with_zones(grid, {"z": ["n00"]}, 0.9, 0.9)
        with pytest.raises(CoterieError):
            availability_with_zones(grid, column_zones(grid), 1.5, 0.9)
        with pytest.raises(CoterieError):
            availability_with_zones(grid, column_zones(grid), 0.9, 0.9,
                                    kind="scan")


class TestZoneFailureInjector:
    def make_cluster(self, n=6):
        env = Environment()
        net = Network(env, LatencyModel(0.01, 0.01), trace=TraceLog())
        nodes = [Node(env, net, name) for name in names(n)]
        return env, nodes

    def test_zone_failure_crashes_all_members(self):
        env, nodes = self.make_cluster(6)
        zones = {"z0": nodes[:3], "z1": nodes[3:]}
        injector = ZoneFailureInjector(env, zones, zone_lam=1.0,
                                       zone_mu=1.0,
                                       rng=random.Random(3))
        injector.start()
        env.run(until=0.5)  # long enough for some zone event
        # whenever a zone is down, all its members are down together
        for zone, members in zones.items():
            states = {node.up for node in members}
            if not injector.zone_up[zone]:
                assert states == {False}

    def test_empirical_availability_matches_analysis(self):
        env, nodes = self.make_cluster(9)
        grid = GridCoterie([node.name for node in nodes])
        zones_map = column_zones(grid)
        zones = {z: [n for n in nodes if n.name in members]
                 for z, members in zones_map.items()}
        zone_lam, zone_mu = 1.0, 9.0     # zone availability 0.9
        injector = ZoneFailureInjector(env, zones, zone_lam, zone_mu,
                                       rng=random.Random(5))
        injector.start()
        horizon = 20000.0
        up_time = 0.0
        last = [0.0]

        def sample():
            while True:
                up = {node.name for node in nodes if node.up}
                nonlocal_ok = grid.is_read_quorum(up)
                start = env.now
                yield env.timeout(0.25)
                if nonlocal_ok:
                    nonlocal up_time
                    up_time += env.now - start

        env.process(sample())
        env.run(until=horizon)
        expected = availability_with_zones(grid, zones_map, 0.9, 1.0,
                                           "read")
        assert up_time / horizon == pytest.approx(expected, abs=0.02)

    def test_node_in_two_zones_rejected(self):
        env, nodes = self.make_cluster(2)
        with pytest.raises(ValueError):
            ZoneFailureInjector(env, {"a": nodes, "b": [nodes[0]]},
                                1.0, 1.0)

    def test_bad_rates_rejected(self):
        env, nodes = self.make_cluster(2)
        with pytest.raises(ValueError):
            ZoneFailureInjector(env, {"a": nodes}, -1.0, 1.0)
        with pytest.raises(ValueError):
            ZoneFailureInjector(env, {"a": nodes}, 1.0, 1.0,
                                node_lam=1.0, node_mu=0.0)

    def test_individual_node_failure_composes_with_zone(self):
        env, nodes = self.make_cluster(4)
        zones = {"z0": nodes[:2], "z1": nodes[2:]}
        injector = ZoneFailureInjector(env, zones, zone_lam=0.5,
                                       zone_mu=2.0, node_lam=0.5,
                                       node_mu=2.0,
                                       rng=random.Random(7))
        injector.start()
        env.run(until=200.0)
        # invariant held throughout: node up implies its zone up
        for zone, members in zones.items():
            for node in members:
                if node.up:
                    assert injector.zone_up[zone]
