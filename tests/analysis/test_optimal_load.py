"""Naor-Wool optimal load of the implemented quorum systems."""

import math

import pytest

from repro.analysis.optimal_load import (
    empirical_vs_optimal,
    optimal_load,
    strategy_load,
)
from repro.coteries.base import CoterieError
from repro.coteries.grid import GridCoterie
from repro.coteries.majority import MajorityCoterie
from repro.coteries.rowa import ReadOneWriteAllCoterie
from repro.coteries.tree import TreeCoterie


def names(n):
    return [f"n{i:02d}" for i in range(n)]


class TestClassicValues:
    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_majority_load_is_half_plus(self, n):
        load, strategy = optimal_load(MajorityCoterie(names(n)))
        # all quorums have size (n+1)/2, so no strategy can beat the
        # averaging bound (n+1)/(2n); symmetry achieves it
        assert load == pytest.approx((n + 1) / (2 * n))
        assert sum(strategy.values()) == pytest.approx(1.0)

    def test_grid_read_load_is_one_over_sqrt_n(self):
        load, _ = optimal_load(GridCoterie(names(9)), kind="read")
        assert load == pytest.approx(1 / math.sqrt(9))

    def test_grid_write_load_is_quorum_size_over_n(self):
        load, _ = optimal_load(GridCoterie(names(9)), kind="write")
        assert load == pytest.approx(5 / 9)  # all quorums size 2*3-1

    def test_rowa_read_load_is_one_over_n(self):
        load, strategy = optimal_load(ReadOneWriteAllCoterie(names(6)),
                                      kind="read")
        assert load == pytest.approx(1 / 6)
        assert len(strategy) == 6  # uniform over singletons

    def test_rowa_write_load_is_one(self):
        load, _ = optimal_load(ReadOneWriteAllCoterie(names(4)),
                               kind="write")
        assert load == pytest.approx(1.0)

    def test_tree_beats_all_root_strategies(self):
        # the failure-free strategy (always a root path) loads the root
        # with 1.0; mixing in root-free quorums does strictly better
        load, strategy = optimal_load(TreeCoterie(names(7)))
        assert load < 1.0
        per_node = strategy_load(strategy, names(7))
        assert per_node["n00"] <= load + 1e-9

    def test_load_lower_bound_sqrt(self):
        # Naor-Wool: L >= max(1/c, c/n) where c is the smallest quorum
        for coterie, kind in ((GridCoterie(names(9)), "read"),
                              (MajorityCoterie(names(5)), "write"),
                              (TreeCoterie(names(7)), "write")):
            predicate = (coterie.is_write_quorum if kind == "write"
                         else coterie.is_read_quorum)
            from repro.coteries.properties import minimal_quorums
            smallest = min(len(q) for q in
                           minimal_quorums(predicate, coterie.nodes))
            load, _ = optimal_load(coterie, kind)
            assert load >= max(1 / smallest,
                               smallest / coterie.n_nodes) - 1e-9


class TestStrategies:
    def test_strategy_probabilities_valid(self):
        _load, strategy = optimal_load(GridCoterie(names(6)))
        assert all(w > 0 for w in strategy.values())
        assert sum(strategy.values()) == pytest.approx(1.0)

    def test_strategy_load_max_equals_reported_load(self):
        load, strategy = optimal_load(MajorityCoterie(names(5)))
        per_node = strategy_load(strategy, names(5))
        assert max(per_node.values()) == pytest.approx(load)

    def test_invalid_kind_rejected(self):
        with pytest.raises(CoterieError):
            optimal_load(MajorityCoterie(names(3)), kind="scan")


class TestEmpiricalComparison:
    def test_salted_grid_close_to_optimal(self):
        result = empirical_vs_optimal(GridCoterie(names(9)), kind="write")
        assert result["ratio"] < 1.25   # within 25% of the LP optimum

    def test_salted_majority_close_to_optimal(self):
        result = empirical_vs_optimal(MajorityCoterie(names(9)))
        assert result["ratio"] < 1.2

    def test_tree_quorum_function_far_from_optimal(self):
        # the failure-free path strategy always hits the root: empirical
        # max load 1.0 vs the LP's mixed strategy
        result = empirical_vs_optimal(TreeCoterie(names(7)))
        assert result["empirical"] == pytest.approx(1.0)
        assert result["ratio"] > 1.3
