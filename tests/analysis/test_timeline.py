"""Timeline rendering from traces."""

import pytest

from repro.analysis.timeline import (
    protocol_events,
    render_timeline,
    uptime_strips,
)
from repro.core.store import ReplicatedStore


def make_run():
    store = ReplicatedStore.create(5, seed=2, trace_enabled=True)
    store.write({"x": 1})
    store.crash("n04")
    store.check_epoch()
    store.write({"y": 2})
    store.recover("n04")
    store.check_epoch()
    store.settle()
    return store


class TestProtocolEvents:
    def test_collects_lifecycle_events(self):
        store = make_run()
        kinds = {rec.kind for rec in protocol_events(store.trace)}
        assert "node-crash" in kinds
        assert "node-recover" in kinds
        assert "epoch-installed" in kinds

    def test_custom_kind_filter(self):
        store = make_run()
        only_crashes = protocol_events(store.trace, kinds=["node-crash"])
        assert all(rec.kind == "node-crash" for rec in only_crashes)
        assert len(only_crashes) == 1


class TestUptimeStrips:
    def test_strip_shows_down_window(self):
        store = make_run()
        strips = uptime_strips(store.trace, store.node_names,
                               store.env.now, width=40)
        assert set(strips) == set(store.node_names)
        assert "." in strips["n04"]       # was down for a while
        assert "." not in strips["n00"]   # never crashed
        assert all(len(s) == 40 for s in strips.values())

    def test_recovery_visible(self):
        store = make_run()
        strip = uptime_strips(store.trace, ["n04"],
                              store.env.now, width=60)["n04"]
        # down in the middle, up again at the end
        assert strip.strip(".").endswith("#")
        assert strip.rstrip("#").endswith(".")

    def test_bad_horizon_rejected(self):
        store = make_run()
        with pytest.raises(ValueError):
            uptime_strips(store.trace, store.node_names, 0.0)


class TestRenderTimeline:
    def test_full_report(self):
        store = make_run()
        text = render_timeline(store)
        assert "protocol events" in text
        assert "n04 CRASHED" in text
        assert "epoch #1 installed" in text
        assert "node uptime" in text
        assert "operations:" in text

    def test_requires_tracing(self):
        store = ReplicatedStore.create(3, seed=1)  # tracing off
        with pytest.raises(ValueError):
            render_timeline(store)

    def test_event_cap(self):
        store = make_run()
        text = render_timeline(store, max_events=1)
        assert "1 of" in text
