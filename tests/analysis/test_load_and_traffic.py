"""Load-sharing and traffic analysis tests."""

import pytest

from repro.analysis.load import LoadReport, jain_fairness, quorum_load
from repro.analysis.traffic import message_traffic
from repro.core.store import ReplicatedStore
from repro.coteries.grid import GridCoterie
from repro.coteries.majority import MajorityCoterie
from repro.coteries.rowa import ReadOneWriteAllCoterie
from repro.coteries.tree import TreeCoterie
from repro.workloads.generators import ClientWorkload, run_workload


def names(n):
    return [f"n{i:02d}" for i in range(n)]


class TestJainFairness:
    def test_even_loads_score_one(self):
        assert jain_fairness([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_single_hot_node_scores_one_over_n(self):
        assert jain_fairness([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness([])

    def test_zero_total_is_fair(self):
        assert jain_fairness([0, 0]) == 1.0


class TestQuorumLoad:
    def test_grid_spreads_load_well(self):
        report = quorum_load(GridCoterie(names(25)), n_picks=500)
        assert report.fairness > 0.9
        assert report.quorum_size_mean == pytest.approx(9.0)  # 2*5-1

    def test_majority_load_is_heavier_per_node(self):
        grid = quorum_load(GridCoterie(names(25)), n_picks=500)
        majority = quorum_load(MajorityCoterie(names(25)), n_picks=500)
        grid_mean = sum(grid.per_node_load.values()) / 25
        majority_mean = sum(majority.per_node_load.values()) / 25
        # majority quorums are 13/25 vs the grid's 9/25: ~44% more load
        assert majority_mean > grid_mean * 1.3

    def test_tree_concentrates_load_on_root(self):
        report = quorum_load(TreeCoterie(names(15)), n_picks=400)
        root_load = report.per_node_load["n00"]
        assert root_load == pytest.approx(1.0)  # failure-free: root always
        assert report.fairness < 0.6

    def test_rowa_reads_are_the_lightest(self):
        report = quorum_load(ReadOneWriteAllCoterie(names(10)),
                             n_picks=400, kind="read")
        assert report.quorum_size_mean == 1.0

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            quorum_load(GridCoterie(names(4)), kind="scan")

    def test_summary_readable(self):
        report = quorum_load(GridCoterie(names(9)), n_picks=100)
        assert "fairness=" in report.summary()


class TestMessageTraffic:
    def make_run(self, n=9, seed=1, duration=25.0):
        store = ReplicatedStore.create(n, seed=seed, trace_enabled=True)
        run_workload(store, ClientWorkload(n_clients=3, duration=duration),
                     seed=seed)
        return store

    def test_report_counts_operations_and_messages(self):
        store = self.make_run()
        report = message_traffic(store.trace, store.history)
        assert report.operations > 5
        assert report.total_messages > report.operations
        assert report.messages_per_operation > 2

    def test_grid_traffic_below_poll_everyone(self):
        # Fast-path writes touch ~2*sqrt(N)-1 replicas, each costing a
        # request/response pair plus 2PC; well below 4 messages per node.
        store = self.make_run(n=16, seed=2)
        report = message_traffic(store.trace, store.history)
        assert report.messages_per_operation < 4 * 16

    def test_summary_readable(self):
        store = self.make_run(n=4, seed=3, duration=10.0)
        report = message_traffic(store.trace, store.history)
        assert "msgs" in report.summary()
