"""Continuous-time Markov chains and steady-state solvers.

The paper solves its Figure 3 state diagram with "the classical global
balance technique".  :class:`MarkovChain` collects transition rates and
solves the global balance equations

    pi Q = 0,   sum(pi) = 1

either in floating point (numpy) or in *exact rational arithmetic*.  The
exact mode matters here: Table 1's dynamic-grid unavailabilities go down to
1.5e-14, where a naive double-precision solve can lose most significant
digits of the small components.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Hashable, Iterable, Mapping, Union

import numpy as np

Rate = Union[int, float, Fraction]
State = Hashable


class MarkovChain:
    """A CTMC assembled from explicit transition rates."""

    def __init__(self):
        self._rates: dict[tuple[State, State], Fraction] = {}
        self._states: dict[State, None] = {}  # insertion-ordered set

    def add(self, src: State, dst: State, rate: Rate) -> None:
        """Add (accumulate) a transition ``src -> dst`` at the given rate."""
        if src == dst:
            raise ValueError(f"self-loop at {src!r}")
        rate = Fraction(rate).limit_denominator(10 ** 12) \
            if isinstance(rate, float) else Fraction(rate)
        if rate < 0:
            raise ValueError(f"negative rate {rate} on {src!r}->{dst!r}")
        if rate == 0:
            return
        self._states.setdefault(src, None)
        self._states.setdefault(dst, None)
        key = (src, dst)
        self._rates[key] = self._rates.get(key, Fraction(0)) + rate

    @property
    def states(self) -> list[State]:
        """The chain's states, in insertion order."""
        return list(self._states)

    @property
    def n_states(self) -> int:
        """Number of states in the chain."""
        return len(self._states)

    def rate(self, src: State, dst: State) -> Fraction:
        """Transition rate from src to dst (0 when absent)."""
        return self._rates.get((src, dst), Fraction(0))

    def transitions(self) -> Mapping[tuple[State, State], Fraction]:
        """All transitions as a {(src, dst): rate} mapping."""
        return dict(self._rates)

    # -- solving ------------------------------------------------------------
    def steady_state(self, exact: bool = False) -> dict[State, float]:
        """Steady-state distribution from global balance.

        With ``exact=True`` the linear system is solved over the rationals
        (Gaussian elimination with Fractions); the returned dict still maps
        to Fraction values so callers can keep full precision.
        """
        if not self._states:
            raise ValueError("empty chain")
        if exact:
            return self._solve_exact()
        return self._solve_float()

    def _generator_rows(self):
        """Yield (i, j, rate) entries of the generator matrix Q."""
        index = {state: i for i, state in enumerate(self._states)}
        for (src, dst), rate in self._rates.items():
            yield index[src], index[dst], rate

    def _solve_float(self) -> dict[State, float]:
        n = self.n_states
        q = np.zeros((n, n))
        for i, j, rate in self._generator_rows():
            q[i, j] += float(rate)
            q[i, i] -= float(rate)
        # pi Q = 0  =>  Q^T pi^T = 0; replace the last balance equation by
        # the normalisation sum(pi) = 1.
        a = q.T.copy()
        a[-1, :] = 1.0
        b = np.zeros(n)
        b[-1] = 1.0
        pi = np.linalg.solve(a, b)
        return {state: float(p) for state, p in zip(self._states, pi)}

    def _solve_exact(self) -> dict[State, Fraction]:
        n = self.n_states
        # Build the augmented matrix for Q^T pi = 0 with normalisation.
        a = [[Fraction(0)] * (n + 1) for _ in range(n)]
        for i, j, rate in self._generator_rows():
            a[j][i] += rate      # transpose
            a[i][i] -= rate
        for j in range(n):
            a[n - 1][j] = Fraction(1)
        a[n - 1][n] = Fraction(1)
        _gauss_solve_inplace(a)
        return {state: a[i][n] for i, state in enumerate(self._states)}

    # -- convenience ---------------------------------------------------------
    def probability(self, predicate: Callable[[State], bool],
                    exact: bool = False) -> Union[float, Fraction]:
        """Total steady-state probability of states matching *predicate*."""
        pi = self.steady_state(exact=exact)
        zero = Fraction(0) if exact else 0.0
        return sum((p for state, p in pi.items() if predicate(state)), zero)


def _gauss_solve_inplace(a: list[list[Fraction]]) -> None:
    """Solve the augmented rational system in place; result in column n."""
    n = len(a)
    for col in range(n):
        pivot_row = next((r for r in range(col, n) if a[r][col] != 0), None)
        if pivot_row is None:
            raise ValueError("singular balance system (chain not irreducible?)")
        a[col], a[pivot_row] = a[pivot_row], a[col]
        pivot = a[col][col]
        a[col] = [x / pivot for x in a[col]]
        for r in range(n):
            if r != col and a[r][col] != 0:
                factor = a[r][col]
                a[r] = [x - factor * y for x, y in zip(a[r], a[col])]


def birth_death_steady_state(birth_rates: Iterable[Rate],
                             death_rates: Iterable[Rate]) -> list[Fraction]:
    """Closed-form steady state of a birth-death chain (validation aid).

    ``birth_rates[k]`` is the rate from state k to k+1 and
    ``death_rates[k]`` the rate from k+1 to k.  Returns exact
    probabilities ``pi_0 .. pi_K``.
    """
    births = [Fraction(b) for b in birth_rates]
    deaths = [Fraction(d) for d in death_rates]
    if len(births) != len(deaths):
        raise ValueError("need matching birth and death rate lists")
    if any(d == 0 for d in deaths):
        raise ValueError("death rates must be positive")
    weights = [Fraction(1)]
    for b, d in zip(births, deaths):
        weights.append(weights[-1] * b / d)
    total = sum(weights)
    return [w / total for w in weights]
