"""Exact availability of the exact dynamic protocol (small N).

The Figure 3 chain idealises the epoch dynamics (any grid >= 4 tolerates
one failure; stuck epochs recover by roll-call).  The Monte Carlo module
measures the exact behaviour with sampling noise.  This module removes
the noise: it builds the *full* continuous-time Markov chain over states

    (current epoch, set of up nodes)

by reachability exploration from the all-up state -- node failures and
repairs toggle the up-set, and each toggle is followed by an
instantaneous epoch check that re-forms the epoch whenever the up nodes
contain a write quorum over the current one (site-model assumption 4,
with the *real* coterie rule deciding).  Solving the chain gives the
exact steady-state read/write unavailability of the protocol the code
actually runs.

The state space is the reachable subset of (epochs x up-sets); it grows
quickly with N (hundreds of states at N = 6, tens of thousands by
N = 10), so this is a small-N instrument -- exactly where the
idealisation gap lives.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.coteries.base import Coterie, CoterieRule
from repro.coteries.grid import GridCoterie

State = tuple[frozenset, frozenset]  # (epoch, up)


class ExactDynamicChain:
    """The reachable (epoch, up-set) CTMC of the dynamic protocol."""

    def __init__(self, n_nodes: int, lam: float, mu: float,
                 rule: CoterieRule = GridCoterie,
                 max_states: int = 8000):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        if lam <= 0 or mu <= 0:
            raise ValueError("rates must be positive")
        self.nodes = tuple(f"n{i:03d}" for i in range(n_nodes))
        self.lam = lam
        self.mu = mu
        self.rule = rule
        self._coteries: dict[frozenset, Coterie] = {}
        self.states: list[State] = []
        self.transitions: dict[State, list[tuple[State, float]]] = {}
        self._explore(max_states)

    # -- structure ------------------------------------------------------------
    def _coterie(self, epoch: frozenset) -> Coterie:
        coterie = self._coteries.get(epoch)
        if coterie is None:
            coterie = self.rule(tuple(sorted(epoch)))
            self._coteries[epoch] = coterie
        return coterie

    def _after_check(self, epoch: frozenset, up: frozenset) -> frozenset:
        """The epoch after an instantaneous check (assumption 4)."""
        if self._coterie(epoch).is_write_quorum(up):
            return up
        return epoch

    def _explore(self, max_states: int) -> None:
        everyone = frozenset(self.nodes)
        initial = (everyone, everyone)
        frontier = [initial]
        seen = {initial}
        while frontier:
            state = frontier.pop()
            self.states.append(state)
            if len(self.states) > max_states:
                raise ValueError(
                    f"state space exceeds {max_states}; use Monte Carlo "
                    f"for this N")
            epoch, up = state
            outgoing = []
            for node in self.nodes:
                if node in up:
                    next_up = up - {node}
                    rate = self.lam
                else:
                    next_up = up | {node}
                    rate = self.mu
                next_state = (self._after_check(epoch, next_up), next_up)
                outgoing.append((next_state, rate))
                if next_state not in seen:
                    seen.add(next_state)
                    frontier.append(next_state)
            self.transitions[state] = outgoing

    @property
    def n_states(self) -> int:
        """Number of states in the chain."""
        return len(self.states)

    # -- solution ----------------------------------------------------------------
    def steady_state(self) -> dict[State, float]:
        """Steady-state distribution from global balance."""
        index = {state: i for i, state in enumerate(self.states)}
        n = len(self.states)
        q = np.zeros((n, n))
        for state, outgoing in self.transitions.items():
            i = index[state]
            for next_state, rate in outgoing:
                j = index[next_state]
                q[i, j] += rate
                q[i, i] -= rate
        a = q.T.copy()
        a[-1, :] = 1.0
        b = np.zeros(n)
        b[-1] = 1.0
        pi = np.linalg.solve(a, b)
        return {state: float(p) for state, p in zip(self.states, pi)}

    def unavailability(self, kind: str = "write",
                       pi: Optional[dict] = None) -> float:
        """Steady-state probability that no read/write quorum over the
        current epoch is up."""
        if kind not in ("read", "write"):
            raise ValueError(f"kind must be read or write, got {kind!r}")
        if pi is None:
            pi = self.steady_state()
        total = 0.0
        for (epoch, up), probability in pi.items():
            coterie = self._coterie(epoch)
            available = (coterie.is_write_quorum(up) if kind == "write"
                         else coterie.is_read_quorum(up))
            if not available:
                total += probability
        return total

    def epoch_size_distribution(self, pi: Optional[dict] = None
                                ) -> dict[int, float]:
        """P(|current epoch| = y) -- how far the protocol typically
        shrinks."""
        if pi is None:
            pi = self.steady_state()
        sizes: dict[int, float] = {}
        for (epoch, _up), probability in pi.items():
            sizes[len(epoch)] = sizes.get(len(epoch), 0.0) + probability
        return dict(sorted(sizes.items()))


def exact_dynamic_unavailability(n_nodes: int, lam: float, mu: float,
                                 rule: CoterieRule = GridCoterie,
                                 kind: str = "write") -> float:
    """Convenience wrapper: build, solve, and evaluate in one call."""
    chain = ExactDynamicChain(n_nodes, lam, mu, rule=rule)
    return chain.unavailability(kind=kind)
