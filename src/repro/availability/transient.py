"""Transient (hitting-time) analysis of the availability chains.

Steady-state unavailability (Table 1) hides the *texture* of failures:
how long does a freshly healthy system run before its first outage
(MTTF), and how long does an outage last once it starts?  Both are
first-passage times of the Figure 3 chain:

* ``hitting_time`` solves ``Q_UU h = -1`` over the non-target states --
  the standard CTMC expected-hitting-time system -- exactly (rational
  arithmetic) or in floats;
* :func:`dynamic_grid_mttf` is the hitting time of the stuck block from
  the all-up state;
* :func:`dynamic_grid_outage_duration` is the hitting time of the
  available band from the stuck-entry state ``("U", min_epoch-1, 0)``
  (the only way in, so no entry-distribution averaging is needed).

A consistency identity ties the two back to Table 1 (renewal-reward over
up/down cycles)::

    unavailability = E[outage] / (E[up-time per cycle] + E[outage])

where the up-time per cycle starts from the post-recovery re-entry
distribution; the tests verify this exactly by computing that
distribution from the chain.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, Iterable, Union

from repro.availability.chains.dynamic_grid import (
    build_epoch_chain,
    grid_min_epoch,
)
from repro.availability.markov import MarkovChain, _gauss_solve_inplace

Number = Union[int, float, Fraction]
State = Hashable


def hitting_time(chain: MarkovChain, targets: Iterable[State],
                 exact: bool = True) -> dict[State, Union[Fraction, float]]:
    """Expected time to reach any target state, from every state.

    Solves ``sum_d Q(s, d) * h(d) = -1`` for non-target s with h = 0 on
    targets.  Requires the target set to be reachable from every state
    (true for irreducible chains).
    """
    target_set = set(targets)
    if not target_set:
        raise ValueError("empty target set")
    unknown = [s for s in chain.states if s not in target_set]
    missing = target_set - set(chain.states)
    if missing:
        raise ValueError(f"targets not in chain: {missing}")
    if not unknown:
        return {s: Fraction(0) if exact else 0.0 for s in target_set}

    index = {s: i for i, s in enumerate(unknown)}
    n = len(unknown)
    # augmented rational system: rows = equations for unknown states
    a = [[Fraction(0)] * (n + 1) for _ in range(n)]
    for i in range(n):
        a[i][n] = Fraction(-1)
    for (src, dst), rate in chain.transitions().items():
        if src in target_set:
            continue
        i = index[src]
        a[i][i] -= rate
        if dst not in target_set:
            a[i][index[dst]] += rate
    _gauss_solve_inplace(a)
    result: dict[State, Union[Fraction, float]] = {}
    for s in target_set:
        result[s] = Fraction(0) if exact else 0.0
    for s, i in index.items():
        result[s] = a[i][n] if exact else float(a[i][n])
    return result


def _stuck(state) -> bool:
    return state[0] == "U"


def dynamic_grid_mttf(n_nodes: int, lam: Number = 1, mu: Number = 19,
                      exact: bool = True) -> Union[Fraction, float]:
    """Expected time from all-up to the first stuck (unavailable) state."""
    chain = build_epoch_chain(n_nodes, lam, mu, grid_min_epoch(n_nodes))
    stuck = [s for s in chain.states if _stuck(s)]
    times = hitting_time(chain, stuck, exact=exact)
    return times[("A", n_nodes)]


def dynamic_grid_outage_duration(n_nodes: int, lam: Number = 1,
                                 mu: Number = 19,
                                 exact: bool = True
                                 ) -> Union[Fraction, float]:
    """Expected duration of one outage (stuck period).

    Outages always begin in ``("U", min_epoch-1, 0)``: in the available
    state ``("A", min_epoch)`` every node outside the epoch is down (the
    instantaneous epoch check absorbs any up node), so the fatal failure
    leaves z = 0 up outsiders.  The entry state being unique, no
    entry-distribution averaging is needed.
    """
    min_epoch = grid_min_epoch(n_nodes)
    chain = build_epoch_chain(n_nodes, lam, mu, min_epoch)
    available = [s for s in chain.states if not _stuck(s)]
    times = hitting_time(chain, available, exact=exact)
    return times[("U", min_epoch - 1, 0)]


def cycle_unavailability(n_nodes: int, lam: Number = 1, mu: Number = 19
                         ) -> Fraction:
    """Unavailability via renewal-reward over up/down cycles (exact).

    Must equal the steady-state answer; used as an independent check of
    both the solver and the transient machinery.  The up-phase of a cycle
    starts from the distribution over available states at outage exit,
    which requires one pass of exit-probability bookkeeping.
    """
    min_epoch = grid_min_epoch(n_nodes)
    chain = build_epoch_chain(n_nodes, lam, mu, min_epoch)
    stuck = [s for s in chain.states if _stuck(s)]
    entry = ("U", min_epoch - 1, 0)

    down = hitting_time(chain, [s for s in chain.states if not _stuck(s)])
    expected_down = down[entry]

    exit_distribution = _exit_distribution(chain, entry)
    up = hitting_time(chain, stuck)
    expected_up = sum(probability * up[state]
                      for state, probability in exit_distribution.items())
    return expected_down / (expected_up + expected_down)


def _exit_distribution(chain: MarkovChain, entry: State
                       ) -> dict[State, Fraction]:
    """P(first available state reached is a | start at *entry*).

    Standard absorption probabilities of the embedded jump chain with the
    available states made absorbing.
    """
    stuck = [s for s in chain.states if _stuck(s)]
    index = {s: i for i, s in enumerate(stuck)}
    n = len(stuck)
    out_rates = {s: Fraction(0) for s in stuck}
    for (src, _dst), rate in chain.transitions().items():
        if src in index:
            out_rates[src] += rate
    available = [s for s in chain.states if not _stuck(s)]
    result: dict[State, Fraction] = {}
    for target in available:
        # b(s) = P(absorbed at `target` | start s); solve linear system
        a = [[Fraction(0)] * (n + 1) for _ in range(n)]
        for i, s in enumerate(stuck):
            a[i][i] = Fraction(-1)
        for (src, dst), rate in chain.transitions().items():
            if src not in index:
                continue
            i = index[src]
            jump = rate / out_rates[src]
            if dst in index:
                a[i][index[dst]] += jump
            elif dst == target:
                a[i][n] -= jump
        _gauss_solve_inplace(a)
        probability = a[index[entry]][n]
        if probability:
            result[target] = probability
    return result
