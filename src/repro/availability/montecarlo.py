"""Monte Carlo availability under the site model.

Three estimators:

* :func:`simulate_static_availability` -- a static protocol is available
  iff the up-set contains a quorum over the full replica set.

* :func:`simulate_dynamic_availability` -- the *exact* dynamic epoch
  semantics.  With ``check_interval=None`` (the default) an epoch check
  runs instantaneously after every failure/repair event -- the paper's
  site-model assumption (4).  A check succeeds iff the up nodes include a
  write quorum over the current epoch, in which case the epoch becomes
  exactly the up-set.  With a finite ``check_interval``, checks run
  periodically instead, quantifying how much assumption (4) is worth
  (experiment E13): between checks the epoch is frozen, so bursts of
  failures can take quorums away before the protocol adapts.

  ``kind`` selects write availability (default) or read availability
  (``up-set contains a read quorum over the current epoch``) -- the read
  analysis the paper omits as "completely analogous".

  ``idealized=True`` replaces the exact quorum condition with the
  Figure 3 assumptions (any epoch > 3 sheds one failure; a stuck epoch
  recovers when all of its members are up), so the estimator converges to
  the chain -- a validation aid.  Only supported with instantaneous
  checks.

Both estimators use Gillespie-style event sampling and are exact in
distribution for the site model.  Statistical resolution scales as
~1/sqrt(horizon); use them for moderate unavailabilities (p <= ~0.9) or
protocol comparisons, not for resolving Table 1's 1e-14 values.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.coteries.base import CoterieRule
from repro.coteries.grid import GridCoterie


@dataclass
class AvailabilityEstimate:
    """Result of a Monte Carlo availability run."""

    availability: float
    unavailability: float
    horizon: float
    n_events: int
    n_epoch_changes: int
    n_stuck_periods: int

    def __str__(self) -> str:
        return (f"availability={self.availability:.6f} over "
                f"t={self.horizon:g} ({self.n_events} events, "
                f"{self.n_epoch_changes} epoch changes)")


def _site_model_events(n_nodes: int, lam: float, mu: float,
                       horizon: float, rng: random.Random):
    """Yield (time, node_index, now_up) events of the site model.

    All nodes start up.  Gillespie sampling: exponential holding time at
    total rate ``n_up*lam + n_down*mu``, then a uniformly chosen eligible
    node flips.
    """
    up = [True] * n_nodes
    n_up = n_nodes
    now = 0.0
    while True:
        total_rate = n_up * lam + (n_nodes - n_up) * mu
        if total_rate <= 0:
            return
        now += rng.expovariate(total_rate)
        if now >= horizon:
            return
        if rng.random() * total_rate < n_up * lam:
            target_rank = rng.randrange(n_up)
            wanted_state = True
            n_up -= 1
        else:
            target_rank = rng.randrange(n_nodes - n_up)
            wanted_state = False
            n_up += 1
        seen = 0
        for index in range(n_nodes):
            if up[index] == wanted_state:
                if seen == target_rank:
                    up[index] = not wanted_state
                    yield now, index, up[index]
                    break
                seen += 1


def simulate_static_availability(n_nodes: int, lam: float, mu: float,
                                 horizon: float, seed: int = 0,
                                 rule: CoterieRule = GridCoterie,
                                 kind: str = "write") -> AvailabilityEstimate:
    """Fraction of time the up-set contains a static quorum."""
    _check_kind(kind)
    rng = random.Random(seed)
    nodes = [f"n{i:03d}" for i in range(n_nodes)]
    coterie = rule(nodes)
    predicate = (coterie.is_write_quorum if kind == "write"
                 else coterie.is_read_quorum)
    up: set[str] = set(nodes)
    available_time = 0.0
    last_time, was_available = 0.0, predicate(up)
    n_events = 0
    for now, index, now_up in _site_model_events(n_nodes, lam, mu,
                                                 horizon, rng):
        n_events += 1
        if was_available:
            available_time += now - last_time
        if now_up:
            up.add(nodes[index])
        else:
            up.discard(nodes[index])
        last_time, was_available = now, predicate(up)
    if was_available:
        available_time += horizon - last_time
    availability = available_time / horizon
    return AvailabilityEstimate(availability, 1.0 - availability, horizon,
                                n_events, 0, 0)


class _EpochTracker:
    """The dynamic protocol's epoch state, exact or idealised."""

    def __init__(self, nodes, rule, idealized: bool):
        self.nodes = nodes
        self.rule = rule
        self.idealized = idealized
        self.epoch = tuple(nodes)
        self.coterie = rule(self.epoch)
        self.min_epoch = min(len(nodes), 3)
        self.n_epoch_changes = 0

    def check(self, up: set[str]) -> bool:
        """Run one epoch check; returns success."""
        if self._check_succeeds(up):
            new_epoch = tuple(name for name in self.nodes if name in up)
            if new_epoch != self.epoch:
                self.epoch = new_epoch
                self.coterie = self.rule(new_epoch)
                self.n_epoch_changes += 1
            return True
        return False

    def _check_succeeds(self, up: set[str]) -> bool:
        if not self.idealized:
            return self.coterie.is_write_quorum(up)
        members_up = sum(1 for name in self.epoch if name in up)
        if len(self.epoch) > self.min_epoch:
            return (members_up >= len(self.epoch) - 1
                    and members_up >= self.min_epoch)
        return members_up == len(self.epoch)

    def operation_available(self, up: set[str], kind: str) -> bool:
        """Can a read/write find its quorum over the *current* epoch?"""
        if kind == "write":
            if self.idealized:
                # in the idealised model, write availability coincides
                # with epoch-check success (the Figure 3 "upper row")
                return self._check_succeeds(up)
            return self.coterie.is_write_quorum(up)
        return self.coterie.is_read_quorum(up)


def simulate_dynamic_availability(
        n_nodes: int, lam: float, mu: float, horizon: float, seed: int = 0,
        rule: CoterieRule = GridCoterie,
        idealized: bool = False,
        check_interval: Optional[float] = None,
        kind: str = "write") -> AvailabilityEstimate:
    """Fraction of time the dynamic epoch protocol is available."""
    _check_kind(kind)
    if idealized and check_interval is not None:
        raise ValueError("idealized mode assumes instantaneous checks")
    if check_interval is not None and check_interval <= 0:
        raise ValueError("check_interval must be positive")
    rng = random.Random(seed)
    nodes = [f"n{i:03d}" for i in range(n_nodes)]
    tracker = _EpochTracker(nodes, rule, idealized)
    up: set[str] = set(nodes)
    available_time = 0.0
    last_time = 0.0
    was_available = True
    n_events = n_stuck = 0
    next_check = check_interval if check_interval is not None else None

    def account(now: float, now_available: bool) -> None:
        nonlocal available_time, last_time, was_available, n_stuck
        if was_available:
            available_time += now - last_time
        if was_available and not now_available:
            n_stuck += 1
        last_time, was_available = now, now_available

    for now, index, now_up in _site_model_events(n_nodes, lam, mu,
                                                 horizon, rng):
        # run any periodic checks scheduled before this event
        while next_check is not None and next_check <= now:
            tracker.check(up)
            account(next_check,
                    tracker.operation_available(up, kind))
            next_check += check_interval
        n_events += 1
        if now_up:
            up.add(nodes[index])
        else:
            up.discard(nodes[index])
        if check_interval is None:
            tracker.check(up)  # site-model assumption (4)
        account(now, tracker.operation_available(up, kind))
    while next_check is not None and next_check < horizon:
        tracker.check(up)
        account(next_check, tracker.operation_available(up, kind))
        next_check += check_interval
    if was_available:
        available_time += horizon - last_time
    availability = available_time / horizon
    return AvailabilityEstimate(availability, 1.0 - availability, horizon,
                                n_events, tracker.n_epoch_changes, n_stuck)


def _check_kind(kind: str) -> None:
    if kind not in ("read", "write"):
        raise ValueError(f"kind must be read or write, got {kind!r}")
