"""Monte Carlo availability under the site model.

Three estimators:

* :func:`simulate_static_availability` -- a static protocol is available
  iff the up-set contains a quorum over the full replica set.

* :func:`simulate_dynamic_availability` -- the *exact* dynamic epoch
  semantics.  With ``check_interval=None`` (the default) an epoch check
  runs instantaneously after every failure/repair event -- the paper's
  site-model assumption (4).  A check succeeds iff the up nodes include a
  write quorum over the current epoch, in which case the epoch becomes
  exactly the up-set.  With a finite ``check_interval``, checks run
  periodically instead, quantifying how much assumption (4) is worth
  (experiment E13): between checks the epoch is frozen, so bursts of
  failures can take quorums away before the protocol adapts.

  ``kind`` selects write availability (default) or read availability
  (``up-set contains a read quorum over the current epoch``) -- the read
  analysis the paper omits as "completely analogous".

  ``idealized=True`` replaces the exact quorum condition with the
  Figure 3 assumptions (any epoch > 3 sheds one failure; a stuck epoch
  recovers when all of its members are up), so the estimator converges to
  the chain -- a validation aid.  Only supported with instantaneous
  checks.

* :func:`repro.availability.parallel.simulate_availability_parallel` --
  the multiprocessing fan-out over either estimator, for long horizons.

Both estimators use Gillespie-style event sampling and are exact in
distribution for the site model.  Statistical resolution scales as
~1/sqrt(horizon); use them for moderate unavailabilities (p <= ~0.9) or
protocol comparisons, not for resolving Table 1's 1e-14 values.

Performance engines
-------------------

``engine`` selects how quorum membership is evaluated per event:

* ``"bitmask"`` (default) -- each coterie is compiled once into an
  incremental :class:`~repro.coteries.base.QuorumEvaluator`
  (``coterie.compile(nodes)``): the up-set is an integer bitmask and a
  failure/repair event updates per-structure counters in O(1) instead of
  rescanning the structure.  On epoch changes the dynamic estimator
  rebinds the evaluator in place when the structure is a uniform
  function of the member mask (grid, default majority; see
  :meth:`~repro.coteries.base.QuorumEvaluator.rebind_epoch`), and
  otherwise falls back to an LRU cache of compiled epoch coteries keyed
  by the epoch's member bitmask, so epoch flapping between a handful of
  up-sets never re-derives the structure.
* ``"set"`` -- the original set-of-names predicates, kept verbatim as
  the reference implementation.

``sampler`` selects how the flipping node is drawn:

* ``"compat"`` (default) -- order-statistics selection via a Fenwick
  tree, O(log N) per event.  This reproduces the original O(N)
  linear-rank scan *bit for bit*: same RNG consumption, same node
  choices, same trajectories.
* ``"swap"`` -- swap-index up/down arrays, O(1) per event.  Identical
  event-time/event-type process and up-count trajectory for a given
  seed (the RNG stream is consumed identically), but the *identity* of
  the flipped node differs, so availability estimates agree only in
  distribution, not pathwise.

Both axes are orthogonal and property-tested against each other; with
the defaults, same-seed runs are bit-identical to the original
implementation (a regression test pins golden values).
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.coteries.base import CoterieRule
from repro.sim.seeding import derive_rng
from repro.coteries.grid import GridCoterie

_popcount = int.bit_count

#: maximum number of compiled epoch coteries kept per estimator run
EPOCH_CACHE_SIZE = 64


@dataclass
class AvailabilityEstimate:
    """Result of a Monte Carlo availability run."""

    availability: float
    unavailability: float
    horizon: float
    n_events: int
    n_epoch_changes: int
    n_stuck_periods: int

    def __str__(self) -> str:
        return (f"availability={self.availability:.6f} over "
                f"t={self.horizon:g} ({self.n_events} events, "
                f"{self.n_epoch_changes} epoch changes)")


class _IndexedSet:
    """A Fenwick-tree set of integers 0..n-1 with order-statistics select.

    ``select(r)`` returns the r-th smallest member (0-based) in
    O(log n); ``add``/``remove`` are O(log n).  Used by the ``compat``
    sampler to pick "the target_rank-th eligible node in index order" --
    the exact selection rule of the original linear scan -- without the
    O(N) walk.
    """

    __slots__ = ("_size", "_tree")

    def __init__(self, n: int, members=()):
        size = 1
        while size < n:
            size <<= 1
        self._size = size
        self._tree = [0] * (size + 1)
        for i in members:
            self.add(i)

    def add(self, i: int) -> None:
        tree, size = self._tree, self._size
        i += 1
        while i <= size:
            tree[i] += 1
            i += i & -i

    def remove(self, i: int) -> None:
        tree, size = self._tree, self._size
        i += 1
        while i <= size:
            tree[i] -= 1
            i += i & -i

    def select(self, rank: int) -> int:
        """The member with 0-based *rank* in increasing index order."""
        tree = self._tree
        pos = 0
        step = self._size
        rank += 1
        while step:
            nxt = pos + step
            if tree[nxt] < rank:
                pos = nxt
                rank -= tree[nxt]
            step >>= 1
        return pos


def _site_model_events(n_nodes: int, lam: float, mu: float,
                       horizon: float, rng: random.Random,
                       sampler: str = "compat"):
    """Yield (time, node_index, now_up) events of the site model.

    All nodes start up.  Gillespie sampling: exponential holding time at
    total rate ``n_up*lam + n_down*mu``, then a uniformly chosen eligible
    node flips.  Both samplers consume the RNG identically (expovariate,
    uniform, randrange over the eligible count); they differ only in how
    the drawn rank is mapped to a node index -- see the module docs.
    """
    if sampler == "compat":
        yield from _events_compat(n_nodes, lam, mu, horizon, rng)
    elif sampler == "swap":
        yield from _events_swap(n_nodes, lam, mu, horizon, rng)
    else:
        raise ValueError(f"sampler must be compat or swap, got {sampler!r}")


def _events_compat(n_nodes: int, lam: float, mu: float,
                   horizon: float, rng: random.Random):
    """Rank-in-index-order selection via Fenwick trees, O(log N)/event.

    Bit-identical to the original implementation's O(N) scan: the rank
    drawn by ``rng.randrange`` indexes the eligible nodes in increasing
    node order.
    """
    up_set = _IndexedSet(n_nodes, range(n_nodes))
    down_set = _IndexedSet(n_nodes)
    n_up = n_nodes
    now = 0.0
    expovariate, uniform, randrange = (rng.expovariate, rng.random,
                                       rng.randrange)
    while True:
        total_rate = n_up * lam + (n_nodes - n_up) * mu
        if total_rate <= 0:
            return
        now += expovariate(total_rate)
        if now >= horizon:
            return
        if uniform() * total_rate < n_up * lam:
            index = up_set.select(randrange(n_up))
            up_set.remove(index)
            down_set.add(index)
            n_up -= 1
            yield now, index, False
        else:
            index = down_set.select(randrange(n_nodes - n_up))
            down_set.remove(index)
            up_set.add(index)
            n_up += 1
            yield now, index, True


def _events_swap(n_nodes: int, lam: float, mu: float,
                 horizon: float, rng: random.Random):
    """Swap-index selection, O(1)/event.

    ``order[:n_up]`` holds the up nodes, ``order[n_up:]`` the down
    nodes, in arbitrary order; the drawn rank indexes straight into the
    eligible region and the chosen node is swapped to the boundary.
    Uniform over eligible nodes (same distribution as ``compat``) but
    not the same node for the same draw.
    """
    order = list(range(n_nodes))
    n_up = n_nodes
    now = 0.0
    expovariate, uniform, randrange = (rng.expovariate, rng.random,
                                       rng.randrange)
    while True:
        total_rate = n_up * lam + (n_nodes - n_up) * mu
        if total_rate <= 0:
            return
        now += expovariate(total_rate)
        if now >= horizon:
            return
        if uniform() * total_rate < n_up * lam:
            r = randrange(n_up)
            n_up -= 1
            index = order[r]
            order[r] = order[n_up]
            order[n_up] = index
            yield now, index, False
        else:
            r = n_up + randrange(n_nodes - n_up)
            index = order[r]
            order[r] = order[n_up]
            order[n_up] = index
            n_up += 1
            yield now, index, True


def simulate_static_availability(n_nodes: int, lam: float, mu: float,
                                 horizon: float, seed: int = 0,
                                 rule: CoterieRule = GridCoterie,
                                 kind: str = "write",
                                 engine: str = "bitmask",
                                 sampler: str = "compat"
                                 ) -> AvailabilityEstimate:
    """Fraction of time the up-set contains a static quorum."""
    _check_kind(kind)
    _check_engine(engine)
    # derive_rng with no namespace is exactly Random(seed): the golden
    # regression values pin this stream bit-for-bit
    rng = derive_rng(seed)
    nodes = [f"n{i:03d}" for i in range(n_nodes)]
    coterie = rule(nodes)
    events = _site_model_events(n_nodes, lam, mu, horizon, rng, sampler)
    available_time = 0.0
    last_time = 0.0
    n_events = 0
    if engine == "bitmask":
        evaluator = coterie.compile(nodes)
        evaluator.reset((1 << n_nodes) - 1)
        predicate = (evaluator.is_write_quorum if kind == "write"
                     else evaluator.is_read_quorum)
        node_up, node_down = evaluator.node_up, evaluator.node_down
        was_available = predicate()
        for now, index, now_up in events:
            n_events += 1
            if was_available:
                available_time += now - last_time
            if now_up:
                node_up(index)
            else:
                node_down(index)
            last_time, was_available = now, predicate()
    else:
        predicate = (coterie.is_write_quorum if kind == "write"
                     else coterie.is_read_quorum)
        up: set[str] = set(nodes)
        was_available = predicate(up)
        for now, index, now_up in events:
            n_events += 1
            if was_available:
                available_time += now - last_time
            if now_up:
                up.add(nodes[index])
            else:
                up.discard(nodes[index])
            last_time, was_available = now, predicate(up)
    if was_available:
        available_time += horizon - last_time
    availability = available_time / horizon
    return AvailabilityEstimate(availability, 1.0 - availability, horizon,
                                n_events, 0, 0)


class _EpochTracker:
    """The dynamic protocol's epoch state, exact or idealised (set engine).

    This is the reference implementation: the up-set is a set of names
    and every check re-runs the set-based write-quorum predicate.  The
    only optimisation is the coterie cache -- ``rule(epoch)`` instances
    are memoised per epoch tuple (LRU), so an epoch flapping between two
    up-sets stops reconstructing :class:`GridCoterie` objects each time.
    Coterie construction is deterministic and stateless, so caching
    cannot change any answer.
    """

    def __init__(self, nodes, rule, idealized: bool,
                 cache_size: int = EPOCH_CACHE_SIZE):
        self.nodes = nodes
        self.rule = rule
        self.idealized = idealized
        self._cache: OrderedDict = OrderedDict()
        self._cache_size = cache_size
        self.epoch = tuple(nodes)
        self.coterie = self._coterie_for(self.epoch)
        self.min_epoch = min(len(nodes), 3)
        self.n_epoch_changes = 0

    def _coterie_for(self, epoch: tuple):
        cache = self._cache
        coterie = cache.get(epoch)
        if coterie is None:
            coterie = self.rule(epoch)
            cache[epoch] = coterie
            if len(cache) > self._cache_size:
                cache.popitem(last=False)
        else:
            cache.move_to_end(epoch)
        return coterie

    def check(self, up: set[str]) -> bool:
        """Run one epoch check; returns success."""
        if self._check_succeeds(up):
            new_epoch = tuple(name for name in self.nodes if name in up)
            if new_epoch != self.epoch:
                self.epoch = new_epoch
                self.coterie = self._coterie_for(new_epoch)
                self.n_epoch_changes += 1
            return True
        return False

    def _check_succeeds(self, up: set[str]) -> bool:
        if not self.idealized:
            return self.coterie.is_write_quorum(up)
        members_up = sum(1 for name in self.epoch if name in up)
        if len(self.epoch) > self.min_epoch:
            return (members_up >= len(self.epoch) - 1
                    and members_up >= self.min_epoch)
        return members_up == len(self.epoch)

    def operation_available(self, up: set[str], kind: str) -> bool:
        """Can a read/write find its quorum over the *current* epoch?"""
        if kind == "write":
            if self.idealized:
                # in the idealised model, write availability coincides
                # with epoch-check success (the Figure 3 "upper row")
                return self._check_succeeds(up)
            return self.coterie.is_write_quorum(up)
        return self.coterie.is_read_quorum(up)


class _SetDynamicState:
    """Adapter giving :class:`_EpochTracker` the shared loop interface."""

    def __init__(self, nodes, rule, idealized: bool):
        self.nodes = nodes
        self.tracker = _EpochTracker(nodes, rule, idealized)
        self.up: set[str] = set(nodes)

    def apply_event(self, index: int, now_up: bool) -> None:
        if now_up:
            self.up.add(self.nodes[index])
        else:
            self.up.discard(self.nodes[index])

    def check(self) -> bool:
        return self.tracker.check(self.up)

    def available(self, kind: str) -> bool:
        return self.tracker.operation_available(self.up, kind)

    @property
    def n_epoch_changes(self) -> int:
        return self.tracker.n_epoch_changes


class _BitmaskDynamicState:
    """The dynamic epoch state on compiled evaluators and bitmasks.

    The up-set and the epoch member list are bitmasks over the full
    replica universe; the current epoch's coterie is compiled once over
    that universe (bit positions never move) and updated incrementally
    per event.  Epoch changes take one of two paths:

    * **rebind** -- evaluators whose structure is a uniform function of
      the epoch mask (grid, default majority) re-derive their tables in
      place from the new mask, with no coterie construction at all;
    * **cached compile** -- other rules fall back to an LRU cache of
      compiled (coterie, evaluator) pairs keyed by the epoch bitmask,
      so re-entering a recently seen epoch costs one tally reload
      instead of re-deriving the whole structure.

    The rebind path matters: at N >= 25 nearly every event changes the
    epoch and masks rarely recur within any reasonable cache window, so
    per-epoch-change construction cost is the dynamic hot path.
    """

    def __init__(self, nodes, rule, idealized: bool,
                 cache_size: int = EPOCH_CACHE_SIZE):
        self.nodes = tuple(nodes)
        self.rule = rule
        self.idealized = idealized
        n = len(self.nodes)
        self.full_mask = (1 << n) - 1
        self.min_epoch = min(n, 3)
        self.n_epoch_changes = 0
        self._cache: OrderedDict = OrderedDict()
        self._cache_size = cache_size
        self.up_mask = self.full_mask
        self.epoch_mask = self.full_mask
        self.epoch_size = n
        self.evaluator = self._evaluator_for(self.full_mask)
        self.evaluator.reset_full()
        self._rebind = self.evaluator.supports_rebind

    def _evaluator_for(self, epoch_mask: int):
        cache = self._cache
        evaluator = cache.get(epoch_mask)
        if evaluator is None:
            epoch = tuple(name for i, name in enumerate(self.nodes)
                          if epoch_mask >> i & 1)
            evaluator = self.rule(epoch).compile(self.nodes)
            cache[epoch_mask] = evaluator
            if len(cache) > self._cache_size:
                cache.popitem(last=False)
        else:
            cache.move_to_end(epoch_mask)
        return evaluator

    def apply_event(self, index: int, now_up: bool) -> None:
        if now_up:
            self.up_mask |= 1 << index
            self.evaluator.node_up(index)
        else:
            self.up_mask &= ~(1 << index)
            self.evaluator.node_down(index)

    def check(self) -> bool:
        if self._check_succeeds():
            if self.up_mask != self.epoch_mask:
                self.epoch_mask = self.up_mask
                self.epoch_size = _popcount(self.up_mask)
                if self._rebind:
                    self.evaluator.rebind_epoch(self.up_mask)
                else:
                    self.evaluator = self._evaluator_for(self.up_mask)
                    # the new epoch is exactly the up-set, so every
                    # member of the new coterie is up: O(1) tally reload
                    self.evaluator.reset_full()
                self.n_epoch_changes += 1
            return True
        return False

    def _check_succeeds(self) -> bool:
        if not self.idealized:
            return self.evaluator.is_write_quorum()
        members_up = _popcount(self.epoch_mask & self.up_mask)
        if self.epoch_size > self.min_epoch:
            return (members_up >= self.epoch_size - 1
                    and members_up >= self.min_epoch)
        return members_up == self.epoch_size

    def available(self, kind: str) -> bool:
        if kind == "write":
            if self.idealized:
                return self._check_succeeds()
            return self.evaluator.is_write_quorum()
        return self.evaluator.is_read_quorum()


def simulate_dynamic_availability(
        n_nodes: int, lam: float, mu: float, horizon: float, seed: int = 0,
        rule: CoterieRule = GridCoterie,
        idealized: bool = False,
        check_interval: Optional[float] = None,
        kind: str = "write",
        engine: str = "bitmask",
        sampler: str = "compat") -> AvailabilityEstimate:
    """Fraction of time the dynamic epoch protocol is available."""
    _check_kind(kind)
    _check_engine(engine)
    if idealized and check_interval is not None:
        raise ValueError("idealized mode assumes instantaneous checks")
    if check_interval is not None and check_interval <= 0:
        raise ValueError("check_interval must be positive")
    # derive_rng with no namespace is exactly Random(seed): the golden
    # regression values pin this stream bit-for-bit
    rng = derive_rng(seed)
    nodes = [f"n{i:03d}" for i in range(n_nodes)]
    if engine == "bitmask":
        state = _BitmaskDynamicState(nodes, rule, idealized)
    else:
        state = _SetDynamicState(nodes, rule, idealized)
    apply_event, run_check, available = (state.apply_event, state.check,
                                         state.available)
    available_time = 0.0
    last_time = 0.0
    was_available = True
    n_events = n_stuck = 0
    next_check = check_interval if check_interval is not None else None

    def account(now: float, now_available: bool) -> None:
        nonlocal available_time, last_time, was_available, n_stuck
        if was_available:
            available_time += now - last_time
        if was_available and not now_available:
            n_stuck += 1
        last_time, was_available = now, now_available

    for now, index, now_up in _site_model_events(n_nodes, lam, mu,
                                                 horizon, rng, sampler):
        # run any periodic checks scheduled before this event
        while next_check is not None and next_check <= now:
            run_check()
            account(next_check, available(kind))
            next_check += check_interval
        n_events += 1
        apply_event(index, now_up)
        if check_interval is None:
            run_check()  # site-model assumption (4)
        account(now, available(kind))
    while next_check is not None and next_check < horizon:
        run_check()
        account(next_check, available(kind))
        next_check += check_interval
    if was_available:
        available_time += horizon - last_time
    availability = available_time / horizon
    return AvailabilityEstimate(availability, 1.0 - availability, horizon,
                                n_events, state.n_epoch_changes, n_stuck)


def _check_kind(kind: str) -> None:
    if kind not in ("read", "write"):
        raise ValueError(f"kind must be read or write, got {kind!r}")


def _check_engine(engine: str) -> None:
    if engine not in ("bitmask", "set"):
        raise ValueError(f"engine must be bitmask or set, got {engine!r}")
