"""Availability analysis (paper Section 6).

* :mod:`repro.availability.markov` -- a continuous-time Markov chain with a
  global-balance steady-state solver (float via numpy, or exact rational
  arithmetic for the very small probabilities in Table 1).
* :mod:`repro.availability.chains` -- the paper's Figure 3 chain for the
  dynamic grid protocol, plus analogous chains for dynamic (linear) voting.
* :mod:`repro.availability.formulas` -- closed-form static availability for
  grid / voting / ROWA / tree / hierarchical coteries, and an exact
  enumeration cross-check for any coterie.
* :mod:`repro.availability.montecarlo` -- availability measured from
  simulated failure/repair trajectories, including the *exact* epoch
  dynamics that the paper's chain idealises away.
* :mod:`repro.availability.parallel` -- multiprocessing fan-out over the
  Monte Carlo estimators: the horizon is sharded across worker
  processes and the shard estimates merged by horizon weighting.
* :mod:`repro.availability.vectorized` -- the ``vector`` Monte Carlo
  engine: trajectory-batched numpy simulation scored through the batch
  quorum kernels instead of a per-event Python loop.
* :mod:`repro.availability.exact` -- exact weighted enumeration over all
  ``2^N`` masks (N <= 24): hit counts by up-count give availability as a
  polynomial in ``p``, so whole parameter sweeps cost one enumeration.
"""

from repro.availability.markov import MarkovChain, birth_death_steady_state
from repro.availability.formulas import (
    availability_by_enumeration,
    grid_read_availability,
    grid_write_availability,
    majority_availability,
    rowa_read_availability,
    rowa_write_availability,
)
from repro.availability.chains.dynamic_grid import (
    build_epoch_chain,
    dynamic_grid_unavailability,
)
from repro.availability.chains.dynamic_voting import (
    dynamic_linear_voting_unavailability,
    dynamic_voting_unavailability,
)
from repro.availability.exact import (
    availability_from_hit_counts,
    exact_availability_curve,
    exact_static_availability,
    quorum_hit_counts,
    steady_availability,
)
from repro.availability.exact_dynamic import (
    ExactDynamicChain,
    exact_dynamic_unavailability,
)
from repro.availability.montecarlo import (
    simulate_dynamic_availability,
    simulate_static_availability,
)
from repro.availability.parallel import (
    merge_estimates,
    simulate_availability_parallel,
)
from repro.availability.vectorized import (
    simulate_dynamic_availability_vector,
    simulate_static_availability_vector,
)
from repro.availability.transient import (
    cycle_unavailability,
    dynamic_grid_mttf,
    dynamic_grid_outage_duration,
    hitting_time,
)

__all__ = [
    "ExactDynamicChain",
    "MarkovChain",
    "cycle_unavailability",
    "dynamic_grid_mttf",
    "dynamic_grid_outage_duration",
    "exact_dynamic_unavailability",
    "hitting_time",
    "availability_by_enumeration",
    "availability_from_hit_counts",
    "birth_death_steady_state",
    "build_epoch_chain",
    "dynamic_grid_unavailability",
    "dynamic_linear_voting_unavailability",
    "dynamic_voting_unavailability",
    "exact_availability_curve",
    "exact_static_availability",
    "grid_read_availability",
    "grid_write_availability",
    "majority_availability",
    "rowa_read_availability",
    "rowa_write_availability",
    "merge_estimates",
    "quorum_hit_counts",
    "simulate_availability_parallel",
    "simulate_dynamic_availability",
    "simulate_dynamic_availability_vector",
    "simulate_static_availability",
    "simulate_static_availability_vector",
    "steady_availability",
]
