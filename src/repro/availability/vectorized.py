"""Trajectory-batched Monte Carlo availability (the ``vector`` engine).

The scalar estimators in :mod:`repro.availability.montecarlo` pay Python
interpreter cost per event: draw one holding time, flip one node, poke a
compiled evaluator.  This module replaces the whole per-event loop with
numpy array passes:

* **Trajectory generation** -- the site model is a superposition of
  independent per-node alternating renewal processes (up-times
  ``Exp(lam)``, down-times ``Exp(mu)``), so whole blocks of flip times
  are drawn per node with one ``standard_exponential`` call and merged
  in time order.  Only events below the *safe horizon* -- the earliest
  per-node frontier -- are emitted per round, so the merged stream is
  globally time-sorted.  This is exact in distribution: it is the same
  process Gillespie sampling draws one event at a time.
* **State construction** -- flips become up/down state matrices via a
  cumulative per-node flip parity (prefix XOR), one ``(events, nodes)``
  boolean matrix per chunk -- or, for families with packed kernels
  (grid, unit-weight voting), one ``(events, W)`` packed uint64 word
  matrix at 1/8th the memory traffic.
* **Scoring** -- quorum membership for the whole chunk is one
  :class:`~repro.coteries.batch.BatchEvaluator` kernel call.

The static estimator is a straight chunk pipeline.  The dynamic
estimator must respect epoch transitions (a successful check rebinds
the epoch to the up-set, changing the predicate for every later event),
so it scores with a doubling *window* scan: evaluate a window of events
under the current epoch, find the first successful check whose up-set
differs from the epoch (exactly the scalar
:class:`~repro.availability.montecarlo._BitmaskDynamicState` transition
condition), keep the prefix, install the new epoch, and continue after
the transition.  Between transitions whole runs of events are scored in
one call; across a transition boundary the window shrinks, which is the
scalar-fallback granularity.  In transition-dense regimes (large N with
instantaneous checks, where nearly every event moves the epoch) the
window floor keeps the scan correct but the scalar bitmask engine may
be faster; the vector engine's headroom is in static scoring and
sparse-transition dynamic runs (finite ``check_interval``).

Estimates agree with the scalar engines in distribution (same site
model, different RNG streams), and bit-for-bit with themselves across
runs: all draws come from one ``numpy.random.Generator`` derived via
:func:`repro.sim.seeding.derive_generator` from the caller's seed.

``idealized=True`` is not supported here -- the Figure 3 idealisation
is a scalar validation aid; use ``engine="bitmask"``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.availability.montecarlo import (
    EPOCH_CACHE_SIZE,
    AvailabilityEstimate,
    _check_kind,
)
from repro.coteries.base import CoterieRule
from repro.coteries.batch import pack_bits, pack_matrix
from repro.coteries.grid import GridCoterie
from repro.sim.seeding import derive_generator

__all__ = [
    "simulate_static_availability_vector",
    "simulate_dynamic_availability_vector",
]

#: flip times drawn per node per generation round
DEFAULT_BLOCK = 256

# dynamic window-scan bounds: start small after a transition, double on
# transition-free windows up to a cap that keeps chunk slices cache-sized
_MIN_WINDOW = 8
_MAX_WINDOW = 1 << 15


def _trajectory_chunks(n_nodes: int, lam: float, mu: float, horizon: float,
                       gen, block: int = DEFAULT_BLOCK):
    """Yield globally time-sorted ``(times, node_indices)`` flip chunks.

    Per round, *block* holding times are drawn for every node and turned
    into absolute flip times; events earlier than every node's frontier
    (the safe horizon) are complete -- no later draw can precede them --
    and are emitted sorted.  The remainder stays pending for the next
    round.  All nodes start up; a node's k-th flip toggles its state.
    """
    last = np.zeros(n_nodes)
    parity = np.zeros(n_nodes, dtype=np.int64)
    pend_t = np.empty(0)
    pend_v = np.empty(0, dtype=np.int64)
    scale_up = 1.0 / lam   # mean up-time before a failure flip
    scale_down = 1.0 / mu  # mean down-time before a repair flip
    cols = np.arange(block)
    node_col = np.repeat(np.arange(n_nodes), block)
    while True:
        draws = gen.standard_exponential((n_nodes, block))
        down = (cols[None, :] + parity[:, None]) % 2 == 1
        times = last[:, None] + np.cumsum(
            draws * np.where(down, scale_down, scale_up), axis=1)
        last = times[:, -1].copy()
        parity += block
        t = np.concatenate([pend_t, times.reshape(-1)])
        v = np.concatenate([pend_v, node_col])
        t_safe = last.min()
        final = t_safe >= horizon
        emit = t < (horizon if final else t_safe)
        if emit.any():
            order = np.argsort(t[emit], kind="stable")
            yield t[emit][order], v[emit][order]
        if final:
            return
        keep = ~emit
        pend_t, pend_v = t[keep], v[keep]


def _states_after(state: np.ndarray, node_idx: np.ndarray,
                  n_nodes: int) -> np.ndarray:
    """``(k, n)`` bool up-states after each flip, starting from *state*."""
    k = node_idx.shape[0]
    # transposed build: the prefix sum runs along the contiguous axis,
    # and uint8 wraparound (mod 256, even) preserves flip parity
    delta = np.zeros((n_nodes, k), dtype=np.uint8)
    delta[node_idx, np.arange(k)] = 1
    parity = np.cumsum(delta, axis=1, dtype=np.uint8)
    return state[None, :] ^ ((parity & 1) == 1).T


def _words_after(state_words: np.ndarray, node_idx: np.ndarray,
                 n_nodes: int) -> np.ndarray:
    """``(k, W)`` packed uint64 up-states after each flip.

    The packed twin of :func:`_states_after`: one-bit word deltas,
    prefix XOR along the contiguous axis, then XOR with the carried-in
    state words.  Feeds ``supports_packed`` evaluators directly.
    """
    k = node_idx.shape[0]
    n_w = state_words.shape[0]
    delta = np.zeros((n_w, k), dtype=np.uint64)
    delta[node_idx >> 6, np.arange(k)] = (
        np.uint64(1) << (node_idx.astype(np.uint64) & np.uint64(63)))
    parity = np.bitwise_xor.accumulate(delta, axis=1)
    return (parity ^ state_words[:, None]).T


class _Accounting:
    """The scalar estimators' interval accounting, over event batches.

    Mirrors ``account(now, now_available)`` exactly: the interval from
    the previous boundary gets the *previous* availability flag, and a
    stuck period starts whenever availability goes True -> False.
    """

    def __init__(self) -> None:
        self.available_time = 0.0
        self.last_time = 0.0
        self.was_available = True
        self.n_stuck = 0

    def events(self, times: np.ndarray, avail: np.ndarray) -> None:
        """Account a sorted batch of events with post-event flags."""
        if self.was_available:
            self.available_time += times[0] - self.last_time
        if times.shape[0] > 1:
            self.available_time += float(
                np.dot(avail[:-1].astype(float), np.diff(times)))
        seq = np.concatenate(([self.was_available], avail))
        self.n_stuck += int(np.count_nonzero(seq[:-1] & ~seq[1:]))
        self.last_time = float(times[-1])
        self.was_available = bool(avail[-1])

    def boundary(self, now: float, now_available: bool) -> None:
        """Account one scalar boundary (a periodic check)."""
        if self.was_available:
            self.available_time += now - self.last_time
            if not now_available:
                self.n_stuck += 1
        self.last_time, self.was_available = now, now_available

    def finish(self, horizon: float) -> float:
        if self.was_available:
            self.available_time += horizon - self.last_time
        return self.available_time / horizon


class _VectorEpochState:
    """Dynamic epoch state over batch evaluators.

    The epoch is a boolean member vector over the universe; its coterie
    is compiled to a :class:`BatchEvaluator` whose kernels ignore bits
    outside the epoch.  Epoch changes mirror the scalar
    ``_BitmaskDynamicState``: rebind in place for uniform families,
    otherwise an LRU cache of compiled epoch evaluators keyed by the
    member bitmask.
    """

    def __init__(self, nodes, rule: CoterieRule,
                 cache_size: int = EPOCH_CACHE_SIZE):
        self.nodes = tuple(nodes)
        self.rule = rule
        n = len(self.nodes)
        self.full_mask = (1 << n) - 1
        self.n_epoch_changes = 0
        self._cache: OrderedDict = OrderedDict()
        self._cache_size = cache_size
        self.epoch_bits = np.ones(n, dtype=bool)
        self.evaluator = self._evaluator_for(self.full_mask)
        self._rebind = self.evaluator.supports_rebind

    def _evaluator_for(self, epoch_mask: int):
        cache = self._cache
        evaluator = cache.get(epoch_mask)
        if evaluator is None:
            epoch = tuple(name for i, name in enumerate(self.nodes)
                          if epoch_mask >> i & 1)
            evaluator = self.rule(epoch).compile_batch(self.nodes)
            cache[epoch_mask] = evaluator
            if len(cache) > self._cache_size:
                cache.popitem(last=False)
        else:
            cache.move_to_end(epoch_mask)
        return evaluator

    def install(self, state_bits: np.ndarray) -> None:
        """Make the up-set *state_bits* the new epoch."""
        mask = pack_bits(state_bits[None, :])[0]
        if self._rebind:
            self.evaluator.rebind_epoch(mask)
        else:
            self.evaluator = self._evaluator_for(mask)
        self.epoch_bits = state_bits.copy()
        self.n_epoch_changes += 1

    def run_check(self, state_bits: np.ndarray) -> bool:
        """One epoch check against up-set *state_bits*; returns success."""
        if not bool(self.evaluator.write_bits(state_bits[None, :])[0]):
            return False
        if (state_bits != self.epoch_bits).any():
            self.install(state_bits)
        return True

    def available(self, state_bits: np.ndarray, kind: str) -> bool:
        kernel = (self.evaluator.write_bits if kind == "write"
                  else self.evaluator.read_bits)
        return bool(kernel(state_bits[None, :])[0])

    def span_avail(self, states: np.ndarray, kind: str) -> np.ndarray:
        """Post-event availability for events under a *frozen* epoch."""
        kernel = (self.evaluator.write_bits if kind == "write"
                  else self.evaluator.read_bits)
        return kernel(states)


def _score_instant(es: _VectorEpochState, states: np.ndarray,
                   kind: str) -> np.ndarray:
    """Post-event availability with an instantaneous check per event.

    Window scan: score a window under the current epoch, locate the
    first epoch *transition* (check success with up-set != epoch -- the
    only case where the predicate changes), keep the prefix, install
    the new epoch, resume after it.  With instantaneous checks, write
    availability coincides with check success; read availability is
    ``success OR read-quorum over the (pre-check) epoch``, and a
    transition always leaves the protocol available (the new epoch is
    exactly the up-set).
    """
    k = states.shape[0]
    avail = np.empty(k, dtype=bool)
    i = 0
    window = 64
    while i < k:
        j = min(i + window, k)
        sub = states[i:j]
        succ = es.evaluator.write_bits(sub)
        changed = (sub != es.epoch_bits).any(axis=1)
        hits = np.flatnonzero(succ & changed)
        if hits.size == 0:
            if kind == "write":
                avail[i:j] = succ
            else:
                avail[i:j] = succ | es.evaluator.read_bits(sub)
            i = j
            window = min(window * 2, _MAX_WINDOW)
        else:
            t = int(hits[0])
            if kind == "write":
                avail[i:i + t + 1] = succ[:t + 1]
            else:
                if t:
                    avail[i:i + t] = succ[:t] | es.evaluator.read_bits(sub[:t])
                avail[i + t] = True
            es.install(sub[t])
            i += t + 1
            # next run is probably about as long as the one just ended
            window = min(max(_MIN_WINDOW, 2 * (t + 1)), _MAX_WINDOW)
    return avail


def _run_static(nodes, rule: CoterieRule, kind: str, horizon: float,
                chunks) -> AvailabilityEstimate:
    n = len(nodes)
    evaluator = rule(nodes).compile_batch(nodes)
    if evaluator.supports_packed:
        # grid / unit-weight voting: packed-word states feed the
        # popcount-free kernels at 1/8th the bit-matrix traffic
        kernel = (evaluator.write_packed if kind == "write"
                  else evaluator.read_packed)
        state = pack_matrix(np.ones((1, n), dtype=bool))[0]
        states_after = _words_after
    else:
        kernel = (evaluator.write_bits if kind == "write"
                  else evaluator.read_bits)
        state = np.ones(n, dtype=bool)
        states_after = _states_after
    acct = _Accounting()
    acct.was_available = bool(kernel(state[None, :])[0])
    n_events = 0
    for times, node_idx in chunks:
        n_events += times.shape[0]
        states = states_after(state, node_idx, n)
        acct.events(times, kernel(states))
        state = states[-1].copy()
    availability = acct.finish(horizon)
    return AvailabilityEstimate(availability, 1.0 - availability, horizon,
                                n_events, 0, 0)


def _run_dynamic(nodes, rule: CoterieRule, kind: str, horizon: float,
                 check_interval: Optional[float],
                 chunks) -> AvailabilityEstimate:
    n = len(nodes)
    es = _VectorEpochState(nodes, rule)
    acct = _Accounting()
    state = np.ones(n, dtype=bool)
    n_events = 0
    next_check = check_interval
    for times, node_idx in chunks:
        k = times.shape[0]
        n_events += k
        states = _states_after(state, node_idx, n)
        if check_interval is None:
            acct.events(times, _score_instant(es, states, kind))
        else:
            # periodic checks freeze the epoch between boundaries, so
            # each inter-check span scores as one kernel call
            lo = 0
            while next_check <= times[-1]:
                hi = int(np.searchsorted(times, next_check, side="left"))
                if hi > lo:
                    acct.events(times[lo:hi],
                                es.span_avail(states[lo:hi], kind))
                    lo = hi
                at_check = states[hi - 1] if hi > 0 else state
                es.run_check(at_check)
                acct.boundary(next_check, es.available(at_check, kind))
                next_check += check_interval
            if lo < k:
                acct.events(times[lo:], es.span_avail(states[lo:], kind))
        state = states[-1].copy()
    if check_interval is not None:
        while next_check < horizon:
            es.run_check(state)
            acct.boundary(next_check, es.available(state, kind))
            next_check += check_interval
    availability = acct.finish(horizon)
    return AvailabilityEstimate(availability, 1.0 - availability, horizon,
                                n_events, es.n_epoch_changes, acct.n_stuck)


def _check_rates(lam: float, mu: float) -> None:
    if lam <= 0 or mu <= 0:
        raise ValueError("the vector engine needs lam > 0 and mu > 0 "
                         "(per-node alternating exponential clocks)")


def simulate_static_availability_vector(
        n_nodes: int, lam: float, mu: float, horizon: float, seed: int = 0,
        rule: CoterieRule = GridCoterie, kind: str = "write",
        block: int = DEFAULT_BLOCK) -> AvailabilityEstimate:
    """Vectorized :func:`~repro.availability.montecarlo.simulate_static_availability`."""
    _check_kind(kind)
    _check_rates(lam, mu)
    gen = derive_generator(seed, "availability.vector")
    nodes = [f"n{i:03d}" for i in range(n_nodes)]
    chunks = _trajectory_chunks(n_nodes, lam, mu, horizon, gen, block)
    return _run_static(nodes, rule, kind, horizon, chunks)


def simulate_dynamic_availability_vector(
        n_nodes: int, lam: float, mu: float, horizon: float, seed: int = 0,
        rule: CoterieRule = GridCoterie, idealized: bool = False,
        check_interval: Optional[float] = None, kind: str = "write",
        block: int = DEFAULT_BLOCK) -> AvailabilityEstimate:
    """Vectorized :func:`~repro.availability.montecarlo.simulate_dynamic_availability`."""
    _check_kind(kind)
    _check_rates(lam, mu)
    if idealized:
        raise ValueError("idealized mode is only supported by the scalar "
                         "engines (engine='bitmask' or 'set')")
    if check_interval is not None and check_interval <= 0:
        raise ValueError("check_interval must be positive")
    gen = derive_generator(seed, "availability.vector")
    nodes = [f"n{i:03d}" for i in range(n_nodes)]
    chunks = _trajectory_chunks(n_nodes, lam, mu, horizon, gen, block)
    return _run_dynamic(nodes, rule, kind, horizon, check_interval, chunks)
