"""Exact availability by weighted enumeration of all 2^N up-sets.

For moderate N the Monte Carlo estimators are overkill: static
availability under the independent-node model is a finite sum,

    A(p) = sum over up-sets U with quorum(U) of p^|U| * (1-p)^(N-|U|),

and the batch kernels evaluate the quorum predicate for *every* mask in
a handful of array passes.  Because the node model is exchangeable the
sum collapses further: count quorum-hitting masks per popcount once
(:func:`quorum_hit_counts`), and availability at any ``p`` -- or a
whole sweep of them -- is a polynomial evaluation
(:func:`availability_from_hit_counts`).  One enumeration, instant
(p, shape) parameter grids, machine-precision answers.

:func:`steady_availability` computes the same quantity along an
independent route -- the exact rational birth-death steady state of the
up-count chain (:func:`repro.availability.markov.birth_death_steady_state`)
combined with the per-popcount hit fractions -- which the test suite
uses to cross-check enumeration against the Markov solver to 1e-9.

Enumeration is exponential in N: the default refusal threshold matches
:func:`repro.availability.formulas.availability_by_enumeration` ergonomics
but reaches N=24 comfortably (~16M masks, chunked) where the set-based
reference stops being practical around N=20.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Union

import numpy as np

from repro.availability.markov import birth_death_steady_state
from repro.coteries.base import Coterie, CoterieRule
from repro.coteries.grid import GridCoterie

__all__ = [
    "DEFAULT_MAX_NODES",
    "availability_from_hit_counts",
    "exact_availability_curve",
    "exact_static_availability",
    "quorum_hit_counts",
    "steady_availability",
]

#: largest universe enumerated by default (2^24 masks, chunked)
DEFAULT_MAX_NODES = 24

#: masks evaluated per batch-kernel call
CHUNK = 1 << 16


def _resolve(coterie_or_rule: Union[Coterie, CoterieRule],
             n_nodes: Optional[int]) -> Coterie:
    if isinstance(coterie_or_rule, Coterie):
        if n_nodes is not None and n_nodes != coterie_or_rule.n_nodes:
            raise ValueError("n_nodes conflicts with the coterie's size")
        return coterie_or_rule
    if n_nodes is None:
        raise ValueError("n_nodes is required when passing a coterie rule")
    return coterie_or_rule([f"n{i:03d}" for i in range(n_nodes)])


def quorum_hit_counts(coterie_or_rule: Union[Coterie, CoterieRule],
                      n_nodes: Optional[int] = None,
                      kind: str = "write",
                      max_nodes: int = DEFAULT_MAX_NODES) -> np.ndarray:
    """``counts[k]`` = number of k-node up-sets containing a quorum.

    The full enumeration: all 2^N masks stream through the coterie's
    batch kernel in chunks, and hits are bucketed by popcount.  Every
    exact quantity in this module derives from this vector.
    """
    if kind not in ("read", "write"):
        raise ValueError(f"kind must be read or write, got {kind!r}")
    coterie = _resolve(coterie_or_rule, n_nodes)
    n = coterie.n_nodes
    if n > max_nodes:
        raise ValueError(f"enumeration over {n} nodes refused "
                         f"(max_nodes={max_nodes})")
    evaluator = coterie.compile_batch()
    # enumeration masks *are* packed words (N <= 24 fits one uint64
    # limb), so families with native word kernels skip the unpack
    packed = (getattr(evaluator, "supports_packed", False)
              and hasattr(np, "bitwise_count"))
    if packed:
        kernel = (evaluator.write_packed if kind == "write"
                  else evaluator.read_packed)
    else:
        kernel = (evaluator.write_bits if kind == "write"
                  else evaluator.read_bits)
    counts = np.zeros(n + 1, dtype=np.int64)
    for start in range(0, 1 << n, CHUNK):
        stop = min(start + CHUNK, 1 << n)
        masks = np.arange(start, stop, dtype=np.uint64)
        if packed:
            hit = kernel(masks[:, None])
            popcounts = np.bitwise_count(masks).astype(np.int64)
        else:
            bits = evaluator.unpack(masks)
            hit = kernel(bits)
            popcounts = bits.sum(axis=1, dtype=np.int64)
        counts += np.bincount(popcounts[hit], minlength=n + 1)
    return counts


def availability_from_hit_counts(counts: Sequence[int], p) -> np.ndarray:
    """Evaluate ``sum_k counts[k] p^k (1-p)^(n-k)`` for scalar/array *p*."""
    counts = np.asarray(counts, dtype=np.float64)
    n = counts.shape[0] - 1
    ps = np.asarray(p, dtype=np.float64)
    if np.any((ps < 0.0) | (ps > 1.0)):
        raise ValueError("probability out of range")
    k = np.arange(n + 1, dtype=np.float64)
    # numpy defines 0.0**0 == 1.0, so the p=0 and p=1 endpoints are exact
    terms = counts * ps[..., None] ** k * (1.0 - ps[..., None]) ** (n - k)
    return terms.sum(axis=-1)


def exact_static_availability(coterie_or_rule: Union[Coterie, CoterieRule],
                              p: float,
                              n_nodes: Optional[int] = None,
                              kind: str = "write",
                              max_nodes: int = DEFAULT_MAX_NODES) -> float:
    """Exact static availability at per-node up-probability *p*.

    The vectorized replacement for
    :func:`repro.availability.formulas.availability_by_enumeration`:
    same sum, evaluated by batch kernels instead of a per-subset Python
    loop, so N=20 costs milliseconds instead of minutes.
    """
    counts = quorum_hit_counts(coterie_or_rule, n_nodes, kind, max_nodes)
    return float(availability_from_hit_counts(counts, p))


def exact_availability_curve(coterie_or_rule: Union[Coterie, CoterieRule],
                             ps,
                             n_nodes: Optional[int] = None,
                             kind: str = "write",
                             max_nodes: int = DEFAULT_MAX_NODES
                             ) -> np.ndarray:
    """Exact availability over a whole array of *ps* -- one enumeration."""
    counts = quorum_hit_counts(coterie_or_rule, n_nodes, kind, max_nodes)
    return availability_from_hit_counts(counts, np.asarray(ps, dtype=float))


def steady_availability(coterie_or_rule: Union[Coterie, CoterieRule],
                        lam: float, mu: float,
                        n_nodes: Optional[int] = None,
                        kind: str = "write",
                        max_nodes: int = DEFAULT_MAX_NODES) -> float:
    """Static availability via the up-count birth-death steady state.

    An independent computation path for cross-checking: solve the exact
    rational steady state of the up-count chain (state k = number of up
    nodes; repairs k -> k+1 at rate ``(n-k) mu``, failures k+1 -> k at
    rate ``(k+1) lam``), then weight each level by the fraction of its
    ``C(n, k)`` masks that contain a quorum.  By exchangeability this
    equals :func:`exact_static_availability` at ``p = mu / (lam + mu)``.
    """
    if lam <= 0 or mu <= 0:
        raise ValueError("steady state needs lam > 0 and mu > 0")
    coterie = _resolve(coterie_or_rule, n_nodes)
    n = coterie.n_nodes
    counts = quorum_hit_counts(coterie, None, kind, max_nodes)
    pi = birth_death_steady_state(
        birth_rates=[(n - k) * mu for k in range(n)],
        death_rates=[(k + 1) * lam for k in range(n)])
    return float(sum(float(pi[k]) * counts[k] / math.comb(n, k)
                     for k in range(n + 1)))
