"""Availability chains for dynamic voting (Jajodia & Mutchler 1990).

These are extension experiments (E9 in DESIGN.md): the paper argues its
epoch mechanism brings structured coteries up to dynamic voting's
availability, so we build the matching chains under the same site-model
idealisation to compare.

* **Plain dynamic voting**: an update needs a majority of the current
  *distinguished partition* (the epoch analogue).  A partition of size y
  survives a single failure iff ``y - 1 >= floor(y/2) + 1``, i.e. ``y >= 3``;
  a two-member partition with one member down is stuck until both members
  are up.  That is exactly the generalised epoch chain with
  ``min_epoch = 2``.

* **Dynamic-linear voting**: ties are broken by a static linear ordering,
  so a two-member partition survives the failure of its lower-priority
  member (the survivor alone forms the tie-break quorum), and the
  distinguished partition can shrink to a single node.  The stuck states
  track whether the *priority* member is down.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

from repro.availability.markov import MarkovChain
from repro.availability.chains.dynamic_grid import build_epoch_chain

Number = Union[int, float, Fraction]


def dynamic_voting_unavailability(n_nodes: int, lam: Number = 1,
                                  mu: Number = 19,
                                  exact: bool = True) -> Union[float, Fraction]:
    """Steady-state unavailability of plain dynamic (majority) voting."""
    chain = build_epoch_chain(n_nodes, lam, mu,
                              min_epoch=min(n_nodes, 2))
    return chain.probability(lambda s: s[0] == "U", exact=exact)


def build_dynamic_linear_voting_chain(n_nodes: int, lam: Number,
                                      mu: Number) -> MarkovChain:
    """The dynamic-linear voting chain (ties broken by node priority).

    States:

    * ``("A", y)`` -- available, distinguished partition = the y up nodes,
      ``1 <= y <= N``.
    * ``("P", o, z)`` -- stuck after the *priority* member of a two-member
      partition failed; ``o`` is 1 if the other member is up, z counts up
      outsiders (of N - 2).  Recovery: the priority member repairs.
    * ``("Q", z)`` -- stuck after the sole member of a one-member partition
      failed; z counts up outsiders (of N - 1).  Recovery: that member
      repairs.
    """
    if n_nodes < 1:
        raise ValueError("need at least one replica")
    lam, mu = Fraction(lam), Fraction(mu)
    chain = MarkovChain()
    if n_nodes == 1:
        chain.add(("A", 1), ("Q", 0), lam)
        chain.add(("Q", 0), ("A", 1), mu)
        return chain

    for y in range(1, n_nodes + 1):
        if y < n_nodes:
            chain.add(("A", y), ("A", y + 1), (n_nodes - y) * mu)
        if y >= 3:
            chain.add(("A", y), ("A", y - 1), y * lam)
    # y = 2: the lower-priority member failing is tolerated (tie-break),
    # the priority member failing wedges the partition.
    chain.add(("A", 2), ("A", 1), lam)
    chain.add(("A", 2), ("P", 1, 0), lam)
    # y = 1: the sole member failing wedges everything.
    chain.add(("A", 1), ("Q", 0), lam)

    for o in (0, 1):
        for z in range(n_nodes - 1):  # z in 0..N-2
            state = ("P", o, z)
            chain.add(state, ("A", 1 + o + z), mu)  # priority member repairs
            if o == 1:
                chain.add(state, ("P", 0, z), lam)
            else:
                chain.add(state, ("P", 1, z), mu)
            if z > 0:
                chain.add(state, ("P", o, z - 1), z * lam)
            if z < n_nodes - 2:
                chain.add(state, ("P", o, z + 1), (n_nodes - 2 - z) * mu)

    for z in range(n_nodes):  # z in 0..N-1
        state = ("Q", z)
        chain.add(state, ("A", 1 + z), mu)  # the sole member repairs
        if z > 0:
            chain.add(state, ("Q", z - 1), z * lam)
        if z < n_nodes - 1:
            chain.add(state, ("Q", z + 1), (n_nodes - 1 - z) * mu)
    return chain


def dynamic_linear_voting_unavailability(
        n_nodes: int, lam: Number = 1, mu: Number = 19,
        exact: bool = True) -> Union[float, Fraction]:
    """Steady-state unavailability of dynamic-linear voting."""
    chain = build_dynamic_linear_voting_chain(n_nodes, lam, mu)
    return chain.probability(lambda s: s[0] != "A", exact=exact)
