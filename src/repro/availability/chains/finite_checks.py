"""An analytic chain for *finite* epoch-checking rates.

Section 6's assumption (4) makes epoch checking instantaneous; experiment
E13 measures what finite check periods cost by Monte Carlo.  This module
gives the analytic counterpart for the *majority* (dynamic voting) rule,
whose check-success condition is a clean threshold:

State ``(y, x, z)``: the current epoch has y members, x of them up, and z
of the N-y outsiders are up.  Failures and repairs move x and z as usual;
independently, epoch checks arrive as a Poisson process with rate ``nu``.
A check succeeds iff the up epoch members form a majority (``2x > y`` --
they then constitute a write quorum over the epoch, which is exactly what
installing the new epoch requires), and on success the epoch becomes the
up-set: ``(y, x, z) -> (x+z, x+z, 0)``.

The system is write-available in ``(y, x, z)`` iff ``2x > y``.

Limits recover the known models:

* ``nu -> infinity``: the generalised epoch chain with ``min_epoch = 2``
  (plain dynamic voting under assumption (4));
* ``nu -> 0``: the epoch never changes, so unavailability tends to the
  static majority binomial tail over all N replicas.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

from repro.availability.markov import MarkovChain

Number = Union[int, float, Fraction]


def build_finite_check_chain(n_nodes: int, lam: Number, mu: Number,
                             nu: Number) -> MarkovChain:
    """The (y, x, z) chain with Poisson epoch checks at rate ``nu``."""
    if n_nodes < 1:
        raise ValueError("need at least one replica")

    def as_fraction(value: Number) -> Fraction:
        return Fraction(value).limit_denominator(10 ** 12) \
            if isinstance(value, float) else Fraction(value)

    lam, mu, nu = map(as_fraction, (lam, mu, nu))
    if lam <= 0 or mu <= 0 or nu < 0:
        raise ValueError("lam and mu must be positive, nu non-negative")
    chain = MarkovChain()
    for y in range(1, n_nodes + 1):
        for x in range(y + 1):
            for z in range(n_nodes - y + 1):
                state = (y, x, z)
                if x > 0:
                    chain.add(state, (y, x - 1, z), x * lam)
                if x < y:
                    chain.add(state, (y, x + 1, z), (y - x) * mu)
                if z > 0:
                    chain.add(state, (y, x, z - 1), z * lam)
                if z < n_nodes - y:
                    chain.add(state, (y, x, z + 1),
                              (n_nodes - y - z) * mu)
                if nu > 0 and 2 * x > y and (x + z, x + z, 0) != state:
                    chain.add(state, (x + z, x + z, 0), nu)
    return chain


def finite_check_unavailability(n_nodes: int, lam: Number, mu: Number,
                                nu: Number,
                                exact: bool = False) -> Union[float, Fraction]:
    """Steady-state write unavailability at epoch-check rate ``nu``.

    The reachable component from the all-up full epoch is solved; states
    the protocol can never reach (e.g. tiny epochs at nu = 0) are pruned
    first, since the full three-parameter grid is not irreducible.
    """
    chain = build_finite_check_chain(n_nodes, lam, mu, nu)
    reachable = _reachable_subchain(chain, (n_nodes, n_nodes, 0))
    unavailable = reachable.probability(
        lambda state: 2 * state[1] <= state[0], exact=exact)
    return unavailable


def _reachable_subchain(chain: MarkovChain, start) -> MarkovChain:
    adjacency: dict = {}
    for (src, dst), rate in chain.transitions().items():
        adjacency.setdefault(src, []).append((dst, rate))
    seen = {start}
    frontier = [start]
    while frontier:
        state = frontier.pop()
        for dst, _rate in adjacency.get(state, ()):
            if dst not in seen:
                seen.add(dst)
                frontier.append(dst)
    sub = MarkovChain()
    for (src, dst), rate in chain.transitions().items():
        if src in seen and dst in seen:
            sub.add(src, dst, rate)
    return sub
