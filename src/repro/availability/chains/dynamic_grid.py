"""The paper's Figure 3 availability chain for the dynamic grid protocol.

Site-model assumptions (Section 6): independent Poisson failures (rate
``lam``) and repairs (rate ``mu``) per node, instantaneous operations, and
epoch checking running between any two consecutive failure/repair events.
Under these assumptions the current epoch always equals the set of up nodes
while the system is available, because epoch checking instantly absorbs
every repair and sheds every tolerated failure.

The paper observes that any grid built by ``DefineGrid`` with at least four
nodes tolerates a single failure (the survivors still contain a write
quorum over the old grid, so a new epoch forms), while the three-node grid
needs *all three* nodes for a write quorum (Figure 2).  Hence the epoch
shrinks gracefully down to three members; when one of those three fails the
system is stuck until **all three** are simultaneously up again, at which
point the new epoch absorbs every node that is up.

States (the paper's ``(x, y, z)``: x of the y epoch members up, z of the
N-y outsiders up):

* available ``("A", y)`` for ``min_epoch <= y <= N`` -- epoch = the y up
  nodes, everyone else down (x = y, z = 0 after instant epoch checking);
* unavailable ``("U", x, z)`` -- the epoch is pinned at the final
  ``min_epoch`` members, x of them up, z outsiders up.

The chain is solved exactly (rational arithmetic) by default, because the
unavailabilities in Table 1 reach 1e-14.

Caveat reproduced faithfully: the "tolerates any single failure when
y >= 4" idealisation is slightly optimistic for epochs whose grid has a
singleton column (y = 5 under ``DefineGrid``); the Monte Carlo module
measures the exact behaviour (experiment E6 in DESIGN.md).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

from repro.availability.markov import MarkovChain

Number = Union[int, float, Fraction]


def grid_min_epoch(n_nodes: int) -> int:
    """Smallest epoch the dynamic grid protocol can shrink to.

    Three for N >= 3 (the paper's analysis); degenerate cases below that.
    """
    if n_nodes < 1:
        raise ValueError("need at least one replica")
    return min(n_nodes, 3)


def build_epoch_chain(n_nodes: int, lam: Number, mu: Number,
                      min_epoch: int) -> MarkovChain:
    """The Figure 3 chain, generalised over the terminal epoch size.

    ``min_epoch = 3`` gives the paper's dynamic grid chain;
    ``min_epoch = 2`` gives the analogous chain for plain dynamic voting
    (see :mod:`repro.availability.chains.dynamic_voting`).
    """
    if not 1 <= min_epoch <= n_nodes:
        raise ValueError(f"min_epoch {min_epoch} outside 1..{n_nodes}")
    lam = Fraction(lam).limit_denominator(10 ** 12) \
        if isinstance(lam, float) else Fraction(lam)
    mu = Fraction(mu).limit_denominator(10 ** 12) \
        if isinstance(mu, float) else Fraction(mu)
    chain = MarkovChain()
    outsiders = n_nodes - min_epoch

    # Available band: epoch tracks the up-set.
    for y in range(min_epoch, n_nodes + 1):
        if y < n_nodes:
            # a repair outside the epoch; epoch checking absorbs it
            chain.add(("A", y), ("A", y + 1), (n_nodes - y) * mu)
        if y > min_epoch:
            # a tolerated failure; epoch checking sheds it
            chain.add(("A", y), ("A", y - 1), y * lam)
    # The fatal failure out of the smallest epoch.
    chain.add(("A", min_epoch), ("U", min_epoch - 1, 0), min_epoch * lam)

    # Unavailable band: epoch pinned at the last min_epoch members.
    for x in range(min_epoch):
        for z in range(outsiders + 1):
            state = ("U", x, z)
            if x > 0:
                chain.add(state, ("U", x - 1, z), x * lam)
            if x < min_epoch - 1:
                chain.add(state, ("U", x + 1, z), (min_epoch - x) * mu)
            else:
                # the last missing epoch member repairs: the next epoch
                # check succeeds and absorbs the z outsiders that are up
                chain.add(state, ("A", min_epoch + z), mu)
            if z > 0:
                chain.add(state, ("U", x, z - 1), z * lam)
            if z < outsiders:
                chain.add(state, ("U", x, z + 1), (outsiders - z) * mu)
    return chain


def dynamic_grid_unavailability(n_nodes: int, lam: Number = 1,
                                mu: Number = 19,
                                exact: bool = True) -> Union[float, Fraction]:
    """Steady-state write unavailability of the dynamic grid protocol.

    Defaults reproduce Table 1: ``mu/lam = 19`` gives per-node availability
    ``p = 0.95``.  Returns a Fraction when ``exact`` (the default), since
    the interesting values are as small as 1e-14.
    """
    chain = build_epoch_chain(n_nodes, lam, mu,
                              min_epoch=grid_min_epoch(n_nodes))
    return chain.probability(lambda s: s[0] == "U", exact=exact)


def dynamic_grid_epoch_sizes(n_nodes: int, lam: Number = 1,
                             mu: Number = 19) -> dict[int, Fraction]:
    """P(|epoch| = y | system available) from the Figure 3 chain.

    Shows how far the protocol typically shrinks: at p = 0.95 the mass
    sits overwhelmingly at y = N, dropping ~19x per size below it --
    which is exactly why each extra replica buys orders of magnitude of
    Table 1 availability.
    """
    chain = build_epoch_chain(n_nodes, lam, mu,
                              min_epoch=grid_min_epoch(n_nodes))
    pi = chain.steady_state(exact=True)
    available = {state: p for state, p in pi.items() if state[0] == "A"}
    total = sum(available.values())
    sizes: dict[int, Fraction] = {}
    for (_tag, y), probability in available.items():
        sizes[y] = sizes.get(y, Fraction(0)) + probability / total
    return dict(sorted(sizes.items()))


def dynamic_grid_read_unavailability(
        n_nodes: int, lam: Number = 1, mu: Number = 19,
        exact: bool = True) -> Union[float, Fraction]:
    """Steady-state *read* unavailability -- the analysis the paper omits
    as "completely analogous" (Section 6).

    Epoch dynamics are governed by write quorums regardless of the
    operation mix, so the chain is the same; reads merely stay available
    longer inside the stuck block: a stuck epoch with x of its members up
    still serves reads whenever those x contain a *read* quorum over the
    terminal grid.  Entries into the stuck block and all within-block
    moves are exchangeable over member identity, so given x the up-subset
    is uniform, and the read-availability of state ``(x, z)`` is the
    fraction of x-subsets of the terminal grid that contain a read quorum.
    """
    from itertools import combinations

    from repro.coteries.grid import GridCoterie

    min_epoch = grid_min_epoch(n_nodes)
    terminal = GridCoterie([f"t{i}" for i in range(min_epoch)])
    read_ok: dict[int, Fraction] = {}
    for x in range(min_epoch + 1):
        subsets = list(combinations(terminal.nodes, x))
        hits = sum(1 for s in subsets if terminal.is_read_quorum(set(s)))
        read_ok[x] = Fraction(hits, len(subsets))

    chain = build_epoch_chain(n_nodes, lam, mu, min_epoch=min_epoch)
    pi = chain.steady_state(exact=True)
    unavailable = sum((p * (1 - read_ok[state[1]])
                       for state, p in pi.items() if state[0] == "U"),
                      Fraction(0))
    return unavailable if exact else float(unavailable)
