"""Markov chains for dynamic replica-control protocols under the site model."""

from repro.availability.chains.dynamic_grid import (
    build_epoch_chain,
    dynamic_grid_epoch_sizes,
    dynamic_grid_read_unavailability,
    dynamic_grid_unavailability,
    grid_min_epoch,
)
from repro.availability.chains.finite_checks import (
    build_finite_check_chain,
    finite_check_unavailability,
)
from repro.availability.chains.dynamic_voting import (
    dynamic_linear_voting_unavailability,
    dynamic_voting_unavailability,
)

__all__ = [
    "build_epoch_chain",
    "build_finite_check_chain",
    "dynamic_grid_epoch_sizes",
    "dynamic_grid_read_unavailability",
    "finite_check_unavailability",
    "dynamic_grid_unavailability",
    "dynamic_linear_voting_unavailability",
    "dynamic_voting_unavailability",
    "grid_min_epoch",
]
