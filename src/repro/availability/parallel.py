"""Parallel Monte Carlo fan-out for the availability estimators.

A single long-horizon run of :func:`simulate_static_availability` /
:func:`simulate_dynamic_availability` is inherently serial: the site
model is one continuous-time trajectory.  But availability is a
time-average of an ergodic process, so the horizon can be *sharded* --
``workers`` independent trajectories of length ``horizon / workers``,
one per process, each seeded ``seed + shard_index`` -- and the shard
estimates merged by horizon-weighted averaging.  The merged counters
(events, epoch changes, stuck periods) are plain sums.

Statistics
----------

The merged estimate has the same ~1/sqrt(total horizon) resolution as a
serial run of the full horizon.  It is *not* pathwise identical to the
serial run: shards consume independent RNG streams, and each shard
restarts from the all-up state (epoch = full replica set), which biases
the estimate by O(workers * mixing_time / horizon) -- negligible when
each shard is long relative to the repair time 1/mu.  ``workers=1``
runs inline in the calling process and is bit-identical to calling the
serial estimator directly.

Processes are forked (no pickling of coterie rules required, so lambda
rules work) where the platform supports it.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Optional, Sequence

from repro.availability.montecarlo import (
    AvailabilityEstimate,
    simulate_dynamic_availability,
    simulate_static_availability,
)
from repro.coteries.base import CoterieRule
from repro.coteries.grid import GridCoterie


def merge_estimates(estimates: Sequence[AvailabilityEstimate]
                    ) -> AvailabilityEstimate:
    """Combine shard estimates: horizon-weighted mean, summed counters."""
    estimates = list(estimates)
    if not estimates:
        raise ValueError("need at least one estimate to merge")
    total_horizon = sum(e.horizon for e in estimates)
    if total_horizon <= 0:
        raise ValueError("merged horizon must be positive")
    available_time = sum(e.availability * e.horizon for e in estimates)
    availability = available_time / total_horizon
    return AvailabilityEstimate(
        availability=availability,
        unavailability=1.0 - availability,
        horizon=total_horizon,
        n_events=sum(e.n_events for e in estimates),
        n_epoch_changes=sum(e.n_epoch_changes for e in estimates),
        n_stuck_periods=sum(e.n_stuck_periods for e in estimates),
    )


def shard_seeds(seed: int, workers: int) -> list[int]:
    """The deterministic shard seeds: ``seed + i`` for shard i."""
    return [seed + i for i in range(workers)]


#: the coterie rule for in-flight shards.  Task arguments submitted to a
#: pool are pickled even under fork, which would reject lambda/closure
#: rules -- but memory at fork time is inherited, so the rule is stashed
#: here before the pool forks and the task carries a ``None`` sentinel.
_fork_rule: Optional[CoterieRule] = None


def _run_shard(params: tuple) -> AvailabilityEstimate:
    """One shard trajectory (module-level so worker processes can call it)."""
    protocol, n_nodes, lam, mu, horizon, seed, rule, kwargs = params
    if rule is None:
        rule = _fork_rule
    if kwargs.get("engine") == "vector":
        # the trajectory-batched numpy estimators; the scalar-only
        # sampler axis does not apply (one Generator drives everything)
        from repro.availability.vectorized import (
            simulate_dynamic_availability_vector,
            simulate_static_availability_vector,
        )

        kwargs = {key: value for key, value in kwargs.items()
                  if key not in ("engine", "sampler")}
        if protocol == "static":
            return simulate_static_availability_vector(
                n_nodes, lam, mu, horizon, seed=seed, rule=rule, **kwargs)
        return simulate_dynamic_availability_vector(
            n_nodes, lam, mu, horizon, seed=seed, rule=rule, **kwargs)
    if protocol == "static":
        return simulate_static_availability(
            n_nodes, lam, mu, horizon, seed=seed, rule=rule, **kwargs)
    return simulate_dynamic_availability(
        n_nodes, lam, mu, horizon, seed=seed, rule=rule, **kwargs)


def _pool_context():
    """Prefer fork (closures and lambda rules survive); fall back to the
    platform default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def simulate_availability_parallel(
        n_nodes: int, lam: float, mu: float, horizon: float, seed: int = 0,
        workers: Optional[int] = None,
        protocol: str = "dynamic",
        rule: CoterieRule = GridCoterie,
        kind: str = "write",
        engine: str = "bitmask",
        sampler: str = "compat",
        idealized: bool = False,
        check_interval: Optional[float] = None) -> AvailabilityEstimate:
    """Estimate availability by fanning shards out over processes.

    Parameters mirror the serial estimators, plus:

    protocol:
        ``"dynamic"`` (the epoch protocol) or ``"static"``.
    workers:
        Number of shard processes; ``None`` uses the CPU count.
        ``workers=1`` runs inline and equals the serial estimator
        bit for bit.

    ``idealized`` and ``check_interval`` apply to the dynamic protocol
    only.
    """
    if protocol not in ("static", "dynamic"):
        raise ValueError(f"protocol must be static or dynamic, "
                         f"got {protocol!r}")
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    kwargs = {"kind": kind, "engine": engine, "sampler": sampler}
    if protocol == "dynamic":
        kwargs["idealized"] = idealized
        kwargs["check_interval"] = check_interval
    elif idealized or check_interval is not None:
        raise ValueError("idealized/check_interval only apply to the "
                         "dynamic protocol")
    if workers == 1:
        return _run_shard((protocol, n_nodes, lam, mu, horizon, seed,
                           rule, kwargs))
    shard_horizon = horizon / workers
    ctx = _pool_context()
    forked = ctx.get_start_method() == "fork"
    # under fork, ship the rule via inherited memory (lambdas work);
    # under spawn it must travel with the task, so it must be picklable
    sent_rule = None if forked else rule
    params = [(protocol, n_nodes, lam, mu, shard_horizon, shard_seed,
               sent_rule, kwargs)
              for shard_seed in shard_seeds(seed, workers)]
    global _fork_rule
    if forked:
        _fork_rule = rule
    try:
        with ctx.Pool(processes=workers) as pool:
            estimates = pool.map(_run_shard, params)
    finally:
        if forked:
            _fork_rule = None
    return merge_estimates(estimates)
