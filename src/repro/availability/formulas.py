"""Closed-form static availability (the baseline side of Table 1).

Under the site model, each node is up independently with probability
``p = mu / (lambda + mu)``.  A *static* protocol is available iff the set
of up nodes contains a quorum.  Because grid columns are disjoint, the grid
formulas factor per column; the other structures have their own recursions.

The static grid numbers in Table 1 are cited by the paper from Cheung,
Ammar & Ahamad (1990); :func:`grid_write_availability` re-derives them:

>>> round(1e6 * (1 - grid_write_availability(3, 3, 0.95)), 2)
3268.59
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Optional, Sequence

from repro.coteries.base import Coterie
from repro.coteries.grid import GridShape, define_grid


def _column_heights(m: int, n: int, b: int) -> list[int]:
    if b < 0 or b >= n:
        raise ValueError(f"need 0 <= b < n, got b={b} n={n}")
    return [m - 1 if j > n - b else m for j in range(1, n + 1)]


def grid_read_availability(m: int, n: int, p: float, b: int = 0) -> float:
    """P(every column of an m x n grid with b holes has an up node)."""
    _check_p(p)
    q = 1.0 - p
    result = 1.0
    for height in _column_heights(m, n, b):
        result *= 1.0 - q ** height
    return result


def grid_write_availability(m: int, n: int, p: float, b: int = 0,
                            column_cover: str = "physical") -> float:
    """P(up nodes contain a grid write quorum).

    Columns are independent, so with ``a_j = P(column j covered)`` and
    ``f_j = P(column j fully up, when eligible)``::

        A = prod(a_j) - prod(a_j - f_j)

    (all columns covered, minus all covered with no eligible full column).
    """
    _check_p(p)
    if column_cover not in ("physical", "full"):
        raise ValueError(f"unknown column_cover {column_cover!r}")
    q = 1.0 - p
    covered = 1.0
    covered_not_full = 1.0
    for height in _column_heights(m, n, b):
        a = 1.0 - q ** height
        eligible = column_cover == "physical" or height == m
        f = p ** height if eligible else 0.0
        covered *= a
        covered_not_full *= a - f
    return covered - covered_not_full


def best_static_grid(n_nodes: int, p: float,
                     kind: str = "write") -> tuple[int, int, float]:
    """The (m, n) factorisation of N with the highest static availability.

    Mirrors Table 1's "best dimensions" column, which picks the best exact
    grid for each N.  Only exact factorisations (b = 0) are considered.
    Returns ``(m, n, availability)``.
    """
    if kind not in ("read", "write"):
        raise ValueError(f"kind must be read or write, got {kind!r}")
    best: Optional[tuple[int, int, float]] = None
    for m in range(1, n_nodes + 1):
        if n_nodes % m:
            continue
        n = n_nodes // m
        if kind == "write":
            a = grid_write_availability(m, n, p)
        else:
            a = grid_read_availability(m, n, p)
        if best is None or a > best[2]:
            best = (m, n, a)
    assert best is not None
    return best


def majority_availability(n_nodes: int, p: float,
                          quorum_size: Optional[int] = None) -> float:
    """P(at least ``quorum_size`` of N nodes up); default simple majority."""
    _check_p(p)
    if quorum_size is None:
        quorum_size = n_nodes // 2 + 1
    if not 1 <= quorum_size <= n_nodes:
        raise ValueError(f"quorum size {quorum_size} outside 1..{n_nodes}")
    q = 1.0 - p
    return sum(math.comb(n_nodes, k) * p ** k * q ** (n_nodes - k)
               for k in range(quorum_size, n_nodes + 1))


def rowa_read_availability(n_nodes: int, p: float) -> float:
    """Read-one: available unless every replica is down."""
    _check_p(p)
    return 1.0 - (1.0 - p) ** n_nodes


def rowa_write_availability(n_nodes: int, p: float) -> float:
    """Write-all: available only when every replica is up."""
    _check_p(p)
    return p ** n_nodes


def tree_availability(n_nodes: int, p: float, branching: int = 2) -> float:
    """P(up nodes contain a tree-protocol quorum) -- recursion over the heap.

    For an internal node with child quorum probabilities ``A_c`` (children
    independent): ``P = prod(A_c) + p * (1 - prod(1 - A_c) - prod(A_c))``
    ... i.e. all-children OR (node up AND some child), minus overlap.
    """
    _check_p(p)

    def avail(index: int) -> float:
        first = index * branching + 1
        kids = [c for c in range(first, first + branching) if c < n_nodes]
        if not kids:
            return p
        child = [avail(c) for c in kids]
        all_children = math.prod(child)
        some_child = 1.0 - math.prod(1.0 - a for a in child)
        return all_children + p * (some_child - all_children)

    return avail(0)


def hierarchical_availability(arities: Sequence[int],
                              thresholds: Sequence[int], p: float) -> float:
    """P(up nodes satisfy Kumar's HQC recursion) for a balanced hierarchy."""
    _check_p(p)
    if len(arities) != len(thresholds):
        raise ValueError("one threshold per level required")
    level_prob = p
    for d, t in zip(reversed(arities), reversed(thresholds)):
        level_prob = sum(math.comb(d, k) * level_prob ** k
                         * (1.0 - level_prob) ** (d - k)
                         for k in range(t, d + 1))
    return level_prob


def availability_by_enumeration(coterie: Coterie, p: float,
                                kind: str = "write",
                                max_nodes: int = 20) -> float:
    """Exact availability by summing over all up-sets (cross-check).

    Exponential in N; used by tests to validate every closed form above
    against the actual quorum predicates.
    """
    _check_p(p)
    if coterie.n_nodes > max_nodes:
        raise ValueError(f"enumeration over {coterie.n_nodes} nodes refused")
    predicate = (coterie.is_write_quorum if kind == "write"
                 else coterie.is_read_quorum)
    nodes = list(coterie.nodes)
    q = 1.0 - p
    total = 0.0
    for size in range(len(nodes) + 1):
        for up in combinations(nodes, size):
            if predicate(frozenset(up)):
                total += p ** size * q ** (len(nodes) - size)
    return total


def grid_shape_for(n_nodes: int) -> GridShape:
    """Convenience re-export: the dynamic rule's shape for N nodes."""
    return define_grid(n_nodes)


def _check_p(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability out of range: {p}")
