"""Baseline replica-control protocols.

* :mod:`repro.baselines.static_protocol` -- the *static* quorum protocol
  the paper improves on: a fixed coterie over all N replicas, total writes
  (read a quorum, write the new value to a write quorum), no epochs.  With
  a :class:`~repro.coteries.grid.GridCoterie` this is the grid protocol of
  Cheung, Ammar & Ahamad (1990); with
  :class:`~repro.coteries.majority.MajorityCoterie` it is Gifford voting;
  with :class:`~repro.coteries.rowa.ReadOneWriteAllCoterie` it is
  read-one/write-all.

* :mod:`repro.baselines.dynamic_voting` -- dynamic-linear voting (Jajodia
  & Mutchler 1990), the protocol whose availability the paper's epoch
  mechanism matches for structured coteries.

Both run on the same simulator substrate and reuse the core package's
locking and presumed-abort 2PC, so comparisons (availability, message
traffic, load) are apples to apples.
"""

from repro.baselines.static_protocol import StaticQuorumStore
from repro.baselines.dynamic_voting import DynamicVotingStore
from repro.baselines.witnesses import WitnessVotingStore

__all__ = ["DynamicVotingStore", "StaticQuorumStore", "WitnessVotingStore"]
