"""The static quorum protocol with total writes.

This is the baseline the paper compares against in Table 1 (for the grid
coterie).  There is no epoch machinery: quorums are always drawn from the
full replica set, so once a read/write quorum's worth of replicas is down
the protocol is unavailable no matter how gradually the failures arrived.

Because writes are *total*, currency does not matter: the coordinator
writes the new value (at ``max responder version + 1``) to every quorum
member, whatever version they held.  Intersection of write quorums keeps
versions strictly increasing; intersection of read and write quorums makes
the max-version read correct.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.core.coordinator import _state_responses
from repro.core.messages import ReadResult, ReplaceValue, WriteResult
from repro.core.store import ReplicatedStore, StoreError
from repro.core.twophase import gather, run_transaction
from repro.coteries.base import _stable_hash
from repro.coteries.planner import plan_quorum


class StaticCoordinator:
    """Total-write coordinator over a fixed coterie."""

    def __init__(self, server, history=None):
        self.server = server
        self.history = history
        self._op_ids = itertools.count(1)
        # the static structure: the coterie over ALL replicas, forever
        self.coterie = server.coterie_rule(server.all_nodes)
        metrics = server.metrics
        self._op_metrics = {
            kind: (metrics.histogram("op_latency", kind=kind),
                   metrics.counter("planner_detours", kind=kind))
            for kind in ("write", "read")
        }
        self._outcome_counters: dict[tuple[str, str], object] = {}

    def _observe_op(self, kind: str, started: float, result) -> None:
        latency, _detours = self._op_metrics[kind]
        latency.observe(self.server.env.now - started)
        outcome = "ok" if result.ok else (result.case or "failed")
        counter = self._outcome_counters.get((kind, outcome))
        if counter is None:
            counter = self.server.metrics.counter("ops", kind=kind,
                                                  outcome=outcome)
            self._outcome_counters[(kind, outcome)] = counter
        counter.inc()

    def _plan(self, kind: str, seq: int) -> list:
        """Liveness-aware quorum pick (the blind draw when the planner is
        disabled or nothing is suspected; see repro.coteries.planner)."""
        server = self.server
        if not server.config.quorum_planner:
            return (self.coterie.write_quorum(salt=self.name, attempt=seq)
                    if kind == "write"
                    else self.coterie.read_quorum(salt=self.name,
                                                  attempt=seq))
        avoid = server.liveness.suspects()
        if avoid:
            self._op_metrics[kind][1].inc()
        return plan_quorum(self.coterie, kind, avoid=avoid,
                           salt=self.name, attempt=seq)

    @property
    def name(self) -> str:
        """The owning node's name."""
        return self.server.name

    def write(self, value: dict):
        """Generator (node process): perform one write operation."""
        server = self.server
        seq = next(self._op_ids)
        op_id = f"{self.name}:sw{seq}"
        record = None
        if self.history is not None:
            record = self.history.start("write", op_id, self.name,
                                        server.env.now,
                                        updates=dict(value))
        started = server.env.now
        result = yield from self._with_retries(
            lambda: self._write_once(value), seq)
        if record is not None:
            record.op_id = result.op_id or record.op_id
            self.history.finish(record, server.env.now, result)
        self._observe_op("write", started, result)
        return result

    def _write_once(self, value: dict):
        server = self.server
        seq = next(self._op_ids)
        op_id = f"{self.name}:sw{seq}"
        quorum = self._plan("write", seq)
        poll_timeout = server.config.lock_wait + server.config.rpc_timeout
        responses = yield gather(
            server.rpc, {dst: ("write-request", op_id) for dst in quorum},
            timeout=poll_timeout)
        states = _state_responses(responses)
        if not self.coterie.is_write_quorum(set(states)):
            yield gather(server.rpc,
                         {dst: ("op-release", op_id) for dst in quorum},
                         timeout=server.config.rpc_timeout)
            return WriteResult(False, case="no-quorum", op_id=op_id)
        new_version = max(r.version for r in states.values()) + 1
        command = ReplaceValue(dict(value), new_version)
        committed = yield from run_transaction(
            server, {name: command for name in states}, op_id)
        if not committed:
            return WriteResult(False, case="no-quorum", op_id=op_id)
        return WriteResult(True, version=new_version,
                           good=tuple(sorted(states)), case="static",
                           op_id=op_id)

    def read(self):
        """Generator (node process): perform one read operation."""
        server = self.server
        seq = next(self._op_ids)
        op_id = f"{self.name}:sr{seq}"
        record = None
        if self.history is not None:
            record = self.history.start("read", op_id, self.name,
                                        server.env.now)
        started = server.env.now
        result = yield from self._with_retries(lambda: self._read_once(),
                                               seq)
        if record is not None:
            record.op_id = result.op_id or record.op_id
            self.history.finish(record, server.env.now, result)
        self._observe_op("read", started, result)
        return result

    def _read_once(self):
        server = self.server
        seq = next(self._op_ids)
        op_id = f"{self.name}:sr{seq}"
        quorum = self._plan("read", seq)
        poll_timeout = server.config.lock_wait + server.config.rpc_timeout
        responses = yield gather(
            server.rpc, {dst: ("read-request", op_id) for dst in quorum},
            timeout=poll_timeout)
        states = _state_responses(responses)
        if not self.coterie.is_read_quorum(set(states)):
            return ReadResult(False, case="no-quorum", op_id=op_id)
        winner = max(states.values(), key=lambda r: (r.version, r.node))
        return ReadResult(True, value=winner.value, version=winner.version,
                          case="static", op_id=op_id)

    def _with_retries(self, attempt_factory, seed: int):
        config = self.server.config
        result = yield from attempt_factory()
        for attempt in range(config.op_retries):
            if result.ok or result.case != "no-quorum":
                break
            jitter = 0.5 + (_stable_hash(f"{self.name}|{seed}|{attempt}")
                            % 1000) / 1000.0
            yield self.server.env.timeout(
                config.retry_backoff * (2 ** attempt) * jitter)
            result = yield from attempt_factory()
        return result


class StaticQuorumStore(ReplicatedStore):
    """A replicated object under the static protocol (no epochs).

    The facade mirrors :class:`~repro.core.store.ReplicatedStore`, but
    ``write`` takes the *whole* new value and epoch checking is refused.
    """

    def __init__(self, node_names, **kwargs):
        kwargs.setdefault("auto_epoch_check", False)
        super().__init__(node_names, **kwargs)
        self.static_coordinators = {
            name: StaticCoordinator(server, history=self.history)
            for name, server in self.servers.items()}

    def start_write(self, value: dict, via: Optional[str] = None):
        """Spawn a write operation; returns its simulation process."""
        name = self._pick_via(via)
        return self.nodes[name].spawn(
            self.static_coordinators[name].write(value), name="static-write")

    def start_read(self, via: Optional[str] = None):
        """Spawn a read operation; returns its simulation process."""
        name = self._pick_via(via)
        return self.nodes[name].spawn(
            self.static_coordinators[name].read(), name="static-read")

    def start_epoch_check(self, via=None):
        """Spawn an epoch-checking operation (where supported)."""
        raise StoreError("the static protocol has no epochs")

    def verify(self) -> dict:
        # Total writes: replay-by-merge equals replay-by-replace as long as
        # clients always write the full key set, which the checker assumes.
        """Assert one-copy serializability of the recorded history."""
        from repro.core.history import check_one_copy_serializability
        return check_one_copy_serializability(self.history,
                                              self.initial_value)
