"""Dynamic-linear voting (Jajodia & Mutchler 1990).

The dynamic baseline the paper generalises.  Each replica durably stores,
besides the value:

* ``VN``  -- version number (reused from the core replica state);
* ``SC``  -- update-sites cardinality: how many sites participated in the
  last update this replica saw;
* ``DS``  -- the distinguished site of that update (the highest-ordered
  participant), used to break ties when exactly half of the last update's
  participants are reachable.

A coordinator polls **all** replicas (this protocol has no small quorums
-- one of the costs the paper's Section 2 calls out).  Let M be the
maximum VN among responders, I the responders holding M, and (SC, DS) the
metadata stored with M.  The operation may proceed iff

    |I| > SC/2,   or   |I| = SC/2 and DS in I

i.e. the responders include a majority (or the tie-breaking half) of the
*last update's* participants.  A write then installs the new value at
VN = M+1 on every responder, with SC = number of responders and DS = the
highest-ordered responder; laggard responders are caught up for free
because writes are total.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.core.coordinator import _state_responses
from repro.core.messages import ReadResult, ReplaceValue, WriteResult
from repro.core.store import ReplicatedStore, StoreError
from repro.core.twophase import gather, run_transaction
from repro.coteries.base import _stable_hash


def _may_proceed(holders: set[str], cardinality: int,
                 distinguished: Optional[str]) -> bool:
    """The dynamic-linear voting majority condition."""
    if 2 * len(holders) > cardinality:
        return True
    return (2 * len(holders) == cardinality
            and distinguished is not None and distinguished in holders)


class DynamicVotingCoordinator:
    """Write/read coordinator for dynamic-linear voting."""

    def __init__(self, server, history=None):
        self.server = server
        self.history = history
        self._op_ids = itertools.count(1)
        metrics = server.metrics
        self._m_latency = {
            kind: metrics.histogram("op_latency", kind=kind)
            for kind in ("write", "read")
        }
        self._outcome_counters: dict[tuple[str, str], object] = {}

    @property
    def name(self) -> str:
        """The owning node's name."""
        return self.server.name

    def _observe_op(self, kind: str, started: float, result) -> None:
        self._m_latency[kind].observe(self.server.env.now - started)
        outcome = "ok" if result.ok else (result.case or "failed")
        counter = self._outcome_counters.get((kind, outcome))
        if counter is None:
            counter = self.server.metrics.counter("ops", kind=kind,
                                                  outcome=outcome)
            self._outcome_counters[(kind, outcome)] = counter
        counter.inc()

    # -- operations -----------------------------------------------------------
    def write(self, value: dict):
        """Generator (node process): perform one write operation."""
        result = yield from self._operation("write", value)
        return result

    def read(self):
        """Generator (node process): perform one read operation."""
        result = yield from self._operation("read", None)
        return result

    def _operation(self, kind: str, value):
        server = self.server
        seq = next(self._op_ids)
        op_id = f"{self.name}:dv{kind[0]}{seq}"
        record = None
        if self.history is not None:
            record = self.history.start(
                kind, op_id, self.name, server.env.now,
                updates=dict(value) if value is not None else None)
        started = server.env.now
        result = yield from self._with_retries(
            lambda: self._attempt(kind, value), seq)
        if record is not None:
            record.op_id = result.op_id or record.op_id
            self.history.finish(record, server.env.now, result)
        self._observe_op(kind, started, result)
        return result

    def _attempt(self, kind: str, value):
        server = self.server
        seq = next(self._op_ids)
        op_id = f"{self.name}:dv{kind[0]}{seq}"
        method = "write-request" if kind == "write" else "read-request"
        poll_timeout = server.config.lock_wait + server.config.rpc_timeout
        responses = yield gather(
            server.rpc,
            {dst: (method, op_id) for dst in server.all_nodes},
            timeout=poll_timeout)
        states = _state_responses(responses)
        failure = (WriteResult(False, case="no-quorum", op_id=op_id)
                   if kind == "write"
                   else ReadResult(False, case="no-quorum", op_id=op_id))
        if not states:
            return failure

        max_vn = max(r.version for r in states.values())
        holders = {name for name, r in states.items() if r.version == max_vn}
        meta = next(r.meta for r in states.values()
                    if r.version == max_vn and r.meta is not None) \
            if any(r.version == max_vn and r.meta is not None
                   for r in states.values()) \
            else (len(server.all_nodes), max(server.all_nodes))
        cardinality, distinguished = meta

        if not _may_proceed(holders, cardinality, distinguished):
            if kind == "write":
                yield gather(server.rpc,
                             {dst: ("op-release", op_id) for dst in states},
                             timeout=server.config.rpc_timeout)
            return failure

        if kind == "read":
            winner = next(r for r in states.values() if r.version == max_vn)
            return ReadResult(True, value=winner.value, version=max_vn,
                              case="dv", op_id=op_id)

        participants = tuple(sorted(states))
        new_meta = (len(participants), max(participants))
        command = ReplaceValue(dict(value), max_vn + 1, meta=new_meta)
        committed = yield from run_transaction(
            server, {name: command for name in participants}, op_id)
        if not committed:
            return failure
        return WriteResult(True, version=max_vn + 1, good=participants,
                           case="dv", op_id=op_id)

    def _with_retries(self, attempt_factory, seed: int):
        config = self.server.config
        result = yield from attempt_factory()
        for attempt in range(config.op_retries):
            if result.ok or result.case != "no-quorum":
                break
            jitter = 0.5 + (_stable_hash(f"{self.name}|dv{seed}|{attempt}")
                            % 1000) / 1000.0
            yield self.server.env.timeout(
                config.retry_backoff * (2 ** attempt) * jitter)
            result = yield from attempt_factory()
        return result


class DynamicVotingStore(ReplicatedStore):
    """A replicated object under dynamic-linear voting."""

    def __init__(self, node_names, **kwargs):
        kwargs.setdefault("auto_epoch_check", False)
        super().__init__(node_names, **kwargs)
        self.dv_coordinators = {
            name: DynamicVotingCoordinator(server, history=self.history)
            for name, server in self.servers.items()}
        # every replica starts with SC = N, DS = highest-ordered node
        initial_meta = (len(self.node_names), max(self.node_names))
        for server in self.servers.values():
            server.node.stable["proto_meta"] = initial_meta

    def start_write(self, value: dict, via: Optional[str] = None):
        """Spawn a write operation; returns its simulation process."""
        name = self._pick_via(via)
        return self.nodes[name].spawn(
            self.dv_coordinators[name].write(value), name="dv-write")

    def start_read(self, via: Optional[str] = None):
        """Spawn a read operation; returns its simulation process."""
        name = self._pick_via(via)
        return self.nodes[name].spawn(
            self.dv_coordinators[name].read(), name="dv-read")

    def start_epoch_check(self, via=None):
        """Spawn an epoch-checking operation (where supported)."""
        raise StoreError("dynamic voting adjusts quorums inside writes; "
                         "it has no separate epoch checking")

    def verify(self) -> dict:
        """Assert one-copy serializability of the recorded history."""
        from repro.core.history import check_one_copy_serializability
        return check_one_copy_serializability(self.history,
                                              self.initial_value)

    def partition_metadata(self) -> dict[str, tuple]:
        """Current (SC, DS) per replica, for inspection in tests."""
        return {name: server.node.stable.get("proto_meta")
                for name, server in self.servers.items()}
