"""Voting with witnesses (Paris 1986 -- the paper's reference [13]).

A *witness* is a replica that stores only the version number, no data.
Witnesses vote in quorums like everyone else, so they buy availability at
almost no storage cost -- but a read must find a *data* replica holding
the maximum version among the responders, and a write's new value lands
only on data replicas (witnesses just bump their version).

Implemented on the static voting machinery: writes are total, the coterie
is a (possibly weighted) majority over data nodes and witnesses together.
The subtle failure mode this introduces -- a quorum whose freshest member
is a witness cannot serve the data -- is handled exactly like the paper's
stale replicas: fall back to polling everyone, then fail rather than
return doubtful data.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from repro.core.coordinator import _state_responses
from repro.core.messages import ReadResult, ReplaceValue, WriteResult
from repro.core.store import ReplicatedStore, StoreError
from repro.core.twophase import gather, run_transaction
from repro.coteries.base import _stable_hash
from repro.coteries.majority import MajorityCoterie
from repro.coteries.planner import plan_quorum


class WitnessVotingCoordinator:
    """Total-write coordinator aware of which voters are witnesses."""

    def __init__(self, server, witnesses: frozenset, history=None):
        self.server = server
        self.witnesses = witnesses
        self.history = history
        self._op_ids = itertools.count(1)
        self.coterie = server.coterie_rule(server.all_nodes)

    def _plan(self, kind: str, seq: int) -> list:
        """Liveness-aware quorum pick (the blind draw when the planner is
        disabled or nothing is suspected; see repro.coteries.planner)."""
        server = self.server
        if not server.config.quorum_planner:
            return (self.coterie.write_quorum(salt=self.name, attempt=seq)
                    if kind == "write"
                    else self.coterie.read_quorum(salt=self.name,
                                                  attempt=seq))
        return plan_quorum(self.coterie, kind,
                           avoid=server.liveness.suspects(),
                           salt=self.name, attempt=seq)

    @property
    def name(self) -> str:
        """The owning node's name."""
        return self.server.name

    # -- write ---------------------------------------------------------------
    def write(self, value: dict):
        """Generator (node process): perform one write operation."""
        record = self._start("write", dict(value))
        result = yield from self._retry(lambda: self._write_once(value))
        self._finish(record, result)
        return result

    def _write_once(self, value: dict):
        server = self.server
        seq = next(self._op_ids)
        op_id = f"{self.name}:ww{seq}"
        quorum = self._plan("write", seq)
        poll_timeout = server.config.lock_wait + server.config.rpc_timeout
        responses = yield gather(
            server.rpc, {dst: ("write-request", op_id) for dst in quorum},
            timeout=poll_timeout)
        states = _state_responses(responses)
        data_responders = set(states) - self.witnesses
        if not self.coterie.is_write_quorum(set(states)) \
                or not data_responders:
            # a quorum of witnesses alone could vote, but the new value
            # would be stored nowhere -- Paris requires at least one data
            # copy in every write
            yield gather(server.rpc,
                         {dst: ("op-release", op_id) for dst in quorum},
                         timeout=server.config.rpc_timeout)
            return WriteResult(False, case="no-quorum", op_id=op_id)
        new_version = max(r.version for r in states.values()) + 1
        commands = {}
        for name in states:
            payload = {} if name in self.witnesses else dict(value)
            commands[name] = ReplaceValue(payload, new_version)
        committed = yield from run_transaction(server, commands, op_id)
        if not committed:
            return WriteResult(False, case="no-quorum", op_id=op_id)
        data_nodes = tuple(sorted(set(states) - self.witnesses))
        return WriteResult(True, version=new_version, good=data_nodes,
                           case="witness", op_id=op_id)

    # -- read -----------------------------------------------------------------
    def read(self):
        """Generator (node process): perform one read operation."""
        record = self._start("read", None)
        result = yield from self._retry(lambda: self._read_once())
        self._finish(record, result)
        return result

    def _read_once(self):
        server = self.server
        seq = next(self._op_ids)
        op_id = f"{self.name}:wr{seq}"
        quorum = self._plan("read", seq)
        poll_timeout = server.config.lock_wait + server.config.rpc_timeout
        responses = yield gather(
            server.rpc, {dst: ("read-request", op_id) for dst in quorum},
            timeout=poll_timeout)
        result = self._decide_read(responses, op_id)
        if result is None:
            responses = yield gather(
                server.rpc,
                {dst: ("read-request", op_id) for dst in server.all_nodes},
                timeout=poll_timeout)
            result = self._decide_read(responses, op_id)
        if result is None:
            result = ReadResult(False, case="no-current-data", op_id=op_id)
        return result

    def _decide_read(self, responses, op_id):
        states = _state_responses(responses)
        if not self.coterie.is_read_quorum(set(states)):
            return None
        max_version = max(r.version for r in states.values())
        data_holders = sorted(
            name for name, r in states.items()
            if r.version == max_version and name not in self.witnesses)
        if not data_holders:
            # the freshest responder is a witness: the value itself is
            # elsewhere; retry wider rather than serve stale data
            return None
        winner = states[data_holders[0]]
        return ReadResult(True, value=winner.value, version=max_version,
                          case="witness", op_id=op_id)

    # -- shared plumbing ---------------------------------------------------------
    def _retry(self, factory):
        config = self.server.config
        result = yield from factory()
        for attempt in range(config.op_retries):
            if result.ok or result.case not in ("no-quorum",
                                                "no-current-data"):
                break
            jitter = 0.5 + (_stable_hash(f"{result.op_id}|{attempt}")
                            % 1000) / 1000.0
            yield self.server.env.timeout(
                config.retry_backoff * (2 ** attempt) * jitter)
            result = yield from factory()
        return result

    def _start(self, kind, updates):
        if self.history is None:
            return None
        return self.history.start(kind, f"{self.name}:w?", self.name,
                                  self.server.env.now, updates=updates)

    def _finish(self, record, result):
        if record is not None:
            record.op_id = result.op_id or record.op_id
            self.history.finish(record, self.server.env.now, result)


class WitnessVotingStore(ReplicatedStore):
    """A replicated object under voting with witnesses.

    Parameters
    ----------
    node_names:
        All voters, data nodes and witnesses alike.
    witnesses:
        The subset of ``node_names`` that store no data.  Must leave at
        least one data node.
    """

    def __init__(self, node_names: Sequence[str],
                 witnesses: Sequence[str], **kwargs):
        kwargs.setdefault("auto_epoch_check", False)
        kwargs.setdefault("coterie_rule", MajorityCoterie)
        super().__init__(node_names, **kwargs)
        self.witnesses = frozenset(witnesses)
        unknown = self.witnesses - set(self.node_names)
        if unknown:
            raise StoreError(f"unknown witnesses: {sorted(unknown)}")
        if not set(self.node_names) - self.witnesses:
            raise StoreError("at least one data node required")
        self.witness_coordinators = {
            name: WitnessVotingCoordinator(server, self.witnesses,
                                           history=self.history)
            for name, server in self.servers.items()}

    @property
    def data_nodes(self) -> tuple[str, ...]:
        """The voters that store data (everyone but the witnesses)."""
        return tuple(sorted(set(self.node_names) - self.witnesses))

    def start_write(self, value: dict, via: Optional[str] = None):
        """Spawn a write operation; returns its simulation process."""
        name = self._pick_via(via)
        return self.nodes[name].spawn(
            self.witness_coordinators[name].write(value), name="w-write")

    def start_read(self, via: Optional[str] = None):
        """Spawn a read operation; returns its simulation process."""
        name = self._pick_via(via)
        return self.nodes[name].spawn(
            self.witness_coordinators[name].read(), name="w-read")

    def start_epoch_check(self, via=None):
        """Spawn an epoch-checking operation (where supported)."""
        raise StoreError("witness voting is a static protocol")

    def storage_bytes(self) -> dict[str, int]:
        """Estimated stored bytes per node (the witness saving)."""
        from repro.sim.sizing import estimate_size
        return {name: estimate_size(self.replica_state(name).value)
                for name in self.node_names}

    def verify(self) -> dict:
        """Assert one-copy serializability of the recorded history."""
        from repro.core.history import check_one_copy_serializability
        return check_one_copy_serializability(self.history,
                                              self.initial_value)
