"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1``
    Regenerate the paper's Table 1 (static vs dynamic grid
    unavailability at a chosen p).
``grid N``
    Show ``DefineGrid(N)``: the layout, quorum sizes, and an example
    read/write quorum.
``availability``
    Compare the analytic unavailability of every implemented protocol at
    one (N, p) point.
``simulate``
    Monte Carlo availability of the exact dynamic epoch protocol under
    the site model (optionally with a finite epoch-check period).
``demo``
    A short end-to-end scenario on the simulated cluster: writes, a
    failure, an epoch change, healing, and a consistency check.
``chaos``
    Seeded chaos runs: a generated workload under message faults,
    crashes, partitions, link cuts, and nemesis triggers, validated by
    the full history checker.  ``--shrink``/``--artifact`` minimize a
    failure to a replayable JSON schedule; ``--replay`` re-runs one;
    ``--gray`` runs the gray-failure spec (one slow-but-correct replica
    under adaptive timeouts and hedged polls).
``metrics``
    Run seeded chaos workloads and report the protocol metrics: per-op
    latency percentiles, RPC attempts/timeouts per link, stale->healed
    propagation lag, 2PC abort reasons, epoch-checker health.
    ``--json`` exports the summary and raw snapshot for offline
    analysis; multi-seed runs merge exactly (pooled percentiles).
``shard``
    A sharded-keyspace scenario: a keyed Zipf workload over many
    shards, one batched epoch sweep after a crash (one request per
    node, not per shard), and hot-shard detection/rebalancing from the
    per-shard operation counters.
``strategy``
    Show the workload-aware quorum strategy the optimizer picks for a
    grid of N replicas at a given read fraction: the weighted quorum
    distribution, the predicted per-node loads, and whether the
    read-one tier engages (and at what load advantage).
``lint``
    Protocol-aware static analysis: the AST rules of ``repro.lint``
    (determinism, clock discipline, message shape, metric keys,
    handler coverage, lock discipline, config drift, transport
    boundary) over the given paths, and with ``--coteries`` the
    semantic verification of every registered coterie family and its
    Lemma-1 epoch transitions at small N.  Exit 0 clean, 1 findings,
    2 errors.
``sanitize``
    Schedule sanitizer: one seeded crash-free workload under K bounded
    message-reordering schedules, each checked by the happens-before
    race tracker and the quiesce leak assertions, plus a schedule-0
    bit-reproducibility replay.  ``--canary`` re-introduces the
    stranded-lock bug and exits 0 iff the sanitizer catches it;
    ``--json`` writes the ``repro-sanitize-v1`` artifact; ``--shrink``
    delta-debugs the first failing schedule to a minimal spec.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence


def _cmd_table1(args: argparse.Namespace) -> int:
    from fractions import Fraction

    from repro.availability.chains.dynamic_grid import (
        dynamic_grid_unavailability,
    )
    from repro.availability.formulas import best_static_grid

    p = args.p
    ratio = Fraction(p).limit_denominator(10 ** 6)
    mu_over_lam = ratio / (1 - ratio)
    print(f"Write unavailability, p = {p} (mu/lam = {mu_over_lam})")
    print(f"{'N':>3}  {'best dims':>9}  {'static':>12}  {'dynamic':>12}")
    for n in args.sizes:
        m, cols, avail = best_static_grid(n, p)
        dynamic = dynamic_grid_unavailability(n, 1, mu_over_lam,
                                              exact=not args.fast)
        print(f"{n:>3}  {f'{m}x{cols}':>9}  {1 - avail:>12.6e}  "
              f"{float(dynamic):>12.4e}")
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    from repro.coteries.grid import GridCoterie, define_grid

    shape = define_grid(args.n)
    grid = GridCoterie([f"{k:3d}" for k in range(1, args.n + 1)],
                       column_cover=args.cover)
    print(f"DefineGrid({args.n}) = {shape.m} x {shape.n}, b = {shape.b}")
    print(grid.layout())
    print(f"read quorum size : {grid.min_read_quorum_size()}")
    print(f"write quorum size: {grid.min_write_quorum_size()}")
    print(f"example read quorum : "
          f"{[name.strip() for name in grid.read_quorum('cli')]}")
    print(f"example write quorum: "
          f"{[name.strip() for name in grid.write_quorum('cli')]}")
    return 0


def _cmd_availability(args: argparse.Namespace) -> int:
    from fractions import Fraction

    from repro.availability.chains.dynamic_grid import (
        dynamic_grid_read_unavailability,
        dynamic_grid_unavailability,
    )
    from repro.availability.chains.dynamic_voting import (
        dynamic_linear_voting_unavailability,
        dynamic_voting_unavailability,
    )
    from repro.availability.formulas import (
        best_static_grid,
        majority_availability,
        rowa_write_availability,
    )

    n, p = args.n, args.p
    ratio = Fraction(p).limit_denominator(10 ** 6)
    mu = ratio / (1 - ratio)
    m, cols, grid_avail = best_static_grid(n, p)
    rows = [
        (f"static grid ({m}x{cols})", 1 - grid_avail),
        ("static majority", 1 - majority_availability(n, p)),
        ("static ROWA (writes)", 1 - rowa_write_availability(n, p)),
        ("dynamic grid (writes)",
         float(dynamic_grid_unavailability(n, 1, mu))),
        ("dynamic grid (reads)",
         float(dynamic_grid_read_unavailability(n, 1, mu))),
        ("dynamic voting",
         float(dynamic_voting_unavailability(n, 1, mu))),
        ("dynamic-linear voting",
         float(dynamic_linear_voting_unavailability(n, 1, mu))),
    ]
    print(f"Unavailability, N = {n}, p = {p}")
    for label, value in rows:
        print(f"  {label:<24} {value:.6e}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.availability.parallel import simulate_availability_parallel

    estimate = simulate_availability_parallel(
        args.n, args.lam, args.mu, args.horizon, seed=args.seed,
        workers=args.workers, protocol="dynamic",
        check_interval=args.check_interval, kind=args.kind,
        engine=args.engine, sampler=args.sampler)
    print(f"N = {args.n}, lam = {args.lam}, mu = {args.mu} "
          f"(p = {args.mu / (args.lam + args.mu):.3f}), "
          f"horizon = {args.horizon:g}, kind = {args.kind}")
    checks = ("instantaneous" if args.check_interval is None
              else f"every {args.check_interval:g}")
    print(f"epoch checks: {checks}; engine = {args.engine}, "
          f"sampler = {args.sampler}, workers = {args.workers}")
    print(estimate)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.store import ReplicatedStore

    store = ReplicatedStore.create(args.n, seed=args.seed)
    print(f"cluster of {args.n} replicas (seed {args.seed})")
    result = store.write({"greeting": "hello"})
    print(f"write v{result.version} via quorum {result.good}")
    victim = store.node_names[-1]
    store.crash(victim)
    check = store.check_epoch()
    print(f"crashed {victim}; epoch -> #{check.epoch_number} with "
          f"{len(check.epoch_list)} members")
    result = store.write({"greeting": "still here"})
    print(f"write v{result.version} with {victim} down: ok={result.ok}")
    store.recover(victim)
    store.check_epoch()
    store.settle()
    read = store.read(via=victim)
    print(f"read via recovered {victim}: {read.value}")
    print(f"history verified: {store.verify()}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos.runner import (
        PROTOCOLS,
        generate_spec,
        make_canary_spec,
        make_gray_spec,
        run_spec,
    )
    from repro.chaos.shrink import replay_artifact, save_artifact, shrink

    if args.replay:
        report = replay_artifact(args.replay)
        print(report.summary())
        # replaying a violation artifact succeeds when it still fails
        return 0 if not report.ok else 1

    protocols = PROTOCOLS if args.protocol == "all" else (args.protocol,)
    if args.gray:
        protocols = ("dynamic",)   # the gray spec targets one protocol
    seeds = (list(range(args.seeds)) if args.seeds is not None
             else [args.seed])
    failures = []
    for protocol in protocols:
        for seed in seeds:
            if args.canary:
                spec = make_canary_spec(
                    bug=args.bug or "skip-decision-record")
            elif args.gray:
                spec = make_gray_spec(seed, n_nodes=args.nodes,
                                      ops=args.ops,
                                      factor=args.gray_factor)
            else:
                spec = generate_spec(seed, protocol=protocol,
                                     n_nodes=args.nodes, ops=args.ops,
                                     bug=args.bug)
            report = run_spec(spec)
            print(report.summary())
            if args.gray and report.ok:
                from repro.obs import build_summary
                rpc = build_summary(report.metrics)["rpc"]
                print(f"  gray: hedges={rpc['hedges'] or 'none'} "
                      f"late={rpc['late_responses']} "
                      f"timeouts={rpc['timeouts']}")
            if not report.ok:
                failures.append(report)
        if args.canary:
            break  # the canary is a single dynamic-protocol spec

    for report in failures:
        if not (args.shrink or args.artifact):
            continue
        result = shrink(report.spec)
        print(f"shrunk {result.original_events} -> {result.events} events "
              f"in {result.runs} runs: {result.report.violation}")
        if args.artifact:
            save_artifact(args.artifact, result)
            print(f"replay artifact written to {args.artifact}")

    if args.canary:
        # the canary injects a bug on purpose: success means catching it
        return 0 if failures else 1
    return 1 if failures else 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.chaos.runner import generate_spec, run_spec
    from repro.obs import (
        build_summary,
        merge_snapshots,
        render_table,
        validate_summary,
    )

    seeds = (list(range(args.seeds)) if args.seeds is not None
             else [args.seed])
    snapshots = []
    all_ok = True
    for seed in seeds:
        spec = generate_spec(seed, protocol=args.protocol,
                             n_nodes=args.nodes, ops=args.ops)
        report = run_spec(spec)
        print(report.summary())
        all_ok = all_ok and report.ok
        snapshots.append(report.metrics)
    summary = validate_summary(
        build_summary(merge_snapshots(snapshots)))
    print()
    print(render_table(summary))

    if args.json is not None:
        path = args.json
        if path == "auto":
            os.makedirs("results", exist_ok=True)
            tag = (f"seed{args.seed}" if args.seeds is None
                   else f"seeds{args.seeds}")
            path = os.path.join(
                "results", f"metrics_{args.protocol}_{tag}.json")
        with open(path, "w") as fh:
            json.dump({"summary": summary,
                       "snapshot": merge_snapshots(snapshots)}, fh,
                      indent=2, sort_keys=True)
        print(f"\nmetrics written to {path}")
    return 0 if all_ok else 1


def _cmd_shard(args: argparse.Namespace) -> int:
    from repro.shard import ShardedStore, hot_shards, placement_fairness, \
        shard_loads
    from repro.workloads.generators import KeyedWorkload, run_keyed_workload

    store = ShardedStore.create(args.nodes, n_shards=args.shards,
                                replication=args.replication,
                                seed=args.seed, track_history=True)
    print(f"{args.nodes} nodes, {args.shards} shards, "
          f"replication {args.replication} (seed {args.seed})")
    workload = KeyedWorkload(n_ops=args.ops, n_keys=args.keys,
                             n_clients=args.clients,
                             read_fraction=args.read_fraction,
                             key_skew=args.skew)
    stats = run_keyed_workload(store, workload, seed=args.seed)
    print(f"workload: {stats.summary()}")

    victim = store.node_names[-1]
    store.crash(victim)
    sweep = store.sweep()
    print(f"crashed {victim}; sweep checked {sweep.checked} shards, "
          f"repaired {len(sweep.repaired)}: {list(sweep.repaired)}")
    store.recover(victim)
    store.sweep()
    store.settle()
    print(f"recovered {victim}; cluster settled "
          f"(resident items: {store.resident_items()})")

    loads = shard_loads(store.metrics_snapshot())
    hot = hot_shards(loads, factor=args.hot_factor, min_ops=1,
                     n_shards=store.map.n_shards)
    fairness = placement_fairness(store.map, loads)
    print(f"hot shards (> {args.hot_factor:g}x mean): {hot}; "
          f"placement fairness {fairness:.3f}")
    if args.rebalance and hot:
        moves = store.rebalance(factor=args.hot_factor, min_ops=1)
        for shard, replicas in moves:
            print(f"  moved shard {shard} -> {list(replicas)}")
        store.settle()
        after = placement_fairness(store.map,
                                   shard_loads(store.metrics_snapshot()))
        print(f"fairness after rebalance: {after:.3f}")
    print(f"history verified: {store.verify()}")
    return 0


def _cmd_strategy(args: argparse.Namespace) -> int:
    from repro.coteries.grid import GridCoterie
    from repro.coteries.majority import MajorityCoterie
    from repro.coteries.optimizer import optimize_strategy

    names = [f"n{i:02d}" for i in range(args.n)]
    rule = {"grid": GridCoterie, "majority": MajorityCoterie}[args.rule]
    coterie = rule(names)
    strategy = optimize_strategy(coterie, args.read_fraction,
                                 seed=args.seed,
                                 allow_read_one=not args.no_read_one)
    print(f"{args.rule} coterie, N = {args.n}, "
          f"read fraction = {args.read_fraction:g}, seed = {args.seed}")
    print(f"solver: {strategy.source}; "
          f"read-one tier: {'on' if strategy.read_one_tier else 'off'}")
    for kind in ("read", "write"):
        support = strategy.support(kind)
        weights = strategy.weights(kind)
        print(f"{kind} support ({len(support)} quorums):")
        shown = sorted(zip(weights, support), reverse=True)[:args.top]
        for weight, quorum in shown:
            print(f"  {weight:8.4f}  {list(quorum)}")
        if len(support) > args.top:
            print(f"  ... {len(support) - args.top} more")
    loads = strategy.loads()
    print(f"predicted max per-node load: {strategy.max_load:.4f}")
    print("per-node loads: "
          + ", ".join(f"{n}={loads[n]:.3f}" for n in sorted(loads)))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    import repro
    from repro.lint import (
        DEFAULT_RULES,
        check_all_families,
        lint_paths,
        render_findings,
        report_to_json,
    )

    exit_code = 0
    payload: dict = {}

    if not args.coteries or args.paths:
        paths = ([Path(p) for p in args.paths] if args.paths
                 else [Path(repro.__file__).parent])
        report = lint_paths(paths, DEFAULT_RULES)
        exit_code = max(exit_code, report.exit_code)
        if args.json:
            payload = report_to_json(report, DEFAULT_RULES)
        else:
            print(render_findings(report, DEFAULT_RULES))

    if args.coteries:
        results = check_all_families(max_n=args.max_n)
        sem_findings = [f for r in results for f in r.findings]
        if sem_findings:
            exit_code = max(exit_code, 1)
        if args.json:
            payload["coteries"] = {
                "ok": not sem_findings,
                "families": [
                    {"family": r.family, "n": r.n, "masks": r.masks,
                     "transitions": r.transitions,
                     "findings": [
                         {"family": f.family, "n": f.n,
                          "check": f.check, "message": f.message}
                         for f in r.findings]}
                    for r in results],
            }
            payload.setdefault("schema", "repro-lint-v1")
        else:
            for result in results:
                print(result.summary())
            for finding in sem_findings:
                print(f"FINDING: {finding}")

    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    return exit_code


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from repro.chaos.shrink import shrink
    from repro.sanitize import (
        SanitizeSpec,
        run_sanitized,
        run_sweep,
        save_artifact,
    )

    spec = SanitizeSpec(seed=args.seed, n_nodes=args.nodes, ops=args.ops,
                        schedules=args.schedules, bound=args.bound,
                        canary=args.canary)
    mode = "canary" if spec.canary else "clean"
    print(f"sanitize: seed {spec.seed}, {spec.n_nodes} nodes, "
          f"{spec.ops} ops, K={spec.schedules} schedules "
          f"(bound {spec.bound:g}), mode {mode}")

    def show(result) -> None:
        status = "ok" if result.ok else "FAIL"
        print(f"  schedule {result.schedule}: {status}  "
              f"races={result.races}  digest={result.digest[:16]}  "
              f"t={result.end_time:.1f}")
        for violation in result.violations:
            print(f"    {violation}")

    report = run_sweep(spec, on_result=show)
    print(f"replay: digest={report.replay_digest[:16]} "
          f"{'==' if report.reproducible else '!='} "
          f"baseline {report.baseline_digest[:16]} "
          f"({'bit-reproducible' if report.reproducible else 'DIVERGED'})")

    if args.json is not None:
        save_artifact(args.json, report)
        print(f"sanitize artifact written to {args.json}")

    if args.shrink and report.failures:
        failing = report.failures[0]
        result = shrink(failing.spec, run=run_sanitized)
        print(f"shrunk schedule {failing.schedule}: "
              f"{result.original_events} -> {result.events} events "
              f"in {result.runs} runs: {result.report.violation}")

    if spec.canary:
        # the canary injects the stranded-lock bug on purpose: success
        # means the sanitizer caught it AND the sweep stayed replayable
        caught = report.canary_caught and report.reproducible
        print(f"canary {'caught' if report.canary_caught else 'MISSED'}")
        return 0 if caught else 1
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dynamic structured coterie protocols "
                    "(Rabinovich & Lazowska, SIGMOD 1992)")
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="regenerate Table 1")
    table1.add_argument("--p", type=float, default=0.95,
                        help="per-node availability (default 0.95)")
    table1.add_argument("--sizes", type=int, nargs="+",
                        default=[9, 12, 15, 16, 20, 24, 30])
    table1.add_argument("--fast", action="store_true",
                        help="float solver instead of exact rationals")
    table1.set_defaults(handler=_cmd_table1)

    grid = sub.add_parser("grid", help="show DefineGrid(N)")
    grid.add_argument("n", type=int)
    grid.add_argument("--cover", choices=["physical", "full"],
                      default="physical")
    grid.set_defaults(handler=_cmd_grid)

    availability = sub.add_parser(
        "availability", help="compare protocols at one (N, p) point")
    availability.add_argument("--n", type=int, default=9)
    availability.add_argument("--p", type=float, default=0.95)
    availability.set_defaults(handler=_cmd_availability)

    simulate = sub.add_parser(
        "simulate", help="Monte Carlo of the exact dynamic protocol")
    simulate.add_argument("--n", type=int, default=9)
    simulate.add_argument("--lam", type=float, default=1.0)
    simulate.add_argument("--mu", type=float, default=4.0)
    simulate.add_argument("--horizon", type=float, default=20000.0)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--check-interval", type=float, default=None)
    simulate.add_argument("--kind", choices=["read", "write"],
                          default="write")
    simulate.add_argument("--workers", type=int, default=1,
                          help="shard the horizon over this many "
                               "processes (default 1 = serial)")
    simulate.add_argument("--engine", choices=["bitmask", "set", "vector"],
                          default="bitmask",
                          help="quorum evaluation engine (vector = "
                               "trajectory-batched numpy; ignores "
                               "--sampler)")
    simulate.add_argument("--sampler", choices=["compat", "swap"],
                          default="compat",
                          help="event-node sampler (compat reproduces "
                               "historical seeds bit for bit)")
    simulate.set_defaults(handler=_cmd_simulate)

    demo = sub.add_parser("demo", help="end-to-end protocol scenario")
    demo.add_argument("--n", type=int, default=9)
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(handler=_cmd_demo)

    chaos = sub.add_parser(
        "chaos", help="seeded fault-injection runs with history checking")
    chaos.add_argument("--seed", type=int, default=0,
                       help="single seed to run (default 0)")
    chaos.add_argument("--seeds", type=int, default=None, metavar="N",
                       help="run seeds 0..N-1 instead of --seed")
    chaos.add_argument("--ops", type=int, default=60,
                       help="workload length per run (default 60)")
    chaos.add_argument("--nodes", type=int, default=9)
    chaos.add_argument("--protocol",
                       choices=["dynamic", "static", "voting", "all"],
                       default="all")
    chaos.add_argument("--bug", default="",
                       help="inject a protocol bug "
                            "(e.g. skip-decision-record)")
    chaos.add_argument("--canary", action="store_true",
                       help="run the scripted decision-record canary; "
                            "exit 0 iff the checker catches the bug")
    chaos.add_argument("--gray", action="store_true",
                       help="run the gray-failure spec instead: one "
                            "replica 10x slow (up, correct, late) with "
                            "adaptive timeouts + hedged polls enabled")
    chaos.add_argument("--gray-factor", type=float, default=10.0,
                       metavar="X",
                       help="latency multiplier for the gray victim "
                            "(default 10.0)")
    chaos.add_argument("--shrink", action="store_true",
                       help="delta-debug any failure to a minimal spec")
    chaos.add_argument("--artifact", metavar="PATH",
                       help="write the shrunk failure as a replayable "
                            "JSON artifact (implies --shrink)")
    chaos.add_argument("--replay", metavar="PATH",
                       help="re-run a saved artifact and exit")
    chaos.set_defaults(handler=_cmd_chaos)

    metrics = sub.add_parser(
        "metrics", help="run seeded chaos workloads and report the "
                        "protocol metrics (latency percentiles, RPC "
                        "health, staleness, epoch activity)")
    metrics.add_argument("--seed", type=int, default=0,
                         help="single seed to run (default 0)")
    metrics.add_argument("--seeds", type=int, default=None, metavar="N",
                         help="run and merge seeds 0..N-1 instead of "
                              "--seed")
    metrics.add_argument("--ops", type=int, default=60,
                         help="workload length per run (default 60)")
    metrics.add_argument("--nodes", type=int, default=9)
    metrics.add_argument("--protocol",
                         choices=["dynamic", "static", "voting"],
                         default="dynamic")
    metrics.add_argument("--json", nargs="?", const="auto", metavar="PATH",
                         help="also write summary+snapshot JSON (default "
                              "path under results/ when no PATH given)")
    metrics.set_defaults(handler=_cmd_metrics)

    shard = sub.add_parser(
        "shard", help="sharded-keyspace scenario: keyed workload, "
                      "batched epoch sweep, hot-shard rebalancing")
    shard.add_argument("--nodes", type=int, default=6)
    shard.add_argument("--shards", type=int, default=64)
    shard.add_argument("--replication", type=int, default=3)
    shard.add_argument("--seed", type=int, default=0)
    shard.add_argument("--ops", type=int, default=600,
                       help="total operations (default 600)")
    shard.add_argument("--keys", type=int, default=10000,
                       help="keyspace size (default 10000)")
    shard.add_argument("--clients", type=int, default=8)
    shard.add_argument("--read-fraction", type=float, default=0.8)
    shard.add_argument("--skew", type=float, default=1.0,
                       help="Zipf skew of key choice (default 1.0)")
    shard.add_argument("--hot-factor", type=float, default=4.0,
                       help="hot-shard threshold as a multiple of the "
                            "mean shard load (default 4.0)")
    shard.add_argument("--rebalance", action="store_true",
                       help="migrate detected hot shards to the "
                            "least-loaded nodes")
    shard.set_defaults(handler=_cmd_shard)

    strategy = sub.add_parser(
        "strategy", help="show the load-optimal quorum strategy for a "
                         "coterie at one read/write mix")
    strategy.add_argument("--n", type=int, default=9)
    strategy.add_argument("--read-fraction", type=float, default=0.9)
    strategy.add_argument("--seed", type=int, default=0)
    strategy.add_argument("--rule", choices=["grid", "majority"],
                          default="grid")
    strategy.add_argument("--top", type=int, default=8,
                          help="show at most this many quorums per kind "
                               "(default 8)")
    strategy.add_argument("--no-read-one", action="store_true",
                          help="never engage the read-one tier, even "
                               "when it wins on load")
    strategy.set_defaults(handler=_cmd_strategy)

    lint = sub.add_parser(
        "lint", help="protocol-aware static analysis (determinism, "
                     "clock discipline, message shape, metric keys) "
                     "and, with --coteries, semantic verification of "
                     "every coterie family and its epoch transitions")
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files/directories to lint (default: the "
                           "installed repro package)")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable report (schema "
                           "repro-lint-v1)")
    lint.add_argument("--coteries", action="store_true",
                      help="also verify coterie axioms and Lemma-1 "
                           "epoch transitions for every registered "
                           "family (skips the AST rules unless paths "
                           "are given)")
    lint.add_argument("--max-n", type=int, default=9, metavar="N",
                      help="cap the coterie universe size (3^N work "
                           "per family; default 9)")
    lint.set_defaults(handler=_cmd_lint)

    sanitize = sub.add_parser(
        "sanitize", help="schedule sanitizer: K perturbed-timing runs "
                         "of one crash-free workload with "
                         "happens-before race detection, quiesce leak "
                         "assertions, and a bit-reproducibility replay")
    sanitize.add_argument("--seed", type=int, default=0,
                          help="workload seed (default 0)")
    sanitize.add_argument("--nodes", type=int, default=9)
    sanitize.add_argument("--ops", type=int, default=40,
                          help="workload length (default 40)")
    sanitize.add_argument("-k", "--schedules", type=int, default=8,
                          metavar="K",
                          help="schedules per sweep: 0 pristine, "
                               "1..K-1 perturbed (default 8)")
    sanitize.add_argument("--bound", type=float, default=0.5,
                          help="max per-message delay/reorder span "
                               "(default 0.5)")
    sanitize.add_argument("--canary", action="store_true",
                          help="re-introduce the stranded-lock bug; "
                               "exit 0 iff the sanitizer catches it")
    sanitize.add_argument("--json", metavar="PATH",
                          help="write the repro-sanitize-v1 artifact")
    sanitize.add_argument("--shrink", action="store_true",
                          help="delta-debug the first failing schedule "
                               "to a minimal spec")
    sanitize.set_defaults(handler=_cmd_sanitize)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # output piped into a pager/head that closed early: not an error
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
