"""Quiesce assertions: what must be true of a cluster at rest.

After a run's faults lift and the settle phase drains, the cluster is
supposed to be *quiet*: no lock held, no RPC handler parked, no courier
still walking.  Each violation is a leak the consistency checker cannot
see -- a stranded lock stalls future writers without corrupting any
value, which is exactly why PR 8's bug survived the 1SR checker.

One instantaneous snapshot would false-positive: the periodic epoch
checker keeps firing (every ``epoch_check_interval``), and each pulse
transiently acquires locks, parks handlers, and spawns lease watchdogs
that sleep out their full lease by design.  So the check takes *two*
snapshots separated by a gap chosen to outlive every legitimate
transient (longer than a poll round, an RPC deadline, and the
propagation lease; shorter than the lock lease, so a leak the lease
watchdog would eventually reap is still caught in the window) and flags
only what persists across both with the same identity:

* a lock held by the *same owner* at both instants;
* the *same* server-side RPC handler still in progress;
* the *same* client-side call still pending;
* the *same* propagation courier process still alive.

Independently, on a crash-free run any ``lock-lease-expired`` trace
event is a finding: the lease watchdog is the last-resort reaper for
coordinator crashes, so on a run with no crashes it firing at all means
an operation abandoned its locks -- the stranded-lock bug class, caught
by counter rather than by snapshot timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Snapshot gap (simulated time).  Must exceed the propagation lease
#: (4.0) and the widest RPC deadline (rtt_deadline_max, 2.0) and stay
#: below the lock lease (8.0); see the module docstring.
QUIESCE_GAP = 4.5

#: Process-name fragments that identify propagation couriers -- the only
#: spawned processes with no built-in expiry (they loop on retry).
COURIER_MARKERS = ("propagate", "prop-lease")


@dataclass
class Snapshot:
    """One instant's leak-relevant cluster state."""

    time: float
    locks: set = field(default_factory=set)      # (node, lock, owner)
    inflight: set = field(default_factory=set)   # (node, reply_to, req_id)
    pending: set = field(default_factory=set)    # (node, req_id)
    couriers: dict = field(default_factory=dict)  # (node, id(p)) -> name


def take_snapshot(store) -> Snapshot:
    """Capture the held locks, parked RPCs, and live couriers."""
    snap = Snapshot(time=store.env.now)
    for name in store.node_names:
        node = store.nodes[name]
        for lock in node.locks:
            for owner in lock.holders:
                snap.locks.add((name, lock.name, owner))
        for process in node.live_processes():
            if any(marker in process.name for marker in COURIER_MARKERS):
                snap.couriers[(name, id(process))] = process.name
    for name, server in store.servers.items():
        rpc = getattr(server, "rpc", None)
        if rpc is None:
            continue
        for key in rpc.inflight_handlers():
            snap.inflight.add((name,) + tuple(key))
        for req_id in rpc.pending_calls():
            snap.pending.add((name, req_id))
    return snap


def compare_snapshots(first: Snapshot, second: Snapshot) -> list[str]:
    """Findings for state that persisted across both snapshots."""
    findings = []
    for node, lock, owner in sorted(first.locks & second.locks):
        findings.append(
            f"leaked lock: {lock} on {node} held by {owner!r} at both "
            f"t={first.time:.2f} and t={second.time:.2f} "
            f"(every transient hold is far shorter than the gap)")
    for node, reply_to, req_id in sorted(first.inflight & second.inflight):
        findings.append(
            f"stuck handler: {node} has the request ({reply_to!r}, "
            f"{req_id}) in progress across the whole "
            f"{second.time - first.time:.1f} gap -- a generator parked "
            f"on a lock or a call that will never answer")
    for node, req_id in sorted(first.pending & second.pending):
        findings.append(
            f"stuck call: {node}'s req {req_id} still pending after "
            f"{second.time - first.time:.1f} -- longer than any deadline, "
            f"so its timeout machinery is lost")
    stranded = set(first.couriers) & set(second.couriers)
    for key in sorted(stranded):
        node, _ = key
        findings.append(
            f"stranded courier: {first.couriers[key]!r} on {node} alive "
            f"at both snapshots -- propagation that neither finishes nor "
            f"gives up")
    return findings


def check_quiesce(store, crash_free: bool = True,
                  gap: float = QUIESCE_GAP) -> list[str]:
    """Run the full quiesce check; advances the store by *gap*.

    Call only after the run's settle phase -- this is a post-mortem,
    not a probe that can run mid-workload.
    """
    findings = []
    if crash_free:
        expired = store.trace.count("lock-lease-expired")
        if expired:
            findings.append(
                f"lease reaper fired {expired}x on a crash-free run: an "
                f"operation abandoned granted locks (stranded-lock bug "
                f"class; the watchdog exists for coordinator *crashes*)")
    first = take_snapshot(store)
    store.advance(gap)
    second = take_snapshot(store)
    findings.extend(compare_snapshots(first, second))
    return findings
