"""Happens-before tracking over simulated message deliveries.

The simulation is single-threaded, so nothing ever *races* in the OS
sense -- but the protocol can still commit two different transactions
that write the same ``(key, version)`` on different replicas with no
message chain ordering one apply before the other.  That is the
distributed-systems analogue of a data race: version numbers are the
protocol's write-ordering token, and two causally concurrent applies
claiming the same token mean the quorum intersection argument failed
somewhere (split-brain epochs, a lost lock, a broken dedup cache).

:class:`HBTracker` subscribes to a cluster's :class:`~repro.sim.trace.
TraceLog` (observers fire even when record storage is disabled) and
maintains classic vector clocks:

* ``send`` ticks the sender and snapshots its clock under the message
  id (duplicates re-deliver the same snapshot, which is exactly right);
* ``deliver`` merges the snapshot into the receiver, then ticks it;
* ``state-apply`` (emitted by the replica's 2PC commit path) stamps the
  apply with the replica's current clock.

Two applies conflict when they share a key and a version but belong to
different transactions; a conflict whose clocks are concurrent (neither
``<=`` the other) is reported as a race.  Same-transaction applies on
different replicas are the normal replication fan-out and are never
flagged.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.trace import TraceLog, TraceRecord

#: Snapshot-map bound: dropped messages leave orphaned snapshots behind,
#: so the per-message clock store is an LRU keyed by msg_id.
SNAPSHOT_CAPACITY = 20_000


def clock_leq(a: dict, b: dict) -> bool:
    """Vector-clock partial order: every component of *a* is <= *b*'s."""
    return all(ticks <= b.get(node, 0) for node, ticks in a.items())


def concurrent(a: dict, b: dict) -> bool:
    """Neither clock happened-before the other."""
    return not clock_leq(a, b) and not clock_leq(b, a)


@dataclass(frozen=True)
class Apply:
    """One replica-side committed state application."""

    node: str
    time: float
    txn_id: str
    op_id: str
    keys: tuple
    version: int
    clock: dict = field(hash=False)


@dataclass(frozen=True)
class Race:
    """Two causally concurrent applies claiming the same (key, version)."""

    key: str
    version: int
    first: Apply
    second: Apply

    def describe(self) -> str:
        return (f"race on ({self.key!r}, v{self.version}): "
                f"txn {self.first.txn_id} applied on {self.first.node} "
                f"@{self.first.time:.4f} and txn {self.second.txn_id} "
                f"applied on {self.second.node} @{self.second.time:.4f} "
                f"are causally concurrent -- no message chain orders them")


class HBTracker:
    """Vector-clock race detector over one cluster's trace stream."""

    def __init__(self, snapshot_capacity: int = SNAPSHOT_CAPACITY):
        self.clocks: dict[str, dict[str, int]] = {}
        self.applies: dict[tuple, list[Apply]] = {}   # (key, version) -> [..]
        self.races: list[Race] = []
        self._snapshots: OrderedDict = OrderedDict()  # msg_id -> clock copy
        self._capacity = snapshot_capacity
        self._trace: Optional[TraceLog] = None
        self.events_seen = 0

    # -- wiring -----------------------------------------------------------
    def attach(self, trace: TraceLog) -> "HBTracker":
        """Subscribe to *trace*; returns self for chaining."""
        trace.subscribe(self.observe)
        self._trace = trace
        return self

    def attach_store(self, store) -> "HBTracker":
        """`instrument=` adapter for :func:`repro.chaos.runner.run_spec`."""
        return self.attach(store.trace)

    def detach(self) -> None:
        if self._trace is not None:
            self._trace.unsubscribe(self.observe)
            self._trace = None

    # -- the clock machine ------------------------------------------------
    def _tick(self, node: str) -> dict:
        clock = self.clocks.setdefault(node, {})
        clock[node] = clock.get(node, 0) + 1
        return clock

    def observe(self, rec: TraceRecord) -> None:
        if rec.kind == "send":
            self.events_seen += 1
            clock = self._tick(rec.node)
            self._snapshots[rec.detail["msg_id"]] = dict(clock)
            self._snapshots.move_to_end(rec.detail["msg_id"])
            while len(self._snapshots) > self._capacity:
                self._snapshots.popitem(last=False)
        elif rec.kind == "deliver":
            self.events_seen += 1
            snapshot = self._snapshots.get(rec.detail["msg_id"])
            clock = self.clocks.setdefault(rec.node, {})
            if snapshot:
                for node, ticks in snapshot.items():
                    if ticks > clock.get(node, 0):
                        clock[node] = ticks
            self._tick(rec.node)
        elif rec.kind == "state-apply":
            self.events_seen += 1
            self._on_apply(rec)

    def _on_apply(self, rec: TraceRecord) -> None:
        apply = Apply(node=rec.node, time=rec.time,
                      txn_id=rec.detail.get("txn_id", ""),
                      op_id=rec.detail.get("op_id", ""),
                      keys=tuple(rec.detail.get("keys", ())),
                      version=rec.detail.get("version", 0),
                      clock=dict(self.clocks.get(rec.node, {})))
        for key in apply.keys:
            slot = (key, apply.version)
            for prior in self.applies.setdefault(slot, []):
                if prior.txn_id == apply.txn_id:
                    continue   # replication fan-out of one transaction
                if concurrent(prior.clock, apply.clock):
                    self.races.append(Race(key=key, version=apply.version,
                                           first=prior, second=apply))
            self.applies[slot].append(apply)

    # -- reporting --------------------------------------------------------
    def race_descriptions(self) -> list[str]:
        return [race.describe() for race in self.races]
