"""Schedule sanitizer: perturbed timings, happens-before, quiesce.

See :mod:`repro.sanitize.runner` for the sweep, :mod:`repro.sanitize.hb`
for the vector-clock race detector, and :mod:`repro.sanitize.quiesce`
for the leak assertions.  CLI entry point: ``repro sanitize``; docs:
docs/SANITIZER.md.
"""

from repro.sanitize.hb import Apply, HBTracker, Race, clock_leq, concurrent
from repro.sanitize.quiesce import (
    QUIESCE_GAP,
    Snapshot,
    check_quiesce,
    compare_snapshots,
    take_snapshot,
)
from repro.sanitize.runner import (
    ARTIFACT_FORMAT,
    CANARY_BUG,
    SanitizeReport,
    SanitizeSpec,
    ScheduleResult,
    base_spec,
    build_artifact,
    load_artifact,
    run_sanitized,
    run_sweep,
    save_artifact,
    schedule_spec,
    state_digest,
)

__all__ = [
    "ARTIFACT_FORMAT",
    "Apply",
    "CANARY_BUG",
    "HBTracker",
    "QUIESCE_GAP",
    "Race",
    "SanitizeReport",
    "SanitizeSpec",
    "ScheduleResult",
    "Snapshot",
    "base_spec",
    "build_artifact",
    "check_quiesce",
    "clock_leq",
    "compare_snapshots",
    "concurrent",
    "load_artifact",
    "run_sanitized",
    "run_sweep",
    "save_artifact",
    "schedule_spec",
    "state_digest",
    "take_snapshot",
]
