"""The schedule sanitizer: K perturbed schedules, always-on invariants.

Chaos testing (:mod:`repro.chaos`) asks "does the protocol survive
*faults*?".  The sanitizer asks a quieter question: "does the protocol
survive *timing*?"  One seeded workload is run under K bounded
message-perturbation schedules -- schedule 0 is the pristine ordering,
schedules 1..K-1 delay and reorder (never drop, never duplicate) every
link within a small bound -- and every run must pass three always-on
checks on top of the usual consistency verification:

* the **happens-before tracker** (:mod:`repro.sanitize.hb`) watches
  message deliveries and replica state applies for causally concurrent
  writes to the same ``(key, version)``;
* the **quiesce check** (:mod:`repro.sanitize.quiesce`) asserts the
  settled cluster leaked nothing: no lock, no parked handler, no
  pending call, no immortal courier, and -- the canary catcher -- zero
  lease-reaper firings on a crash-free run;
* **bit-reproducibility**: after the sweep, schedule 0 is re-run and
  its state digest must match exactly, or the whole suite's
  determinism story is broken.

A failing schedule hands its spec straight to the chaos delta debugger
(:func:`repro.chaos.shrink.shrink`) with :func:`run_sanitized` as the
executor, so ddmin's "still fails" predicate sees sanitizer findings,
not just checker violations.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.chaos.faults import FaultPolicy
from repro.chaos.runner import ChaosReport, ChaosSpec, generate_spec, run_spec
from repro.sanitize.hb import HBTracker
from repro.sanitize.quiesce import check_quiesce

ARTIFACT_FORMAT = "repro-sanitize-v1"

#: Per-message probability of delay / reorder under a perturbed schedule.
PERTURB_RATE = 0.35

#: The canary the sanitizer must catch (ProtocolConfig.chaos_bug value).
CANARY_BUG = "stranded-lock"


@dataclass
class SanitizeSpec:
    """Everything one sanitizer sweep depends on."""

    seed: int = 0
    n_nodes: int = 9
    ops: int = 40
    schedules: int = 8     # K: schedule 0 pristine, 1..K-1 perturbed
    bound: float = 0.5     # max extra delay/reorder per message
    canary: bool = False   # re-introduce the stranded-lock bug

    def to_dict(self) -> dict:
        return {"seed": self.seed, "n_nodes": self.n_nodes,
                "ops": self.ops, "schedules": self.schedules,
                "bound": self.bound, "canary": self.canary}

    @classmethod
    def from_dict(cls, data: dict) -> "SanitizeSpec":
        return cls(**{k: data[k] for k in
                      ("seed", "n_nodes", "ops", "schedules", "bound",
                       "canary") if k in data})


@dataclass
class ScheduleResult:
    """Outcome of one schedule of the sweep."""

    schedule: int
    spec: ChaosSpec
    ok: bool
    violations: list = field(default_factory=list)
    races: int = 0
    digest: str = ""
    end_time: float = 0.0


@dataclass
class SanitizeReport:
    """Outcome of the whole sweep."""

    spec: SanitizeSpec
    results: list = field(default_factory=list)
    reproducible: bool = True
    baseline_digest: str = ""
    replay_digest: str = ""

    @property
    def failures(self) -> list:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        """Clean sweep: every schedule quiet and the replay bit-equal.

        Under ``canary=True`` the polarity flips at the CLI, not here:
        ``ok`` still means "no findings", the caller checks that it is
        False."""
        return not self.failures and self.reproducible

    @property
    def canary_caught(self) -> bool:
        return any("stranded-lock" in v or "lease reaper" in v
                   for r in self.failures for v in r.violations)


# -- spec construction --------------------------------------------------------

def base_spec(spec: SanitizeSpec) -> ChaosSpec:
    """The sweep's workload: seeded ops, no faults, no crashes.

    Crash-free by construction (``schedule=[]``): the quiesce
    invariants are unconditional only when nothing fail-stops.  The
    gray-failure knobs are on because the canary's bug site is the
    straggler-release path, which only exists under per-destination
    deadlines -- and because timing sensitivity is exactly what the
    sanitizer hunts.
    """
    chaos = generate_spec(spec.seed, protocol="dynamic",
                          n_nodes=spec.n_nodes, ops=spec.ops,
                          message_faults=False, nemesis=False,
                          bug=CANARY_BUG if spec.canary else "")
    chaos.schedule = []
    chaos.config = {"adaptive_timeouts": True, "hedge_requests": True}
    return chaos


def schedule_spec(spec: SanitizeSpec, k: int) -> ChaosSpec:
    """Schedule *k* of the sweep: same workload, perturbed timing.

    The workload RNG stream (``seed``) is untouched; only the
    link-fault stream (``faults_seed``) varies with *k*, so every
    schedule executes the same client operations under a different
    bounded reordering of the wire.
    """
    chaos = base_spec(spec)
    if k > 0:
        chaos.policy = FaultPolicy(
            delay=PERTURB_RATE, delay_span=spec.bound,
            reorder=PERTURB_RATE, reorder_span=spec.bound).to_dict()
        chaos.faults_seed = (spec.seed * 1_000_003) + k
    return chaos


# -- execution ----------------------------------------------------------------

def state_digest(store) -> str:
    """SHA-256 over everything a deterministic run fixes.

    Trace counters cover the event stream shape, the replica states
    cover the outcome, the clock and event count cover the path.  Two
    runs of the same spec must digest identically, bit for bit.
    """
    payload = {
        "now": round(store.env.now, 9),
        "events": store.env.events_processed,
        "trace": store.trace.counts(),
        "replicas": {
            name: {"version": server.state.version,
                   "stale": server.state.stale,
                   "value": sorted(server.state.value.items())}
            for name, server in store.servers.items()},
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def run_sanitized(spec: ChaosSpec, trace_enabled: bool = False) -> ChaosReport:
    """``run_spec`` plus the sanitizer's always-on checks.

    Findings land in ``report.violation`` (prefixed ``SanitizeError``)
    so the chaos shrinker's default ``fails`` predicate -- and any
    caller that only looks at ``report.ok`` -- treats a leak exactly
    like a consistency violation.  Pass this as ``shrink(..., run=...)``
    to minimize a sanitizer failure.
    """
    tracker = HBTracker()
    report = run_spec(spec, trace_enabled=trace_enabled,
                      instrument=tracker.attach_store)
    problems = tracker.race_descriptions()
    if report.ok:
        problems += check_quiesce(report.store,
                                  crash_free=not spec.schedule)
    if report.ok and problems:
        report.ok = False
        report.violation = "SanitizeError: " + " | ".join(problems)
    report.stats["races"] = len(tracker.races)
    return report


def run_sweep(spec: SanitizeSpec, on_result=None) -> SanitizeReport:
    """Run all K schedules, then the schedule-0 reproducibility replay."""
    report = SanitizeReport(spec=spec)
    for k in range(spec.schedules):
        chaos = schedule_spec(spec, k)
        schedule_report = run_sanitized(chaos)
        result = ScheduleResult(
            schedule=k, spec=chaos, ok=schedule_report.ok,
            violations=([schedule_report.violation]
                        if schedule_report.violation else []),
            races=schedule_report.stats.get("races", 0),
            digest=state_digest(schedule_report.store),
            end_time=schedule_report.end_time)
        report.results.append(result)
        if k == 0:
            report.baseline_digest = result.digest
        if on_result is not None:
            on_result(result)
    replay = run_sanitized(schedule_spec(spec, 0))
    report.replay_digest = state_digest(replay.store)
    report.reproducible = report.replay_digest == report.baseline_digest
    return report


# -- artifacts ----------------------------------------------------------------

def build_artifact(report: SanitizeReport) -> dict:
    """The JSON artifact ``repro sanitize --json`` emits."""
    return {
        "format": ARTIFACT_FORMAT,
        "spec": report.spec.to_dict(),
        "ok": report.ok,
        "reproducible": report.reproducible,
        "baseline_digest": report.baseline_digest,
        "replay_digest": report.replay_digest,
        "canary_caught": report.canary_caught,
        "schedules": [
            {"schedule": r.schedule,
             "faults_seed": r.spec.faults_seed,
             "ok": r.ok,
             "violations": list(r.violations),
             "races": r.races,
             "digest": r.digest,
             "end_time": r.end_time,
             "chaos_spec": r.spec.to_dict()}
            for r in report.results],
    }


def save_artifact(path: str, report: SanitizeReport) -> dict:
    """Write the artifact; returns the dict."""
    artifact = build_artifact(report)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return artifact


def load_artifact(path: str) -> dict:
    """Read an artifact, validating the format marker."""
    with open(path, "r", encoding="utf-8") as handle:
        artifact = json.load(handle)
    if artifact.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            f"{path} is not a sanitize artifact "
            f"(format={artifact.get('format')!r})")
    return artifact
