"""Message size estimation for traffic accounting.

The paper's efficiency arguments are about *bytes on the wire* as much as
message counts: partial writes ship deltas, propagation ships log slices
instead of whole objects.  Since the simulator passes Python objects, we
estimate a wire size per payload with a simple recursive model (close
enough for relative comparisons, which is all the experiments need):

* fixed per-message envelope (headers, ids): 48 bytes;
* int/float/bool/None: 8 bytes;
* str/bytes: length (+2 framing);
* containers: 8 bytes plus the sum of their elements (dicts count keys
  and values);
* dataclasses: their field values.
"""

from __future__ import annotations

import dataclasses
from typing import Any

ENVELOPE_BYTES = 48


def estimate_size(payload: Any) -> int:
    """Estimated wire size of one payload, in bytes (without envelope)."""
    if payload is None or isinstance(payload, (bool, int, float)):
        return 8
    if isinstance(payload, (str, bytes)):
        return len(payload) + 2
    if isinstance(payload, dict):
        return 8 + sum(estimate_size(k) + estimate_size(v)
                       for k, v in payload.items())
    if isinstance(payload, (list, tuple, set, frozenset)):
        return 8 + sum(estimate_size(item) for item in payload)
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        return 8 + sum(
            estimate_size(getattr(payload, field.name))
            for field in dataclasses.fields(payload))
    # opaque objects (rare in protocol payloads): flat charge
    return 32


def message_size(payload: Any) -> int:
    """Envelope plus payload."""
    return ENVELOPE_BYTES + estimate_size(payload)
