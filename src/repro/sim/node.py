"""The node abstraction: crash-stop hosts with stable storage.

A :class:`Node` owns:

* a *stable storage* dict that survives crashes (replica protocol state --
  value, version numbers, stale flag, epoch list/number -- lives here, as
  the paper's recovery story requires);
* *volatile* state that is wiped by a crash (locks, in-flight handlers);
* a registry of RPC handlers and a set of live processes that are
  interrupted when the node crashes.

Crash/recover are synchronous state flips; the surrounding machinery
(network drops, handler interrupts, lock resets) makes the fail-stop
semantics observable to the rest of the system.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.sim.engine import Environment, Lock, Process
from repro.sim.network import Message, Network
from repro.sim.trace import TraceLog


class Node:
    """A crash-stop host participating in the simulated system."""

    def __init__(self, env: Environment, network: Network, name: str,
                 trace: Optional[TraceLog] = None):
        self.env = env
        self.network = network
        self.name = name
        self.trace = trace if trace is not None else network.trace
        self.up = True
        self.stable: dict[str, Any] = {}
        self.volatile: dict[str, Any] = {}
        self._locks: list[Lock] = []
        self._processes: list[Process] = []
        self._prune_floor = 0
        self._handlers: dict[str, Callable[[Message], Any]] = {}
        self._crash_hooks: list[Callable[[], None]] = []
        self._recover_hooks: list[Callable[[], None]] = []
        network.register(name, self._on_message, lambda: self.up)

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return f"<Node {self.name} {state}>"

    # -- state management ------------------------------------------------------
    def make_lock(self, name: str) -> Lock:
        """Create a lock that is reset (holders evicted) on crash."""
        lock = self.env.lock(f"{self.name}.{name}")
        self._locks.append(lock)
        return lock

    @property
    def locks(self) -> tuple[Lock, ...]:
        """Every lock this node ever created (read-only view).

        The sanitizer's quiesce check walks these after a run settles:
        a non-idle lock on a quiet cluster is a stranded grant."""
        return tuple(self._locks)

    def live_processes(self) -> list[Process]:
        """The node's currently-alive processes (read-only snapshot)."""
        return [p for p in self._processes if p.is_alive]

    def add_crash_hook(self, hook: Callable[[], None]) -> None:
        """Run *hook* whenever this node crashes."""
        self._crash_hooks.append(hook)

    def add_recover_hook(self, hook: Callable[[], None]) -> None:
        """Run *hook* whenever this node recovers."""
        self._recover_hooks.append(hook)

    def crash(self) -> None:
        """Fail-stop: drop volatile state, kill handlers, go silent."""
        if not self.up:
            return
        self.up = False
        self.trace.record(self.env.now, "node-crash", self.name)
        self.volatile.clear()
        for lock in self._locks:
            lock.reset()
        processes, self._processes = self._processes, []
        for process in processes:
            process.interrupt("node crash")
        for hook in self._crash_hooks:
            hook()

    def recover(self) -> None:
        """Come back up with stable storage intact and volatile state fresh."""
        if self.up:
            return
        self.up = True
        self.trace.record(self.env.now, "node-recover", self.name)
        for hook in self._recover_hooks:
            hook()

    # -- processes --------------------------------------------------------------
    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Run a process on this node; it dies if the node crashes."""
        process = self.env.process(generator, name=f"{self.name}:{name}")
        self._processes.append(process)
        self._prune_processes()
        return process

    def _prune_processes(self) -> None:
        # Geometric pruning: only scan once the list has doubled since
        # the last compaction.  A fixed threshold re-scanned the whole
        # list on *every* spawn while more than 64 processes were live,
        # which is quadratic under workloads with thousands of
        # concurrent lease watchdogs (the sharded-store benchmark).
        if len(self._processes) > max(64, 2 * self._prune_floor):
            self._processes = [p for p in self._processes if p.is_alive]
            self._prune_floor = len(self._processes)

    # -- messaging ----------------------------------------------------------------
    def register_handler(self, kind: str,
                         handler: Callable[[Message], Any]) -> None:
        """Register the handler for messages of the given kind.

        A handler may be a plain function (runs synchronously at delivery)
        or return a generator, which is spawned as a node process so it can
        wait on locks or perform further communication.
        """
        if kind in self._handlers:
            raise ValueError(f"{self.name}: handler for {kind!r} already set")
        self._handlers[kind] = handler

    def send(self, dst: str, kind: str, payload: Any) -> int:
        """Send one message from this node."""
        return self.network.send(self.name, dst, kind, payload)

    def _on_message(self, msg: Message) -> None:
        handler = self._handlers.get(msg.kind)
        if handler is None:
            self.trace.record(self.env.now, "unhandled", self.name,
                              msg_kind=msg.kind, src=msg.src)
            return
        result = handler(msg)
        if result is not None and hasattr(result, "send"):
            self.spawn(result, name=f"handle-{msg.kind}")
