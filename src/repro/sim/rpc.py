"""RPC layer with the paper's ``RPC.CallFailed`` semantics.

The paper assumes "RPC-style communication in which the notification
RPC.CallFailed is returned to the sender if the message cannot be delivered"
(Section 3).  We realise that with a timeout: a call that receives no
response within its deadline completes with the :data:`CALL_FAILED`
sentinel.  This covers every loss mode uniformly -- dead callee, dead
caller-side link, network partition, or callee crash mid-handler.

Coordinators therefore gather *mixed* response sets, exactly like the
pseudo-code in the paper's appendix: some entries are state tuples, some are
``CALL_FAILED``, and the quorum logic only counts the former.

Gray-failure extensions (all opt-in, default behaviour unchanged):

* **Adaptive per-link deadlines** -- construct the layer with an
  :class:`AdaptiveTimeouts` and every response updates a Jacobson-style
  srtt/rttvar estimate for its link; :meth:`RpcLayer.deadline_for` turns
  that into a clamped per-destination deadline.  Timeouts never update
  the estimate (Karn's rule), late responses do.
* **Managed waves** -- :meth:`RpcLayer.call_wave` accepts per-destination
  ``deadlines``, a :class:`HedgePolicy` (backup requests to spare nodes
  once a straggler exceeds its p99-style estimate -- safe because the
  server side is at-most-once), and an ``enough`` predicate for early
  completion once the quorum logic is already satisfied.
* **Late-response harvesting** -- a reply that arrives after its deadline
  is still a liveness and latency signal; it is fed to the observers
  (and counted) instead of being silently dropped.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Optional

from repro.obs.metrics import NULL_REGISTRY
from repro.sim.engine import Environment, Event
from repro.sim.node import Node


class CallFailed:
    """Singleton sentinel for failed RPCs (the paper's ``RPC.CallFailed``)."""

    _instance: Optional["CallFailed"] = None

    def __new__(cls) -> "CallFailed":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "CALL_FAILED"

    def __bool__(self) -> bool:
        return False


CALL_FAILED = CallFailed()


@dataclass(frozen=True, slots=True)
class _Request:
    req_id: int
    method: str
    args: Any
    reply_to: str


@dataclass(frozen=True, slots=True)
class _Response:
    req_id: int
    value: Any


@dataclass(frozen=True, slots=True)
class AdaptiveTimeouts:
    """Jacobson-style per-link deadline knobs (mirrors ProtocolConfig).

    Deadlines are ``srtt + deadline_mult * rttvar`` clamped to
    ``[floor, ceil]``; the hedge threshold uses ``hedge_mult`` instead of
    ``deadline_mult`` (a looser, p99-style overdue estimate).
    """

    alpha: float = 0.125
    beta: float = 0.25
    deadline_mult: float = 4.0
    floor: float = 0.05
    ceil: float = 2.0
    hedge_mult: float = 6.0


class _LinkRtt:
    """srtt/rttvar EWMA for one outgoing link (RFC 6298 recurrences)."""

    __slots__ = ("srtt", "rttvar")

    def __init__(self) -> None:
        self.srtt: Optional[float] = None
        self.rttvar = 0.0

    def observe(self, rtt: float, alpha: float, beta: float) -> None:
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = (1.0 - beta) * self.rttvar + beta * abs(
                self.srtt - rtt)
            self.srtt = (1.0 - alpha) * self.srtt + alpha * rtt


@dataclass(slots=True)
class HedgePolicy:
    """Backup-request policy for one managed wave.

    ``spares`` are candidate destinations ranked fastest-first (the
    planner's latency ranking), disjoint from the wave's own targets.
    ``request`` is the ``(method, args)`` a backup call carries --
    quorum polls send the same op to every member, so one request shape
    covers all spares.  ``delays`` maps each *original* destination to
    its overdue threshold (hedge fires when the straggler has been
    silent that long); a destination with no entry is never hedged.
    ``deadlines`` maps each spare to the deadline its backup call gets.
    At most ``limit`` backups fire per wave, one per straggler.
    """

    spares: tuple[str, ...]
    request: tuple[str, Any]
    delays: Mapping[str, float] = field(default_factory=dict)
    deadlines: Mapping[str, float] = field(default_factory=dict)
    limit: int = 2


class _Wave:
    """One batched fan-out: N calls sharing a single deadline timer and a
    single completion event (vs. N per-call timers plus an AllOf).

    A *managed* wave (``expiries is not None``) instead re-arms one
    walking timer over per-destination deadlines and hedge thresholds;
    the plain path stays a single timer because quorum polling is the
    simulation's hottest loop.
    """

    __slots__ = ("event", "total", "results", "req_ids", "enough",
                 "hedge", "expiries", "hedge_at", "hedges", "accounted")

    def __init__(self, event: Event, total: int):
        self.event = event
        self.total = total
        self.results: dict[str, Any] = {}
        self.req_ids: dict[int, str] = {}  # outstanding req_id -> dst
        self.enough: Optional[Callable[[dict], bool]] = None
        self.hedge: Optional[HedgePolicy] = None
        self.expiries: Optional[dict[int, float]] = None
        self.hedge_at: Optional[dict[int, float]] = None
        self.hedges: Optional[dict[str, str]] = None  # spare -> straggler
        self.accounted = False


class RpcLayer:
    """Per-node RPC endpoint.

    Client side::

        response = yield rpc.call("n3", "write-request", args)
        if response is CALL_FAILED: ...

    Server side::

        rpc.serve("write-request", handler)

    where ``handler(src, args)`` either returns a value directly or returns
    a generator (a node process) whose return value becomes the response.
    If the handler's node crashes before it finishes, no response is sent
    and the caller times out.

    The server side is **at-most-once** per caller request: a duplicate
    delivery of a request (a faulty network may duplicate datagrams) is
    answered from a bounded response cache keyed on ``(caller, req_id)``
    instead of re-running the handler, and a duplicate arriving while the
    original handler is still running is ignored (the caller gets the one
    reply the original produces).  The cache is volatile -- a crash clears
    it -- so handlers re-executed after recovery must still be idempotent
    at the protocol level (the 2PC participant dedups by ``txn_id`` in
    stable storage for exactly this reason).
    """

    REQUEST_KIND = "rpc-req"
    RESPONSE_KIND = "rpc-rsp"

    # How many answered requests the duplicate-suppression cache remembers
    # per node.  Duplicates older than this window re-execute the handler,
    # which protocol-level dedup must (and does) tolerate.
    DEDUP_CAPACITY = 1024

    # How many expired requests stay eligible for late-response credit.
    LATE_CAPACITY = 256

    _IN_PROGRESS = object()   # sentinel: handler started, no response yet

    def __init__(self, node: Node, default_timeout: float = 0.5,
                 metrics=None, adaptive: Optional[AdaptiveTimeouts] = None):
        self.node = node
        self.env: Environment = node.env
        self.default_timeout = default_timeout
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.adaptive = adaptive
        # dst -> (attempts counter, timeouts counter), bound lazily so the
        # per-call cost is one dict lookup (the wave fan-out is the
        # simulation's hottest loop)
        self._link_stats: dict[str, tuple] = {}
        # dst -> (srtt gauge, deadline gauge), bound lazily (adaptive only)
        self._link_gauges: dict[str, tuple] = {}
        # dst -> Jacobson estimator; volatile (crash clears it)
        self._rtt: dict[str, _LinkRtt] = {}
        self._req_ids = itertools.count(1)
        # (caller, req_id) -> response value or _IN_PROGRESS (bounded LRU)
        self._served: OrderedDict[tuple[str, int], Any] = OrderedDict()
        # req_id -> (sink, dst, sent); sink is the call's Event or _Wave.
        self._pending: dict[int, tuple[Any, str, float]] = {}
        # expired req_id -> (dst, sent): a reply arriving for one of these
        # is late but still a liveness/latency signal (bounded LRU)
        self._late: OrderedDict[int, tuple[str, float]] = OrderedDict()
        self._methods: dict[str, Callable[[str, Any], Any]] = {}
        # Optional hook fed every observed outcome of an *outgoing* call:
        # ``observer(dst, ok)`` with ok=False on timeout, True on response.
        # The replica servers plug their LivenessView in here; caller-side
        # crashes never feed it (the destinations did nothing wrong).
        self.liveness_observer: Optional[Callable[[str, bool], None]] = None
        # Optional hook fed every measured round trip: ``observer(dst,
        # rtt)``.  Feeds the graded-suspicion latency scores.
        self.latency_observer: Optional[Callable[[str, float], None]] = None
        name = node.name
        self._m_hedge_fired = self.metrics.counter(
            "rpc_hedges", src=name, outcome="fired")
        self._m_hedge_won = self.metrics.counter(
            "rpc_hedges", src=name, outcome="won")
        self._m_hedge_wasted = self.metrics.counter(
            "rpc_hedges", src=name, outcome="wasted")
        self._m_late = self.metrics.counter("rpc_late_responses", src=name)
        node.register_handler(self.REQUEST_KIND, self._on_request)
        node.register_handler(self.RESPONSE_KIND, self._on_response)
        node.add_crash_hook(self._on_crash)

    # -- client side -------------------------------------------------------
    def _link(self, dst: str) -> tuple:
        """The (attempts, timeouts) counters for one outgoing link."""
        entry = self._link_stats.get(dst)
        if entry is None:
            entry = (self.metrics.counter("rpc_attempts",
                                          src=self.node.name, dst=dst),
                     self.metrics.counter("rpc_timeouts",
                                         src=self.node.name, dst=dst))
            self._link_stats[dst] = entry
        return entry

    def call(self, dst: str, method: str, args: Any = None,
             timeout: Optional[float] = None) -> Event:
        """Start a call; the returned event yields the response value or
        :data:`CALL_FAILED`.  It never fails with an exception."""
        deadline = self.default_timeout if timeout is None else timeout
        req_id = next(self._req_ids)
        result = self.env.event()
        self._pending[req_id] = (result, dst, self.env.now)
        self.node.trace.record(self.env.now, "rpc-call", self.node.name,
                               method=method, dst=dst, req_id=req_id)
        self._link(dst)[0].inc()
        self.node.send(dst, self.REQUEST_KIND,
                       _Request(req_id, method, args, self.node.name))
        self.env._schedule_call(lambda: self._expire(req_id), delay=deadline)
        return result

    def call_wave(self, requests: dict, timeout: Optional[float] = None,
                  deadlines: Optional[Mapping[str, float]] = None,
                  hedge: Optional[HedgePolicy] = None,
                  enough: Optional[Callable[[dict], bool]] = None) -> Event:
        """Fan out one call per destination as a single batched *wave*.

        *requests* maps ``dst -> (method, args)``; the returned event
        succeeds with ``{dst: value_or_CALL_FAILED}`` once every
        destination has answered or the shared deadline has passed.
        Semantically this equals one :meth:`call` per destination plus an
        ``AllOf`` with a common timeout, but the whole wave costs one
        expiry timer and one completion event instead of a timer per
        call -- the scheduler processes O(wave) fewer events per poll
        round, which is the protocol simulation's hottest loop.

        Passing any of the gray-failure options turns the wave into a
        *managed* wave:

        * ``deadlines`` -- per-destination deadline overrides (missing
          destinations keep *timeout*); requests expire individually.
        * ``hedge`` -- a :class:`HedgePolicy`; stragglers that exceed
          their overdue threshold trigger backup requests to spare nodes.
        * ``enough`` -- a predicate over the partial ``{dst: value}``
          result map; once it returns True the wave completes early with
          outstanding destinations reported as CALL_FAILED.  Their
          requests stay pending so answers that do arrive still feed the
          liveness/latency observers (and, until the deadline, the
          at-most-once server cache keeps duplicates harmless).
        """
        deadline = self.default_timeout if timeout is None else timeout
        gathered = self.env.event()
        if not requests:
            gathered.succeed({})
            return gathered
        wave = _Wave(gathered, len(requests))
        pending = self._pending
        trace = self.node.trace
        send = self.node.send
        now = self.env.now
        name = self.node.name
        for dst, (method, args) in requests.items():
            req_id = next(self._req_ids)
            pending[req_id] = (wave, dst, now)
            wave.req_ids[req_id] = dst
            trace.record(now, "rpc-call", name,
                         method=method, dst=dst, req_id=req_id)
            self._link(dst)[0].inc()
            send(dst, self.REQUEST_KIND, _Request(req_id, method, args, name))
        if deadlines is None and hedge is None and enough is None:
            self.env._schedule_call(lambda: self._expire_wave(wave),
                                    delay=deadline)
            return gathered
        wave.enough = enough
        wave.expiries = {
            req_id: now + (deadline if deadlines is None
                           else deadlines.get(dst, deadline))
            for req_id, dst in wave.req_ids.items()}
        if hedge is not None and hedge.spares and hedge.limit > 0:
            wave.hedge = hedge
            wave.hedge_at = {
                req_id: now + hedge.delays[dst]
                for req_id, dst in wave.req_ids.items()
                if dst in hedge.delays}
        self._arm_wave_tick(wave)
        return gathered

    def multicast(self, dsts: Iterable[str], method: str, args: Any = None,
                  timeout: Optional[float] = None) -> Event:
        """Call every destination in parallel.

        The returned event succeeds with ``{dst: value_or_CALL_FAILED}``
        once every call has completed or timed out.  The paper does not
        assume hardware multicast; this is a loop of unicasts, batched
        into one :meth:`call_wave`.
        """
        return self.call_wave({dst: (method, args) for dst in dsts},
                              timeout=timeout)

    def _observe(self, dst: str, ok: bool) -> None:
        observer = self.liveness_observer
        if observer is not None:
            observer(dst, ok)

    # -- adaptive RTT estimation -------------------------------------------
    def _record_rtt(self, dst: str, rtt: float) -> None:
        observer = self.latency_observer
        if observer is not None:
            observer(dst, rtt)
        a = self.adaptive
        if a is None:
            return
        est = self._rtt.get(dst)
        if est is None:
            est = self._rtt[dst] = _LinkRtt()
        est.observe(rtt, a.alpha, a.beta)
        gauges = self._link_gauges.get(dst)
        if gauges is None:
            gauges = (self.metrics.gauge("rpc_link_srtt",
                                         src=self.node.name, dst=dst),
                      self.metrics.gauge("rpc_link_deadline",
                                         src=self.node.name, dst=dst))
            self._link_gauges[dst] = gauges
        gauges[0].set(est.srtt)
        gauges[1].set(self._deadline_from(est))

    def _deadline_from(self, est: _LinkRtt) -> float:
        a = self.adaptive
        return min(max(est.srtt + a.deadline_mult * est.rttvar, a.floor),
                   a.ceil)

    def deadline_for(self, dst: str) -> float:
        """The adaptive deadline for one destination (default until the
        link has at least one RTT sample, or when adaptation is off)."""
        a = self.adaptive
        if a is not None:
            est = self._rtt.get(dst)
            if est is not None and est.srtt is not None:
                return self._deadline_from(est)
        return self.default_timeout

    def hedge_delay_for(self, dst: str) -> float:
        """How long a destination may stay silent before a backup request
        is justified (the p99-style overdue threshold)."""
        a = self.adaptive
        if a is not None:
            est = self._rtt.get(dst)
            if est is not None and est.srtt is not None:
                return min(max(est.srtt + a.hedge_mult * est.rttvar,
                               a.floor), a.ceil)
        return self.default_timeout

    def _remember_late(self, req_id: int, dst: str, sent: float) -> None:
        late = self._late
        late[req_id] = (dst, sent)
        while len(late) > self.LATE_CAPACITY:
            late.popitem(last=False)

    def _expire(self, req_id: int) -> None:
        entry = self._pending.pop(req_id, None)
        if entry is None:
            return
        event, dst, sent = entry
        if not event.triggered:
            self.node.trace.record(self.env.now, "rpc-timeout", self.node.name,
                                   req_id=req_id)
            self._link(dst)[1].inc()
            self._observe(dst, ok=False)
            self._remember_late(req_id, dst, sent)
            event.succeed(CALL_FAILED)

    def _expire_wave(self, wave: _Wave) -> None:
        if wave.event.triggered:
            return
        pending = self._pending
        trace = self.node.trace
        now = self.env.now
        for req_id, dst in wave.req_ids.items():
            entry = pending.pop(req_id, None)
            if entry is None:
                continue
            trace.record(now, "rpc-timeout", self.node.name, req_id=req_id)
            wave.results[dst] = CALL_FAILED
            self._link(dst)[1].inc()
            self._observe(dst, ok=False)
            self._remember_late(req_id, dst, entry[2])
        wave.req_ids.clear()
        wave.event.succeed(wave.results)

    # -- managed waves (per-dst deadlines / hedging / early completion) ----
    def _arm_wave_tick(self, wave: _Wave) -> None:
        times = [t for req_id, t in wave.expiries.items()
                 if req_id in wave.req_ids]
        if wave.hedge_at and not wave.event.triggered:
            times.extend(t for req_id, t in wave.hedge_at.items()
                         if req_id in wave.req_ids)
        if not times:
            return
        delay = max(0.0, min(times) - self.env.now)
        self.env._schedule_call(lambda: self._wave_tick(wave), delay=delay)

    def _wave_tick(self, wave: _Wave) -> None:
        if not wave.req_ids:
            self._settle_wave(wave)
            return
        now = self.env.now
        pending = self._pending
        trace = self.node.trace
        due = [req_id for req_id in wave.req_ids
               if wave.expiries.get(req_id, 0.0) <= now]
        for req_id in due:
            dst = wave.req_ids.pop(req_id)
            wave.expiries.pop(req_id, None)
            if wave.hedge_at:
                wave.hedge_at.pop(req_id, None)
            entry = pending.pop(req_id, None)
            if entry is None:
                continue
            trace.record(now, "rpc-timeout", self.node.name, req_id=req_id)
            if dst not in wave.results:
                wave.results[dst] = CALL_FAILED
            self._link(dst)[1].inc()
            self._observe(dst, ok=False)
            self._remember_late(req_id, dst, entry[2])
        if (wave.hedge is not None and wave.hedge_at
                and not wave.event.triggered):
            self._fire_hedges(wave, now)
        self._settle_wave(wave)
        if wave.req_ids:
            self._arm_wave_tick(wave)

    def _fire_hedges(self, wave: _Wave, now: float) -> None:
        policy = wave.hedge
        overdue = [req_id for req_id, t in wave.hedge_at.items()
                   if t <= now and req_id in wave.req_ids]
        if not overdue:
            return
        contacted = set(wave.req_ids.values()) | set(wave.results)
        if wave.hedges:
            contacted.update(wave.hedges)
        fired = len(wave.hedges) if wave.hedges else 0
        method, args = policy.request
        name = self.node.name
        for req_id in overdue:
            # one backup per straggler, ever
            del wave.hedge_at[req_id]
            if fired >= policy.limit:
                continue
            straggler = wave.req_ids.get(req_id)
            if straggler is None:
                continue
            spare = next((s for s in policy.spares if s not in contacted),
                         None)
            if spare is None:
                continue
            contacted.add(spare)
            if wave.hedges is None:
                wave.hedges = {}
            wave.hedges[spare] = straggler
            fired += 1
            backup_id = next(self._req_ids)
            self._pending[backup_id] = (wave, spare, now)
            wave.req_ids[backup_id] = spare
            wave.expiries[backup_id] = now + policy.deadlines.get(
                spare, self.default_timeout)
            self.node.trace.record(now, "rpc-hedge", name, method=method,
                                   dst=spare, straggler=straggler,
                                   req_id=backup_id)
            self._link(spare)[0].inc()
            self._m_hedge_fired.inc()
            self.node.send(spare, self.REQUEST_KIND,
                           _Request(backup_id, method, args, name))

    def _settle_wave(self, wave: _Wave) -> None:
        if not wave.req_ids:
            self._account_hedges(wave)
            if not wave.event.triggered:
                wave.event.succeed(wave.results)
            return
        if (not wave.event.triggered and wave.enough is not None
                and wave.enough(wave.results)):
            # Early completion: the quorum logic is already satisfied.
            # Report the stragglers as CALL_FAILED in a *copy*; their
            # requests stay pending so late answers still feed the
            # liveness and latency observers at (or before) expiry.
            early = dict(wave.results)
            for dst in wave.req_ids.values():
                if dst not in early:
                    early[dst] = CALL_FAILED
            wave.hedge_at = None  # no point hedging a satisfied wave
            wave.event.succeed(early)

    def _account_hedges(self, wave: _Wave) -> None:
        if wave.accounted:
            return
        wave.accounted = True
        if not wave.hedges:
            return
        for spare, straggler in wave.hedges.items():
            spare_answered = (
                wave.results.get(spare, CALL_FAILED) is not CALL_FAILED)
            straggler_answered = (
                wave.results.get(straggler, CALL_FAILED) is not CALL_FAILED)
            if spare_answered and not straggler_answered:
                self._m_hedge_won.inc()
            else:
                self._m_hedge_wasted.inc()

    def _on_crash(self) -> None:
        # Server side: the duplicate-suppression cache is volatile state.
        self._served.clear()
        # Client side: RTT estimates and late-response credit are volatile.
        self._rtt.clear()
        self._link_gauges.clear()
        self._late.clear()
        # The caller crashed: its pending calls are moot.  Complete them so
        # the event queue drains; any interested process was interrupted.
        # No liveness observation here -- the *caller* failed, not the
        # destinations.
        pending, self._pending = self._pending, {}
        waves = []
        for sink, dst, _sent in pending.values():
            if isinstance(sink, _Wave):
                sink.results[dst] = CALL_FAILED
                waves.append(sink)
            elif not sink.triggered:
                sink.succeed(CALL_FAILED)
        for wave in waves:
            if not wave.event.triggered:
                wave.req_ids.clear()
                wave.event.succeed(wave.results)

    # -- quiesce introspection --------------------------------------------
    def pending_calls(self) -> tuple:
        """Req-ids of client-side calls still awaiting answer or timeout."""
        return tuple(sorted(self._pending))

    def inflight_handlers(self) -> tuple:
        """Keys of server-side requests accepted but not yet answered.

        These are the ``_served`` entries still at the in-progress
        sentinel -- generator handlers parked on a lock or a nested
        call.  On a quiesced cluster this must drain to empty; an entry
        that persists is a stuck handler the sanitizer flags."""
        return tuple(sorted(key for key, value in self._served.items()
                            if value is self._IN_PROGRESS))

    # -- server side -------------------------------------------------------
    def serve(self, method: str, handler: Callable[[str, Any], Any]) -> None:
        """Register the handler for an RPC method."""
        if method in self._methods:
            raise ValueError(f"{self.node.name}: method {method!r} already served")
        self._methods[method] = handler

    def _on_request(self, msg) -> None:
        request: _Request = msg.payload
        key = (request.reply_to, request.req_id)
        if key in self._served:
            cached = self._served[key]
            self.node.trace.record(self.env.now, "rpc-duplicate",
                                   self.node.name, method=request.method,
                                   src=msg.src, req_id=request.req_id,
                                   state=("in-progress"
                                          if cached is self._IN_PROGRESS
                                          else "answered"))
            if cached is not self._IN_PROGRESS:
                # replay the recorded answer without re-running the handler
                self._reply(request, cached)
            return
        handler = self._methods.get(request.method)
        if handler is None:
            self.node.trace.record(self.env.now, "rpc-no-method",
                                   self.node.name, method=request.method)
            return
        self._remember(key, self._IN_PROGRESS)
        result = handler(msg.src, request.args)
        if result is not None and hasattr(result, "send"):
            self.node.spawn(self._respond_later(request, result),
                            name=f"rpc-{request.method}")
        else:
            self._remember(key, result)
            self._reply(request, result)

    def _remember(self, key: tuple[str, int], value: Any) -> None:
        self._served[key] = value
        self._served.move_to_end(key)
        while len(self._served) > self.DEDUP_CAPACITY:
            self._served.popitem(last=False)

    def _respond_later(self, request: _Request, generator):
        value = yield from generator
        self._remember((request.reply_to, request.req_id), value)
        self._reply(request, value)

    def _reply(self, request: _Request, value: Any) -> None:
        if not self.node.up:
            return
        self.node.send(request.reply_to, self.RESPONSE_KIND,
                       _Response(request.req_id, value))

    def _on_response(self, msg) -> None:
        response: _Response = msg.payload
        entry = self._pending.pop(response.req_id, None)
        if entry is None:
            late = self._late.pop(response.req_id, None)
            if late is not None:
                # A reply after the deadline: the call already failed, but
                # the destination is demonstrably alive -- feed the
                # liveness/latency observers instead of dropping it.
                dst, sent = late
                self._observe(dst, ok=True)
                self._record_rtt(dst, self.env.now - sent)
                self._m_late.inc()
                self.node.trace.record(self.env.now, "rpc-late-response",
                                       self.node.name, dst=dst,
                                       req_id=response.req_id)
            return
        sink, dst, sent = entry
        self._observe(dst, ok=True)
        self._record_rtt(dst, self.env.now - sent)
        if isinstance(sink, _Wave):
            del sink.req_ids[response.req_id]
            sink.results[dst] = response.value
            if sink.expiries is None:
                if (len(sink.results) == sink.total
                        and not sink.event.triggered):
                    sink.event.succeed(sink.results)
                return
            sink.expiries.pop(response.req_id, None)
            if sink.hedge_at:
                sink.hedge_at.pop(response.req_id, None)
            self._settle_wave(sink)
        elif not sink.triggered:
            sink.succeed(response.value)
