"""RPC layer with the paper's ``RPC.CallFailed`` semantics.

The paper assumes "RPC-style communication in which the notification
RPC.CallFailed is returned to the sender if the message cannot be delivered"
(Section 3).  We realise that with a timeout: a call that receives no
response within its deadline completes with the :data:`CALL_FAILED`
sentinel.  This covers every loss mode uniformly -- dead callee, dead
caller-side link, network partition, or callee crash mid-handler.

Coordinators therefore gather *mixed* response sets, exactly like the
pseudo-code in the paper's appendix: some entries are state tuples, some are
``CALL_FAILED``, and the quorum logic only counts the former.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from repro.obs.metrics import NULL_REGISTRY
from repro.sim.engine import Environment, Event
from repro.sim.node import Node


class CallFailed:
    """Singleton sentinel for failed RPCs (the paper's ``RPC.CallFailed``)."""

    _instance: Optional["CallFailed"] = None

    def __new__(cls) -> "CallFailed":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "CALL_FAILED"

    def __bool__(self) -> bool:
        return False


CALL_FAILED = CallFailed()


@dataclass(frozen=True, slots=True)
class _Request:
    req_id: int
    method: str
    args: Any
    reply_to: str


@dataclass(frozen=True, slots=True)
class _Response:
    req_id: int
    value: Any


class _Wave:
    """One batched fan-out: N calls sharing a single deadline timer and a
    single completion event (vs. N per-call timers plus an AllOf)."""

    __slots__ = ("event", "total", "results", "req_ids")

    def __init__(self, event: Event, total: int):
        self.event = event
        self.total = total
        self.results: dict[str, Any] = {}
        self.req_ids: dict[int, str] = {}  # outstanding req_id -> dst


class RpcLayer:
    """Per-node RPC endpoint.

    Client side::

        response = yield rpc.call("n3", "write-request", args)
        if response is CALL_FAILED: ...

    Server side::

        rpc.serve("write-request", handler)

    where ``handler(src, args)`` either returns a value directly or returns
    a generator (a node process) whose return value becomes the response.
    If the handler's node crashes before it finishes, no response is sent
    and the caller times out.

    The server side is **at-most-once** per caller request: a duplicate
    delivery of a request (a faulty network may duplicate datagrams) is
    answered from a bounded response cache keyed on ``(caller, req_id)``
    instead of re-running the handler, and a duplicate arriving while the
    original handler is still running is ignored (the caller gets the one
    reply the original produces).  The cache is volatile -- a crash clears
    it -- so handlers re-executed after recovery must still be idempotent
    at the protocol level (the 2PC participant dedups by ``txn_id`` in
    stable storage for exactly this reason).
    """

    REQUEST_KIND = "rpc-req"
    RESPONSE_KIND = "rpc-rsp"

    # How many answered requests the duplicate-suppression cache remembers
    # per node.  Duplicates older than this window re-execute the handler,
    # which protocol-level dedup must (and does) tolerate.
    DEDUP_CAPACITY = 1024

    _IN_PROGRESS = object()   # sentinel: handler started, no response yet

    def __init__(self, node: Node, default_timeout: float = 0.5,
                 metrics=None):
        self.node = node
        self.env: Environment = node.env
        self.default_timeout = default_timeout
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        # dst -> (attempts counter, timeouts counter), bound lazily so the
        # per-call cost is one dict lookup (the wave fan-out is the
        # simulation's hottest loop)
        self._link_stats: dict[str, tuple] = {}
        self._req_ids = itertools.count(1)
        # (caller, req_id) -> response value or _IN_PROGRESS (bounded LRU)
        self._served: OrderedDict[tuple[str, int], Any] = OrderedDict()
        # req_id -> (sink, dst); sink is the call's Event or its _Wave.
        self._pending: dict[int, tuple[Any, str]] = {}
        self._methods: dict[str, Callable[[str, Any], Any]] = {}
        # Optional hook fed every observed outcome of an *outgoing* call:
        # ``observer(dst, ok)`` with ok=False on timeout, True on response.
        # The replica servers plug their LivenessView in here; caller-side
        # crashes never feed it (the destinations did nothing wrong).
        self.liveness_observer: Optional[Callable[[str, bool], None]] = None
        node.register_handler(self.REQUEST_KIND, self._on_request)
        node.register_handler(self.RESPONSE_KIND, self._on_response)
        node.add_crash_hook(self._on_crash)

    # -- client side -------------------------------------------------------
    def _link(self, dst: str) -> tuple:
        """The (attempts, timeouts) counters for one outgoing link."""
        entry = self._link_stats.get(dst)
        if entry is None:
            entry = (self.metrics.counter("rpc_attempts",
                                          src=self.node.name, dst=dst),
                     self.metrics.counter("rpc_timeouts",
                                         src=self.node.name, dst=dst))
            self._link_stats[dst] = entry
        return entry

    def call(self, dst: str, method: str, args: Any = None,
             timeout: Optional[float] = None) -> Event:
        """Start a call; the returned event yields the response value or
        :data:`CALL_FAILED`.  It never fails with an exception."""
        deadline = self.default_timeout if timeout is None else timeout
        req_id = next(self._req_ids)
        result = self.env.event()
        self._pending[req_id] = (result, dst)
        self.node.trace.record(self.env.now, "rpc-call", self.node.name,
                               method=method, dst=dst, req_id=req_id)
        self._link(dst)[0].inc()
        self.node.send(dst, self.REQUEST_KIND,
                       _Request(req_id, method, args, self.node.name))
        self.env._schedule_call(lambda: self._expire(req_id), delay=deadline)
        return result

    def call_wave(self, requests: dict, timeout: Optional[float] = None
                  ) -> Event:
        """Fan out one call per destination as a single batched *wave*.

        *requests* maps ``dst -> (method, args)``; the returned event
        succeeds with ``{dst: value_or_CALL_FAILED}`` once every
        destination has answered or the shared deadline has passed.
        Semantically this equals one :meth:`call` per destination plus an
        ``AllOf`` with a common timeout, but the whole wave costs one
        expiry timer and one completion event instead of a timer per
        call -- the scheduler processes O(wave) fewer events per poll
        round, which is the protocol simulation's hottest loop.
        """
        deadline = self.default_timeout if timeout is None else timeout
        gathered = self.env.event()
        if not requests:
            gathered.succeed({})
            return gathered
        wave = _Wave(gathered, len(requests))
        pending = self._pending
        trace = self.node.trace
        send = self.node.send
        now = self.env.now
        name = self.node.name
        for dst, (method, args) in requests.items():
            req_id = next(self._req_ids)
            pending[req_id] = (wave, dst)
            wave.req_ids[req_id] = dst
            trace.record(now, "rpc-call", name,
                         method=method, dst=dst, req_id=req_id)
            self._link(dst)[0].inc()
            send(dst, self.REQUEST_KIND, _Request(req_id, method, args, name))
        self.env._schedule_call(lambda: self._expire_wave(wave),
                                delay=deadline)
        return gathered

    def multicast(self, dsts: Iterable[str], method: str, args: Any = None,
                  timeout: Optional[float] = None) -> Event:
        """Call every destination in parallel.

        The returned event succeeds with ``{dst: value_or_CALL_FAILED}``
        once every call has completed or timed out.  The paper does not
        assume hardware multicast; this is a loop of unicasts, batched
        into one :meth:`call_wave`.
        """
        return self.call_wave({dst: (method, args) for dst in dsts},
                              timeout=timeout)

    def _observe(self, dst: str, ok: bool) -> None:
        observer = self.liveness_observer
        if observer is not None:
            observer(dst, ok)

    def _expire(self, req_id: int) -> None:
        entry = self._pending.pop(req_id, None)
        if entry is None:
            return
        event, dst = entry
        if not event.triggered:
            self.node.trace.record(self.env.now, "rpc-timeout", self.node.name,
                                   req_id=req_id)
            self._link(dst)[1].inc()
            self._observe(dst, ok=False)
            event.succeed(CALL_FAILED)

    def _expire_wave(self, wave: _Wave) -> None:
        if wave.event.triggered:
            return
        pending = self._pending
        trace = self.node.trace
        now = self.env.now
        for req_id, dst in wave.req_ids.items():
            if pending.pop(req_id, None) is None:
                continue
            trace.record(now, "rpc-timeout", self.node.name, req_id=req_id)
            wave.results[dst] = CALL_FAILED
            self._link(dst)[1].inc()
            self._observe(dst, ok=False)
        wave.req_ids.clear()
        wave.event.succeed(wave.results)

    def _on_crash(self) -> None:
        # Server side: the duplicate-suppression cache is volatile state.
        self._served.clear()
        # The caller crashed: its pending calls are moot.  Complete them so
        # the event queue drains; any interested process was interrupted.
        # No liveness observation here -- the *caller* failed, not the
        # destinations.
        pending, self._pending = self._pending, {}
        waves = []
        for sink, dst in pending.values():
            if isinstance(sink, _Wave):
                sink.results[dst] = CALL_FAILED
                waves.append(sink)
            elif not sink.triggered:
                sink.succeed(CALL_FAILED)
        for wave in waves:
            if not wave.event.triggered:
                wave.req_ids.clear()
                wave.event.succeed(wave.results)

    # -- server side -------------------------------------------------------
    def serve(self, method: str, handler: Callable[[str, Any], Any]) -> None:
        """Register the handler for an RPC method."""
        if method in self._methods:
            raise ValueError(f"{self.node.name}: method {method!r} already served")
        self._methods[method] = handler

    def _on_request(self, msg) -> None:
        request: _Request = msg.payload
        key = (request.reply_to, request.req_id)
        if key in self._served:
            cached = self._served[key]
            self.node.trace.record(self.env.now, "rpc-duplicate",
                                   self.node.name, method=request.method,
                                   src=msg.src, req_id=request.req_id,
                                   state=("in-progress"
                                          if cached is self._IN_PROGRESS
                                          else "answered"))
            if cached is not self._IN_PROGRESS:
                # replay the recorded answer without re-running the handler
                self._reply(request, cached)
            return
        handler = self._methods.get(request.method)
        if handler is None:
            self.node.trace.record(self.env.now, "rpc-no-method",
                                   self.node.name, method=request.method)
            return
        self._remember(key, self._IN_PROGRESS)
        result = handler(msg.src, request.args)
        if result is not None and hasattr(result, "send"):
            self.node.spawn(self._respond_later(request, result),
                            name=f"rpc-{request.method}")
        else:
            self._remember(key, result)
            self._reply(request, result)

    def _remember(self, key: tuple[str, int], value: Any) -> None:
        self._served[key] = value
        self._served.move_to_end(key)
        while len(self._served) > self.DEDUP_CAPACITY:
            self._served.popitem(last=False)

    def _respond_later(self, request: _Request, generator):
        value = yield from generator
        self._remember((request.reply_to, request.req_id), value)
        self._reply(request, value)

    def _reply(self, request: _Request, value: Any) -> None:
        if not self.node.up:
            return
        self.node.send(request.reply_to, self.RESPONSE_KIND,
                       _Response(request.req_id, value))

    def _on_response(self, msg) -> None:
        response: _Response = msg.payload
        entry = self._pending.pop(response.req_id, None)
        if entry is None:
            return
        sink, dst = entry
        self._observe(dst, ok=True)
        if isinstance(sink, _Wave):
            del sink.req_ids[response.req_id]
            sink.results[dst] = response.value
            if len(sink.results) == sink.total and not sink.event.triggered:
                sink.event.succeed(sink.results)
        elif not sink.triggered:
            sink.succeed(response.value)
