"""RPC layer with the paper's ``RPC.CallFailed`` semantics.

The paper assumes "RPC-style communication in which the notification
RPC.CallFailed is returned to the sender if the message cannot be delivered"
(Section 3).  We realise that with a timeout: a call that receives no
response within its deadline completes with the :data:`CALL_FAILED`
sentinel.  This covers every loss mode uniformly -- dead callee, dead
caller-side link, network partition, or callee crash mid-handler.

Coordinators therefore gather *mixed* response sets, exactly like the
pseudo-code in the paper's appendix: some entries are state tuples, some are
``CALL_FAILED``, and the quorum logic only counts the former.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from repro.sim.engine import AllOf, Environment, Event
from repro.sim.node import Node


class CallFailed:
    """Singleton sentinel for failed RPCs (the paper's ``RPC.CallFailed``)."""

    _instance: Optional["CallFailed"] = None

    def __new__(cls) -> "CallFailed":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "CALL_FAILED"

    def __bool__(self) -> bool:
        return False


CALL_FAILED = CallFailed()


@dataclass(frozen=True)
class _Request:
    req_id: int
    method: str
    args: Any
    reply_to: str


@dataclass(frozen=True)
class _Response:
    req_id: int
    value: Any


class RpcLayer:
    """Per-node RPC endpoint.

    Client side::

        response = yield rpc.call("n3", "write-request", args)
        if response is CALL_FAILED: ...

    Server side::

        rpc.serve("write-request", handler)

    where ``handler(src, args)`` either returns a value directly or returns
    a generator (a node process) whose return value becomes the response.
    If the handler's node crashes before it finishes, no response is sent
    and the caller times out.
    """

    REQUEST_KIND = "rpc-req"
    RESPONSE_KIND = "rpc-rsp"

    def __init__(self, node: Node, default_timeout: float = 0.5):
        self.node = node
        self.env: Environment = node.env
        self.default_timeout = default_timeout
        self._req_ids = itertools.count(1)
        self._pending: dict[int, Event] = {}
        self._methods: dict[str, Callable[[str, Any], Any]] = {}
        node.register_handler(self.REQUEST_KIND, self._on_request)
        node.register_handler(self.RESPONSE_KIND, self._on_response)
        node.add_crash_hook(self._on_crash)

    # -- client side -------------------------------------------------------
    def call(self, dst: str, method: str, args: Any = None,
             timeout: Optional[float] = None) -> Event:
        """Start a call; the returned event yields the response value or
        :data:`CALL_FAILED`.  It never fails with an exception."""
        deadline = self.default_timeout if timeout is None else timeout
        req_id = next(self._req_ids)
        result = self.env.event()
        self._pending[req_id] = result
        self.node.trace.record(self.env.now, "rpc-call", self.node.name,
                               method=method, dst=dst, req_id=req_id)
        self.node.send(dst, self.REQUEST_KIND,
                       _Request(req_id, method, args, self.node.name))
        self.env._schedule_call(lambda: self._expire(req_id), delay=deadline)
        return result

    def multicast(self, dsts: Iterable[str], method: str, args: Any = None,
                  timeout: Optional[float] = None) -> Event:
        """Call every destination in parallel.

        The returned event succeeds with ``{dst: value_or_CALL_FAILED}``
        once every call has completed or timed out.  The paper does not
        assume hardware multicast; this is a loop of unicasts.
        """
        dsts = list(dsts)
        calls = {dst: self.call(dst, method, args, timeout) for dst in dsts}
        gathered = self.env.event()

        def finish(event: AllOf) -> None:
            if not gathered.triggered:
                gathered.succeed({dst: calls[dst].value for dst in dsts})

        AllOf(self.env, calls.values())._add_callback(finish)
        return gathered

    def _expire(self, req_id: int) -> None:
        event = self._pending.pop(req_id, None)
        if event is not None and not event.triggered:
            self.node.trace.record(self.env.now, "rpc-timeout", self.node.name,
                                   req_id=req_id)
            event.succeed(CALL_FAILED)

    def _on_crash(self) -> None:
        # The caller crashed: its pending calls are moot.  Complete them so
        # the event queue drains; any interested process was interrupted.
        pending, self._pending = self._pending, {}
        for event in pending.values():
            if not event.triggered:
                event.succeed(CALL_FAILED)

    # -- server side -------------------------------------------------------
    def serve(self, method: str, handler: Callable[[str, Any], Any]) -> None:
        """Register the handler for an RPC method."""
        if method in self._methods:
            raise ValueError(f"{self.node.name}: method {method!r} already served")
        self._methods[method] = handler

    def _on_request(self, msg) -> None:
        request: _Request = msg.payload
        handler = self._methods.get(request.method)
        if handler is None:
            self.node.trace.record(self.env.now, "rpc-no-method",
                                   self.node.name, method=request.method)
            return
        result = handler(msg.src, request.args)
        if result is not None and hasattr(result, "send"):
            self.node.spawn(self._respond_later(request, result),
                            name=f"rpc-{request.method}")
        else:
            self._reply(request, result)

    def _respond_later(self, request: _Request, generator):
        value = yield from generator
        self._reply(request, value)

    def _reply(self, request: _Request, value: Any) -> None:
        if not self.node.up:
            return
        self.node.send(request.reply_to, self.RESPONSE_KIND,
                       _Response(request.req_id, value))

    def _on_response(self, msg) -> None:
        response: _Response = msg.payload
        event = self._pending.pop(response.req_id, None)
        if event is not None and not event.triggered:
            event.succeed(response.value)
