"""Failure and repair injection.

Two injectors are provided:

* :class:`FailureInjector` -- the *site model* of availability used in the
  paper's Section 6: every node fails and repairs as independent Poisson
  processes with rates ``lam`` (failure, while up) and ``mu`` (repair,
  while down).  The steady-state probability that a node is up is
  ``p = mu / (lam + mu)``; the paper's Table 1 uses ``p = 0.95`` via
  ``mu/lam = 19``.

* :class:`FailureSchedule` -- a deterministic script of crash/recover/
  partition/heal actions at fixed times, used by the protocol tests to
  construct specific adversarial scenarios.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Optional, Sequence

from repro.sim.engine import Environment
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.seeding import derive_rng


class FailureInjector:
    """Independent Poisson failures and repairs per node (the site model)."""

    def __init__(self, env: Environment, nodes: Sequence[Node],
                 lam: float, mu: float,
                 rng: Optional[random.Random] = None,
                 on_event: Optional[Callable[[str, Node], None]] = None):
        if lam < 0 or mu <= 0:
            raise ValueError(f"bad rates lam={lam} mu={mu}")
        self.env = env
        self.nodes = list(nodes)
        self.lam = lam
        self.mu = mu
        self.rng = (rng if rng is not None
                    else derive_rng(0, "sim.failures.site"))
        self.on_event = on_event
        self._running = False

    @property
    def availability(self) -> float:
        """Steady-state per-node availability ``mu / (lam + mu)``."""
        return self.mu / (self.lam + self.mu)

    def start(self) -> None:
        """Launch one fail/repair process per node."""
        if self._running:
            raise RuntimeError("injector already started")
        self._running = True
        for node in self.nodes:
            self.env.process(self._drive(node), name=f"faults-{node.name}")

    def _drive(self, node: Node):
        while True:
            if node.up:
                if self.lam == 0:
                    return
                yield self.env.timeout(self.rng.expovariate(self.lam))
                node.crash()
                if self.on_event:
                    self.on_event("crash", node)
            else:
                yield self.env.timeout(self.rng.expovariate(self.mu))
                node.recover()
                if self.on_event:
                    self.on_event("recover", node)


class ZoneFailureInjector:
    """Correlated failures: nodes grouped into zones (racks, power
    domains); a zone failure crashes every node in it at once.

    Node-level and zone-level failures compose: a node is up iff its zone
    is up *and* it has not failed individually.  Zone and node processes
    are independent Poisson, like the site model.
    """

    def __init__(self, env: Environment, zones: dict[str, Sequence[Node]],
                 zone_lam: float, zone_mu: float,
                 node_lam: float = 0.0, node_mu: float = 1.0,
                 rng: Optional[random.Random] = None):
        if zone_lam < 0 or zone_mu <= 0:
            raise ValueError(f"bad zone rates {zone_lam}/{zone_mu}")
        if node_lam < 0 or node_mu <= 0:
            raise ValueError(f"bad node rates {node_lam}/{node_mu}")
        seen: set[str] = set()
        for members in zones.values():
            for node in members:
                if node.name in seen:
                    raise ValueError(f"{node.name} in two zones")
                seen.add(node.name)
        self.env = env
        self.zones = {name: list(members)
                      for name, members in zones.items()}
        self.zone_lam = zone_lam
        self.zone_mu = zone_mu
        self.node_lam = node_lam
        self.node_mu = node_mu
        self.rng = (rng if rng is not None
                    else derive_rng(0, "sim.failures.zones"))
        self.zone_up = {name: True for name in zones}
        self._node_ok = {node.name: True
                         for members in zones.values() for node in members}
        self._running = False

    def start(self) -> None:
        """Launch the zone and node fail/repair processes."""
        if self._running:
            raise RuntimeError("injector already started")
        self._running = True
        for zone in self.zones:
            self.env.process(self._drive_zone(zone), name=f"zone-{zone}")
        if self.node_lam > 0:
            for members in self.zones.values():
                for node in members:
                    self.env.process(self._drive_node(node),
                                     name=f"zfaults-{node.name}")

    def _apply(self, node: Node) -> None:
        zone = next(z for z, members in self.zones.items()
                    if node in members)
        should_be_up = self.zone_up[zone] and self._node_ok[node.name]
        if should_be_up and not node.up:
            node.recover()
        elif not should_be_up and node.up:
            node.crash()

    def _drive_zone(self, zone: str):
        while True:
            if self.zone_up[zone]:
                yield self.env.timeout(self.rng.expovariate(self.zone_lam))
                self.zone_up[zone] = False
            else:
                yield self.env.timeout(self.rng.expovariate(self.zone_mu))
                self.zone_up[zone] = True
            for node in self.zones[zone]:
                self._apply(node)

    def _drive_node(self, node: Node):
        while True:
            if self._node_ok[node.name]:
                yield self.env.timeout(self.rng.expovariate(self.node_lam))
                self._node_ok[node.name] = False
            else:
                yield self.env.timeout(self.rng.expovariate(self.node_mu))
                self._node_ok[node.name] = True
            self._apply(node)


class FailureSchedule:
    """A scripted sequence of fault actions.

    Example::

        schedule = FailureSchedule(env, network, nodes)
        schedule.crash_at(1.0, "n3")
        schedule.partition_at(2.0, ["n0", "n1"], ["n2", "n4"])
        schedule.heal_at(3.0)
        schedule.recover_at(4.0, "n3")
        schedule.start()
    """

    def __init__(self, env: Environment, network: Network,
                 nodes: Iterable[Node]):
        self.env = env
        self.network = network
        self.nodes = {node.name: node for node in nodes}
        self._actions: list[tuple[float, Callable[[], None], str]] = []

    def crash_at(self, time: float, name: str) -> "FailureSchedule":
        """Schedule a crash of the named node."""
        self._actions.append((time, self.nodes[name].crash, f"crash {name}"))
        return self

    def recover_at(self, time: float, name: str) -> "FailureSchedule":
        """Schedule a recovery of the named node."""
        self._actions.append((time, self.nodes[name].recover, f"recover {name}"))
        return self

    def partition_at(self, time: float,
                     *groups: Iterable[str]) -> "FailureSchedule":
        """Schedule a network partition into the given groups.

        .. warning::
           Partitions do not *compose*: each call installs a complete
           component map (the listed groups plus one implicit group of
           every unmentioned node), REPLACING whatever partition was in
           effect.  Two overlapping episodes must be scripted as their
           combined group list at each boundary -- e.g. isolate {a} at
           t1 and additionally {b} from t2 until t3 as::

               schedule.partition_at(t1, ["a"])
               schedule.partition_at(t2, ["a"], ["b"])   # NOT just ["b"]
               schedule.partition_at(t3, ["a"])
               schedule.heal_at(t4)

           For *asymmetric* connectivity faults (or independently
           scheduled overlapping episodes) use :meth:`cut_at` /
           :meth:`restore_at`: directed link cuts overlay as a set and
           lift individually.
        """
        groups = tuple(list(g) for g in groups)
        self._actions.append(
            (time, lambda: self.network.partitions.partition(*groups),
             f"partition {groups}"))
        return self

    def heal_at(self, time: float) -> "FailureSchedule":
        """Schedule a partition heal.

        Healing is global: it restores full connectivity regardless of
        how many :meth:`partition_at` episodes preceded it (there is
        only ever one component map; see the :meth:`partition_at`
        warning).  Directed link cuts are separate state and are NOT
        lifted by a heal -- use :meth:`restore_at`.
        """
        self._actions.append((time, self.network.partitions.heal, "heal"))
        return self

    def cut_at(self, time: float, src: str, dst: str,
               both_ways: bool = False) -> "FailureSchedule":
        """Schedule a directed ``src -> dst`` link cut (asymmetric unless
        ``both_ways``).  Cuts compose: each one adds to the set of
        severed links and only :meth:`restore_at` (or
        ``Network.restore_all_links``) lifts it."""
        self._actions.append(
            (time, lambda: self.network.cut_link(src, dst,
                                                 both_ways=both_ways),
             f"cut {src}->{dst}"))
        return self

    def restore_at(self, time: float, src: str, dst: str,
                   both_ways: bool = False) -> "FailureSchedule":
        """Schedule the restoration of one directed link cut."""
        self._actions.append(
            (time, lambda: self.network.restore_link(src, dst,
                                                     both_ways=both_ways),
             f"restore {src}->{dst}"))
        return self

    def at(self, time: float, action: Callable[[], None],
           label: str = "custom") -> "FailureSchedule":
        """Schedule an arbitrary action."""
        self._actions.append((time, action, label))
        return self

    def start(self) -> None:
        """Arm every scheduled action on the simulation clock."""
        for time, action, label in self._actions:
            if time < self.env.now:
                raise ValueError(f"action {label!r} scheduled in the past")
            self.env._schedule_call(action, delay=time - self.env.now)


def schedule_from_trace(trace, env: Environment, network: Network,
                        nodes: Iterable[Node]) -> FailureSchedule:
    """Reconstruct a deterministic fault schedule from a recorded trace.

    Turns the crash/recover records of one run (e.g. produced by a random
    :class:`FailureInjector`) into a :class:`FailureSchedule` that replays
    the identical fault timeline against a fresh cluster -- the standard
    trick for turning a randomly-found failure into a deterministic
    regression scenario.
    """
    schedule = FailureSchedule(env, network, nodes)
    for record in trace:
        if record.kind == "node-crash":
            schedule.crash_at(record.time, record.node)
        elif record.kind == "node-recover":
            schedule.recover_at(record.time, record.node)
    return schedule
