"""Structured tracing and message accounting for simulations.

Every network send, RPC call, protocol decision, and fault event can be
recorded in a :class:`TraceLog`.  The analysis modules
(:mod:`repro.analysis.traffic`, :mod:`repro.analysis.load`) consume these
records to compute message-traffic and load-sharing statistics, and the
consistency checker replays recorded operation histories.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """A single trace entry.

    Attributes
    ----------
    time:
        Simulation time of the event.
    kind:
        A short category string, e.g. ``"send"``, ``"rpc-call"``,
        ``"node-crash"``, ``"write-commit"``.
    node:
        The node the event is attributed to (may be ``None`` for global
        events such as partition changes).
    detail:
        Free-form payload describing the event.
    """

    time: float
    kind: str
    node: Optional[str]
    detail: dict = field(default_factory=dict)


class TraceLog:
    """An append-only event log with simple query helpers.

    Besides storage, the log acts as an event bus: observers registered
    with :meth:`subscribe` see every record *synchronously, at the instant
    it is recorded* -- even while ``enabled`` is False and nothing is
    stored.  The chaos nemesis uses this to crash nodes at adversarial
    protocol instants (e.g. between a coordinator's decision record and
    its commit wave) without the protocol code knowing it is observed.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.records: list[TraceRecord] = []
        self._counters: Counter = Counter()
        self._observers: list[Callable[[TraceRecord], None]] = []

    def subscribe(self, observer: Callable[[TraceRecord], None]) -> None:
        """Call *observer* with every future record, synchronously."""
        self._observers.append(observer)

    def unsubscribe(self, observer: Callable[[TraceRecord], None]) -> None:
        """Stop notifying *observer*; unknown observers are a no-op."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    def record(self, time: float, kind: str, node: Optional[str] = None,
               **detail: Any) -> None:
        """Append one record (cheap no-op when tracing is disabled)."""
        self._counters[kind] += 1
        if not self.enabled and not self._observers:
            return
        rec = TraceRecord(time, kind, node, detail)
        if self.enabled:
            self.records.append(rec)
        for observer in tuple(self._observers):
            observer(rec)

    def count(self, kind: str) -> int:
        """Number of records of the given kind (counted even if disabled)."""
        return self._counters[kind]

    def counts(self) -> dict[str, int]:
        """All per-kind counters."""
        return dict(self._counters)

    def select(self, kind: Optional[str] = None,
               node: Optional[str] = None,
               predicate: Optional[Callable[[TraceRecord], bool]] = None,
               ) -> list[TraceRecord]:
        """Records matching all the given filters."""
        return list(self.iter_select(kind=kind, node=node, predicate=predicate))

    def iter_select(self, kind: Optional[str] = None,
                    node: Optional[str] = None,
                    predicate: Optional[Callable[[TraceRecord], bool]] = None,
                    ) -> Iterator[TraceRecord]:
        """Lazily iterate records matching the filters."""
        for rec in self.records:
            if kind is not None and rec.kind != kind:
                continue
            if node is not None and rec.node != node:
                continue
            if predicate is not None and not predicate(rec):
                continue
            yield rec

    def clear(self) -> None:
        """Drop all records and counters."""
        self.records.clear()
        self._counters.clear()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def format(self, records: Optional[Iterable[TraceRecord]] = None) -> str:
        """Human-readable rendering, mainly for debugging failed tests."""
        lines = []
        for rec in (self.records if records is None else records):
            where = f" @{rec.node}" if rec.node else ""
            detail = " ".join(f"{k}={v!r}" for k, v in rec.detail.items())
            lines.append(f"[{rec.time:12.6f}] {rec.kind:<20}{where:<12} {detail}")
        return "\n".join(lines)
