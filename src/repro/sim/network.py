"""Message-passing network with crash-stop nodes and partitions.

The model matches the paper's assumptions (Section 3):

* nodes and links are *fail-stop*: they fail by crashing, never maliciously;
* communication is RPC-style; an undeliverable message surfaces to the
  sender as ``RPC.CallFailed`` (implemented in :mod:`repro.sim.rpc` as a
  timeout -- the network silently drops messages to dead or unreachable
  destinations, exactly like a real datagram network);
* multicast capability is not required: :meth:`Network.send` is point to
  point, and the RPC layer's ``multicast`` is a loop of unicasts.

Partitions are modelled by a :class:`PartitionManager` that groups node
names into connected components; messages crossing component boundaries are
dropped (in both directions, at delivery time).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from repro.sim.engine import Environment
from repro.sim.seeding import derive_rng
from repro.sim.sizing import message_size
from repro.sim.trace import TraceLog

NodeName = str


@dataclass(frozen=True)
class Message:
    """A network message.

    ``kind`` distinguishes requests from responses at the RPC layer;
    ``payload`` is the protocol-level content.
    """

    src: NodeName
    dst: NodeName
    kind: str
    payload: Any
    msg_id: int = 0


class LatencyModel:
    """Message delay distribution.

    The default draws uniformly from ``[min_delay, max_delay]``; a constant
    latency is obtained with ``min_delay == max_delay``.  Randomised latency
    matters for the protocol tests: it interleaves concurrent coordinators
    in adversarial orders.
    """

    def __init__(self, min_delay: float = 0.001, max_delay: float = 0.01,
                 rng: Optional[random.Random] = None):
        if min_delay < 0 or max_delay < min_delay:
            raise ValueError(f"bad latency bounds: [{min_delay}, {max_delay}]")
        self.min_delay = min_delay
        self.max_delay = max_delay
        self.rng = (rng if rng is not None
                    else derive_rng(0, "sim.network.latency"))

    def sample(self, src: NodeName, dst: NodeName) -> float:
        """One message delay draw for the given endpoints."""
        if self.min_delay == self.max_delay:
            return self.min_delay
        return self.rng.uniform(self.min_delay, self.max_delay)


class PartitionManager:
    """Tracks the network's connected components.

    Initially the network is fully connected.  :meth:`partition` installs a
    list of disjoint groups; nodes not mentioned in any group form an
    implicit final group together.  :meth:`heal` restores full connectivity.
    """

    def __init__(self, all_nodes: Iterable[NodeName] = ()):
        self._all_nodes: set[NodeName] = set(all_nodes)
        self._component: dict[NodeName, int] = {}

    def register(self, name: NodeName) -> None:
        """Add a node name to the connectivity universe."""
        self._all_nodes.add(name)

    def partition(self, *groups: Iterable[NodeName]) -> None:
        """Split the network into the given groups (plus one for the rest).

        Installing a partition REPLACES the previous component map rather
        than overlaying it: callers scripting overlapping episodes must
        pass the combined group list at every boundary (see
        ``FailureSchedule.partition_at``).  Directed link cuts
        (:meth:`Network.cut_link`) are independent state and survive both
        ``partition`` and ``heal``.
        """
        seen: set[NodeName] = set()
        component: dict[NodeName, int] = {}
        for idx, group in enumerate(groups):
            for name in group:
                if name in seen:
                    raise ValueError(f"node {name!r} appears in two groups")
                seen.add(name)
                component[name] = idx
        rest = self._all_nodes - seen
        for name in rest:
            component[name] = len(groups)
        self._component = component

    def heal(self) -> None:
        """Restore full network connectivity."""
        self._component = {}

    @property
    def is_partitioned(self) -> bool:
        """True while more than one connected component exists."""
        return bool(self._component) and len(set(self._component.values())) > 1

    def reachable(self, a: NodeName, b: NodeName) -> bool:
        """True iff the two names share a connected component."""
        if not self._component:
            return True
        return self._component.get(a, -1) == self._component.get(b, -1)

    def groups(self) -> list[set[NodeName]]:
        """Current connected components (a single group when healed)."""
        if not self._component:
            return [set(self._all_nodes)]
        by_idx: dict[int, set[NodeName]] = {}
        for name, idx in self._component.items():
            by_idx.setdefault(idx, set()).add(name)
        return [by_idx[i] for i in sorted(by_idx)]


class Network:
    """Delivers messages between registered endpoints.

    An endpoint is registered with a delivery callback and liveness
    predicate; :mod:`repro.sim.node` wires those up for protocol nodes.

    Delivery rules (checked at *delivery* time, after the latency delay):

    * the destination must be registered, up, and reachable from the source;
    * the source must still be up -- a message from a node that crashed
      in-flight is dropped, modelling the fail-stop loss of its send buffers.
      (This is conservative; disable with ``drop_from_crashed=False``.)
    * no *directed* link cut (:meth:`cut_link`) may sever ``src -> dst``;
      unlike partitions, cuts can be asymmetric (requests get through but
      replies vanish), the classic hard case for RPC-timeout failure
      detection.

    Message-level fault injection plugs in through :attr:`faults`: an
    object with a ``deliveries(msg, base_delay) -> list[float]`` method
    returning the delays at which copies of the message should arrive
    (``[]`` drops it, two entries duplicate it, a larger delay reorders it
    past later traffic).  ``None`` (the default) means a faultless
    network.  See :class:`repro.chaos.faults.LinkFaults`.
    """

    def __init__(self, env: Environment,
                 latency: Optional[LatencyModel] = None,
                 trace: Optional[TraceLog] = None,
                 drop_from_crashed: bool = True,
                 faults: Optional[Any] = None):
        self.env = env
        self.latency = latency or LatencyModel()
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.partitions = PartitionManager()
        self.drop_from_crashed = drop_from_crashed
        self.faults = faults
        self._cut_links: set[tuple[NodeName, NodeName]] = set()
        self._endpoints: dict[NodeName, Callable[[Message], None]] = {}
        self._is_up: dict[NodeName, Callable[[], bool]] = {}
        self._msg_ids = itertools.count(1)
        self.bytes_sent = 0
        self.messages_sent = 0

    # -- registration --------------------------------------------------------
    def register(self, name: NodeName,
                 deliver: Callable[[Message], None],
                 is_up: Callable[[], bool]) -> None:
        """Register an endpoint (name, delivery callback, liveness)."""
        if name in self._endpoints:
            raise ValueError(f"endpoint {name!r} already registered")
        self._endpoints[name] = deliver
        self._is_up[name] = is_up
        self.partitions.register(name)

    @property
    def node_names(self) -> list[NodeName]:
        """All node names, sorted."""
        return sorted(self._endpoints)

    def node_is_up(self, name: NodeName) -> bool:
        """True iff the named endpoint is registered and up."""
        predicate = self._is_up.get(name)
        return bool(predicate and predicate())

    # -- directed link cuts ----------------------------------------------------
    def cut_link(self, src: NodeName, dst: NodeName,
                 both_ways: bool = False) -> None:
        """Sever the ``src -> dst`` direction (and the reverse with
        ``both_ways``).  Messages crossing a cut are dropped at delivery
        time, like partition drops, so in-flight traffic is affected too."""
        self._cut_links.add((src, dst))
        if both_ways:
            self._cut_links.add((dst, src))

    def restore_link(self, src: NodeName, dst: NodeName,
                     both_ways: bool = False) -> None:
        """Undo :meth:`cut_link`; restoring an uncut link is a no-op."""
        self._cut_links.discard((src, dst))
        if both_ways:
            self._cut_links.discard((dst, src))

    def restore_all_links(self) -> None:
        """Undo every directed link cut."""
        self._cut_links.clear()

    @property
    def cut_links(self) -> frozenset:
        """The currently severed directed ``(src, dst)`` pairs."""
        return frozenset(self._cut_links)

    # -- transmission ----------------------------------------------------------
    def send(self, src: NodeName, dst: NodeName, kind: str, payload: Any) -> int:
        """Send one message; returns its id.  Never blocks; never fails
        synchronously -- loss is only observable through missing replies."""
        msg = Message(src, dst, kind, payload, msg_id=next(self._msg_ids))
        size = message_size(payload)
        self.bytes_sent += size
        self.messages_sent += 1
        self.trace.record(self.env.now, "send", src, dst=dst, msg_kind=kind,
                          msg_id=msg.msg_id, bytes=size)
        delay = self.latency.sample(src, dst)
        if self.faults is None:
            delays = (delay,)
        else:
            delays = self.faults.deliveries(msg, delay)
            if not delays:
                self._drop(msg, "fault-drop")
                return msg.msg_id
        for extra_delay in delays:
            self.env._schedule_call(lambda: self._deliver(msg),
                                    delay=extra_delay)
        return msg.msg_id

    def _deliver(self, msg: Message) -> None:
        deliver = self._endpoints.get(msg.dst)
        if deliver is None or not self.node_is_up(msg.dst):
            self._drop(msg, "dst-down")
            return
        if self.drop_from_crashed and not self.node_is_up(msg.src):
            self._drop(msg, "src-down")
            return
        if not self.partitions.reachable(msg.src, msg.dst):
            self._drop(msg, "partitioned")
            return
        if (msg.src, msg.dst) in self._cut_links:
            self._drop(msg, "link-cut")
            return
        self.trace.record(self.env.now, "deliver", msg.dst, src=msg.src,
                          msg_kind=msg.kind, msg_id=msg.msg_id)
        deliver(msg)

    def _drop(self, msg: Message, reason: str) -> None:
        self.trace.record(self.env.now, "drop", msg.dst, src=msg.src,
                          msg_kind=msg.kind, msg_id=msg.msg_id, reason=reason)
