"""Centralised RNG derivation for every stochastic component.

All randomness in the simulator flows from one *root seed* so a run is
reproducible end to end.  Components must not fall back on ad-hoc
``random.Random(0)`` defaults: two components sharing literal seed 0
draw the *same* stream, which correlates their behaviour (latency
spikes landing exactly on failure events) and makes experiments
silently non-independent.  Instead each component derives its own
stream from the root seed and a stable namespace string::

    rng = derive_rng(root_seed, "sim.network.latency")

Namespaced streams are independent (sha256 of ``root_seed/namespace``)
yet fully determined by the root seed, so replays stay bit-identical.

The empty namespace is special: ``derive_rng(seed)`` returns exactly
``random.Random(seed)``.  Entry points that already publish their seed
as the stream identity (the Monte Carlo availability samplers, whose
golden regression values pin the raw ``Random(seed)`` stream) can
route through here without changing a single draw.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_seed", "derive_rng", "derive_generator"]

#: Number of bytes of the digest folded into the derived seed.  128 bits
#: is far beyond birthday-collision range for any plausible namespace
#: count, and ``random.Random`` accepts arbitrary-size ints.
_SEED_BYTES = 16


def derive_seed(root_seed: int, namespace: str) -> int:
    """A stable integer seed for (*root_seed*, *namespace*).

    The derivation is pure arithmetic over a sha256 digest -- no
    process-salted hashing, no global state -- so it is identical
    across interpreter runs, platforms, and PYTHONHASHSEED values.
    """
    digest = hashlib.sha256(
        f"{root_seed}/{namespace}".encode("utf-8")).digest()
    return int.from_bytes(digest[:_SEED_BYTES], "big")


def derive_rng(root_seed: int, namespace: str = "") -> random.Random:
    """A ``random.Random`` for *namespace*, derived from *root_seed*.

    With the default empty namespace this is exactly
    ``random.Random(root_seed)`` -- the compatibility path for code
    whose output streams are pinned by golden tests.  Named namespaces
    get independent sha256-derived streams.
    """
    if not namespace:
        return random.Random(root_seed)
    return random.Random(derive_seed(root_seed, namespace))


def derive_generator(root_seed: int, namespace: str = ""):
    """A ``numpy.random.Generator`` for *namespace*, from *root_seed*.

    The numpy counterpart of :func:`derive_rng`: named namespaces are
    prefixed with ``np/`` before sha256 derivation so a component's
    numpy stream is independent of its ``random.Random`` stream even
    under the same namespace string.  With the default empty namespace
    this is ``numpy.random.default_rng(root_seed)`` -- the direct
    root-seed stream for entry points that publish their seed as the
    stream identity (the vectorized availability estimators).

    numpy is imported lazily so scalar-only paths never pay for it.
    """
    import numpy.random

    if not namespace:
        return numpy.random.default_rng(root_seed)
    return numpy.random.default_rng(derive_seed(root_seed, f"np/{namespace}"))
