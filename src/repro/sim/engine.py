"""A deterministic, generator-based discrete-event simulation kernel.

The kernel is deliberately small and dependency-free.  It follows the
familiar process-interaction style (as popularised by SimPy): a *process* is
a Python generator that yields :class:`Event` objects and is resumed when the
event fires.  Determinism is guaranteed by a strict (time, sequence-number)
ordering of scheduled events; two runs with the same seed and the same
program produce identical traces.

Example
-------
>>> env = Environment()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a", 2.0))
>>> _ = env.process(worker(env, "b", 1.0))
>>> env.run()
2.0
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    The :attr:`cause` attribute carries the value passed to
    :meth:`Process.interrupt`.  The paper's fail-stop model is implemented by
    interrupting every process hosted on a crashing node.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait for.

    An event starts *pending*, and is later either *succeeded* with a value
    or *failed* with an exception.  Processes waiting on the event are
    resumed with the value (or have the exception thrown into them).
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._ok: Optional[bool] = None

    # -- state inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self._ok is not None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value; raises if read before it triggered."""
        if not self.triggered:
            raise SimulationError("event value read before it triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering *value* to waiters."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be raised in waiters."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail() requires an exception")
        self._ok = False
        self._exception = exception
        self.env._schedule_event(self)
        return self

    # -- plumbing -----------------------------------------------------------
    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already fired and dispatched: run at the next tick so that the
            # caller still observes asynchronous semantics.
            self.env._schedule_call(lambda: callback(self))
        else:
            self.callbacks.append(callback)

    def _dispatch(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self._timeout_value = value
        env._schedule_call(self._fire, delay=delay)

    def _fire(self) -> None:
        if not self.triggered:
            self._ok = True
            self._value = self._timeout_value
            self._dispatch()


class _Condition(Event):
    """Base for AnyOf/AllOf composition of events."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        for event in self._events:
            if not isinstance(event, Event):
                raise SimulationError(f"not an Event: {event!r}")
        self._remaining = sum(1 for e in self._events if not e.triggered)
        already_failed = next(
            (e for e in self._events if e.triggered and not e.ok), None)
        if already_failed is not None:
            self.fail(already_failed._exception)
            return
        for event in self._events:
            if not event.triggered:
                event._add_callback(self._observe)
        self._check(initial=True)

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event._exception)  # propagate the first failure
            return
        self._remaining -= 1
        self._check(initial=False)

    def _check(self, initial: bool) -> None:
        raise NotImplementedError

    def _results(self) -> dict[Event, Any]:
        return {e: e._value for e in self._events if e.triggered and e.ok}


class AllOf(_Condition):
    """Fires once *all* component events have succeeded.

    The value is a dict mapping each event to its value.
    """

    def _check(self, initial: bool) -> None:
        if not self.triggered and self._remaining <= 0:
            self.succeed(self._results())


class AnyOf(_Condition):
    """Fires as soon as *any* component event has succeeded.

    The value is a dict of the events that had succeeded by dispatch time.
    """

    def _check(self, initial: bool) -> None:
        if self.triggered:
            return
        done = len(self._events) - self._remaining
        if done > 0 or not self._events:
            self.succeed(self._results())


class Process(Event):
    """A running process.  Also an event that fires when the process ends.

    The wrapped generator yields :class:`Event` instances.  When a yielded
    event succeeds, the generator resumes with the event's value; when it
    fails, the exception is thrown into the generator.
    """

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError(f"process body must be a generator: {generator!r}")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        self._interrupts: list[Interrupt] = []
        env._schedule_call(self._resume_with)

    @property
    def is_alive(self) -> bool:
        """True while the process has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the next tick.

        Interrupting a finished process is a silent no-op (the paper's crash
        handling interrupts every handler on a node; some may have finished).
        """
        if self.triggered:
            return
        self._interrupts.append(Interrupt(cause))
        self.env._schedule_call(self._deliver_interrupt)

    # -- stepping -----------------------------------------------------------
    def _deliver_interrupt(self) -> None:
        if self.triggered or not self._interrupts:
            return
        interrupt = self._interrupts.pop(0)
        # Detach from the event we were waiting on: when it fires we must
        # not be resumed a second time.
        target, self._target = self._target, None
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume_with)
            except ValueError:
                pass
        self._step(lambda: self._generator.throw(interrupt))

    def _resume_with(self, event: Optional[Event] = None) -> None:
        if self.triggered:
            return
        if event is None:
            self._step(lambda: self._generator.send(None))
        elif event.ok:
            self._step(lambda: self._generator.send(event._value))
        else:
            exception = event._exception
            self._step(lambda: self._generator.throw(exception))

    def _step(self, advance: Callable[[], Any]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # An unhandled interrupt terminates the process quietly; this is
            # the normal fate of handlers on a crashing node.
            self.succeed(None)
            return
        except BaseException as exc:  # propagate real bugs to env.run()
            self.fail(exc)
            self.env._record_crash(self, exc)
            return
        if not isinstance(target, Event):
            error = SimulationError(f"process {self.name!r} yielded {target!r}")
            self.fail(error)
            self.env._record_crash(self, error)
            return
        if target is self:
            error = SimulationError(f"process {self.name!r} waits on itself")
            self.fail(error)
            self.env._record_crash(self, error)
            return
        self._target = target
        target._add_callback(self._resume_with)


class Lock:
    """A FIFO mutual-exclusion lock with optional shared (read) mode.

    Replica locks in the paper protect a replica during reads, writes, and
    propagation.  We support shared acquisition so that read operations do
    not serialize against each other, which matches the paper's consistency
    argument (only read/write and write/write conflicts matter).

    Usage from a process::

        yield lock.acquire(owner)          # exclusive
        ...
        lock.release(owner)

    ``acquire`` returns an event that succeeds when the lock is granted.
    """

    def __init__(self, env: "Environment", name: str = "lock"):
        self.env = env
        self.name = name
        self._holders: dict[Any, str] = {}  # owner -> "shared" | "exclusive"
        self._waiters: list[tuple[Any, str, Event]] = []

    @property
    def locked(self) -> bool:
        """True while any owner holds the lock."""
        return bool(self._holders)

    @property
    def idle(self) -> bool:
        """True when nobody holds or waits for the lock.

        Lock *pools* (a sharded node lazily creates one lock per touched
        key) use this to garbage-collect entries the moment they go
        quiet, keeping resident lock count proportional to concurrent
        operations rather than keyspace size.
        """
        return not self._holders and not self._waiters

    @property
    def holders(self) -> tuple:
        """Current lock owners."""
        return tuple(self._holders)

    def held_by(self, owner: Any) -> bool:
        """True iff *owner* currently holds the lock."""
        return owner in self._holders

    def acquire(self, owner: Any, shared: bool = False) -> Event:
        """Request the lock; the returned event fires when granted."""
        if owner in self._holders:
            raise SimulationError(f"{owner!r} already holds {self.name}")
        mode = "shared" if shared else "exclusive"
        event = Event(self.env)
        self._waiters.append((owner, mode, event))
        self._grant()
        return event

    def release(self, owner: Any) -> None:
        """Release the lock.  Releasing a lock not held is a no-op.

        Crash handling clears locks wholesale via :meth:`reset`, so a handler
        that resumed after its node recovered may release an already-cleared
        lock; tolerating that keeps crash code simple.
        """
        self._holders.pop(owner, None)
        self._grant()

    def cancel(self, owner: Any) -> None:
        """Withdraw a pending (ungranted) acquire request of *owner*."""
        self._waiters = [w for w in self._waiters if w[0] != owner]
        self._grant()

    def reset(self) -> None:
        """Forget all holders and waiters (used when a node crashes)."""
        self._holders.clear()
        waiters, self._waiters = self._waiters, []
        for _owner, _mode, event in waiters:
            if not event.triggered:
                event.fail(Interrupt("lock reset"))

    def _grant(self) -> None:
        # FIFO: grant the head while compatible.  A batch of shared
        # requests at the head is granted together.
        while self._waiters:
            owner, mode, event = self._waiters[0]
            exclusive_held = "exclusive" in self._holders.values()
            if mode == "exclusive":
                if self._holders:
                    break
            else:  # shared
                if exclusive_held:
                    break
            self._waiters.pop(0)
            self._holders[owner] = mode
            if not event.triggered:
                event.succeed(self)


class Environment:
    """The simulation clock and event queue."""

    def __init__(self, start: float = 0.0):
        self.now = float(start)
        self._queue: list[tuple[float, int, Any]] = []
        self._sequence = 0
        self._crashed: list[tuple[Process, BaseException]] = []
        #: Total queue entries processed.  Deterministic for a given
        #: seed and program, so benchmarks can report simulation cost
        #: per operation without wall-clock noise.
        self.events_processed = 0

    # -- public factory helpers ---------------------------------------------
    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing after the given simulated delay."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Run a generator as a process; returns it (also an event)."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event firing once every component event has succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event firing when the first component event succeeds."""
        return AnyOf(self, events)

    def lock(self, name: str = "lock") -> Lock:
        """A fresh FIFO lock (shared/exclusive)."""
        return Lock(self, name)

    def schedule(self, callback: Callable[[], None],
                 delay: float = 0.0) -> None:
        """Run *callback* after *delay* simulated time units.

        The public face of the internal queue: harness code (the chaos
        runner arming fault events, the nemesis scheduling delayed
        recoveries) uses this instead of reaching into
        ``_schedule_call``, keeping the transport internals swappable
        (ROADMAP item 3) -- the ``transport-boundary`` lint rule
        enforces exactly that.
        """
        self._schedule_call(callback, delay=delay)

    # -- scheduling ---------------------------------------------------------
    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        self._sequence += 1
        heapq.heappush(self._queue, (self.now + delay, self._sequence, event))

    def _schedule_call(self, callback: Callable[[], None], delay: float = 0.0) -> None:
        self._sequence += 1
        heapq.heappush(self._queue, (self.now + delay, self._sequence, callback))

    def _record_crash(self, process: Process, exc: BaseException) -> None:
        self._crashed.append((process, exc))

    # -- execution ----------------------------------------------------------
    def step(self) -> None:
        """Process a single queue entry."""
        time, _seq, item = heapq.heappop(self._queue)
        if time < self.now:
            raise SimulationError("time went backwards")
        self.now = time
        self.events_processed += 1
        if isinstance(item, Event):
            item._dispatch()
        else:
            item()
        if self._crashed:
            process, exc = self._crashed[0]
            raise SimulationError(
                f"process {process.name!r} died: {exc!r}"
            ) from exc

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock passes *until*.

        Returns the simulation time at which execution stopped.
        """
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self.now = until
                return self.now
            self.step()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    @property
    def queue_size(self) -> int:
        """Number of scheduled-but-unprocessed queue entries."""
        return len(self._queue)
