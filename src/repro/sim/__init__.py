"""Discrete-event simulation substrate.

The paper describes its protocols in terms of RPC rounds between fail-stop
nodes.  This subpackage provides everything needed to execute those protocols
faithfully on one machine:

* :mod:`repro.sim.engine` -- a deterministic, generator-based discrete-event
  simulation kernel (events, processes, condition events, simulated locks).
* :mod:`repro.sim.network` -- a message-passing network with crash-stop
  nodes, configurable latency, and partition support.
* :mod:`repro.sim.rpc` -- an RPC layer on top of the network that returns
  ``CALL_FAILED`` (the paper's ``RPC.CallFailed``) when the callee is down,
  unreachable, or does not answer within the timeout.
* :mod:`repro.sim.node` -- the node abstraction: volatile state, simulated
  stable storage, crash/recover hooks.
* :mod:`repro.sim.failures` -- Poisson failure/repair injection per the site
  model of availability, and deterministic fault schedules.
* :mod:`repro.sim.trace` -- structured event tracing and message accounting.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Lock,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.network import Message, Network, PartitionManager
from repro.sim.node import Node
from repro.sim.rpc import CALL_FAILED, CallFailed, RpcLayer
from repro.sim.failures import (
    FailureInjector,
    FailureSchedule,
    ZoneFailureInjector,
    schedule_from_trace,
)
from repro.sim.sizing import estimate_size, message_size
from repro.sim.trace import TraceLog

__all__ = [
    "AllOf",
    "AnyOf",
    "CALL_FAILED",
    "CallFailed",
    "Environment",
    "Event",
    "FailureInjector",
    "FailureSchedule",
    "Interrupt",
    "Lock",
    "Message",
    "Network",
    "Node",
    "PartitionManager",
    "Process",
    "RpcLayer",
    "SimulationError",
    "Timeout",
    "TraceLog",
    "ZoneFailureInjector",
    "estimate_size",
    "schedule_from_trace",
    "message_size",
]
