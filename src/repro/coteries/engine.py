"""Incremental bitmask quorum evaluators for every coterie family.

Each class here compiles one coterie structure into per-node tally
tables so that quorum membership can be re-evaluated after a single
failure/repair event without rescanning the structure:

========================  =========================================  ========
structure                 incremental state                          per event
========================  =========================================  ========
grid                      per-column hit counters + two summaries    O(1)
(weighted) voting         live vote sum                              O(1)
read-one/write-all        live member count                          O(1)
crumbling wall            per-row hit counters (+ O(rows) write)     O(1)*
tree                      per-subtree satisfaction + child counts    O(depth)
hierarchical              per-group satisfied-child counts (r & w)   O(levels)
composite                 inner evaluators + outer evaluators        O(inner)
========================  =========================================  ========

(*) the wall's write query walks rows bottom-up with early exit --
O(#rows) = O(sqrt N) worst case, still structure-free per event.

All evaluators share the :class:`~repro.coteries.base.QuorumEvaluator`
contract: bit i of a mask refers to ``universe[i]``; bits for nodes
outside the coterie's V are ignored; answers agree exactly with the
coterie's set-based predicates (the reference implementation), which the
property tests assert subset-for-subset.

The classes are not constructed directly in normal use -- call
``coterie.compile(universe)``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.coteries.base import Coterie, QuorumEvaluator
from repro.coteries.grid import define_grid


class GridEvaluator(QuorumEvaluator):
    """Per-column hit counters for :class:`~repro.coteries.grid.GridCoterie`.

    Maintains ``hits[j]`` (live members of column j), the number of
    columns with at least one hit, and the number of *coverable* columns
    whose every physical member is live.  Read quorum: every column hit.
    Write quorum: read quorum plus some coverable column full.  Both are
    O(1); each node flip touches exactly one column's counter.
    """

    supports_rebind = True

    def __init__(self, coterie: Coterie,
                 universe: Optional[Sequence[str]] = None):
        super().__init__(coterie, universe)
        self._cover = coterie.column_cover
        self._n_cols = coterie.shape.n
        # column index per universe bit (-1: not a member of this grid)
        self._col_of = [-1] * self.n_bits
        self._col_need = [len(column) for column in coterie.columns]
        self._col_full_ok = [coterie._column_may_count_as_full(j)
                             for j in range(1, self._n_cols + 1)]
        for j, column in enumerate(coterie.columns):
            for name in column:
                self._col_of[self.bit[name]] = j
        self._hits = [0] * self._n_cols
        self._cols_hit = 0
        self._cols_full = 0

    def rebind_epoch(self, epoch_mask: int) -> None:
        # The grid over the new epoch is fully determined by the mask:
        # DefineGrid fixes the shape from the member count, and row-major
        # fill puts the k-th member (by universe order) in column
        # k mod n -- no GridCoterie needs to be built.  Tracked state
        # becomes "all members up", the post-epoch-check condition.
        n_members = epoch_mask.bit_count()
        shape = define_grid(n_members)
        n_cols = shape.n
        full_cut = n_cols - shape.b  # 0-based columns >= this are short
        col_of = [-1] * self.n_bits
        mask = epoch_mask
        k = 0
        while mask:
            col_of[(mask & -mask).bit_length() - 1] = k % n_cols
            mask &= mask - 1
            k += 1
        col_need = [shape.m - 1 if j >= full_cut else shape.m
                    for j in range(n_cols)]
        if self._cover == "physical":
            col_full_ok = [True] * n_cols
        else:
            col_full_ok = [need == shape.m for need in col_need]
        self.coterie = None
        self.v_mask = epoch_mask
        self._n_cols = n_cols
        self._col_of = col_of
        self._col_need = col_need
        self._col_full_ok = col_full_ok
        self.mask = epoch_mask
        self._hits = col_need.copy()
        self._cols_hit = n_cols
        self._cols_full = sum(1 for ok in col_full_ok if ok)

    def reset(self, mask: int) -> None:
        self.mask = mask
        hits = [0] * self._n_cols
        for i, j in enumerate(self._col_of):
            if j >= 0 and mask >> i & 1:
                hits[j] += 1
        self._hits = hits
        self._cols_hit = sum(1 for h in hits if h > 0)
        self._cols_full = sum(
            1 for j, h in enumerate(hits)
            if h == self._col_need[j] and self._col_full_ok[j])

    def reset_full(self) -> None:
        self.mask = self.v_mask
        self._hits = self._col_need.copy()
        self._cols_hit = self._n_cols
        self._cols_full = sum(1 for ok in self._col_full_ok if ok)

    def node_up(self, i: int) -> None:
        self.mask |= 1 << i
        j = self._col_of[i]
        if j < 0:
            return
        hits = self._hits
        h = hits[j] + 1
        hits[j] = h
        if h == 1:
            self._cols_hit += 1
        if h == self._col_need[j] and self._col_full_ok[j]:
            self._cols_full += 1

    def node_down(self, i: int) -> None:
        self.mask &= ~(1 << i)
        j = self._col_of[i]
        if j < 0:
            return
        hits = self._hits
        h = hits[j] - 1
        hits[j] = h
        if h == 0:
            self._cols_hit -= 1
        if h == self._col_need[j] - 1 and self._col_full_ok[j]:
            self._cols_full -= 1

    def is_read_quorum(self, mask: Optional[int] = None) -> bool:
        if mask is not None:
            self.reset(mask)
        return self._cols_hit == self._n_cols

    def is_write_quorum(self, mask: Optional[int] = None) -> bool:
        if mask is not None:
            self.reset(mask)
        return self._cols_full > 0 and self._cols_hit == self._n_cols


class VotingEvaluator(QuorumEvaluator):
    """A live vote sum for weighted/unweighted voting coteries.

    ``weight_of[i]`` is the vote count of ``universe[i]`` (0 for
    non-members), so both predicates are threshold comparisons against a
    single maintained integer -- the popcount-style O(1) case.
    """

    def __init__(self, coterie: Coterie,
                 universe: Optional[Sequence[str]] = None):
        super().__init__(coterie, universe)
        self._weight_of = [0] * self.n_bits
        for name in coterie.nodes:
            self._weight_of[self.bit[name]] = coterie.weights[name]
        self._read_votes = coterie.read_votes
        self._write_votes = coterie.write_votes
        self._total_votes = coterie.total_votes
        self._votes = 0
        # A rebind re-derives thresholds from the member count alone, so
        # it is only sound for the unweighted default-threshold majority
        # (simple-majority writes); custom weights or thresholds are not
        # a uniform function of N.
        total = coterie.total_votes
        self.supports_rebind = (
            total == coterie.n_nodes
            and coterie.write_votes == total // 2 + 1
            and coterie.read_votes == total + 1 - coterie.write_votes
            and all(w == 1 for w in coterie.weights.values()))

    def rebind_epoch(self, epoch_mask: int) -> None:
        if not self.supports_rebind:
            super().rebind_epoch(epoch_mask)  # raises
        n_members = epoch_mask.bit_count()
        weight_of = [0] * self.n_bits
        mask = epoch_mask
        while mask:
            weight_of[(mask & -mask).bit_length() - 1] = 1
            mask &= mask - 1
        self.coterie = None
        self.v_mask = epoch_mask
        self._weight_of = weight_of
        self._total_votes = n_members
        self._write_votes = n_members // 2 + 1
        self._read_votes = n_members + 1 - self._write_votes
        self.mask = epoch_mask
        self._votes = n_members

    def reset(self, mask: int) -> None:
        self.mask = mask
        self._votes = sum(w for i, w in enumerate(self._weight_of)
                          if w and mask >> i & 1)

    def reset_full(self) -> None:
        self.mask = self.v_mask
        self._votes = self._total_votes

    def node_up(self, i: int) -> None:
        self.mask |= 1 << i
        self._votes += self._weight_of[i]

    def node_down(self, i: int) -> None:
        self.mask &= ~(1 << i)
        self._votes -= self._weight_of[i]

    def is_read_quorum(self, mask: Optional[int] = None) -> bool:
        if mask is not None:
            self.reset(mask)
        return self._votes >= self._read_votes

    def is_write_quorum(self, mask: Optional[int] = None) -> bool:
        if mask is not None:
            self.reset(mask)
        return self._votes >= self._write_votes


class RowaEvaluator(QuorumEvaluator):
    """A live member count for read-one/write-all: reads need > 0, writes
    need all N members up."""

    def __init__(self, coterie: Coterie,
                 universe: Optional[Sequence[str]] = None):
        super().__init__(coterie, universe)
        self._member = [False] * self.n_bits
        for name in coterie.nodes:
            self._member[self.bit[name]] = True
        self._n_members = coterie.n_nodes
        self._live = 0

    def reset(self, mask: int) -> None:
        self.mask = mask
        self._live = sum(1 for i, m in enumerate(self._member)
                         if m and mask >> i & 1)

    def reset_full(self) -> None:
        self.mask = self.v_mask
        self._live = self._n_members

    def node_up(self, i: int) -> None:
        self.mask |= 1 << i
        if self._member[i]:
            self._live += 1

    def node_down(self, i: int) -> None:
        self.mask &= ~(1 << i)
        if self._member[i]:
            self._live -= 1

    def is_read_quorum(self, mask: Optional[int] = None) -> bool:
        if mask is not None:
            self.reset(mask)
        return self._live > 0

    def is_write_quorum(self, mask: Optional[int] = None) -> bool:
        if mask is not None:
            self.reset(mask)
        return self._live == self._n_members


class WallEvaluator(QuorumEvaluator):
    """Per-row hit counters for crumbling walls.

    Reads are O(1) (count of hit rows).  The write query walks rows
    bottom-up -- the first row with zero hits refutes every higher full
    row, the first fully-hit row at or below it confirms -- so it is
    O(#rows) with early exit, never O(N).
    """

    def __init__(self, coterie: Coterie,
                 universe: Optional[Sequence[str]] = None):
        super().__init__(coterie, universe)
        self._n_rows = len(coterie.rows)
        self._row_of = [-1] * self.n_bits
        self._row_need = [len(row) for row in coterie.rows]
        for r, row in enumerate(coterie.rows):
            for name in row:
                self._row_of[self.bit[name]] = r
        self._hits = [0] * self._n_rows
        self._rows_hit = 0

    def reset(self, mask: int) -> None:
        self.mask = mask
        hits = [0] * self._n_rows
        for i, r in enumerate(self._row_of):
            if r >= 0 and mask >> i & 1:
                hits[r] += 1
        self._hits = hits
        self._rows_hit = sum(1 for h in hits if h > 0)

    def reset_full(self) -> None:
        self.mask = self.v_mask
        self._hits = self._row_need.copy()
        self._rows_hit = self._n_rows

    def node_up(self, i: int) -> None:
        self.mask |= 1 << i
        r = self._row_of[i]
        if r < 0:
            return
        h = self._hits[r] + 1
        self._hits[r] = h
        if h == 1:
            self._rows_hit += 1

    def node_down(self, i: int) -> None:
        self.mask &= ~(1 << i)
        r = self._row_of[i]
        if r < 0:
            return
        h = self._hits[r] - 1
        self._hits[r] = h
        if h == 0:
            self._rows_hit -= 1

    def is_read_quorum(self, mask: Optional[int] = None) -> bool:
        if mask is not None:
            self.reset(mask)
        return self._rows_hit == self._n_rows

    def is_write_quorum(self, mask: Optional[int] = None) -> bool:
        if mask is not None:
            self.reset(mask)
        hits = self._hits
        need = self._row_need
        for r in range(self._n_rows - 1, -1, -1):
            if hits[r] == need[r]:
                return True
            if hits[r] == 0:
                return False
        return False


class TreeEvaluator(QuorumEvaluator):
    """Per-subtree satisfaction for the Agrawal & El Abbadi tree protocol.

    For every tree position v, ``sat[v]`` caches whether the live set
    contains a quorum of v's subtree, along with a count of satisfied
    children.  A node flip recomputes sat along the root path only,
    stopping as soon as a subtree's satisfaction is unchanged --
    O(depth * branching) worst case, O(1) typical.  Read and write
    families coincide for the tree protocol.
    """

    def __init__(self, coterie: Coterie,
                 universe: Optional[Sequence[str]] = None):
        super().__init__(coterie, universe)
        n = coterie.n_nodes
        self._n = n
        self._branching = coterie.branching
        self._pos_of = [-1] * self.n_bits  # universe bit -> tree position
        for v, name in enumerate(coterie.nodes):
            self._pos_of[self.bit[name]] = v
        self._n_kids = [len(coterie.children(v)) for v in range(n)]
        self._up = [False] * n
        self._sat = [False] * n
        self._sat_kids = [0] * n

    def _sat_now(self, v: int) -> bool:
        kids = self._n_kids[v]
        if not kids:
            return self._up[v]
        sat_kids = self._sat_kids[v]
        return ((self._up[v] and sat_kids > 0) or sat_kids == kids)

    def reset(self, mask: int) -> None:
        self.mask = mask
        up = [False] * self._n
        for i, v in enumerate(self._pos_of):
            if v >= 0 and mask >> i & 1:
                up[v] = True
        sat = [False] * self._n
        sat_kids = [0] * self._n
        # children always have larger heap indices: one reverse sweep
        for v in range(self._n - 1, -1, -1):
            kids = self._n_kids[v]
            if not kids:
                sat[v] = up[v]
            else:
                sat[v] = (up[v] and sat_kids[v] > 0) or sat_kids[v] == kids
            if v and sat[v]:
                sat_kids[(v - 1) // self._branching] += 1
        self._up = up
        self._sat = sat
        self._sat_kids = sat_kids

    def reset_full(self) -> None:
        self.mask = self.v_mask
        self._up = [True] * self._n
        self._sat = [True] * self._n
        self._sat_kids = self._n_kids.copy()

    def _flip(self, i: int, now_up: bool) -> None:
        v = self._pos_of[i]
        if v < 0:
            return
        self._up[v] = now_up
        sat = self._sat
        branching = self._branching
        new_sat = self._sat_now(v)
        while new_sat != sat[v]:
            sat[v] = new_sat
            if v == 0:
                return
            v = (v - 1) // branching
            self._sat_kids[v] += 1 if new_sat else -1
            new_sat = self._sat_now(v)

    def node_up(self, i: int) -> None:
        self.mask |= 1 << i
        self._flip(i, True)

    def node_down(self, i: int) -> None:
        self.mask &= ~(1 << i)
        self._flip(i, False)

    def is_read_quorum(self, mask: Optional[int] = None) -> bool:
        if mask is not None:
            self.reset(mask)
        return self._sat[0]

    def is_write_quorum(self, mask: Optional[int] = None) -> bool:
        if mask is not None:
            self.reset(mask)
        return self._sat[0]


class HierarchicalEvaluator(QuorumEvaluator):
    """Per-group satisfied-subgroup counts for Kumar's HQC.

    The balanced hierarchy is flattened into one array of groups per
    level; each internal group keeps two counters (read- and
    write-satisfied children).  A node flip propagates each chain up
    until satisfaction stops changing -- O(levels) per event.
    """

    def __init__(self, coterie: Coterie,
                 universe: Optional[Sequence[str]] = None):
        super().__init__(coterie, universe)
        arities = coterie.arities
        self._levels = len(arities)
        self._arities = arities
        # group ids: level l occupies [base[l], base[l+1]); leaves last
        base = [0]
        count = 1
        for d in arities:
            base.append(base[-1] + count)
            count *= d
        self._base = base
        n_groups = base[-1] + count  # internal groups + leaves
        self._n_internal = base[-1]
        self._leaf_of = [-1] * self.n_bits  # universe bit -> leaf offset
        for offset, name in enumerate(coterie.nodes):
            self._leaf_of[self.bit[name]] = offset
        self._r_need = coterie.read_thresholds
        self._w_need = coterie.write_thresholds
        self._r_count = [0] * self._n_internal
        self._w_count = [0] * self._n_internal
        self._n_groups = n_groups
        # child count per internal group when every node is up
        self._full_counts = [arities[level]
                             for level in range(self._levels)
                             for _ in range(base[level + 1] - base[level])]

    def reset(self, mask: int) -> None:
        self.mask = mask
        levels = self._levels
        arities = self._arities
        base = self._base
        # satisfaction per group, computed bottom-up, one level at a time
        leaf_up = [False] * (self._n_groups - self._n_internal)
        for i, offset in enumerate(self._leaf_of):
            if offset >= 0 and mask >> i & 1:
                leaf_up[offset] = True
        r_sat = list(leaf_up)
        w_sat = list(leaf_up)
        r_count = [0] * self._n_internal
        w_count = [0] * self._n_internal
        for level in range(levels - 1, -1, -1):
            d = arities[level]
            n_here = base[level + 1] - base[level]
            next_r, next_w = [], []
            for offset in range(n_here):
                rc = sum(1 for s in range(d) if r_sat[offset * d + s])
                wc = sum(1 for s in range(d) if w_sat[offset * d + s])
                r_count[base[level] + offset] = rc
                w_count[base[level] + offset] = wc
                next_r.append(rc >= self._r_need[level])
                next_w.append(wc >= self._w_need[level])
            r_sat, w_sat = next_r, next_w
        self._r_count = r_count
        self._w_count = w_count

    def reset_full(self) -> None:
        self.mask = self.v_mask
        self._r_count = self._full_counts.copy()
        self._w_count = self._full_counts.copy()

    def _flip(self, i: int, now_up: bool) -> None:
        offset = self._leaf_of[i]
        if offset < 0:
            return
        delta = 1 if now_up else -1
        base = self._base
        arities = self._arities
        r_changed = w_changed = True
        for level in range(self._levels - 1, -1, -1):
            offset //= arities[level]
            gid = base[level] + offset
            if not (r_changed or w_changed):
                return
            if r_changed:
                before = self._r_count[gid] >= self._r_need[level]
                self._r_count[gid] += delta
                r_changed = (self._r_count[gid]
                             >= self._r_need[level]) != before
            if w_changed:
                before = self._w_count[gid] >= self._w_need[level]
                self._w_count[gid] += delta
                w_changed = (self._w_count[gid]
                             >= self._w_need[level]) != before

    def node_up(self, i: int) -> None:
        self.mask |= 1 << i
        self._flip(i, True)

    def node_down(self, i: int) -> None:
        self.mask &= ~(1 << i)
        self._flip(i, False)

    def is_read_quorum(self, mask: Optional[int] = None) -> bool:
        if mask is not None:
            self.reset(mask)
        return self._r_count[0] >= self._r_need[0]

    def is_write_quorum(self, mask: Optional[int] = None) -> bool:
        if mask is not None:
            self.reset(mask)
        return self._w_count[0] >= self._w_need[0]


class CompositeEvaluator(QuorumEvaluator):
    """Inner evaluators per group feeding two outer evaluators.

    Each group's inner coterie is compiled over the group's own members;
    the outer coterie is compiled twice, once tracking which groups are
    read-satisfied and once write-satisfied (the two differ).  A node
    flip updates one inner evaluator and forwards at most one outer bit
    per kind -- O(inner structure) per event.
    """

    def __init__(self, coterie: Coterie,
                 universe: Optional[Sequence[str]] = None):
        super().__init__(coterie, universe)
        self._inners = []          # one evaluator per group
        self._group_of = [-1] * self.n_bits
        self._inner_bit = [0] * self.n_bits
        for g, label in enumerate(coterie.group_labels):
            inner = coterie.inners[label].compile()
            self._inners.append(inner)
            for name in inner.coterie.nodes:
                i = self.bit[name]
                self._group_of[i] = g
                self._inner_bit[i] = inner.bit[name]
        self._outer_r = coterie.outer.compile()
        self._outer_w = coterie.outer.compile()
        self._r_sat = [False] * len(self._inners)
        self._w_sat = [False] * len(self._inners)

    @staticmethod
    def _group_sat(inner: QuorumEvaluator, kind: str) -> bool:
        # mirror CompositeCoterie._satisfied_groups: a group with no live
        # member never counts, whatever its inner predicate says
        if not inner.mask:
            return False
        return (inner.is_write_quorum() if kind == "write"
                else inner.is_read_quorum())

    def reset(self, mask: int) -> None:
        self.mask = mask
        r_mask = w_mask = 0
        for g, inner in enumerate(self._inners):
            inner.reset(inner.mask_of(
                name for name in inner.universe
                if mask >> self.bit[name] & 1))
            self._r_sat[g] = self._group_sat(inner, "read")
            self._w_sat[g] = self._group_sat(inner, "write")
            if self._r_sat[g]:
                r_mask |= 1 << g
            if self._w_sat[g]:
                w_mask |= 1 << g
        self._outer_r.reset(r_mask)
        self._outer_w.reset(w_mask)

    def reset_full(self) -> None:
        # every group's full member set contains both quorums, so all
        # groups are satisfied and both outer universes are fully up
        self.mask = self.v_mask
        for g, inner in enumerate(self._inners):
            inner.reset_full()
            self._r_sat[g] = self._w_sat[g] = True
        self._outer_r.reset_full()
        self._outer_w.reset_full()

    def _flip(self, i: int, now_up: bool) -> None:
        g = self._group_of[i]
        if g < 0:
            return
        inner = self._inners[g]
        if now_up:
            inner.node_up(self._inner_bit[i])
        else:
            inner.node_down(self._inner_bit[i])
        r_now = self._group_sat(inner, "read")
        if r_now != self._r_sat[g]:
            self._r_sat[g] = r_now
            (self._outer_r.node_up if r_now
             else self._outer_r.node_down)(g)
        w_now = self._group_sat(inner, "write")
        if w_now != self._w_sat[g]:
            self._w_sat[g] = w_now
            (self._outer_w.node_up if w_now
             else self._outer_w.node_down)(g)

    def node_up(self, i: int) -> None:
        self.mask |= 1 << i
        self._flip(i, True)

    def node_down(self, i: int) -> None:
        self.mask &= ~(1 << i)
        self._flip(i, False)

    def is_read_quorum(self, mask: Optional[int] = None) -> bool:
        if mask is not None:
            self.reset(mask)
        return self._outer_r.is_read_quorum()

    def is_write_quorum(self, mask: Optional[int] = None) -> bool:
        if mask is not None:
            self.reset(mask)
        return self._outer_w.is_write_quorum()
