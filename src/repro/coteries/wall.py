"""Crumbling-wall coteries (Peleg & Wool).

Another "structured coterie" family -- evidence for the paper's closing
claim that its epoch technique generalises beyond the grid.  Nodes are
arranged in rows (a *wall*) of possibly different widths.  A **write
quorum** is one complete row plus one representative from every row below
it; a **read quorum** is one representative from every row.

Intersection is immediate: two write quorums with full rows i <= j meet in
row j (the lower full row is either shared or hit by the higher quorum's
representative), and every read quorum crosses every row, so it hits any
write quorum's full row.  Rows of width 1 near the top give very small
write quorums; Peleg & Wool showed well-chosen walls achieve
asymptotically optimal load.

Like the grid, a wall is derived deterministically from an ordered node
list, so :class:`WallCoterie` (with a fixed widths *pattern*) is a valid
coterie rule for the dynamic epoch protocol.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.coteries.base import Coterie, CoterieError


def triangle_widths(n_nodes: int) -> list[int]:
    """The triangular wall: rows of width 1, 2, 3, ... (last row ragged).

    >>> triangle_widths(10)
    [1, 2, 3, 4]
    >>> triangle_widths(8)
    [1, 2, 3, 2]
    """
    widths = []
    row = 1
    remaining = n_nodes
    while remaining > 0:
        take = min(row, remaining)
        widths.append(take)
        remaining -= take
        row += 1
    return widths


class WallCoterie(Coterie):
    """Read/write quorums over a crumbling wall.

    Parameters
    ----------
    nodes:
        Ordered universe V, filled into rows top to bottom.
    widths:
        Row widths (must sum to ``len(nodes)``); defaults to the
        triangular wall.
    """

    def __init__(self, nodes: Sequence[str],
                 widths: Optional[Sequence[int]] = None):
        super().__init__(nodes)
        if widths is None:
            widths = triangle_widths(len(self.nodes))
        widths = [int(w) for w in widths]
        if any(w < 1 for w in widths):
            raise CoterieError(f"row widths must be positive: {widths}")
        if sum(widths) != len(self.nodes):
            raise CoterieError(
                f"widths sum to {sum(widths)}, need {len(self.nodes)}")
        self.rows: list[tuple[str, ...]] = []
        cursor = 0
        for width in widths:
            self.rows.append(tuple(self.nodes[cursor:cursor + width]))
            cursor += width

    # -- compiled predicates --------------------------------------------------
    def compile(self, universe: Optional[Sequence[str]] = None):
        """An incremental per-row-counter evaluator (see engine docs)."""
        from repro.coteries.engine import WallEvaluator
        return WallEvaluator(self, universe)

    # -- membership -----------------------------------------------------------
    def _row_hits(self, subset: Iterable[str]) -> list[int]:
        live = self.restrict(subset)
        return [sum(1 for name in row if name in live) for row in self.rows]

    def is_read_quorum(self, subset: Iterable[str]) -> bool:
        """True iff *subset* includes a read quorum over V."""
        return all(hits > 0 for hits in self._row_hits(subset))

    def is_write_quorum(self, subset: Iterable[str]) -> bool:
        """True iff *subset* includes a write quorum over V."""
        hits = self._row_hits(subset)
        for i, row in enumerate(self.rows):
            if hits[i] == len(row) and all(h > 0 for h in hits[i + 1:]):
                return True
        return False

    # -- quorum function ----------------------------------------------------------
    def read_quorum(self, salt: str = "", attempt: int = 0) -> list[str]:
        """A concrete read quorum, spread deterministically by *salt*."""
        picks = []
        for i, row in enumerate(self.rows):
            picks.append(row[self._pick(row, salt, attempt,
                                        extra=f"row{i}")])
        return picks

    def write_quorum(self, salt: str = "", attempt: int = 0) -> list[str]:
        # favour small quorums: choose the full row by weighted position,
        # spreading across rows by salt
        """A concrete write quorum, spread deterministically by *salt*."""
        i = self._pick(self.rows, salt, attempt, extra="full-row")
        quorum = list(self.rows[i])
        for j in range(i + 1, len(self.rows)):
            row = self.rows[j]
            quorum.append(row[self._pick(row, salt, attempt,
                                         extra=f"row{j}")])
        return quorum

    # -- availability-aware selection -----------------------------------------------
    def find_read_quorum(self, available: Iterable[str]) -> Optional[frozenset]:
        """Some read quorum fully inside *available*, or None."""
        live = self.restrict(available)
        picks = []
        for row in self.rows:
            hit = next((name for name in row if name in live), None)
            if hit is None:
                return None
            picks.append(hit)
        return frozenset(picks)

    def find_write_quorum(self, available: Iterable[str]) -> Optional[frozenset]:
        """Some write quorum fully inside *available*, or None."""
        live = self.restrict(available)
        for i, row in enumerate(self.rows):
            if not all(name in live for name in row):
                continue
            picks = set(row)
            feasible = True
            for lower in self.rows[i + 1:]:
                hit = next((name for name in lower if name in live), None)
                if hit is None:
                    feasible = False
                    break
                picks.add(hit)
            if feasible:
                return frozenset(picks)
        return None

    def min_write_quorum_size(self) -> int:
        """Size of the smallest write quorum."""
        return min(len(row) + (len(self.rows) - i - 1)
                   for i, row in enumerate(self.rows))

    def layout(self) -> str:
        """ASCII rendering of the structure."""
        width = max(len(str(name)) for name in self.nodes)
        return "\n".join("  ".join(str(name).rjust(width) for name in row)
                         for row in self.rows)

    def __repr__(self) -> str:
        return (f"<WallCoterie rows={[len(r) for r in self.rows]} "
                f"over {self.n_nodes} nodes>")


def wall_rule(widths_fn: Callable[[int], Sequence[int]] = triangle_widths):
    """A coterie rule building walls from any ordered node list."""

    def rule(nodes: Sequence[str]) -> WallCoterie:
        return WallCoterie(tuple(nodes), widths=widths_fn(len(nodes)))

    return rule
