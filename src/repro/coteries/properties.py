"""Enumeration-based verification of the coterie axioms.

The paper (Section 3) defines a coterie over V as families W (write) and R
(read) of subsets of V with

1. ``w_i ∩ w_j != ∅``          -- write/write intersection,
2. ``r_s ∩ w_j != ∅``          -- read/write intersection,
3. ``w_i ⊄ w_j`` and ``r_s ⊄ r_t`` -- minimality (antichain).

Our :class:`~repro.coteries.base.Coterie` classes expose *monotone
predicates* ("S includes a quorum"), so the families to check are the
*minimal* satisfying sets.  :func:`minimal_quorums` enumerates them by
increasing size (exponential -- intended for N up to ~16 in tests), and
:func:`verify_coterie` asserts all three axioms plus predicate
monotonicity.
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import Callable, Iterable, Sequence

from repro.coteries.base import Coterie, CoterieError


def minimal_quorums(is_quorum: Callable[[frozenset], bool],
                    nodes: Sequence[str],
                    max_nodes: int = 18) -> list[frozenset]:
    """All minimal sets S ⊆ nodes with ``is_quorum(S)``.

    Enumerates subsets in increasing size and skips supersets of already
    found quorums, so the result is exactly the antichain of minimal
    quorums for a monotone predicate.
    """
    if len(nodes) > max_nodes:
        raise CoterieError(
            f"refusing to enumerate over {len(nodes)} > {max_nodes} nodes")
    found: list[frozenset] = []
    universe = list(nodes)
    for size in range(1, len(universe) + 1):
        for combo in combinations(universe, size):
            candidate = frozenset(combo)
            if any(q <= candidate for q in found):
                continue
            if is_quorum(candidate):
                found.append(candidate)
    return found


def verify_monotonicity(coterie: Coterie, samples: int = 200,
                        seed: int = 0) -> None:
    """Check the quorum predicates are monotone by randomized sampling.

    For random S ⊆ T, a quorum in S must imply a quorum in T.  Raises
    :class:`CoterieError` with a witness on violation.
    """
    rng = random.Random(seed)
    nodes = list(coterie.nodes)
    for _ in range(samples):
        t = frozenset(name for name in nodes if rng.random() < 0.6)
        s = frozenset(name for name in t if rng.random() < 0.7)
        for label, predicate in (("read", coterie.is_read_quorum),
                                 ("write", coterie.is_write_quorum)):
            if predicate(s) and not predicate(t):
                raise CoterieError(
                    f"{label} predicate not monotone: S={sorted(s)} "
                    f"is a quorum but T={sorted(t)} is not")


def verify_coterie(coterie: Coterie, max_nodes: int = 16) -> dict:
    """Assert the three coterie axioms by full enumeration.

    Returns a summary dict with the minimal quorum families (useful for
    inspecting structures in tests).  Raises :class:`CoterieError` with a
    concrete witness if any axiom fails.
    """
    write_family = minimal_quorums(coterie.is_write_quorum, coterie.nodes,
                                   max_nodes=max_nodes)
    read_family = minimal_quorums(coterie.is_read_quorum, coterie.nodes,
                                  max_nodes=max_nodes)
    if not write_family:
        raise CoterieError("empty write quorum family")
    if not read_family:
        raise CoterieError("empty read quorum family")
    for w1, w2 in combinations(write_family, 2):
        if not (w1 & w2):
            raise CoterieError(
                f"disjoint write quorums: {sorted(w1)} and {sorted(w2)}")
    for r in read_family:
        for w in write_family:
            if not (r & w):
                raise CoterieError(
                    f"read quorum {sorted(r)} misses write quorum {sorted(w)}")
    # minimality is by construction of minimal_quorums; double-check anyway
    _assert_antichain(write_family, "write")
    _assert_antichain(read_family, "read")
    return {
        "write_quorums": write_family,
        "read_quorums": read_family,
        "min_write_size": min(len(q) for q in write_family),
        "min_read_size": min(len(q) for q in read_family),
    }


def _assert_antichain(family: Iterable[frozenset], label: str) -> None:
    family = list(family)
    for q1, q2 in combinations(family, 2):
        if q1 < q2 or q2 < q1:
            raise CoterieError(
                f"{label} family is not an antichain: "
                f"{sorted(q1)} vs {sorted(q2)}")


def quorums_intersect_everywhere(coterie: Coterie,
                                 picks: int = 50) -> bool:
    """Spot-check that quorums produced by the quorum function intersect.

    Exercises the *quorum function* (not just the predicate): every pair of
    generated write quorums, and every generated read/write pair, must
    share a node.  Used by tests for large N where enumeration is
    infeasible.
    """
    write_quorums = [frozenset(coterie.write_quorum(salt=f"s{i}", attempt=i))
                     for i in range(picks)]
    read_quorums = [frozenset(coterie.read_quorum(salt=f"s{i}", attempt=i))
                    for i in range(picks)]
    for w1, w2 in combinations(write_quorums, 2):
        if not (w1 & w2):
            return False
    for r in read_quorums:
        for w in write_quorums:
            if not (r & w):
                return False
    return True
