"""Hierarchical quorum consensus (Kumar 1990) -- reference [10].

The node list is organised into a balanced multilevel hierarchy: level 0 is
the root group; each group at level i splits into ``arity[i]`` subgroups;
the bottom level's groups are individual physical nodes.  A read (write)
quorum is assembled recursively: a group is *read-satisfied* when at least
``r_i`` of its subgroups are read-satisfied, and *write-satisfied* when at
least ``w_i`` of its subgroups are write-satisfied, with per-level
thresholds obeying ``r_i + w_i > arity[i]`` and ``2 * w_i > arity[i]``.

With three levels of three and ``w_i = 2`` everywhere, a write quorum over
N=27 has size 8 -- well below the majority size of 14 -- which is Kumar's
motivating example.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

from repro.coteries.base import Coterie, CoterieError


def default_arities(n_nodes: int) -> tuple[int, ...]:
    """A reasonable hierarchy: repeated factors of 3 (then small factors).

    Falls back to a single level of size N (plain majority) when N is prime
    or too small to split.
    """
    if n_nodes < 3:
        return (n_nodes,)
    arities = []
    remaining = n_nodes
    for factor in (3, 5, 7, 2):
        while remaining % factor == 0 and remaining > 1:
            arities.append(factor)
            remaining //= factor
    if remaining != 1 or not arities:
        return (n_nodes,)
    return tuple(arities)


class HierarchicalCoterie(Coterie):
    """Kumar's hierarchical quorum consensus over a balanced hierarchy.

    Parameters
    ----------
    nodes:
        Ordered universe V; ``len(V)`` must equal ``prod(arities)``.
    arities:
        Subgroup counts per level, root first.  Defaults to
        :func:`default_arities`.
    write_thresholds / read_thresholds:
        Per-level ``w_i`` / ``r_i``.  Defaults: ``w_i = floor(d_i/2) + 1``
        and ``r_i = d_i + 1 - w_i``.
    """

    def __init__(self, nodes: Sequence[str],
                 arities: Optional[Sequence[int]] = None,
                 write_thresholds: Optional[Sequence[int]] = None,
                 read_thresholds: Optional[Sequence[int]] = None):
        super().__init__(nodes)
        if arities is None:
            arities = default_arities(len(self.nodes))
        arities = tuple(int(d) for d in arities)
        if any(d < 1 for d in arities):
            raise CoterieError(f"arities must be positive: {arities}")
        if math.prod(arities) != len(self.nodes):
            raise CoterieError(
                f"prod(arities)={math.prod(arities)} != N={len(self.nodes)}")
        self.arities = arities
        if write_thresholds is None:
            write_thresholds = [d // 2 + 1 for d in arities]
        if read_thresholds is None:
            read_thresholds = [d + 1 - w
                               for d, w in zip(arities, write_thresholds)]
        write_thresholds = tuple(int(w) for w in write_thresholds)
        read_thresholds = tuple(int(r) for r in read_thresholds)
        if not (len(write_thresholds) == len(read_thresholds) == len(arities)):
            raise CoterieError("one threshold per level required")
        for d, r, w in zip(arities, read_thresholds, write_thresholds):
            if not (1 <= r <= d and 1 <= w <= d):
                raise CoterieError(f"thresholds outside 1..{d}: r={r} w={w}")
            if r + w <= d:
                raise CoterieError(f"need r+w > d at each level: {r}+{w}<={d}")
            if 2 * w <= d:
                raise CoterieError(f"need 2w > d at each level: 2*{w}<={d}")
        self.write_thresholds = write_thresholds
        self.read_thresholds = read_thresholds

    # -- hierarchy geometry ---------------------------------------------------
    def _group(self, level: int, offset: int) -> range:
        """Node index range of the group at (level, offset).

        Level 0 is the root (everything); a group at level i has
        ``prod(arities[i:])`` members.
        """
        size = math.prod(self.arities[level:]) if level < len(self.arities) else 1
        return range(offset * size, (offset + 1) * size)

    def group_size(self, level: int) -> int:
        """Number of physical nodes in one group at the given level."""
        return math.prod(self.arities[level:]) if level < len(self.arities) else 1

    # -- compiled predicates -----------------------------------------------------
    def compile(self, universe: Optional[Sequence[str]] = None):
        """An incremental per-group-counter evaluator (see engine docs)."""
        from repro.coteries.engine import HierarchicalEvaluator
        return HierarchicalEvaluator(self, universe)

    # -- membership --------------------------------------------------------------
    def _satisfied(self, live: frozenset, level: int, offset: int,
                   thresholds: Sequence[int]) -> bool:
        if level == len(self.arities):
            return self.nodes[offset] in live
        need = thresholds[level]
        arity = self.arities[level]
        have = 0
        for s in range(arity):
            if self._satisfied(live, level + 1, offset * arity + s, thresholds):
                have += 1
                if have >= need:
                    return True
        return False

    def is_read_quorum(self, subset: Iterable[str]) -> bool:
        """True iff *subset* includes a read quorum over V."""
        return self._satisfied(self.restrict(subset), 0, 0,
                               self.read_thresholds)

    def is_write_quorum(self, subset: Iterable[str]) -> bool:
        """True iff *subset* includes a write quorum over V."""
        return self._satisfied(self.restrict(subset), 0, 0,
                               self.write_thresholds)

    # -- quorum function --------------------------------------------------------
    def _assemble(self, level: int, offset: int, thresholds: Sequence[int],
                  salt: str, attempt: int) -> list[str]:
        if level == len(self.arities):
            return [self.nodes[offset]]
        need = thresholds[level]
        arity = self.arities[level]
        start = self._pick(range(arity), salt, attempt,
                           extra=f"hqc{level}.{offset}")
        picks: list[str] = []
        for step in range(need):
            s = (start + step) % arity
            picks.extend(self._assemble(level + 1, offset * arity + s,
                                        thresholds, salt, attempt))
        return picks

    def read_quorum(self, salt: str = "", attempt: int = 0) -> list[str]:
        """A concrete read quorum, spread deterministically by *salt*."""
        return self._assemble(0, 0, self.read_thresholds, salt, attempt)

    def write_quorum(self, salt: str = "", attempt: int = 0) -> list[str]:
        """A concrete write quorum, spread deterministically by *salt*."""
        return self._assemble(0, 0, self.write_thresholds, salt, attempt)

    # -- availability-aware selection ------------------------------------------
    def _find(self, live: frozenset, level: int, offset: int,
              thresholds: Sequence[int]) -> Optional[frozenset]:
        if level == len(self.arities):
            name = self.nodes[offset]
            return frozenset([name]) if name in live else None
        need = thresholds[level]
        arity = self.arities[level]
        parts = []
        for s in range(arity):
            sub = self._find(live, level + 1, offset * arity + s, thresholds)
            if sub is not None:
                parts.append(sub)
                if len(parts) == need:
                    return frozenset().union(*parts)
        return None

    def find_read_quorum(self, available: Iterable[str]) -> Optional[frozenset]:
        """Some read quorum fully inside *available*, or None."""
        return self._find(self.restrict(available), 0, 0,
                          self.read_thresholds)

    def find_write_quorum(self, available: Iterable[str]) -> Optional[frozenset]:
        """Some write quorum fully inside *available*, or None."""
        return self._find(self.restrict(available), 0, 0,
                          self.write_thresholds)

    def min_write_quorum_size(self) -> int:
        """Size of the smallest write quorum."""
        return math.prod(self.write_thresholds)

    def min_read_quorum_size(self) -> int:
        """Size of the smallest read quorum."""
        return math.prod(self.read_thresholds)

    def __repr__(self) -> str:
        return (f"<HierarchicalCoterie {self.n_nodes} nodes "
                f"arities={self.arities} w={self.write_thresholds}>")
