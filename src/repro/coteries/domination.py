"""Coterie domination (Garcia-Molina & Barbara 1985).

A coterie C over universe U is **dominated** by a coterie D (over the same
U) when D != C and every quorum of C contains a quorum of D.  A dominated
coterie is strictly worse: any up-set that lets C operate lets D operate
too, and some up-sets work only for D.  Non-dominated (ND) coteries are
therefore the availability-optimal ones.

The classic characterisation makes testing mechanical: C is dominated iff
there is a set S ⊆ U that

1. intersects every quorum of C (S is a *transversal*), and
2. contains no quorum of C.

Such an S can be added to C (dropping its supersets) to produce a
dominating coterie.  Both directions are implemented below by enumeration
(exponential -- meant for the analysis of small structures, like the
paper's grids).

Fun facts the tests verify: majorities over an odd universe are ND;
majorities over an even universe are dominated (the tie-breaking
dynamic-linear voting exploits exactly this); and grid write coteries are
dominated for every m, n >= 2 -- the price the grid pays for its small
quorums, and part of why Table 1's static column looks so bad.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Optional, Sequence

from repro.coteries.base import Coterie, CoterieError
from repro.coteries.properties import minimal_quorums


def transversals(family: Sequence[frozenset], universe: Sequence[str],
                 max_nodes: int = 18) -> list[frozenset]:
    """All minimal sets hitting every set in *family*.

    (The minimal transversals of a quorum family form its *dual*; a
    coterie equals its dual exactly when it is non-dominated and
    self-dual, e.g. odd majorities.)
    """
    if len(universe) > max_nodes:
        raise CoterieError(
            f"refusing to enumerate over {len(universe)} > {max_nodes}")
    if not family:
        raise CoterieError("empty family has no transversals")
    found: list[frozenset] = []
    nodes = list(universe)
    for size in range(1, len(nodes) + 1):
        for combo in combinations(nodes, size):
            candidate = frozenset(combo)
            if any(t <= candidate for t in found):
                continue
            if all(candidate & quorum for quorum in family):
                found.append(candidate)
    return found


def dominating_witness(coterie: Coterie, kind: str = "write",
                       max_nodes: int = 16) -> Optional[frozenset]:
    """A minimal transversal containing no quorum, or None if ND."""
    predicate = (coterie.is_write_quorum if kind == "write"
                 else coterie.is_read_quorum)
    family = minimal_quorums(predicate, coterie.nodes, max_nodes=max_nodes)
    for candidate in transversals(family, coterie.nodes,
                                  max_nodes=max_nodes):
        if not predicate(candidate):
            return candidate
    return None


def is_dominated(coterie: Coterie, kind: str = "write",
                 max_nodes: int = 16) -> bool:
    """True iff a strictly better coterie over the same universe exists."""
    return dominating_witness(coterie, kind, max_nodes) is not None


def dominate(coterie: Coterie, kind: str = "write",
             max_nodes: int = 16) -> list[frozenset]:
    """A (one-step) dominating quorum family.

    Adds one witness transversal and drops its supersets; repeats until no
    witness remains, returning a non-dominated family that dominates the
    input.  The result is a plain family of frozensets (it need not match
    any structured rule).
    """
    predicate = (coterie.is_write_quorum if kind == "write"
                 else coterie.is_read_quorum)
    family = minimal_quorums(predicate, coterie.nodes, max_nodes=max_nodes)
    while True:
        witness = _family_witness(family, coterie.nodes, max_nodes)
        if witness is None:
            return family
        family = [q for q in family if not witness <= q]
        family.append(witness)


def _family_witness(family: Sequence[frozenset], universe: Sequence[str],
                    max_nodes: int) -> Optional[frozenset]:
    for candidate in transversals(family, universe, max_nodes=max_nodes):
        if not any(q <= candidate for q in family):
            return candidate
    return None


def family_availability(family: Iterable[frozenset],
                        universe: Sequence[str], p: float) -> float:
    """P(the up-set contains some member of *family*), by enumeration."""
    if not 0.0 <= p <= 1.0:
        raise CoterieError(f"probability out of range: {p}")
    family = list(family)
    nodes = list(universe)
    if len(nodes) > 20:
        raise CoterieError("enumeration refused beyond 20 nodes")
    q = 1.0 - p
    total = 0.0
    for size in range(len(nodes) + 1):
        for up in combinations(nodes, size):
            up_set = frozenset(up)
            if any(quorum <= up_set for quorum in family):
                total += p ** size * q ** (len(nodes) - size)
    return total
