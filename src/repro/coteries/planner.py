"""Liveness-aware quorum planning.

PR 1 compiled the coterie *rule* (membership predicates) into an
incremental bitmask engine; this module compiles quorum *selection*.
The live protocol path used to draw quorums blindly with
``coterie.write_quorum(salt, attempt)`` and discover failures by polling
-- every draw that landed on a dead node cost a full poll timeout plus a
retry round.  The planner instead picks a quorum *constructively* from a
per-node suspicion view:

* with no suspected nodes, the plan IS the blind salted draw -- healthy
  same-seed runs are unchanged, operation for operation;
* with suspects, the planner builds a minimal quorum out of the
  remaining live nodes -- O(quorum size) for the structured families
  (grid, voting) via salted per-slot selection, and via each family's
  constructive ``find_*_quorum`` otherwise;
* if the non-suspected nodes cannot form a quorum at all (suspicion may
  be wrong, or the epoch is simply too degraded), the planner falls
  back to the blind draw so a false suspicion can never make an
  available system unavailable.

Correctness is untouched by construction: the planner only ever returns
a quorum of the bound coterie rule, and the paper's Lemma 1 argument
quantifies over *all* quorums of the rule -- which one gets polled is
pure policy (see docs/PROTOCOL.md).

The module also provides the generic evaluator-driven
:func:`minimal_quorum` (backing the default
``Coterie.find_read_quorum``/``find_write_quorum``) and
:class:`CompiledCoterieCache`, the LRU of (coterie, compiled evaluator)
pairs the replica servers key by epoch list so planning never rebuilds
or recompiles a structure per operation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Sequence

from repro.coteries.base import Coterie, CoterieRule, QuorumEvaluator, _stable_hash

if TYPE_CHECKING:  # pragma: no cover - import only for type checking
    from repro.coteries.optimizer import Strategy
from repro.coteries.grid import GridCoterie
from repro.coteries.majority import WeightedVotingCoterie


def compiled(coterie: Coterie) -> QuorumEvaluator:
    """The coterie's compiled evaluator, cached on the instance.

    The evaluator's tracked state is scratch space: every user must
    ``reset`` before querying, which all planner entry points do.
    """
    evaluator = getattr(coterie, "_planner_evaluator", None)
    if evaluator is None:
        evaluator = coterie.compile()
        coterie._planner_evaluator = evaluator
    return evaluator


def minimal_quorum(coterie: Coterie, available: Iterable[str], kind: str,
                   evaluator: Optional[QuorumEvaluator] = None,
                   salt: str = "") -> Optional[frozenset]:
    """Some *minimal* quorum of *kind* fully inside *available*, or None.

    Generic over any coterie: load the live subset into the compiled
    evaluator, then drop members one at a time, keeping each drop
    whenever the remainder still contains a quorum.  The result is
    minimal (no proper subset is a quorum) though not necessarily
    minimum-cardinality.  Cost: O(N) incremental evaluator transitions
    -- O(N) total for counter-based structures, O(N * depth) for
    recursive ones.

    *salt* rotates the drop order so concurrent planners shrink toward
    different minimal quorums where the rule allows several.
    """
    if kind not in ("read", "write"):
        raise ValueError(f"kind must be 'read' or 'write', got {kind!r}")
    live = coterie.restrict(available)
    if evaluator is None:
        evaluator = compiled(coterie)
    is_quorum = (evaluator.is_write_quorum if kind == "write"
                 else evaluator.is_read_quorum)
    evaluator.reset(evaluator.mask_of(live))
    if not is_quorum():
        return None
    n = evaluator.n_bits
    start = _stable_hash(salt) % n if salt else 0
    for offset in range(n):
        i = (start + offset) % n
        if not (evaluator.mask >> i) & 1:
            continue
        evaluator.node_down(i)
        if not is_quorum():
            evaluator.node_up(i)
    return evaluator.names_of(evaluator.mask)


# -- structure-aware salted selection ----------------------------------------

#: The rank of a peer with no (or a decayed) latency measurement.  An
#: unknown peer ranks as fast -- polling it is how we learn, mirroring
#: how unsuspected equals presumed-up -- so a peer *measured* at exactly
#: 0.0 is indistinguishable from an unknown one by definition, not by a
#: filtering accident.
UNKNOWN_SCORE = 0.0


def _effective_scores(coterie: Coterie,
                      scores: Optional[Mapping[str, float]]
                      ) -> Optional[dict]:
    """The per-node ranking map for one plan, or None for a no-op.

    Every coterie node gets an explicit entry (peers missing from
    *scores* at :data:`UNKNOWN_SCORE`), so "partially scored" clusters
    have a defined tie-break instead of depending on which entries a
    truthiness filter dropped.  The previous ``score > 0.0`` filter
    silently discarded peers whose EWMA was exactly 0.0 -- harmless for
    the pick itself (the pickers floor missing names at 0.0 anyway) but
    it made an all-equal *non-zero* score map look "ranked" and routed
    it through the structural planners.  Collapsing every all-equal map
    to None makes the documented property structural: an empty or
    all-equal score map IS the blind draw.
    """
    if not scores:
        return None
    ranked = {name: scores.get(name, UNKNOWN_SCORE)
              for name in coterie.nodes}
    if len(set(ranked.values())) <= 1:
        return None  # all-equal ranking cannot prefer anyone: blind draw
    return ranked


def _best(candidates: list, scores: Optional[Mapping[str, float]],
          salt: str, attempt: int, extra: str) -> str:
    """The salted pick among the lowest-scored candidates.

    With no scores (or all-equal scores) the tie set is the whole
    candidate list and this is exactly the blind salted pick, so score
    ranking degrades gracefully to today's behaviour."""
    if scores:
        floor = min(scores.get(name, 0.0) for name in candidates)
        tied = [name for name in candidates
                if scores.get(name, 0.0) == floor]
    else:
        tied = candidates
    return tied[Coterie._pick(tied, salt, attempt, extra=extra)]


def _grid_plan(coterie: GridCoterie, live: frozenset, kind: str,
               salt: str, attempt: int,
               scores: Optional[Mapping[str, float]] = None
               ) -> Optional[list]:
    """Salted grid selection over the live nodes: one live representative
    per column (read), plus one fully-live coverable column (write).
    O(N) scan, O(quorum size) picks -- the liveness-aware mirror of the
    blind ``read_quorum``/``write_quorum`` draw.  With *scores*, every
    pick prefers the lowest expected-latency candidate (graded
    suspicion): slow nodes are demoted to last resort, not excluded."""
    picks = []
    live_columns: list[list] = []
    for j, column in enumerate(coterie.columns, start=1):
        candidates = [name for name in column if name in live]
        if not candidates:
            return None  # a dead column: no read quorum exists at all
        live_columns.append(candidates)
        picks.append(_best(candidates, scores, salt, attempt, f"col{j}"))
    if kind == "read":
        return picks
    eligible = [j for j in range(1, coterie.shape.n + 1)
                if coterie._column_may_count_as_full(j)
                and len(live_columns[j - 1]) == len(coterie.columns[j - 1])]
    if not eligible:
        return None  # no fully-live coverable column: no live write quorum
    if scores:
        # the full column is polled in its entirety, so its cost is its
        # *worst* member; prefer the column with the lowest worst-case
        totals = [max(scores.get(name, 0.0)
                      for name in coterie.columns[j - 1])
                  for j in eligible]
        floor = min(totals)
        tied = [j for j, total in zip(eligible, totals) if total == floor]
    else:
        tied = eligible
    j_full = tied[Coterie._pick(tied, salt, attempt, extra="full")]
    quorum = list(coterie.columns[j_full - 1])
    for j, candidates in enumerate(live_columns, start=1):
        if j == j_full:
            continue
        quorum.append(_best(candidates, scores, salt, attempt, f"col{j}"))
    return quorum


def _voting_plan(coterie: WeightedVotingCoterie, live: frozenset, kind: str,
                 salt: str, attempt: int,
                 scores: Optional[Mapping[str, float]] = None
                 ) -> Optional[list]:
    """Salted vote collection over the live nodes: the blind rotated
    draw with suspected nodes skipped.  O(N) worst case, O(quorum size)
    when most nodes are live.  With *scores*, collection visits nodes
    fastest-first (stable sort, so equal scores keep the rotation)."""
    threshold = (coterie.write_votes if kind == "write"
                 else coterie.read_votes)
    start = Coterie._pick(coterie.nodes, salt, attempt)
    rotated = coterie.nodes[start:] + coterie.nodes[:start]
    if scores:
        rotated = sorted(rotated, key=lambda name: scores.get(name, 0.0))
    picked, votes = [], 0
    for name in rotated:
        if name not in live or coterie.weights[name] == 0:
            continue
        picked.append(name)
        votes += coterie.weights[name]
        if votes >= threshold:
            return picked
    return None


def plan_quorum(coterie: Coterie, kind: str, avoid: Iterable[str] = (),
                salt: str = "", attempt: int = 0,
                scores: Optional[Mapping[str, float]] = None,
                strategy: Optional["Strategy"] = None) -> list:
    """A concrete quorum of *kind* over the coterie, routed around *avoid*.

    The contract every caller relies on:

    * the result is always a quorum of the rule (so polling it is always
      correct -- planner choices never touch quorum intersection);
    * with an empty *avoid* set, no *scores*, and no *strategy*, the
      result is exactly the blind salted draw, so healthy same-seed
      runs are unchanged;
    * when the nodes outside *avoid* contain a quorum, the result avoids
      every suspected node; otherwise the blind draw is returned as the
      correctness fallback (false suspicion never blocks an available
      system -- the poll itself is the ground truth).

    *scores* (peer -> expected RTT, from ``LivenessView.latency_scores``)
    turns binary routing into *graded* routing: the structured families
    rank candidates fastest-first, demoting gray (slow-but-alive) nodes
    to last resort instead of excluding them.  Peers without a score
    rank as fast (:data:`UNKNOWN_SCORE`, so a peer measured at exactly
    0.0 ties with unknown peers by definition); scores never change
    which sets are quorums -- only which quorum gets polled -- and an
    empty or all-equal score map degrades to exactly the unscored
    behaviour.  Generic families ignore scores (their constructive
    search has no per-slot choice to rank).

    *strategy* (a :class:`repro.coteries.optimizer.Strategy`) replaces
    the canonical plan with a seeded weighted draw from the optimized
    quorum distribution.  Every quorum in a strategy's support is a
    true quorum of the rule, so the contract above is unchanged; when
    no support quorum clears the *avoid* set the call falls through to
    the constructive planner (availability beats optimality).
    """
    if kind not in ("read", "write"):
        raise ValueError(f"kind must be 'read' or 'write', got {kind!r}")
    avoid = coterie.restrict(avoid)
    if strategy is not None:
        sampled = strategy.sample(kind, avoid=avoid, salt=salt,
                                  attempt=attempt)
        if sampled is not None:
            return sampled
    draw = (coterie.write_quorum(salt=salt, attempt=attempt) if kind == "write"
            else coterie.read_quorum(salt=salt, attempt=attempt))
    ranked = _effective_scores(coterie, scores)
    if not avoid and not ranked:
        return draw
    if not avoid:
        # Pure latency ranking, no suspects: keep the caller's salt and
        # attempt so equally-fast candidates still spread load the way
        # the blind draw does (the canonicality argument below is about
        # degraded clusters; a healthy ranked cluster wants the spread).
        live = frozenset(coterie.nodes)
        if isinstance(coterie, GridCoterie):
            planned = _grid_plan(coterie, live, kind, salt, attempt, ranked)
        elif isinstance(coterie, WeightedVotingCoterie):
            planned = _voting_plan(coterie, live, kind, salt, attempt,
                                   ranked)
        else:
            planned = None  # generic families: no slot structure to rank
        return list(planned) if planned is not None else draw
    # Constructive plans are *canonical*: unlike the blind draw they do
    # not rotate with the salt or the attempt counter, so while the same
    # nodes stay suspected every coordinator converges on the same live
    # quorum -- even when a particular draw would have dodged the
    # suspects by luck.  Rotating or per-coordinator plans constantly
    # poll nodes the previous quorum left behind; each such poll finds a
    # stale replica and triggers catch-up propagation whose traffic
    # costs more than the rotation's load spreading is worth while the
    # cluster is degraded.  A canonical quorum leaves the spectator
    # nodes quiet (they catch up once suspicion expires or the epoch
    # changes), and the salted spread resumes when suspicion clears.
    live = frozenset(name for name in coterie.nodes if name not in avoid)
    planned: Optional[Iterable] = None
    if isinstance(coterie, GridCoterie):
        planned = _grid_plan(coterie, live, kind, "", 0, ranked)
    elif isinstance(coterie, WeightedVotingCoterie):
        planned = _voting_plan(coterie, live, kind, "", 0, ranked)
    else:
        found = (coterie.find_write_quorum(live) if kind == "write"
                 else coterie.find_read_quorum(live))
        planned = sorted(found) if found is not None else None
    if planned is None:
        return draw  # no live quorum: fall back to the blind draw
    return list(planned)


class CompiledCoterieCache:
    """An LRU of (coterie, compiled evaluator) pairs keyed by epoch list.

    Replica servers look coteries up on every operation; the previous
    cache cleared itself wholesale at 64 entries, and never kept the
    compiled evaluator, so planners would have recompiled per op.  This
    cache evicts least-recently-used entries one at a time and compiles
    each coterie's evaluator lazily, at most once per residency.

    A sharded keyspace keys this cache by *per-shard* epoch lists, so
    one node-wide instance may serve thousands of shards; the LRU bound
    is what keeps that safe.  When a ``metrics`` registry is passed,
    the cache exports ``coterie_cache{outcome=hit|miss}`` counters and
    an eviction counter so cache pressure is observable (a miss rate
    near 1 means the capacity is too small for the epoch-list working
    set and every operation rebuilds a coterie).
    """

    def __init__(self, rule: CoterieRule, capacity: int = 64, metrics=None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.rule = rule
        self.capacity = capacity
        self._entries: OrderedDict[tuple, list] = OrderedDict()
        self._hits = metrics.counter("coterie_cache", outcome="hit") \
            if metrics is not None else None
        self._misses = metrics.counter("coterie_cache", outcome="miss") \
            if metrics is not None else None
        self._evictions = metrics.counter("coterie_cache_evictions") \
            if metrics is not None else None

    def _entry(self, epoch_list: Sequence[str]) -> list:
        key = tuple(epoch_list)
        entries = self._entries
        entry = entries.get(key)
        if entry is None:
            if self._misses is not None:
                self._misses.inc()
            entry = [self.rule(key), None]
            entries[key] = entry
            if len(entries) > self.capacity:
                entries.popitem(last=False)
                if self._evictions is not None:
                    self._evictions.inc()
        else:
            if self._hits is not None:
                self._hits.inc()
            entries.move_to_end(key)
        return entry

    def coterie(self, epoch_list: Sequence[str]) -> Coterie:
        """The coterie over one epoch list, memoized with LRU eviction."""
        return self._entry(epoch_list)[0]

    def evaluator(self, epoch_list: Sequence[str]) -> QuorumEvaluator:
        """The compiled evaluator for one epoch list (compiled lazily,
        cached next to its coterie; tracked state is scratch space)."""
        entry = self._entry(epoch_list)
        if entry[1] is None:
            entry[1] = entry[0].compile()
        return entry[1]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, epoch_list) -> bool:
        return tuple(epoch_list) in self._entries
