"""The tree protocol of Agrawal & El Abbadi (PODC 1989) -- reference [1].

Nodes are arranged in a logical d-ary tree (heap layout over the ordered
node list).  A quorum is obtained by walking root to leaf; a node on the
path that is unavailable is replaced by root-to-leaf paths through *all* of
its children.  Formally, a set S contains a quorum of the subtree rooted at
v iff

* v is a leaf and v is in S, or
* v is in S and S contains a quorum of at least one child subtree, or
* S contains a quorum of *every* child subtree (v substituted).

Any two such quorums intersect (induction over the tree), so using the same
family for reads and writes yields a valid coterie.  In the failure-free
case the quorum is a single root-to-leaf path of ``ceil(log_d N)+1`` nodes
-- even smaller than the grid's sqrt(N) -- at the cost of high load on the
root.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.coteries.base import Coterie, CoterieError


class TreeCoterie(Coterie):
    """Quorums over a logical d-ary tree (read and write families equal)."""

    def __init__(self, nodes: Sequence[str], branching: int = 2):
        super().__init__(nodes)
        if branching < 2:
            raise CoterieError(f"branching must be >= 2, got {branching}")
        self.branching = branching

    # -- tree geometry (heap layout over node indices 0..N-1) ----------------
    def children(self, index: int) -> list[int]:
        """Heap-layout child indices of the given tree node."""
        first = index * self.branching + 1
        return [c for c in range(first, first + self.branching)
                if c < self.n_nodes]

    def is_leaf(self, index: int) -> bool:
        """True iff the given tree node has no children."""
        return not self.children(index)

    def depth(self) -> int:
        """Number of levels in the tree."""
        levels, count = 0, 0
        width = 1
        while count < self.n_nodes:
            count += width
            width *= self.branching
            levels += 1
        return levels

    # -- compiled predicates ---------------------------------------------------
    def compile(self, universe: Optional[Sequence[str]] = None):
        """An incremental subtree-satisfaction evaluator (see engine docs)."""
        from repro.coteries.engine import TreeEvaluator
        return TreeEvaluator(self, universe)

    # -- membership ------------------------------------------------------------
    def _contains_quorum(self, live: frozenset, index: int) -> bool:
        name = self.nodes[index]
        kids = self.children(index)
        if not kids:
            return name in live
        if name in live and any(self._contains_quorum(live, c) for c in kids):
            return True
        return all(self._contains_quorum(live, c) for c in kids)

    def is_read_quorum(self, subset: Iterable[str]) -> bool:
        """True iff *subset* includes a read quorum over V."""
        return self._contains_quorum(self.restrict(subset), 0)

    def is_write_quorum(self, subset: Iterable[str]) -> bool:
        """True iff *subset* includes a write quorum over V."""
        return self._contains_quorum(self.restrict(subset), 0)

    # -- quorum function -----------------------------------------------------------
    def _path(self, index: int, salt: str, attempt: int) -> list[str]:
        picks = [self.nodes[index]]
        kids = self.children(index)
        while kids:
            index = kids[self._pick(kids, salt, attempt,
                                    extra=f"tree{index}")]
            picks.append(self.nodes[index])
            kids = self.children(index)
        return picks

    def read_quorum(self, salt: str = "", attempt: int = 0) -> list[str]:
        """A root-to-leaf path (the failure-free quorum)."""
        return self._path(0, salt, attempt)

    def write_quorum(self, salt: str = "", attempt: int = 0) -> list[str]:
        """A concrete write quorum, spread deterministically by *salt*."""
        return self._path(0, salt, attempt)

    # -- availability-aware selection ---------------------------------------------
    def _find(self, live: frozenset, index: int) -> Optional[frozenset]:
        name = self.nodes[index]
        kids = self.children(index)
        if not kids:
            return frozenset([name]) if name in live else None
        if name in live:
            for c in kids:
                sub = self._find(live, c)
                if sub is not None:
                    return sub | {name}
        parts = []
        for c in kids:
            sub = self._find(live, c)
            if sub is None:
                return None
            parts.append(sub)
        return frozenset().union(*parts)

    def find_read_quorum(self, available: Iterable[str]) -> Optional[frozenset]:
        """Some read quorum fully inside *available*, or None."""
        return self._find(self.restrict(available), 0)

    def find_write_quorum(self, available: Iterable[str]) -> Optional[frozenset]:
        """Some write quorum fully inside *available*, or None."""
        return self._find(self.restrict(available), 0)

    def __repr__(self) -> str:
        return (f"<TreeCoterie {self.n_nodes} nodes "
                f"d={self.branching} depth={self.depth()}>")
