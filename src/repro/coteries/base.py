"""The coterie abstraction and the paper's *coterie rule*.

Section 4 of the paper assumes:

* a **coterie rule** -- ``coterie-rule(V, S)`` is true iff S includes a
  write (read) quorum over the ordered node set V; here that is
  ``rule(V).is_write_quorum(S)`` for a :class:`CoterieRule` instance;
* a **quorum function** -- given V and a node name, yields a concrete
  quorum over V, ideally different for different callers so load spreads;
  here that is :meth:`Coterie.write_quorum` / :meth:`Coterie.read_quorum`.

A :class:`Coterie` instance is bound to one ordered node list V (an epoch
list, in protocol terms).  All quorum predicates accept any iterable of
node names and ignore names outside V, matching the pseudo-code's
assumption ``S ⊆ V`` without forcing callers to pre-filter.

Compiled predicates
-------------------

The set-based predicates above are the *reference* semantics, but they
rescan the whole structure on every call -- too slow for the Monte Carlo
estimators, which evaluate quorum membership after every failure/repair
event.  :meth:`Coterie.compile` returns a :class:`QuorumEvaluator`: node
names are mapped to bit positions in a fixed *universe* once, the up-set
becomes an integer bitmask, and the structure's tallies (per-column hit
counters for the grid, vote sums for voting, subtree satisfaction for
trees, ...) are maintained *incrementally* under single-node
:meth:`~QuorumEvaluator.node_up` / :meth:`~QuorumEvaluator.node_down`
transitions, so the membership predicates become O(1) (or O(structure
depth)) per event instead of O(N * structure).

Every evaluator must agree bit-for-bit with its coterie's set-based
predicates on every subset -- the property tests enforce this across all
rule families.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from typing import Callable, Iterable, Optional, Sequence


class CoterieError(Exception):
    """Raised for invalid coterie constructions or queries."""


def _stable_hash(text: str) -> int:
    """A deterministic string hash (``hash()`` is salted per process)."""
    return zlib.crc32(text.encode("utf-8"))


class Coterie(ABC):
    """Read/write quorums over one ordered node list.

    Subclasses implement the two membership predicates and the two quorum
    pickers.  ``nodes`` is the ordered universe V; node *names* are opaque
    hashable identifiers, usually strings.
    """

    def __init__(self, nodes: Sequence[str]):
        nodes = tuple(nodes)
        if not nodes:
            raise CoterieError("a coterie needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise CoterieError("duplicate node names in coterie universe")
        self.nodes = nodes
        self._index = {name: k for k, name in enumerate(nodes)}

    # -- geometry -----------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes in the universe V."""
        return len(self.nodes)

    def ordered_number(self, node: str) -> int:
        """1-based position of *node* in V (the paper's ``ordered-number``)."""
        try:
            return self._index[node] + 1
        except KeyError:
            raise CoterieError(f"{node!r} is not in this coterie") from None

    def restrict(self, subset: Iterable[str]) -> frozenset:
        """The part of *subset* that lies inside V."""
        return frozenset(name for name in subset if name in self._index)

    # -- membership predicates (the coterie rule) -----------------------------
    @abstractmethod
    def is_read_quorum(self, subset: Iterable[str]) -> bool:
        """True iff *subset* includes a read quorum over V."""

    @abstractmethod
    def is_write_quorum(self, subset: Iterable[str]) -> bool:
        """True iff *subset* includes a write quorum over V."""

    # -- quorum function ---------------------------------------------------------
    @abstractmethod
    def read_quorum(self, salt: str = "", attempt: int = 0) -> list[str]:
        """A concrete read quorum, varied by *salt* (e.g. coordinator name).

        Deterministic: the same (V, salt, attempt) gives the same quorum, so
        all runs are reproducible.  Different salts spread load.
        """

    @abstractmethod
    def write_quorum(self, salt: str = "", attempt: int = 0) -> list[str]:
        """A concrete write quorum, varied by *salt* and *attempt*."""

    # -- availability-aware selection (used by baselines and analyses) -------
    def find_read_quorum(self, available: Iterable[str]) -> Optional[frozenset]:
        """Some *minimal* read quorum fully inside *available*, or None.

        The default implementation runs the planner's generic
        evaluator-driven shrink (:func:`repro.coteries.planner.
        minimal_quorum`): load the live subset, then drop members
        whenever the remainder still contains a quorum.  Minimal means
        no proper subset of the result is a quorum -- not necessarily
        minimum cardinality.  Subclasses override with constructive
        structure-aware searches where those are cheaper.
        """
        from repro.coteries.planner import minimal_quorum
        return minimal_quorum(self, available, "read")

    def find_write_quorum(self, available: Iterable[str]) -> Optional[frozenset]:
        """Some *minimal* write quorum fully inside *available*, or None."""
        from repro.coteries.planner import minimal_quorum
        return minimal_quorum(self, available, "write")

    # -- compiled predicates -------------------------------------------------
    def compile(self, universe: Optional[Sequence[str]] = None
                ) -> "QuorumEvaluator":
        """A :class:`QuorumEvaluator` for this coterie over *universe*.

        *universe* is the ordered node list defining bit positions; it
        defaults to V and may be a superset of V (the dynamic protocol
        compiles epoch coteries over the full replica set so bit
        positions stay stable across epoch changes).  Bits for nodes
        outside V never affect the answers, mirroring how the set-based
        predicates ignore names outside V.

        Subclasses override this to return incremental structure-aware
        evaluators; the default falls back to
        :class:`SetRecomputeEvaluator`, which tracks the live name set
        and re-runs the set predicates on every query -- correct for any
        coterie, but with no per-event speedup.
        """
        return SetRecomputeEvaluator(self, universe)

    def compile_batch(self, universe: Optional[Sequence[str]] = None):
        """A vectorized :class:`repro.coteries.batch.BatchEvaluator`.

        The batch analogue of :meth:`compile`: the structure is compiled
        into numpy arrays and both membership predicates are evaluated
        over whole arrays of masks at once (Monte Carlo trajectory
        chunks, exhaustive 2^N sweeps).  Same universe/bit conventions
        as the scalar evaluator; answers agree mask-for-mask.  Families
        without a structure-aware kernel get a correct scalar-fallback
        evaluator.  Requires numpy (imported lazily so scalar-only
        paths never pay the import).
        """
        from repro.coteries.batch import batch_evaluator_for
        return batch_evaluator_for(self, universe)

    # -- misc ----------------------------------------------------------------
    def __repr__(self) -> str:
        return f"<{type(self).__name__} over {self.n_nodes} nodes>"

    @staticmethod
    def _pick(options: Sequence, salt: str, attempt: int, extra: str = "") -> int:
        """Deterministic index into *options* derived from salt and attempt."""
        if not options:
            raise CoterieError("cannot pick from an empty option list")
        return (_stable_hash(f"{salt}|{extra}") + attempt) % len(options)


# A coterie rule is any callable turning an ordered node list into a coterie.
# The general protocol (repro.core) is parameterised by one of these, e.g.
# ``GridCoterie`` itself, ``MajorityCoterie``, or a lambda adding options.
CoterieRule = Callable[[Sequence[str]], Coterie]


class QuorumEvaluator(ABC):
    """Incremental bitmask evaluation of one coterie's quorum predicates.

    An evaluator is bound to a coterie and an ordered *universe* of node
    names; bit i of every mask refers to ``universe[i]``.  It keeps the
    current up-set as :attr:`mask` plus whatever per-structure tallies
    its subclass needs, under three state transitions:

    * :meth:`reset` -- load a full bitmask, O(N);
    * :meth:`node_up` / :meth:`node_down` -- flip one node, O(1) for
      counter-based structures (grid, voting, ROWA, wall rows) and
      O(depth) for recursive ones (tree, hierarchical, composite).

    ``node_up(i)`` requires bit i to be clear and ``node_down(i)``
    requires it set -- callers replay failure/repair *events*, which are
    always strict flips; no defensive re-check is done in the hot path.

    The membership queries take an optional mask: ``is_read_quorum()``
    answers for the tracked state in O(1)-ish time, while
    ``is_read_quorum(mask)`` first resets the tracked state to *mask*.
    Answers must equal ``coterie.is_read_quorum({universe[i]: bit i
    set})`` exactly, for every mask.
    """

    def __init__(self, coterie: Coterie,
                 universe: Optional[Sequence[str]] = None):
        if universe is None:
            universe = coterie.nodes
        universe = tuple(universe)
        if len(set(universe)) != len(universe):
            raise CoterieError("duplicate node names in evaluator universe")
        bit = {name: i for i, name in enumerate(universe)}
        missing = [name for name in coterie.nodes if name not in bit]
        if missing:
            raise CoterieError(
                f"coterie members outside the universe: {missing}")
        self.coterie = coterie
        self.universe = universe
        self.bit = bit
        self.n_bits = len(universe)
        v_mask = 0
        for name in coterie.nodes:
            v_mask |= 1 << bit[name]
        self.v_mask = v_mask  # the bits of the coterie's members V
        self.mask = 0

    # -- mask helpers --------------------------------------------------------
    def mask_of(self, names: Iterable[str]) -> int:
        """The bitmask with the bits of *names* set (unknown names error)."""
        mask = 0
        bit = self.bit
        for name in names:
            mask |= 1 << bit[name]
        return mask

    def names_of(self, mask: int) -> frozenset:
        """The set of universe names whose bits are set in *mask*."""
        return frozenset(name for i, name in enumerate(self.universe)
                         if mask >> i & 1)

    # -- state transitions ---------------------------------------------------
    @abstractmethod
    def reset(self, mask: int) -> None:
        """Replace the tracked up-set with *mask*, rebuilding all tallies."""

    def reset_full(self) -> None:
        """Set the tracked up-set to exactly V (all members up).

        Equivalent to ``reset(self.v_mask)`` but overridable in O(1) or
        O(structure summary): with every member up, all tallies are at
        their maxima and need no scan.  This is the hot path of the
        dynamic protocol, whose successful epoch checks make the new
        epoch exactly the up-set.
        """
        self.reset(self.v_mask)

    #: True for evaluator classes that implement :meth:`rebind_epoch`.
    supports_rebind = False

    def rebind_epoch(self, epoch_mask: int) -> None:
        """Re-derive the structure for a new epoch, in place.

        The new member set V' is the subsequence of the universe
        selected by *epoch_mask*; the tracked up-set becomes exactly V'
        (the dynamic protocol installs an epoch only when it equals the
        up-set).  Only meaningful for structures whose derivation from
        an ordered node list is *uniform* -- the same construction
        options at every epoch size, which is precisely the paper's
        coterie-rule assumption -- so the evaluator can rebuild its
        tables from the mask alone, without constructing a new
        :class:`Coterie` (after a rebind, :attr:`coterie` is cleared to
        ``None``).  Subclasses that support this set
        ``supports_rebind = True``; the default raises.
        """
        raise CoterieError(
            f"{type(self).__name__} does not support epoch rebinding")

    @abstractmethod
    def node_up(self, i: int) -> None:
        """Mark ``universe[i]`` up (bit i must currently be clear)."""

    @abstractmethod
    def node_down(self, i: int) -> None:
        """Mark ``universe[i]`` down (bit i must currently be set)."""

    # -- membership ----------------------------------------------------------
    @abstractmethod
    def is_read_quorum(self, mask: Optional[int] = None) -> bool:
        """True iff the tracked (or given) up-set includes a read quorum."""

    @abstractmethod
    def is_write_quorum(self, mask: Optional[int] = None) -> bool:
        """True iff the tracked (or given) up-set includes a write quorum."""

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} for {self.coterie!r} "
                f"over {self.n_bits} bits>")


class SetRecomputeEvaluator(QuorumEvaluator):
    """The universal fallback evaluator: set predicates, incremental set.

    Tracks the live *name* set under up/down transitions (O(1) per
    event) but re-runs the coterie's set-based predicates on every
    query.  Any coterie gets this for free via :meth:`Coterie.compile`;
    structure-aware subclasses replace it with incremental tallies.
    """

    def __init__(self, coterie: Coterie,
                 universe: Optional[Sequence[str]] = None):
        super().__init__(coterie, universe)
        self._live: set = set()

    def reset(self, mask: int) -> None:
        self.mask = mask
        self._live = {name for i, name in enumerate(self.universe)
                      if mask >> i & 1}

    def reset_full(self) -> None:
        self.mask = self.v_mask
        self._live = set(self.coterie.nodes)

    def node_up(self, i: int) -> None:
        self.mask |= 1 << i
        self._live.add(self.universe[i])

    def node_down(self, i: int) -> None:
        self.mask &= ~(1 << i)
        self._live.discard(self.universe[i])

    def is_read_quorum(self, mask: Optional[int] = None) -> bool:
        if mask is not None:
            self.reset(mask)
        return self.coterie.is_read_quorum(self._live)

    def is_write_quorum(self, mask: Optional[int] = None) -> bool:
        if mask is not None:
            self.reset(mask)
        return self.coterie.is_write_quorum(self._live)
